"""Seed stability: the headline results must not be sampling artifacts.

Re-runs the central comparison (zero-skipped DESC vs binary) with
several workload-generator seeds and checks the spread of the energy
and time ratios.  A reproduction whose conclusions flip with the random
seed would be worthless; this bench pins the variance.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import geomean, run_suite
from repro.sim.config import SystemConfig, baseline_scheme, desc_scheme

_SEEDS = (1, 2, 3, 4, 5)


def test_seed_stability(run_once):
    def sweep():
        energy_ratios, time_ratios = [], []
        for seed in _SEEDS:
            system = SystemConfig(sample_blocks=2000, seed=seed)
            binary = run_suite(baseline_scheme("binary"), system)
            desc = run_suite(desc_scheme("zero"), system)
            energy_ratios.append(geomean(
                d.l2_energy_j / b.l2_energy_j for d, b in zip(desc, binary, strict=True)
            ))
            time_ratios.append(geomean(
                d.cycles / b.cycles for d, b in zip(desc, binary, strict=True)
            ))
        return energy_ratios, time_ratios

    energy_ratios, time_ratios = run_once(sweep)
    print("\n=== Seed stability of the headline comparison ===")
    for seed, e, t in zip(_SEEDS, energy_ratios, time_ratios, strict=True):
        print(f"  seed {seed}: L2 energy {e:.4f}  time {t:.4f}")
    e_spread = max(energy_ratios) - min(energy_ratios)
    t_spread = max(time_ratios) - min(time_ratios)
    print(f"  spreads: energy {e_spread:.4f}, time {t_spread:.4f}")
    # The ratios must be stable to well under a point across seeds.
    assert e_spread < 0.01
    assert t_spread < 0.005
    # And the conclusion itself holds for every seed.
    assert all(e < 0.65 for e in energy_ratios)
    assert all(1.0 <= t < 1.04 for t in time_ratios)
