"""Regenerates Figure 26: chunk-size sensitivity of zero-skipped DESC."""

from __future__ import annotations

from conftest import BENCH_SYSTEM

from repro.experiments import fig26_chunk_size


def test_fig26_chunk_size(run_once):
    result = run_once(fig26_chunk_size.run, BENCH_SYSTEM)
    points = result["points"]
    print("\n=== Figure 26: chunk size x wires (norm. to 64-bit binary) ===")
    for label, p in sorted(points.items()):
        print(f"  {label:10s} energy={p['l2_energy']:6.3f} time={p['execution_time']:6.3f}")
    best = result["best_edp_point"]
    print(f"  best EDP: {best['chunk_bits']}-bit chunks, {best['wires']} wires "
          f"(paper: 4-bit, 128 wires)")
    assert (best["chunk_bits"], best["wires"]) == (4, 128)
    # Larger chunks trade energy for latency (the paper's Fig. 26 story):
    assert points["c8-w64"]["execution_time"] > points["c2-w64"]["execution_time"]
    assert points["c1-w128"]["l2_energy"] > points["c4-w128"]["l2_energy"]
