"""Regenerates Figure 21: average L2 hit delay, binary vs DESC."""

from __future__ import annotations

from conftest import BENCH_SYSTEM

from repro.experiments import fig21_hit_delay


def test_fig21_hit_delay(run_once):
    result = run_once(fig21_hit_delay.run, BENCH_SYSTEM)
    table = result["hit_delay_cycles"]
    apps = [k for k in next(iter(table.values())) if k != "Average"]
    print("\n=== Figure 21: average L2 hit delay (cycles) ===")
    print(f"  {'app':16s}" + "".join(f"{cfg:>16s}" for cfg in table))
    for app in apps + ["Average"]:
        print(f"  {app:16s}" + "".join(f"{table[cfg][app]:16.1f}" for cfg in table))
    extra = result["desc_extra_delay"]
    print(f"  DESC extra delay: 64-wire +{extra['64-wire']:.1f} "
          f"(paper +31.2), 128-wire +{extra['128-wire']:.1f} (paper +8.45)")
    # Shape: DESC adds delay; the narrow bus pays ~2-4x more of it.
    assert extra["128-wire"] > 0
    assert 2.0 < extra["64-wire"] / extra["128-wire"] < 5.0
    # Wider binary buses are faster.
    assert table["128-bit Binary"]["Average"] < table["64-bit Binary"]["Average"]
