"""Shared helpers for the figure-regeneration benchmarks.

Every benchmark runs its figure's experiment exactly once (the
experiments are deterministic and internally cached, so repeated timing
rounds would measure the cache) and prints the same rows/series the
paper's figure reports, so ``pytest benchmarks/ --benchmark-only -s``
regenerates the whole evaluation section.
"""

from __future__ import annotations

import pytest

from repro.sim.config import SystemConfig

#: System used by the per-figure benchmarks: the paper's architecture
#: with a moderate value-sample per application.
BENCH_SYSTEM = SystemConfig(sample_blocks=3000)


@pytest.fixture
def run_once(benchmark):
    """Run a figure harness exactly once under pytest-benchmark."""

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return _run


def print_series(title: str, series: dict, fmt: str = "{:.3f}") -> None:
    """Pretty-print one figure series as labelled rows."""
    print(f"\n=== {title} ===")
    for key, value in series.items():
        if isinstance(value, dict):
            row = "  ".join(
                f"{k}={fmt.format(v)}" for k, v in value.items()
                if isinstance(v, (int, float))
            )
            print(f"  {key:32s} {row}")
        elif isinstance(value, (int, float)):
            print(f"  {key:32s} {fmt.format(value)}")
        else:
            print(f"  {key:32s} {value}")
