"""Ablation: DESC on a low-swing interconnect.

Section 1 argues activity-factor reduction "can be used on interconnects
with different characteristics (e.g., transmission lines or low-swing
wires)".  This ablation equips the H-tree with low-swing signaling
(reduced wire swing + sense amplifiers, the paper's refs [2, 7]) and
measures how DESC's advantage composes with it.
"""

from __future__ import annotations

from conftest import BENCH_SYSTEM

from repro.experiments.common import geomean, run_suite
from repro.sim.config import baseline_scheme, desc_scheme


def test_ablation_low_swing_interconnect(run_once):
    def sweep():
        rows = {}
        for label, system in (
            ("full-swing", BENCH_SYSTEM),
            ("low-swing", BENCH_SYSTEM.with_(low_swing=True)),
        ):
            binary = run_suite(baseline_scheme("binary"), system)
            desc = run_suite(desc_scheme("zero"), system)
            rows[label] = {
                "binary_energy": geomean(r.l2_energy_j for r in binary),
                "desc_energy": geomean(r.l2_energy_j for r in desc),
            }
        return rows

    rows = run_once(sweep)
    full = rows["full-swing"]
    low = rows["low-swing"]
    print("\n=== Ablation: low-swing H-tree wires ===")
    print(f"  binary L2 energy, low/full swing: "
          f"{low['binary_energy'] / full['binary_energy']:.2f}")
    print(f"  DESC gain on full-swing wires: "
          f"{full['binary_energy'] / full['desc_energy']:.2f}x")
    print(f"  DESC gain on low-swing wires:  "
          f"{low['binary_energy'] / low['desc_energy']:.2f}x")
    print("  DESC still helps on low-swing interconnect (the techniques")
    print("  compose), but less: switching is a smaller energy share.")

    # Low-swing alone saves a lot of interconnect energy.
    assert low["binary_energy"] < 0.6 * full["binary_energy"]
    # DESC still helps on top of it...
    assert low["desc_energy"] < 0.85 * low["binary_energy"]
    # ...but its relative gain shrinks.
    gain_full = full["binary_energy"] / full["desc_energy"]
    gain_low = low["binary_energy"] / low["desc_energy"]
    assert gain_low < gain_full
