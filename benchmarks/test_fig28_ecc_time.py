"""Regenerates Figure 28: execution time under SECDED ECC."""

from __future__ import annotations

from conftest import BENCH_SYSTEM, print_series

from repro.experiments import fig28_ecc_time


def test_fig28_ecc_time(run_once):
    result = run_once(fig28_ecc_time.run, BENCH_SYSTEM)
    print_series("Figure 28: execution time under ECC (norm. to 64-64 binary)",
                 result["execution_time_normalized"])
    table = result["execution_time_normalized"]
    # Paper: DESC's ECC-protected penalty ≈ 1%.
    assert table["128-64 DESC"] < 1.05
    assert table["128-128 DESC"] < 1.05
    # The wider binary bus is a touch faster (fewer beats).
    assert table["128-128 Binary"] <= 1.0
