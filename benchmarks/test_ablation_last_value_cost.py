"""Ablation: why zero skipping beats last-value skipping (Section 5.2).

Last-value skipping skips *more* chunks than zero skipping (Figure 13's
39 % vs Figure 12's 31 %), yet the paper finds it delivers *less* energy
saving (1.77× vs 1.81×) because the cache controller must track every
mat's last values and broadcast write data across the subbank H-trees.
This ablation separates the two effects: wire flips alone (where
last-value wins) vs total L2 energy including the broadcast (where zero
skipping wins), sweeping the broadcast-activity assumption.
"""

from __future__ import annotations

from conftest import BENCH_SYSTEM

import repro.sim.transfer as transfer_module
from repro.experiments.common import geomean, run_suite
from repro.sim.config import desc_scheme
from repro.sim.system import clear_caches, transfer_stats
from repro.workloads import PARALLEL_SUITE


def test_ablation_last_value_broadcast(run_once):
    def sweep():
        flips = {}
        for skip in ("zero", "last-value"):
            scheme = desc_scheme(skip)
            per_app = [
                transfer_stats(scheme, app, BENCH_SYSTEM.sample_blocks,
                               BENCH_SYSTEM.seed).total_flips
                for app in PARALLEL_SUITE
            ]
            flips[skip] = geomean(per_app)

        energies = {}
        original = transfer_module._LAST_VALUE_BROADCAST_ACTIVITY
        try:
            for activity in (0.0, 0.08, 0.16, 0.32):
                transfer_module._LAST_VALUE_BROADCAST_ACTIVITY = activity
                clear_caches()
                zero = run_suite(desc_scheme("zero"), BENCH_SYSTEM)
                last = run_suite(desc_scheme("last-value"), BENCH_SYSTEM)
                energies[activity] = geomean(
                    l.l2_energy_j / z.l2_energy_j for l, z in zip(last, zero, strict=True)
                )
        finally:
            transfer_module._LAST_VALUE_BROADCAST_ACTIVITY = original
            clear_caches()
        return flips, energies

    flips, energies = run_once(sweep)
    print("\n=== Ablation: last-value skipping's broadcast cost ===")
    print(f"  wire flips/block (geomean): zero={flips['zero']:.1f} "
          f"last-value={flips['last-value']:.1f}")
    print(f"  last-value / zero L2 energy vs broadcast activity:")
    for activity, ratio in energies.items():
        marker = "  <- paper regime" if ratio > 1 else ""
        print(f"    activity={activity:.2f}: {ratio:.3f}{marker}")

    # On the wires alone, last-value skipping wins (more skips)...
    assert flips["last-value"] < flips["zero"]
    # ...with no broadcast cost it would also win on energy...
    assert energies[0.0] < 1.0
    # ...but the controller broadcast flips the comparison, reproducing
    # the paper's zero > last-value ordering.
    assert energies[0.16] > 1.0
