"""Regenerates Figure 22: the (energy, delay) design-space scatter."""

from __future__ import annotations

from conftest import BENCH_SYSTEM

from repro.experiments import fig22_design_scatter


def test_fig22_design_scatter(run_once):
    result = run_once(fig22_design_scatter.run, BENCH_SYSTEM)
    points = result["points"]
    print("\n=== Figure 22: design space (energy, time) vs 8b/64w binary ===")
    for family, rows in points.items():
        for label, (energy, time) in sorted(rows.items()):
            print(f"  {family:7s} {label:16s} energy={energy:6.3f} time={time:6.3f}")
    # DESC opens design points with lower energy than ANY binary design
    # at comparable execution time (the paper's Pareto claim).
    best_binary_energy = min(e for e, _ in points["binary"].values())
    desc_better = [
        (e, t) for e, t in points["desc"].values()
        if e < best_binary_energy and t < 1.2
    ]
    assert desc_better, "DESC should extend the Pareto frontier"
