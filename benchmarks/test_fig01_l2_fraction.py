"""Regenerates Figure 1: L2 energy as a fraction of processor energy."""

from __future__ import annotations

from conftest import BENCH_SYSTEM, print_series

from repro.experiments import fig01_l2_fraction


def test_fig01_l2_fraction(run_once):
    result = run_once(fig01_l2_fraction.run, BENCH_SYSTEM)
    print_series("Figure 1: L2 fraction of processor energy", result["l2_fraction"])
    geomean = result["l2_fraction"]["Geomean"]
    print(f"  paper average: {result['paper_average']}")
    assert 0.10 < geomean < 0.20
