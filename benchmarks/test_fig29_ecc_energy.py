"""Regenerates Figure 29: L2 energy under SECDED ECC."""

from __future__ import annotations

from conftest import BENCH_SYSTEM, print_series

from repro.experiments import fig29_ecc_energy


def test_fig29_ecc_energy(run_once):
    result = run_once(fig29_ecc_energy.run, BENCH_SYSTEM)
    print_series("Figure 29: L2 energy under ECC (norm. to 64-64 binary)",
                 result["l2_energy_normalized"])
    imp = result["desc_improvement"]
    print(f"  DESC improvement: (72,64) {imp['(72,64)']:.2f}x (paper 1.82x); "
          f"(137,128) {imp['(137,128)']:.2f}x (paper 1.92x)")
    # Shape: both protected DESC configs win big; the wider Hamming code
    # (fewer parity wires per data bit) wins more.
    assert imp["(137,128)"] > imp["(72,64)"] > 1.4
