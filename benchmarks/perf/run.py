#!/usr/bin/env python
"""Standalone entry point for the tracked performance benchmarks.

Equivalent to ``python -m repro bench``; exists so the suite can be run
from a checkout without installing the package or setting PYTHONPATH::

    python benchmarks/perf/run.py --quick --out bench.json

See docs/performance.md for what each tier measures and how the
BENCH_<rev>.json snapshots are tracked.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "src"))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller inputs, single repeat (CI smoke mode)")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="output JSON path (default BENCH_<rev>.json)")
    args = parser.parse_args(argv)

    from repro.bench import run_benchmarks, write_report

    report = run_benchmarks(quick=args.quick)
    path = write_report(report, args.out)
    print(f"wrote {path}")
    multicore = report["multicore"]["engines"]
    for engine, row in multicore.items():
        print(f"  {engine:11s} {row['seconds']:8.3f}s "
              f"{row['speedup_vs_reference']:6.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
