"""Regenerates Figure 18: static vs dynamic L2 energy per scheme."""

from __future__ import annotations

from conftest import BENCH_SYSTEM, print_series

from repro.experiments import fig18_energy_split


def test_fig18_energy_split(run_once):
    result = run_once(fig18_energy_split.run, BENCH_SYSTEM)
    print_series("Figure 18: static/dynamic split (norm. to binary total)",
                 result["energy_split"])
    split = result["energy_split"]
    binary = split["Conventional Binary"]
    desc = split["Zero Skipped DESC"]
    # Zero-skipped DESC ~halves dynamic energy at a small static cost.
    assert desc["dynamic"] < 0.62 * binary["dynamic"]
    assert desc["static"] >= binary["static"]
    assert desc["static"] < 1.10 * binary["static"]
