"""Regenerates Figure 19: processor energy with zero-skipped DESC.

The paper's headline system-level number: 7 % processor-energy savings.
"""

from __future__ import annotations

from conftest import BENCH_SYSTEM, print_series

from repro.experiments import fig19_processor_energy


def test_fig19_processor_energy(run_once):
    result = run_once(fig19_processor_energy.run, BENCH_SYSTEM)
    print_series("Figure 19: processor energy (norm. to binary)",
                 result["processor_energy_normalized"])
    geomean = result["processor_energy_normalized"]["Geomean"]["total"]
    print(f"  paper geomean: {result['paper_geomean']}")
    assert 0.90 < geomean < 0.97
