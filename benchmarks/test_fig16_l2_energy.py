"""Regenerates Figure 16: L2 energy of the eight transfer schemes.

This is the paper's headline cache-level figure (zero-skipped DESC =
1.81× average reduction).
"""

from __future__ import annotations

from conftest import BENCH_SYSTEM

from repro.experiments import fig16_l2_energy


def test_fig16_l2_energy(run_once):
    result = run_once(fig16_l2_energy.run, BENCH_SYSTEM)
    table = result["l2_energy_normalized"]
    apps = [k for k in next(iter(table.values())) if k != "Geomean"]
    print("\n=== Figure 16: L2 energy normalized to binary ===")
    header = f"  {'app':16s}" + "".join(f"{s[:10]:>11s}" for s in table)
    print(header)
    for app in apps + ["Geomean"]:
        row = f"  {app:16s}" + "".join(f"{table[s][app]:11.3f}" for s in table)
        print(row)
    print("  paper geomeans:", result["paper_geomeans"])

    geo = {s: v["Geomean"] for s, v in table.items()}
    assert geo["Zero Skipped DESC"] < 1 / 1.6           # headline ≥1.6x
    assert geo["Zero Skipped DESC"] < geo["Last Value Skipped DESC"]
    assert geo["Dynamic Zero Compression"] > geo["Bus Invert Coding"]
    # Zero skipping helps bus-invert; the gap is small in the paper too
    # (0.80 vs 0.81), so allow sampling noise.
    assert geo["Zero Skipped Bus Invert"] <= geo["Bus Invert Coding"] + 0.005
    # Section 5.2 singles out the "few bit flips" applications — CG,
    # Cholesky, Equake, Radix, Water-NSquared — as basic DESC's worst
    # cases: its mandatory one-flip-per-chunk floor hurts most where
    # binary activity is already low.
    low_activity = ("CG", "Cholesky", "Equake", "Radix", "Water-NSquared")
    basic = table["Basic DESC"]
    low_mean = sum(basic[a] for a in low_activity) / len(low_activity)
    assert low_mean > basic["Geomean"]
