"""Regenerates Figure 27: impact of L2 capacity on cache energy."""

from __future__ import annotations

from conftest import BENCH_SYSTEM

from repro.experiments import fig27_cache_size


def test_fig27_cache_size(run_once):
    result = run_once(fig27_cache_size.run, BENCH_SYSTEM)
    print("\n=== Figure 27: L2 capacity sweep (norm. to 8MB binary) ===")
    for size in result["binary"]:
        print(f"  {size:>6s}  binary={result['binary'][size]:6.3f}  "
              f"desc={result['desc'][size]:6.3f}  "
              f"improvement={result['desc_improvement'][size]:.2f}x")
    print(f"  paper: 1.87x at 512KB down to 1.75x at 64MB")
    imp = result["desc_improvement"]
    # Energy grows with capacity for both schemes.
    assert result["binary"]["64MB"] > result["binary"]["0.5MB"]
    assert result["desc"]["64MB"] > result["desc"]["0.5MB"]
    # DESC's advantage narrows as leakage grows with capacity.
    assert imp["0.5MB"] > imp["64MB"] > 1.3
