"""Regenerates Figure 2: components of the 8 MB L2 energy."""

from __future__ import annotations

from conftest import BENCH_SYSTEM, print_series

from repro.experiments import fig02_l2_breakdown


def test_fig02_l2_breakdown(run_once):
    result = run_once(fig02_l2_breakdown.run, BENCH_SYSTEM)
    print_series("Figure 2: L2 energy breakdown", result["breakdown"])
    avg = result["average"]
    print(f"  average: static={avg['static']:.3f} "
          f"other={avg['other_dynamic']:.3f} htree={avg['htree_dynamic']:.3f} "
          f"(paper htree ≈ {result['paper_htree_average']})")
    assert 0.70 < avg["htree_dynamic"] < 0.92
