"""Regenerates Figure 3: parallel vs serial vs DESC on one byte."""

from __future__ import annotations

from conftest import print_series

from repro.experiments import fig03_illustrative


def test_fig03_illustrative(run_once):
    result = run_once(fig03_illustrative.run)
    print_series("Figure 3: one-byte example (01010011)", {
        "parallel": result["parallel"],
        "serial": result["serial"],
        "desc": result["desc"],
    }, fmt="{:.0f}")
    assert result["parallel"]["flips"] == result["paper"]["parallel_flips"] == 4
    assert result["serial"]["flips"] == result["paper"]["serial_flips"] == 5
    assert result["desc"]["flips"] == result["paper"]["desc_flips"] == 3
