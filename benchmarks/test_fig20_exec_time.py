"""Regenerates Figure 20: execution time of the transfer schemes."""

from __future__ import annotations

from conftest import BENCH_SYSTEM, print_series

from repro.experiments import fig20_exec_time


def test_fig20_exec_time(run_once):
    result = run_once(fig20_exec_time.run, BENCH_SYSTEM)
    times = result["execution_time_normalized"]
    print_series("Figure 20: execution time normalized to binary", times)
    # Paper: skipped DESC costs <2%; baselines ~1%.
    assert times["Zero Skipped DESC"] < 1.04
    assert times["Last Value Skipped DESC"] < 1.04
    assert times["Basic DESC"] < times["Zero Skipped DESC"] * 1.02
    for label, value in times.items():
        assert value >= 0.999, label
