"""Regenerates Figure 15: baseline energy vs segment size."""

from __future__ import annotations

from conftest import BENCH_SYSTEM, print_series

from repro.experiments import fig15_segment_size


def test_fig15_segment_size(run_once):
    result = run_once(fig15_segment_size.run, BENCH_SYSTEM)
    table = result["energy_by_segment"]
    print("\n=== Figure 15: L2 energy vs segment size (norm. to binary) ===")
    for scheme, by_bits in table.items():
        row = "  ".join(f"{bits:2d}b={ratio:.3f}" for bits, ratio in by_bits.items())
        star = result["best_segment_bits"][scheme]
        print(f"  {scheme:34s} {row}  best={star}b")
    # Every baseline helps at its best configuration.
    for scheme, by_bits in table.items():
        assert min(by_bits.values()) < 1.0, scheme
    # The registry defaults must match what this harness derives.
    from repro.encoding.registry import BEST_SEGMENT_BITS
    for scheme, best in result["best_segment_bits"].items():
        assert BEST_SEGMENT_BITS[scheme] == best, scheme
    # DZC is nearly insensitive to segment size; the invert-based
    # schemes degrade monotonically beyond 8-bit segments (the extra
    # capping granularity no longer pays for the invert-line traffic).
    dzc = result["energy_by_segment"]["zero-compression"]
    assert max(dzc.values()) - min(dzc.values()) < 0.05
    bic = result["energy_by_segment"]["bus-invert"]
    assert bic[16] < bic[32] < bic[64]
