"""Micro-benchmarks of the simulation engines themselves.

Not a paper figure — these track the performance of the two fidelity
layers (cycle-accurate link vs closed-form model) and of the system
simulator, so regressions in the engines show up in CI.
"""

from __future__ import annotations

import numpy as np

from repro.core.analysis import DescCostModel
from repro.core.chunking import ChunkLayout
from repro.core.link import DescLink
from repro.sim.config import SystemConfig, desc_scheme
from repro.sim.system import clear_caches, simulate


def test_cycle_accurate_link_throughput(benchmark):
    layout = ChunkLayout()
    rng = np.random.default_rng(0)
    blocks = rng.integers(0, 16, size=(10, 128))

    def send_all():
        link = DescLink(layout, skip_policy="zero")
        for block in blocks:
            link.send_block(block)
        return link.cost_so_far()

    cost = benchmark(send_all)
    assert cost.data_flips > 0


def test_cost_model_throughput(benchmark):
    layout = ChunkLayout()
    rng = np.random.default_rng(0)
    blocks = rng.integers(0, 16, size=(5000, 128))

    def run_model():
        return DescCostModel(layout, skip_policy="zero").stream_cost(blocks)

    stream = benchmark(run_model)
    assert stream.num_blocks == 5000


def test_system_simulation_throughput(benchmark):
    system = SystemConfig(sample_blocks=2000)

    def run_sim():
        clear_caches()
        return simulate("Ocean", desc_scheme("zero"), system)

    result = benchmark.pedantic(run_sim, rounds=3, iterations=1)
    assert result.cycles > 0
