"""Regenerates Figure 13: fraction of last-value-matching chunks."""

from __future__ import annotations

from conftest import print_series

from repro.experiments import fig13_last_value


def test_fig13_last_value(run_once):
    result = run_once(fig13_last_value.run, 4000)
    print_series(
        "Figure 13: chunks matching the previous chunk",
        result["last_value_fraction"],
    )
    geomean = result["last_value_fraction"]["Geomean"]
    print(f"  paper geomean: {result['paper_geomean']}")
    assert abs(geomean - 0.39) < 0.06
