"""Ablation: adaptive skipping vs zero skipping (the paper's §3.3 aside).

The paper considered electing frequent non-zero chunk values at runtime
and dismissed it: "the attainable delay and energy improvements are not
appreciable … because of the relatively uniform distribution of chunk
values other than zero."  This ablation implements the adaptive policy
and quantifies the claim across the full workload suite.
"""

from __future__ import annotations

import numpy as np

from repro.core.adaptive import AdaptiveDescCostModel
from repro.core.analysis import DescCostModel
from repro.core.chunking import ChunkLayout
from repro.workloads import PARALLEL_SUITE, block_stream


def test_ablation_adaptive_skipping(run_once):
    layout = ChunkLayout()

    def sweep():
        rows = {}
        for app in PARALLEL_SUITE:
            blocks = block_stream(app, 3000, seed=1)
            zero = DescCostModel(layout, "zero").stream_cost(blocks).total()
            rows[app.name] = {}
            for window in (8, 32, 128):
                adaptive = AdaptiveDescCostModel(layout, window=window)
                total = adaptive.stream_cost(blocks).total()
                rows[app.name][window] = total.total_flips / zero.total_flips
        return rows

    rows = run_once(sweep)
    print("\n=== Ablation: adaptive vs zero skipping (flip ratio) ===")
    print(f"  {'app':16s} {'w=8':>8s} {'w=32':>8s} {'w=128':>8s}")
    for app, by_window in rows.items():
        print(f"  {app:16s}" + "".join(f"{by_window[w]:8.3f}" for w in (8, 32, 128)))
    means = {w: float(np.mean([r[w] for r in rows.values()])) for w in (8, 32, 128)}
    print(f"  mean: " + "  ".join(f"w={w}: {m:.3f}" for w, m in means.items()))
    best = min(means.values())
    print(f"  best mean gain over zero skipping: {(1-best)*100:.1f}% — "
          f"'not appreciable' (Section 3.3) confirmed"
          if best > 0.90 else "  adaptation helps materially (contradicts paper)")
    # The paper's dismissal: adaptation buys only a few percent at best.
    assert best > 0.88
    # And it must never be drastically WORSE than zero skipping either
    # (zero stays a frequent value, so elections rarely leave it).
    assert max(means.values()) < 1.15
