"""Regenerates Tables 1–3: the configuration inputs of the evaluation."""

from __future__ import annotations

from repro.energy.technology import NODE_22NM, NODE_45NM
from repro.sim.config import DEFAULT_SYSTEM
from repro.workloads.suites import suite_table


def test_table1_simulation_parameters(run_once):
    cfg = run_once(lambda: DEFAULT_SYSTEM)
    print("\n=== Table 1: simulation parameters ===")
    print(f"  L2 cache      {cfg.l2_size_bytes // (1024*1024)}MB, "
          f"{cfg.l2_associativity}-way, {cfg.block_bytes}B blocks, "
          f"{cfg.num_banks} banks")
    print(f"  clock         {cfg.clock_hz/1e9:.1f} GHz")
    print(f"  cores         8 in-order, 4 HW contexts (smt) / 4-issue OoO")
    print(f"  DRAM          2x DDR3-1066, FR-FCFS")
    assert cfg.l2_size_bytes == 8 * 1024 * 1024
    assert cfg.l2_associativity == 16
    assert cfg.clock_hz == 3.2e9


def test_table2_applications(run_once):
    rows = run_once(suite_table)
    print("\n=== Table 2: applications and data sets ===")
    for row in rows:
        print(f"  {row['benchmark']:16s} {row['suite']:14s} {row['input']}")
    assert len(rows) == 24
    suites = {row["suite"] for row in rows}
    assert {"Phoenix", "SPLASH-2", "SPEC OpenMP", "NAS OpenMP",
            "SPEC CPU2006"} <= suites


def test_table3_technology_parameters(run_once):
    nodes = run_once(lambda: (NODE_45NM, NODE_22NM))
    print("\n=== Table 3: technology parameters ===")
    for node in nodes:
        print(f"  {node.name:5s} {node.voltage_v:.2f} V  "
              f"FO4 {node.fo4_delay_s*1e12:.2f} ps")
    assert nodes[0].voltage_v == 1.1 and nodes[1].voltage_v == 0.83
