"""Ablation: what DESC's strobe wires actually cost.

DESIGN.md calls out two protocol design choices worth quantifying:
(1) the synchronization strobe toggling at half the clock during
transfers ("its overheads are accounted for in the evaluation",
Section 3), and (2) the reset/skip closing toggle.  This ablation
splits zero-skipped DESC's flips into data / reset-skip / sync
components across the suite, showing the strobes are a minor but
non-negligible tax on DESC's savings.
"""

from __future__ import annotations

import numpy as np

from repro.core.analysis import DescCostModel
from repro.core.chunking import ChunkLayout
from repro.workloads import PARALLEL_SUITE, block_stream


def test_ablation_strobe_overheads(run_once):
    layout = ChunkLayout()

    def sweep():
        rows = {}
        for app in PARALLEL_SUITE:
            blocks = block_stream(app, 3000, seed=1)
            total = DescCostModel(layout, "zero").stream_cost(blocks).total()
            rows[app.name] = {
                "data": total.data_flips,
                "reset_skip": total.overhead_flips,
                "sync": total.sync_flips,
            }
        return rows

    rows = run_once(sweep)
    print("\n=== Ablation: DESC flip budget (zero skipping) ===")
    print(f"  {'app':16s} {'data':>8s} {'reset/skip':>11s} {'sync':>8s} "
          f"{'strobe share':>13s}")
    shares = []
    for app, r in rows.items():
        total = r["data"] + r["reset_skip"] + r["sync"]
        share = (r["reset_skip"] + r["sync"]) / total
        shares.append(share)
        print(f"  {app:16s} {r['data']:8d} {r['reset_skip']:11d} "
              f"{r['sync']:8d} {share:12.1%}")
    mean_share = float(np.mean(shares))
    print(f"  mean strobe share: {mean_share:.1%} of DESC's transitions")
    # The strobes cost real energy (they must be accounted, as the
    # paper does) but stay a minor fraction of DESC's traffic.
    assert 0.02 < mean_share < 0.30
