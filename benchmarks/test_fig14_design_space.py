"""Regenerates Figure 14: device-type design-space exploration."""

from __future__ import annotations

from conftest import BENCH_SYSTEM, print_series

from repro.experiments import fig14_design_space


def test_fig14_design_space(run_once):
    result = run_once(fig14_design_space.run, BENCH_SYSTEM)
    table = result["by_device_pair"]
    print_series("Figure 14: cells-periphery device pairs "
                 "(normalized to LSTP-LSTP)", table)
    organisation = result["by_organisation"]
    print_series("Figure 14: organisation sweep (LSTP-LSTP binary)",
                 organisation)
    # LSTP-LSTP minimizes L2 and processor energy; HP-HP is far worse.
    assert table["LSTP-LSTP"]["l2_energy"] == 1.0
    assert all(row["l2_energy"] >= 0.999 for row in table.values())
    assert table["HP-HP"]["l2_energy"] > 50
    # The paper's footnote: the LSTP energy choice costs only ~2% time.
    assert table["LSTP-LSTP"]["execution_time"] < table["HP-HP"]["execution_time"] * 1.06
    # Organisation: the paper's 8-bank/64-bit choice is (near-)optimal —
    # narrow buses strangle performance, very wide buses pay coupling
    # energy, and many banks pay peripheral leakage.
    chosen = organisation["8banks-64bit"]
    assert chosen["l2_energy"] == 1.0 and chosen["execution_time"] == 1.0
    assert organisation["8banks-8bit"]["execution_time"] > 1.3
    assert organisation["8banks-512bit"]["l2_energy"] > 1.2
    assert organisation["32banks-64bit"]["l2_energy"] > 1.2
