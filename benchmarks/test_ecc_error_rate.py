"""Reliability sweep for the Figure 9 ECC layout (beyond the paper).

Quantifies Section 3.2.3's guarantees under escalating chunk-error
counts: single errors always corrected, double errors never silent, and
graceful degradation beyond the design point.
"""

from __future__ import annotations

from repro.experiments import ecc_error_rate


def test_ecc_error_rate_sweep(run_once):
    result = run_once(ecc_error_rate.run, 300, 4)
    print("\n=== ECC outcome rates vs injected chunk errors ===")
    for code, by_errors in result["outcome_rates"].items():
        print(f"  {code}:")
        for errors, rates in by_errors.items():
            print(f"    {errors} error(s): corrected {rates['corrected']:.3f}  "
                  f"detected {rates['detected']:.3f}  SILENT {rates['silent']:.3f}")
    guarantees = result["guarantees"]
    assert guarantees["single_error_always_corrected"]
    assert guarantees["double_error_never_silent"]
    # Beyond the SECDED design point detection degrades gracefully but
    # silent corruption becomes possible — the sweep should show it.
    for by_errors in result["outcome_rates"].values():
        assert by_errors[3]["detected"] + by_errors[3]["silent"] > 0.5
