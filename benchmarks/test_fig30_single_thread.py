"""Regenerates Figure 30: single-threaded OoO latency sensitivity."""

from __future__ import annotations

from conftest import BENCH_SYSTEM, print_series

from repro.experiments import fig30_single_thread


def test_fig30_single_thread(run_once):
    result = run_once(fig30_single_thread.run, BENCH_SYSTEM)
    print_series("Figure 30: SPEC CPU2006 OoO time (norm. to binary)",
                 result["execution_time_normalized"])
    geomean = result["execution_time_normalized"]["Geomean"]
    print(f"  paper geomean: {result['paper_geomean']}")
    # Paper: ~6% mean penalty; far above the multicore's ~2%.
    assert 1.02 < geomean < 1.10
