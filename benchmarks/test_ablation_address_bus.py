"""Ablation: should DESC be applied to the address wires?

Section 3.2.1 says no: "the physical wire activity caused by the
address bits in conventional binary encoding is relatively low, which
makes it inefficient to apply DESC to the address wires."  This
ablation measures real L2 address streams under binary, Gray, T0, and
DESC, and puts the numbers behind the decision: the address bus is a
small slice of H-tree energy, and time-encoding it would add its
value-dependent latency to *every* access, including misses.
"""

from __future__ import annotations

import numpy as np

from repro.core.analysis import DescCostModel
from repro.core.chunking import ChunkLayout
from repro.encoding.address import GrayCodeEncoder, T0Encoder, addresses_to_bits
from repro.encoding.binary import BinaryEncoder
from repro.sim.config import SystemConfig, baseline_scheme
from repro.sim.system import transfer_stats
from repro.workloads import PARALLEL_SUITE, memory_trace

_ADDR_BITS = 32
_REFS = 6000


def test_ablation_address_bus_encoding(run_once):
    def sweep():
        rows = {}
        desc_latency = []
        for app in PARALLEL_SUITE[:8]:
            trace = memory_trace(app, _REFS, seed=2)
            addrs = trace.addresses % (1 << _ADDR_BITS)
            bits = addresses_to_bits(addrs, _ADDR_BITS)
            binary = BinaryEncoder(_ADDR_BITS, _ADDR_BITS).stream_cost(bits)
            gray = GrayCodeEncoder(_ADDR_BITS).stream_cost(bits)
            t0 = T0Encoder(_ADDR_BITS, stride=64).stream_cost(bits)
            # DESC on the address: 8 four-bit chunks on 8 wires.
            layout = ChunkLayout(block_bits=_ADDR_BITS, chunk_bits=4, num_wires=8)
            chunks = (bits.astype(np.int64).reshape(-1, 8, 4)
                      @ (1 << np.arange(4, dtype=np.int64)))
            desc = DescCostModel(layout, "zero").stream_cost(chunks)
            rows[app.name] = {
                "binary": binary.total().total_flips / _REFS,
                "gray": gray.total().total_flips / _REFS,
                "t0": t0.total().total_flips / _REFS,
                "desc-zs": desc.total().total_flips / _REFS,
            }
            desc_latency.append(float(desc.delivery_latency.mean()))
        # Address share of total H-tree flips under the paper's system.
        data_flips = np.mean([
            transfer_stats(baseline_scheme("binary"), app, 2000, 1).total_flips
            for app in PARALLEL_SUITE[:8]
        ])
        return rows, float(np.mean(desc_latency)), float(data_flips)

    rows, desc_latency, data_flips = run_once(sweep)
    print("\n=== Ablation: encodings on the L2 address bus (flips/access) ===")
    print(f"  {'app':16s} {'binary':>8s} {'gray':>8s} {'t0':>8s} {'desc-zs':>9s}")
    for app, row in rows.items():
        print(f"  {app:16s} {row['binary']:8.2f} {row['gray']:8.2f} "
              f"{row['t0']:8.2f} {row['desc-zs']:9.2f}")
    binary_mean = np.mean([r["binary"] for r in rows.values()])
    desc_mean = np.mean([r["desc-zs"] for r in rows.values()])
    share = binary_mean / (binary_mean + data_flips)
    print(f"  binary address activity: {binary_mean:.1f} flips/access = "
          f"{binary_mean / _ADDR_BITS:.2f}/wire — 'relatively low' (§3.2.1)")
    print(f"  address share of H-tree flips: {share:.1%}")
    print(f"  DESC would add ~{desc_latency:.1f} cycles of address latency "
          f"to EVERY access (hits and misses)")

    # The paper's rationale, quantified:
    # (1) binary address activity is well under half a flip per wire;
    assert binary_mean / _ADDR_BITS < 0.5
    # (2) the address bus is a small slice of the H-tree traffic;
    assert share < 0.15
    # (3) DESC on addresses actually COSTS flips — address chunks are
    # mostly small non-zero values, and each pays its one mandatory
    # transition...
    assert desc_mean > 0.9 * binary_mean
    # ...while its added latency would sit on every access's critical path.
    assert desc_latency > 3.0
