"""Regenerates Figure 23: execution time of DESC on S-NUCA-1."""

from __future__ import annotations

from conftest import BENCH_SYSTEM, print_series

from repro.experiments import fig23_snuca_time


def test_fig23_snuca_time(run_once):
    result = run_once(fig23_snuca_time.run, BENCH_SYSTEM)
    print_series("Figure 23: DESC + S-NUCA-1 time (norm. to S-NUCA-1)",
                 result["execution_time_normalized"])
    geomean = result["execution_time_normalized"]["Geomean"]
    print(f"  paper geomean: {result['paper_geomean']}")
    assert 1.0 <= geomean < 1.04
