"""Regenerates Figure 25: sensitivity to the number of banks."""

from __future__ import annotations

from conftest import BENCH_SYSTEM

from repro.experiments import fig25_banks


def test_fig25_banks(run_once):
    result = run_once(fig25_banks.run, BENCH_SYSTEM)
    energy = result["l2_energy_normalized"]
    time = result["execution_time_normalized"]
    print("\n=== Figure 25: bank-count sensitivity (DESC+ZS vs 8-bank binary) ===")
    for banks in energy:
        print(f"  banks={banks:2d}  energy={energy[banks]:.3f}  time={time[banks]:.3f}")
    # The 1→2 step removes most conflicts; beyond ~8 banks periphery
    # and DESC circuitry push energy back up (paper: best at 8).
    assert time[1] > 1.15 * time[2]
    assert time[2] >= time[8] * 0.98
    assert energy[64] > energy[8]
    edp = {b: energy[b] * time[b] for b in energy}
    assert min(edp, key=edp.get) in (4, 8, 16)
