"""Regenerates Figure 17: DESC transmitter/receiver synthesis results."""

from __future__ import annotations

from repro.experiments import fig17_synthesis


def test_fig17_synthesis(run_once):
    result = run_once(fig17_synthesis.run)
    print("\n=== Figure 17: synthesis results (22nm, 128 chunks) ===")
    for side in ("transmitter", "receiver"):
        row = result[side]
        print(f"  {side:12s} area={row['area_um2']:7.0f} um2  "
              f"peak={row['peak_power_mw']:5.1f} mW  delay={row['delay_ns']:.3f} ns")
    print(f"  pair: {result['pair_area_um2']:.0f} um2 (paper 2120), "
          f"{result['pair_peak_power_mw']:.1f} mW (paper 46), "
          f"round trip {result['round_trip_delay_ps']:.0f} ps (paper 625)")
    print(f"  L2 area overhead: {result['l2_area_overhead']*100:.2f}% (paper <1%)")
    paper = result["paper"]
    assert abs(result["pair_area_um2"] / paper["pair_area_um2"] - 1) < 0.12
    assert abs(result["pair_peak_power_mw"] / paper["pair_peak_power_mw"] - 1) < 0.12
    assert abs(result["round_trip_delay_ps"] / paper["round_trip_delay_ps"] - 1) < 0.12
