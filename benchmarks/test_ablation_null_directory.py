"""Ablation: a null-block directory vs (and with) zero-skipped DESC.

Section 2 positions DESC against storage-level null-block optimizations
(Dynamic Zero Compression, Zero-Content Augmented caches): DESC
"has mechanisms that exploit null and redundant blocks, and compares
favorably".  This ablation adds a controller-side null-block directory
(`repro.cache.null_directory`) that serves all-zero blocks with no
array access and no data transfer, and measures how much of DESC's
saving it captures alone, and what the two achieve together.
"""

from __future__ import annotations

from conftest import BENCH_SYSTEM

from repro.experiments.common import geomean, run_suite
from repro.sim.config import baseline_scheme, desc_scheme


def test_ablation_null_block_directory(run_once):
    def sweep():
        rows = {}
        with_dir = BENCH_SYSTEM.with_(null_directory=True)
        base = run_suite(baseline_scheme("binary"), BENCH_SYSTEM)
        base_energy = geomean(r.l2_energy_j for r in base)
        for label, scheme, system in (
            ("binary + null-dir", baseline_scheme("binary"), with_dir),
            ("desc-zs", desc_scheme("zero"), BENCH_SYSTEM),
            ("desc-zs + null-dir", desc_scheme("zero"), with_dir),
        ):
            results = run_suite(scheme, system)
            rows[label] = geomean(r.l2_energy_j for r in results) / base_energy
        return rows

    rows = run_once(sweep)
    print("\n=== Ablation: null-block directory (L2 energy vs binary) ===")
    for label, ratio in rows.items():
        print(f"  {label:22s} {ratio:.3f}")
    print("  A null directory alone barely moves H-tree energy: null")
    print("  blocks are already cheap on a bus that holds its state, and")
    print("  cheap under value skipping — DESC 'compares favorably' (§2).")

    # Alone, the directory captures only a small slice of DESC's win.
    directory_saving = 1.0 - rows["binary + null-dir"]
    desc_saving = 1.0 - rows["desc-zs"]
    assert directory_saving < 0.35 * desc_saving
    # The techniques compose: together at least as good as DESC alone.
    assert rows["desc-zs + null-dir"] <= rows["desc-zs"] + 1e-9
