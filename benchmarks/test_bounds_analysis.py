"""Bounds analysis: every scheme on its best- and worst-case inputs.

DESC's defining property (Section 3): the number of state transitions
is *independent of the data patterns*.  This benchmark runs all schemes
over synthetic corner-case streams and shows binary encoding swinging
by more than an order of magnitude while basic DESC stays exactly
constant — the guarantee that makes DESC's energy predictable.
"""

from __future__ import annotations

import numpy as np

from repro.core.analysis import DescCostModel
from repro.core.chunking import ChunkLayout
from repro.encoding import make_encoder
from repro.workloads.microbench import MICROBENCH_NAMES, microbench_stream

_N = 400


def _bits(chunks: np.ndarray) -> np.ndarray:
    shifts = np.arange(4, dtype=np.int64)
    bits = ((chunks[:, :, None] >> shifts) & 1).astype(np.uint8)
    return bits.reshape(chunks.shape[0], -1)


def test_bounds_analysis(run_once):
    schemes = ("binary", "zero-compression", "bus-invert")

    def sweep():
        table: dict[str, dict[str, float]] = {}
        for name in MICROBENCH_NAMES:
            chunks = microbench_stream(name, _N, seed=3)
            bits = _bits(chunks)
            row = {}
            for scheme in schemes:
                cost = make_encoder(scheme).stream_cost(bits).total()
                row[scheme] = cost.total_flips / _N
            for policy, label in (("none", "desc"), ("zero", "desc-zs"),
                                  ("last-value", "desc-lv")):
                model = DescCostModel(ChunkLayout(), policy)
                row[label] = model.stream_cost(chunks).total().total_flips / _N
            table[name] = row
        return table

    table = run_once(sweep)
    print("\n=== Bounds analysis: flips per 512-bit block ===")
    header = list(next(iter(table.values())))
    print(f"  {'stream':14s}" + "".join(f"{h:>14s}" for h in header))
    for name, row in table.items():
        print(f"  {name:14s}" + "".join(f"{row[h]:14.1f}" for h in header))

    binary = {name: row["binary"] for name, row in table.items()}
    desc = {name: row["desc"] for name, row in table.items()}
    desc_zs = {name: row["desc-zs"] for name, row in table.items()}

    # Binary's flips swing by over an order of magnitude across inputs.
    assert max(binary.values()) > 10 * (min(v for v in binary.values() if v) or 1)
    # Basic DESC's *data* transitions are constant: totals vary only by
    # the sync strobe's window dependence (a few flips).
    spread = max(desc.values()) - min(desc.values())
    assert spread < 15, "basic DESC should be nearly data-independent"
    # Binary's worst case (alternating) is DESC's clearest win.
    assert table["alternating"]["binary"] > 3 * table["alternating"]["desc"]
    # Binary's best case (zeros) beats even zero-skipped DESC.
    assert table["zeros"]["binary"] <= desc_zs["zeros"]
    # Everyone's cheap on zeros except basic DESC (fires every chunk).
    assert table["zeros"]["desc"] > 100
    # Last-value skipping owns the repeated stream...
    assert table["repeated"]["desc-lv"] < 10
    # ...where zero skipping cannot help at all.
    assert table["repeated"]["desc-zs"] > 100
