"""Regenerates Figure 12: distribution of transferred 4-bit chunk values."""

from __future__ import annotations

from conftest import print_series

from repro.experiments import fig12_chunk_values


def test_fig12_chunk_values(run_once):
    result = run_once(fig12_chunk_values.run, 4000)
    hist = result["value_histogram"]
    print("\n=== Figure 12: chunk-value distribution ===")
    for value, freq in enumerate(hist):
        bar = "#" * int(freq * 200)
        print(f"  {value:2d}: {freq:.4f} {bar}")
    print(f"  zero fraction: {result['zero_fraction']:.3f} "
          f"(paper {result['paper_zero_fraction']})")
    assert abs(result["zero_fraction"] - 0.31) < 0.04
