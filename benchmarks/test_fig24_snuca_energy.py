"""Regenerates Figure 24: L2 energy of DESC on S-NUCA-1."""

from __future__ import annotations

from conftest import BENCH_SYSTEM, print_series

from repro.experiments import fig24_snuca_energy


def test_fig24_snuca_energy(run_once):
    result = run_once(fig24_snuca_energy.run, BENCH_SYSTEM)
    print_series("Figure 24: DESC + S-NUCA-1 energy (norm. to S-NUCA-1)",
                 result["l2_energy_normalized"])
    print(f"  power reduction {1/result['l2_power_normalized']:.2f}x "
          f"(paper {result['paper']['power_reduction']}x), "
          f"EDP reduction {1/result['l2_edp_normalized']:.2f}x "
          f"(paper {result['paper']['edp_reduction']}x)")
    geomean = result["l2_energy_normalized"]["Geomean"]
    assert geomean < 1 / 1.4  # paper: 1 / 1.62
    assert result["l2_edp_normalized"] < 1 / 1.3
