#!/usr/bin/env python3
"""Design-space explorer: where does DESC move the Pareto frontier?

Sweeps bank count, bus width, and DESC chunk size at fixed 8 MB
capacity (the Figure 22/25/26 axes), simulates the full suite, and
prints the Pareto-optimal (L2 energy, execution time) designs for
conventional binary and zero-skipped DESC.

Run:  python examples/design_space_explorer.py
"""

from __future__ import annotations

from repro.experiments.common import geomean, run_suite
from repro.sim import SystemConfig, baseline_scheme, desc_scheme


def pareto(points: dict[str, tuple[float, float]]) -> list[str]:
    """Labels of non-dominated (energy, time) points."""
    frontier = []
    for label, (energy, time) in points.items():
        dominated = any(
            other_e <= energy and other_t <= time and (other_e, other_t) != (energy, time)
            for other_e, other_t in points.values()
        )
        if not dominated:
            frontier.append(label)
    return sorted(frontier, key=lambda l: points[l][0])


def main() -> None:
    system = SystemConfig(sample_blocks=2500)
    baseline = run_suite(baseline_scheme("binary"), system)
    base_energy = geomean(r.l2_energy_j for r in baseline)
    base_time = geomean(r.cycles for r in baseline)

    def measure(scheme, banks):
        results = run_suite(scheme, system.with_(num_banks=banks))
        return (
            geomean(r.l2_energy_j for r in results) / base_energy,
            geomean(r.cycles for r in results) / base_time,
        )

    binary_points: dict[str, tuple[float, float]] = {}
    desc_points: dict[str, tuple[float, float]] = {}
    for banks in (2, 4, 8, 16):
        for width in (32, 64, 128):
            binary_points[f"binary b{banks} w{width}"] = measure(
                baseline_scheme("binary", data_wires=width), banks
            )
        for width, chunk in ((64, 4), (128, 4), (128, 2), (64, 8)):
            desc_points[f"DESC b{banks} w{width} c{chunk}"] = measure(
                desc_scheme("zero", data_wires=width, chunk_bits=chunk), banks
            )

    print("All designs (energy, time normalized to 8-bank 64-bit binary):\n")
    for family, points in (("binary", binary_points), ("DESC", desc_points)):
        frontier = pareto(points)
        print(f"{family} Pareto frontier:")
        for label in frontier:
            e, t = points[label]
            print(f"  {label:24s} energy={e:.3f} time={t:.3f}")
        print()

    all_points = {**binary_points, **desc_points}
    combined = pareto(all_points)
    desc_on_frontier = [l for l in combined if l.startswith("DESC")]
    print(f"Combined frontier: {len(desc_on_frontier)}/{len(combined)} points "
          f"are DESC designs — DESC expands the cache design space toward "
          f"lower energy (paper Figure 22).")


if __name__ == "__main__":
    main()
