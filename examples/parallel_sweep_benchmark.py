"""Benchmark the batch simulation API on the Figure 25 bank sweep.

Runs the same suite-level sweep (7 bank counts x 16 parallel apps =
112 jobs) three ways and verifies every ``RunResult`` is bit-for-bit
identical:

1. serial         -- ``simulate_many(jobs, max_workers=1)``
2. parallel       -- ``simulate_many(jobs, max_workers=N)`` (cold store)
3. warm store     -- the same call again against the merged parent store

Usage::

    PYTHONPATH=src python examples/parallel_sweep_benchmark.py [workers] [blocks]

The numbers feed docs/parallel_sweep.md.  On a single-core host the
cold parallel pass pays process-pool overhead and cannot beat serial;
the point of running it anyway is the equivalence check plus the
warm-store timing, which is where sweeps spend their time in practice.
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import asdict

from repro.experiments.common import PARALLEL_SUITE
from repro.sim import SimJob, SystemConfig, desc_scheme, simulate_many
from repro.sim.store import ResultStore


def build_jobs(sample_blocks: int) -> list[SimJob]:
    """One job per (bank count, app) of the Figure 25 sweep."""
    from repro.experiments.fig25_banks import BANK_COUNTS

    base = SystemConfig(sample_blocks=sample_blocks)
    scheme = desc_scheme("zero")
    return [
        SimJob.of(app.name, scheme, base.with_(num_banks=banks))
        for banks in BANK_COUNTS
        for app in PARALLEL_SUITE
    ]


def timed(jobs: list[SimJob], max_workers: int, store: ResultStore):
    """Run the batch and return (seconds, results)."""
    start = time.perf_counter()
    results = simulate_many(jobs, max_workers=max_workers, store=store)
    return time.perf_counter() - start, results


def main(argv: list[str]) -> int:
    workers = int(argv[1]) if len(argv) > 1 else 4
    blocks = int(argv[2]) if len(argv) > 2 else 3000
    jobs = build_jobs(blocks)
    print(f"{len(jobs)} jobs (Figure 25 sweep), sample_blocks={blocks}, "
          f"host CPUs={os.cpu_count()}")

    serial_s, serial = timed(jobs, 1, ResultStore())
    print(f"serial   (max_workers=1):        {serial_s:7.2f} s")

    store = ResultStore()
    cold_s, parallel = timed(jobs, workers, store)
    print(f"parallel (max_workers={workers}, cold):   {cold_s:7.2f} s")

    warm_s, warm = timed(jobs, workers, store)
    print(f"parallel (max_workers={workers}, warm):   {warm_s:7.2f} s  "
          f"({store.hits} store hits)")

    for label, other in (("parallel", parallel), ("warm", warm)):
        mismatches = sum(
            asdict(a) != asdict(b) for a, b in zip(serial, other, strict=True)
        )
        print(f"{label} vs serial: {mismatches}/{len(jobs)} mismatching results")
        if mismatches:
            return 1
    print("all results bit-for-bit identical")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
