#!/usr/bin/env python3
"""The simulation service end to end: coalescing, sweeps, metrics.

Boots a real ``repro serve`` instance on an ephemeral localhost port
(in a background thread — no separate process needed), then drives it
with the in-repo client:

1. a burst of concurrent *identical* requests, to show coalescing
   collapsing them onto one engine computation;
2. a repeat request, served straight from the result store;
3. a parameter sweep expanded through the same pipeline;
4. the ``/metrics`` snapshot that makes all of the above observable.

Finally it verifies the service's core promise: the served result is
byte-identical to a direct ``StagedEngine`` run.

Run:  python examples/service_client_demo.py
"""

from __future__ import annotations

import threading

from repro.service import codec
from repro.service.check import ServerHarness
from repro.sim.config import SchemeConfig, SystemConfig
from repro.sim.engine import StagedEngine
from repro.sim.store import ResultStore

SYSTEM = {"sample_blocks": 400}


def main() -> None:
    with ServerHarness() as harness:
        print(f"service listening on http://{harness.host}:{harness.port}\n")

        # --- 1. concurrent duplicates coalesce ------------------------
        num_clients = 8
        barrier = threading.Barrier(num_clients)
        replies: list[dict] = []

        def one_client() -> None:
            with harness.client() as client:
                barrier.wait(timeout=30)
                replies.append(client.simulate("Ocean", system=SYSTEM))

        threads = [
            threading.Thread(target=one_client) for _ in range(num_clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(r == replies[0] for r in replies)
        print(f"{num_clients} concurrent identical requests -> "
              f"{num_clients} identical answers")

        with harness.client() as client:
            counters = client.metrics()["counters"]
            print(f"  coalesced:  {counters.get('coalesced_total', 0)}")
            print(f"  store hits: {counters.get('store_hits_total', 0)}")
            print(f"  engine jobs:{counters.get('engine_jobs_total', 0):2d}\n")

            # --- 2. a repeat is a store hit ---------------------------
            client.simulate("Ocean", system=SYSTEM)
            hits = client.metrics()["counters"]["store_hits_total"]
            print(f"repeat request served from the store (hits now {hits})\n")

            # --- 3. a sweep through the same pipeline -----------------
            grid = client.sweep(
                {"num_banks": [2, 8, 32]},
                scheme={"name": "desc+zero-skip"},
                system=SYSTEM,
                apps=["Ocean", "CG"],
            )
            print(f"sweep over num_banks, {grid['scheme']} on "
                  f"{', '.join(grid['apps'])}:")
            for point in grid["points"]:
                print(f"  banks={point['params']['num_banks']:>2}  "
                      f"cycles={point['cycles']:.3e}  "
                      f"edp={point['edp']:.3e}")
            print()

            # --- 4. the promise: serving never perturbs a number ------
            served = client.simulate("CG", system=SYSTEM)

        direct = StagedEngine(ResultStore()).run(
            "CG", SchemeConfig(), SystemConfig(**SYSTEM)
        )
        direct_bytes = codec.encode_json(codec.result_to_payload(direct))
        assert codec.encode_json(served) == direct_bytes
        print("served result is byte-identical to a direct engine run ✓")


if __name__ == "__main__":
    main()
