#!/usr/bin/env python3
"""Bring your own workload: custom profiles, stress streams, adaptation.

Shows the three ways to feed the library data beyond the Table 2 suite:

1. a **custom application profile** (your own value statistics and
   access intensities) through the full system model;
2. the **stress microbenchmarks** probing each scheme's corner cases;
3. the **adaptive skipping** extension on a workload engineered to have
   a dominant non-zero value — the one case where the paper's dismissed
   technique actually shines.

Run:  python examples/custom_workload_study.py
"""

from __future__ import annotations

import numpy as np

from repro.core import AdaptiveDescCostModel, ChunkLayout, DescCostModel
from repro.sim import SystemConfig, baseline_scheme, desc_scheme, simulate
from repro.workloads import AppProfile
from repro.workloads.microbench import MICROBENCH_NAMES, microbench_stream


def custom_profile_demo() -> None:
    print("=" * 64)
    print("1. A custom application profile through the system model")
    print("=" * 64)
    app = AppProfile(
        name="kv-store", suite="custom", input_set="YCSB-like",
        p_null_block=0.25,        # many empty slots
        p_zero_word=0.35, p_zero_chunk=0.10,
        p_repeat_chunk=0.45,      # hot keys rewritten with same values
        p_word_repeat=0.40,
        instructions=2e8, l2_apki=30.0, l2_miss_rate=0.45,
        write_fraction=0.5, cpi_base=1.1, threads=32,
    )
    system = SystemConfig(sample_blocks=3000)
    binary = simulate(app, baseline_scheme("binary"), system)
    desc = simulate(app, desc_scheme("zero"), system)
    print(f"  L2 energy: DESC/binary = "
          f"{desc.l2_energy_j / binary.l2_energy_j:.3f} "
          f"({binary.l2_energy_j / desc.l2_energy_j:.2f}x reduction)")
    print(f"  exec time: {desc.cycles / binary.cycles:.3f}\n")


def stress_demo() -> None:
    print("=" * 64)
    print("2. Stress streams: flips/block at the corners")
    print("=" * 64)
    layout = ChunkLayout()
    print(f"  {'stream':14s} {'desc':>8s} {'desc-zs':>9s}")
    for name in MICROBENCH_NAMES:
        chunks = microbench_stream(name, 300, seed=1)
        basic = DescCostModel(layout, "none").stream_cost(chunks).total()
        zs = DescCostModel(layout, "zero").stream_cost(chunks).total()
        print(f"  {name:14s} {basic.total_flips/300:8.1f} {zs.total_flips/300:9.1f}")
    print("  Basic DESC is flat across all inputs: data independence.\n")


def adaptive_demo() -> None:
    print("=" * 64)
    print("3. Adaptive skipping on a dominant-value workload")
    print("=" * 64)
    rng = np.random.default_rng(4)
    # A sensor-log-like stream: 70% of chunks are the calibration
    # value 0xB, the rest noise.
    blocks = rng.integers(0, 16, size=(2000, 128))
    blocks[rng.random(blocks.shape) < 0.7] = 0xB
    layout = ChunkLayout()
    zero = DescCostModel(layout, "zero").stream_cost(blocks).total()
    adaptive = AdaptiveDescCostModel(layout, window=32).stream_cost(blocks).total()
    print(f"  zero skipping:     {zero.total_flips/2000:7.1f} flips/block")
    print(f"  adaptive skipping: {adaptive.total_flips/2000:7.1f} flips/block "
          f"({zero.total_flips / adaptive.total_flips:.1f}x better)")
    print("  On the paper's workloads (uniform non-zero tail) adaptation")
    print("  gains nothing — Section 3.3's dismissal — but a dominant")
    print("  non-zero value flips the verdict.")


def main() -> None:
    custom_profile_demo()
    stress_demo()
    adaptive_demo()


if __name__ == "__main__":
    main()
