#!/usr/bin/env python3
"""ECC fault-injection campaign on the DESC interleaved layout.

A DESC wire error corrupts a whole chunk (up to four bits at once).
This campaign encodes random blocks with the Figure 9 layout — four
128-bit segments under (137, 128) SECDED, parity interleaved so every
chunk carries at most one bit per segment — injects 1..4 chunk errors
per transfer, and tabulates the outcomes: corrected, detected, or
(never, for <=2 errors) silently corrupt.

Run:  python examples/ecc_fault_injection.py
"""

from __future__ import annotations

import numpy as np

from repro.ecc import DecodeStatus, DescEccLayout, inject_chunk_errors


def campaign(layout: DescEccLayout, errors: int, trials: int,
             rng: np.random.Generator) -> dict[str, int]:
    outcomes = {"corrected": 0, "detected": 0, "silent": 0}
    for _ in range(trials):
        data = rng.integers(0, 2, size=layout.block_bits).astype(np.uint8)
        chunks = layout.encode_block(data)
        corrupted, _ = inject_chunk_errors(chunks, errors, rng)
        result = layout.decode_block(corrupted)
        if not result.ok:
            outcomes["detected"] += 1
        elif np.array_equal(result.data_bits, data):
            outcomes["corrected"] += 1
        else:
            outcomes["silent"] += 1
    return outcomes


def main() -> None:
    rng = np.random.default_rng(2013)
    trials = 400
    for segment_bits, label in ((128, "(137,128)"), (64, "(72,64)")):
        layout = DescEccLayout(512, segment_bits, 4)
        print(f"\n{label} SECDED, {layout.num_segments} segments, "
              f"{layout.num_parity_chunks} parity chunks "
              f"({layout.num_parity_chunks} extra wires)")
        print(f"  {'chunk errors':>12s} {'corrected':>10s} {'detected':>9s} "
              f"{'SILENT':>7s}")
        for errors in (1, 2, 3, 4):
            out = campaign(layout, errors, trials, rng)
            print(f"  {errors:12d} {out['corrected']:10d} "
                  f"{out['detected']:9d} {out['silent']:7d}")
        print("  Guarantee: one corrupted chunk is always corrected, two")
        print("  are never silent (each chunk carries <=1 bit/segment).")


if __name__ == "__main__":
    main()
