#!/usr/bin/env python3
"""Cache energy study: all eight transfer schemes on the full system.

Runs the system simulator (workload value streams → transfer costs →
CACTI-class cache energy → McPAT-class processor accounting) for every
scheme of Figure 16 across a selection of the paper's parallel
applications, and prints L2 energy, execution time, and processor
energy normalized to conventional binary encoding.

Run:  python examples/cache_energy_study.py [app ...]
"""

from __future__ import annotations

import sys

from repro.experiments.common import DEFAULT_SCHEMES, geomean
from repro.sim import SystemConfig, simulate
from repro.workloads import parallel_names, profile


def main() -> None:
    apps = sys.argv[1:] or ["Art", "CG", "Ocean", "Radix", "FFT"]
    unknown = [a for a in apps if a not in parallel_names()]
    if unknown:
        raise SystemExit(f"unknown apps {unknown}; choose from {parallel_names()}")

    system = SystemConfig(sample_blocks=4000)
    profiles = [profile(a) for a in apps]
    print(f"System: 8MB L2, 8 banks, LSTP devices, 3.2 GHz "
          f"(Table 1); apps: {', '.join(apps)}\n")
    print(f"{'scheme':34s} {'L2 energy':>10s} {'exec time':>10s} {'proc energy':>12s}")

    baseline = [simulate(p, DEFAULT_SCHEMES[0][1], system) for p in profiles]
    for label, scheme in DEFAULT_SCHEMES:
        results = [simulate(p, scheme, system) for p in profiles]
        energy = geomean(
            r.l2_energy_j / b.l2_energy_j for r, b in zip(results, baseline, strict=True)
        )
        time = geomean(r.cycles / b.cycles for r, b in zip(results, baseline, strict=True))
        proc = geomean(
            r.processor_energy_j / b.processor_energy_j
            for r, b in zip(results, baseline, strict=True)
        )
        print(f"{label:34s} {energy:10.3f} {time:10.3f} {proc:12.3f}")

    best = [simulate(p, DEFAULT_SCHEMES[6][1], system) for p in profiles]
    reduction = geomean(
        b.l2_energy_j / r.l2_energy_j for r, b in zip(best, baseline, strict=True)
    )
    print(f"\nZero-skipped DESC cuts L2 energy {reduction:.2f}x on this app "
          f"selection (paper, full suite: 1.81x).")


if __name__ == "__main__":
    main()
