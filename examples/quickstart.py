#!/usr/bin/env python3
"""Quickstart: transfer cache blocks with DESC and compare to binary.

Builds a cycle-accurate DESC link (the paper's default: 512-bit blocks,
4-bit chunks, 128 data wires, zero skipping), pushes a stream of blocks
through it, verifies every block arrives intact, and compares the wire
activity against a conventional 64-bit binary bus.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import ChunkLayout, DescLink
from repro.encoding import BinaryEncoder
from repro.workloads import block_stream, profile


def main() -> None:
    app = profile("Ocean")
    blocks = block_stream(app, num_blocks=40, seed=42)
    print(f"Transferring {len(blocks)} 512-bit L2 blocks from '{app.name}' "
          f"({app.suite})\n")

    # --- DESC: the paper's zero-skipped configuration -------------------
    layout = ChunkLayout(block_bits=512, chunk_bits=4, num_wires=128)
    link = DescLink(layout, skip_policy="zero", wire_delay=2)
    for block in blocks:
        link.send_block(block)
        received = link.receiver.received_blocks[-1]
        assert np.array_equal(received, block), "round-trip failure!"
    desc_cost = link.cost_so_far()
    print("Zero-skipped DESC (128 wires + reset/skip + sync strobes):")
    print(f"  data flips      {desc_cost.data_flips:6d}")
    print(f"  strobe flips    {desc_cost.overhead_flips + desc_cost.sync_flips:6d}")
    print(f"  total flips     {desc_cost.total_flips:6d}")
    print(f"  bus cycles      {desc_cost.cycles:6d}")

    # --- Conventional binary bus for comparison -------------------------
    shifts = np.arange(4, dtype=np.int64)
    bits = ((blocks[:, :, None] >> shifts) & 1).astype(np.uint8)
    bits = bits.reshape(len(blocks), 512)
    binary = BinaryEncoder(block_bits=512, data_wires=64)
    binary_cost = binary.stream_cost(bits).total()
    print("\nConventional binary (64-bit bus):")
    print(f"  total flips     {binary_cost.total_flips:6d}")
    print(f"  bus cycles      {binary_cost.cycles:6d}")

    ratio = binary_cost.total_flips / desc_cost.total_flips
    print(f"\nDESC moved the same data with {ratio:.2f}x fewer wire "
          f"transitions — the activity-factor reduction that cuts the "
          f"H-tree energy (paper Figure 16).")


if __name__ == "__main__":
    main()
