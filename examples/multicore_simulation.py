#!/usr/bin/env python3
"""Drive the event-driven multicore substrate directly.

Runs a synthetic memory trace through the detailed system — private
MESI-coherent L1s, the banked L2 with real bank conflicts, and queued
DRAM channels — once with a binary-style 8-cycle transfer window and
once with a DESC-like 17-cycle window, and reports how well the
multithreaded cores tolerate the longer transfers (the paper's central
latency-tolerance argument, Sections 5.3/5.8).

Run:  python examples/multicore_simulation.py [app] [references]
"""

from __future__ import annotations

import sys

from repro.cpu.multicore import MulticoreConfig, MulticoreSimulator
from repro.workloads import memory_trace, profile


def run(app_name: str, references: int, transfer_cycles: int):
    app = profile(app_name)
    trace = memory_trace(app, references, seed=7)
    sim = MulticoreSimulator(MulticoreConfig(l2_transfer_cycles=transfer_cycles))
    stats = sim.run(trace)
    sim.directory.check_invariants()
    return stats


def main() -> None:
    app_name = sys.argv[1] if len(sys.argv) > 1 else "Ocean"
    references = int(sys.argv[2]) if len(sys.argv) > 2 else 40_000

    print(f"Event-driven simulation: {app_name}, {references} references, "
          f"8 cores x 4 contexts, 8-bank 8MB L2, 2 DRAM channels\n")
    binary = run(app_name, references, transfer_cycles=8)
    desc = run(app_name, references, transfer_cycles=17)

    for label, stats in (("binary (8-cycle window)", binary),
                         ("DESC-like (17-cycle window)", desc)):
        print(f"{label}:")
        print(f"  cycles            {stats.cycles:10d}")
        print(f"  L1 miss rate      {stats.l1_miss_rate:10.3f}")
        print(f"  L2 miss rate      {stats.l2_miss_rate:10.3f}")
        print(f"  bank conflicts    {stats.bank_conflicts:10d}")
        print(f"  DRAM row hits     {stats.dram_row_hit_rate:10.3f}")
        print(f"  invalidations     {stats.invalidations:10d}")
        print(f"  coh. writebacks   {stats.coherence_writebacks:10d}\n")

    slowdown = desc.cycles / binary.cycles
    print(f"Doubling the transfer window costs only {100*(slowdown-1):.1f}% "
          f"execution time — fine-grained multithreading hides most of "
          f"DESC's value-dependent latency (paper Figure 20).")


if __name__ == "__main__":
    main()
