#!/usr/bin/env python3
"""Walkthrough of DESC signaling — Figures 3, 5, and 10, cycle by cycle.

Prints the actual wire waveforms of the cycle-accurate transmitter for
the paper's three worked examples, so you can see the protocol:
reset/skip toggles bounding the time window, data strobes landing on
the cycle equal to the chunk value, and silent wires taking the skip
value when the window closes.

Run:  python examples/signaling_walkthrough.py
"""

from __future__ import annotations

import numpy as np

from repro.core import ChunkLayout, DescTransmitter, make_policy


def trace(layout: ChunkLayout, values: list[int], policy_name: str,
          cycles: int) -> None:
    """Print per-cycle wire levels for one block transfer."""
    policy = make_policy(policy_name, layout.num_wires)
    tx = DescTransmitter(layout, policy)
    tx.load_block(np.array(values, dtype=np.int64))
    rows = []
    for _ in range(cycles):
        rows.append(tx.step().copy())
        if not tx.busy:
            break
    names = ["reset/skip"] + [f"data[{w}]" for w in range(layout.num_wires)]
    print(f"  cycle:      " + " ".join(f"{c:2d}" for c in range(len(rows))))
    for wire, name in enumerate(names):
        levels = " ".join(f"{int(r[wire]):2d}" for r in rows)
        print(f"  {name:11s} {levels}")
    print(f"  flips: {tx.data_flips} data + {tx.overhead_flips} reset/skip\n")


def main() -> None:
    print("=" * 64)
    print("Figure 3(c): one byte 01010011 over two data wires, basic DESC")
    print("=" * 64)
    # 01010011 (MSB first) = 0x53: low nibble 3, high nibble 5.
    trace(ChunkLayout(block_bits=8, chunk_bits=4, num_wires=2),
          [3, 5], "none", cycles=10)

    print("=" * 64)
    print("Figure 5: chunks 2 then 1 on a single wire (two rounds)")
    print("=" * 64)
    trace(ChunkLayout(block_bits=8, chunk_bits=4, num_wires=1),
          [2, 1], "none", cycles=10)
    print("  Note the two time windows: 3 cycles for value 2, then 2")
    print("  cycles for value 1 — exactly the paper's Figure 5.\n")

    print("=" * 64)
    print("Figure 10(a): chunks (0, 0, 5, 0), basic DESC")
    print("=" * 64)
    trace(ChunkLayout(block_bits=16, chunk_bits=4, num_wires=4),
          [0, 0, 5, 0], "none", cycles=10)

    print("=" * 64)
    print("Figure 10(b): the same chunks with zero skipping")
    print("=" * 64)
    trace(ChunkLayout(block_bits=16, chunk_bits=4, num_wires=4),
          [0, 0, 5, 0], "zero", cycles=10)
    print("  Only the 5 fires; the second reset/skip toggle closes the")
    print("  window and the three silent wires take the skip value 0 —")
    print("  three bit-flips instead of five (paper Figure 10).")


if __name__ == "__main__":
    main()
