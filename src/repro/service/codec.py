"""Request canonicalization and result serialization for the service.

The wire format is deliberately thin: a simulation request is the JSON
shape of a :class:`~repro.sim.engine.SimJob` (application name, scheme
fields, system fields), and a response is the JSON shape of the
:class:`~repro.sim.metrics.RunResult` the staged engine produces.
Canonicalization happens *before* anything touches the pipeline — two
requests that mean the same simulation parse to the same frozen
:class:`SimJob` and therefore the same store key, which is what makes
request coalescing and read-through caching correct rather than
heuristic.

:func:`encode_json` pins key order and float formatting, so "the same
result" is byte-comparable: a response served from the coalescing map,
the result store, or a fresh engine run encodes to identical bytes.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Mapping

from repro.sim.config import SchemeConfig, SystemConfig
from repro.sim.engine import SimJob
from repro.sim.metrics import RunResult
from repro.workloads.profiles import profile

__all__ = [
    "BadRequest",
    "encode_json",
    "job_from_payload",
    "result_to_payload",
    "scheme_from_payload",
    "system_from_payload",
]


class BadRequest(ValueError):
    """A request payload that cannot mean any simulation."""


def _config_from_payload(
    payload: Mapping[str, Any], cls: type, what: str
) -> Any:
    """Build a frozen config dataclass from a JSON object, strictly.

    Unknown keys are rejected rather than ignored: a typo like
    ``chunk_bit`` silently falling back to the default would coalesce
    the request with the *wrong* computation.
    """
    if not isinstance(payload, Mapping):
        raise BadRequest(
            f"{what} must be a JSON object, got {type(payload).__name__}"
        )
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise BadRequest(
            f"unknown {what} field(s) {', '.join(unknown)}; "
            f"known: {', '.join(sorted(known))}"
        )
    try:
        return cls(**payload)
    except (TypeError, ValueError) as exc:
        raise BadRequest(f"invalid {what}: {exc}") from exc


def scheme_from_payload(payload: Mapping[str, Any]) -> SchemeConfig:
    """A :class:`SchemeConfig` from its JSON object (strict keys)."""
    return _config_from_payload(payload, SchemeConfig, "scheme")


def system_from_payload(payload: Mapping[str, Any]) -> SystemConfig:
    """A :class:`SystemConfig` from its JSON object (strict keys)."""
    return _config_from_payload(payload, SystemConfig, "system")


def job_from_payload(payload: Mapping[str, Any]) -> SimJob:
    """Canonicalize one simulation request into a frozen :class:`SimJob`.

    Expected shape::

        {"app": "Ocean",
         "scheme": {"name": "desc+zero-skip", "data_wires": 128, ...},
         "system": {"sample_blocks": 1200, ...}}        # optional

    ``scheme`` and ``system`` accept any subset of their config fields;
    omitted fields take the config defaults, exactly as the Python API
    does, so the request canonicalizes to the same job (and store key)
    a direct :class:`~repro.sim.engine.StagedEngine` caller would use.
    """
    if not isinstance(payload, Mapping):
        raise BadRequest(
            f"request must be a JSON object, got {type(payload).__name__}"
        )
    unknown = sorted(set(payload) - {"app", "scheme", "system"})
    if unknown:
        raise BadRequest(
            f"unknown request field(s) {', '.join(unknown)}; "
            "expected app, scheme, system"
        )
    if "app" not in payload:
        raise BadRequest("request is missing the required 'app' field")
    name = payload["app"]
    if not isinstance(name, str):
        raise BadRequest(f"'app' must be a string, got {type(name).__name__}")
    try:
        app = profile(name)
    except ValueError as exc:
        raise BadRequest(str(exc)) from exc
    scheme = scheme_from_payload(payload.get("scheme", {}))
    system = system_from_payload(payload.get("system", {}))
    return SimJob(app=app, scheme=scheme, system=system)


def result_to_payload(result: RunResult) -> dict:
    """The JSON shape of one :class:`RunResult` (every field, no loss)."""
    return {
        "app": result.app,
        "scheme": result.scheme,
        "cycles": result.cycles,
        "hit_latency": result.hit_latency,
        "miss_latency": result.miss_latency,
        "bank_wait": result.bank_wait,
        "transfers": result.transfers,
        "transfer_stats": dataclasses.asdict(result.transfer_stats),
        "l2": dataclasses.asdict(result.l2),
        "processor": dataclasses.asdict(result.processor),
    }


def encode_json(payload: Any) -> bytes:
    """Canonical JSON bytes: sorted keys, no whitespace, repr floats.

    Responses for the same simulation must be byte-identical no matter
    which cache tier served them, so the encoding leaves nothing to
    chance (dict insertion order, spacing).
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=True
    ).encode("utf-8")
