"""Composable pipeline stages: admission, coalescing, batching, execution.

The request pipeline used to be one monolithic ``SimulationService``;
it is now four small stages, each behind the :class:`PipelineStage`
protocol, so a shard (:class:`~repro.service.pipeline.ShardPipeline`)
is just a wired stack of stages with its own metrics scope:

* :class:`Admission` — the bounded intake queue.  A request that cannot
  be enqueued raises :class:`Backpressure` with a retry-after hint
  instead of queueing unbounded work;
* :class:`Coalescer` — the run_key-shared future map.  Identical
  configurations *in flight* share one computation;
* :class:`Batcher` — the drain loop.  Sizes each engine batch from the
  observed queue depth and lingers (briefly, and only when jobs are
  expensive enough for batching to pay) to let concurrent clients pile
  in; owns the per-job latency EMA that both the linger and the
  retry-after hint scale from;
* :class:`Executor` — engine dispatch.  Runs
  :meth:`~repro.sim.engine.StagedEngine.run_many` off the event loop
  and turns engine-infrastructure crashes into
  :class:`~repro.sim.engine.FailedJob` slots, never a hung future.

Every stage implements the same protocol surface — a ``name``, a
``snapshot()`` of its operational state, and an async ``drain()`` for
shutdown — which ``repro lint`` rule R003 verifies stays in lock-step
across implementations (a stage that drifts from the protocol cannot
be wired into a shard).

**Deadlines** propagate through the stack: a :class:`Pending` carries
the latest absolute deadline any of its waiters can still use (the
coalescer extends it as later joiners arrive), admission refuses work
whose budget is already spent, and the batcher cancels queued jobs
that can no longer meet any waiter's deadline instead of burning an
engine slot on them.  Every cancellation lands on the
``deadline_expirations`` counter.

**Chaos**: the :class:`Executor` accepts an optional async
``interceptor`` invoked before each engine dispatch.  An interceptor
that sleeps injects stage latency; one that raises
:data:`CHAOS_FAILURE`-style exceptions produces typed
:class:`~repro.sim.engine.FailedJob` slots; one that raises a
:class:`BatchCrash` escapes the batcher loop entirely and kills the
shard's drain task — the crash the
:class:`~repro.service.supervisor.ShardSupervisor` exists to recover
from.  Production stacks leave it ``None``.

The structured error types (:class:`ServiceError`, :class:`Backpressure`,
:class:`SimulationFailed`, :class:`DeadlineExceeded`,
:class:`ShardUnavailable`) live here with the stages that raise them;
:mod:`repro.service.pipeline` re-exports them unchanged.
"""

from __future__ import annotations

import asyncio
import logging
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Protocol

from repro.service.clock import Clock
from repro.service.metrics import MetricsScope
from repro.sim.engine import FailedJob, SimJob, StagedEngine
from repro.sim.store import StoreKey

__all__ = [
    "Admission",
    "Backpressure",
    "BatchCrash",
    "Batcher",
    "Coalescer",
    "DeadlineExceeded",
    "Executor",
    "Pending",
    "PipelineStage",
    "SHUTDOWN",
    "ServiceError",
    "ShardUnavailable",
    "SimulationFailed",
]

_log = logging.getLogger("repro.service.stages")

#: Exponential-moving-average weight for per-job latency observations.
_EMA_ALPHA = 0.3

#: Fraction of the per-job latency the batcher is willing to linger for
#: more arrivals; cheap jobs get (almost) no linger, expensive jobs get
#: up to the configured cap.
_LINGER_FRACTION = 0.25

#: Queue sentinel: the batcher exits when it takes this item.
SHUTDOWN = object()


class ServiceError(Exception):
    """Base class for structured service-level failures."""


class Backpressure(ServiceError):
    """The pending queue is full; retry after ``retry_after_s``."""

    def __init__(self, retry_after_s: float, queue_depth: int) -> None:
        super().__init__(
            f"service queue is full ({queue_depth} pending); "
            f"retry in {retry_after_s:.2f}s"
        )
        self.retry_after_s = retry_after_s
        self.queue_depth = queue_depth


class SimulationFailed(ServiceError):
    """The engine could not produce a result for this job.

    Attributes:
        reason: ``"error"`` or ``"timeout"`` (see
            :class:`~repro.sim.engine.FailedJob`).
        detail: Traceback text of the final attempt (may be empty).
        attempts: How many times the engine tried.
    """

    def __init__(self, reason: str, detail: str, attempts: int) -> None:
        super().__init__(f"simulation failed ({reason}) after "
                         f"{attempts} attempt(s)")
        self.reason = reason
        self.detail = detail
        self.attempts = attempts


class DeadlineExceeded(ServiceError):
    """The request's deadline passed before a result could be served.

    Raised wherever the remaining budget runs out: at admission (spent
    before enqueueing), in the batcher (cancelled before dispatch), or
    while awaiting a shared computation.  The HTTP layer maps it to a
    structured ``504``.
    """

    def __init__(self, where: str) -> None:
        super().__init__(f"deadline exceeded ({where})")
        self.where = where


class ShardUnavailable(ServiceError):
    """The owning shard's circuit breaker is open (or the shard is
    down for restart); retry after ``retry_after_s``.

    The HTTP layer maps this to ``503`` + ``Retry-After`` — the sick
    shard sheds load while healthy shards keep serving.
    """

    def __init__(self, shard: int, retry_after_s: float, state: str) -> None:
        super().__init__(
            f"shard {shard} is unavailable ({state}); "
            f"retry in {retry_after_s:.2f}s"
        )
        self.shard = shard
        self.retry_after_s = retry_after_s
        self.state = state


class BatchCrash(BaseException):
    """A deliberate, unhandled crash of a shard's drain task.

    Derives from :class:`BaseException` so the executor's
    failure-isolation net (which converts ``Exception`` into typed
    :class:`~repro.sim.engine.FailedJob` slots) does *not* absorb it:
    the crash escapes the batcher loop and kills the task, exactly the
    failure mode the supervisor must detect and recover.  Only the
    chaos harness raises it.
    """


@dataclass
class Pending:
    """One enqueued computation and everyone waiting on it.

    ``deadline`` is the latest absolute (monotonic) deadline among the
    request's waiters, or ``None`` when any waiter is unbounded; the
    batcher cancels the job only when *no* waiter can use the result
    any more.
    """

    key: StoreKey
    job: SimJob
    future: asyncio.Future = field(repr=False)
    deadline: float | None = None

    def extend_deadline(self, deadline: float | None) -> None:
        """Fold one more waiter's deadline in (``None`` = unbounded)."""
        if deadline is None:
            self.deadline = None
        elif self.deadline is not None:
            self.deadline = max(self.deadline, deadline)


class PipelineStage(Protocol):
    """The contract every pipeline stage implements.

    A stage is a small, independently-testable unit of the per-shard
    request path.  Beyond its stage-specific operations, every stage
    exposes the same three-part surface so shards can wire, observe,
    and shut down any stack of stages uniformly — and so ``repro lint``
    rule R003 can hold implementations to the protocol signature:

    * ``name`` — a stable label used in snapshots and metrics;
    * ``snapshot()`` — a JSON-ready view of the stage's operational
      state (queue depth, in-flight count, latency EMA, ...);
    * ``drain()`` — release the stage's resources at shutdown; called
      in pipeline order, must be idempotent, and must never strand a
      waiter on an unresolved future.
    """

    name: str

    def snapshot(self) -> dict:
        """A JSON-ready view of the stage's operational state."""
        ...

    async def drain(self) -> None:
        """Release the stage's resources at shutdown (idempotent)."""
        ...


class Admission:
    """Stage 1: the bounded intake queue with explicit backpressure.

    Args:
        max_queue: Pending (not yet batched) jobs held before new work
            is rejected with :class:`Backpressure`.
        metrics: The shard's metrics scope.
        retry_after: Maps the current queue depth to the retry-after
            hint sent with a rejection (wired to
            :meth:`Batcher.suggest_retry_after`, which scales the hint
            by the observed per-job latency).
    """

    name = "admission"

    def __init__(
        self,
        max_queue: int,
        metrics: MetricsScope,
        retry_after: Callable[[int], float],
        clock: Clock | None = None,
    ) -> None:
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=max_queue)
        self._metrics = metrics
        self._retry_after = retry_after
        self._clock = clock

    @property
    def depth(self) -> int:
        """Jobs currently queued (excluding any shutdown sentinel)."""
        return self._queue.qsize()

    async def offer(self, pending: Pending, wait: bool) -> None:
        """Enqueue one pending computation.

        ``wait=False`` (external requests) raises :class:`Backpressure`
        when the queue is full; ``wait=True`` (internal fan-outs like
        sweeps) awaits queue space instead, so a large expansion
        throttles itself rather than being rejected.  A pending whose
        deadline budget is already spent is refused up front with
        :class:`DeadlineExceeded` — no queue slot is burned on work
        nobody can use.
        """
        if (
            pending.deadline is not None
            and self._clock is not None
            and self._clock.monotonic() >= pending.deadline
        ):
            self._metrics.counter("deadline_expirations").inc()
            raise DeadlineExceeded("at admission")
        if wait:
            if pending.deadline is not None and self._clock is not None:
                remaining = pending.deadline - self._clock.monotonic()
                try:
                    await asyncio.wait_for(
                        self._queue.put(pending), timeout=remaining
                    )
                except asyncio.TimeoutError:
                    self._metrics.counter("deadline_expirations").inc()
                    raise DeadlineExceeded(
                        "waiting for queue space"
                    ) from None
            else:
                # Internal fan-outs (sweeps) self-throttle here by
                # design; drain() loudly fails anything stranded.
                await self._queue.put(pending)  # lint-ok: R006
        else:
            try:
                self._queue.put_nowait(pending)
            except asyncio.QueueFull:
                self._metrics.counter("rejected_total").inc()
                raise Backpressure(
                    self._retry_after(self.depth), self.depth
                ) from None
        self._metrics.gauge("queue_depth").set(self.depth)

    async def take(self) -> object:
        """Await the next queued item (a :class:`Pending` or ``SHUTDOWN``)."""
        # The batcher's idle park: unbounded by design, woken by the
        # shutdown sentinel.
        return await self._queue.get()  # lint-ok: R006

    def take_nowait(self) -> object | None:
        """The next queued item, or ``None`` when the queue is empty."""
        try:
            return self._queue.get_nowait()
        except asyncio.QueueEmpty:
            return None

    async def push_shutdown(self) -> None:
        """Enqueue the shutdown sentinel (the batcher exits on it)."""
        # Shutdown must land even when the queue is momentarily full;
        # the live batcher is draining it.
        await self._queue.put(SHUTDOWN)  # lint-ok: R006

    def snapshot(self) -> dict:
        """Queue depth and bound."""
        return {"queue_depth": self.depth, "max_queue": self._queue.maxsize}

    async def drain(self) -> None:
        """Fail anything still queued — it will never run.

        Called after the batcher has exited: whatever is left behind
        the sentinel (a sweep's blocked ``put`` landing late, say) gets
        a loud :class:`ServiceError` instead of a hung future.
        """
        while True:
            item = self.take_nowait()
            if item is None:
                break
            if item is SHUTDOWN or not isinstance(item, Pending):
                continue
            if not item.future.done():
                item.future.set_exception(
                    ServiceError("service stopped before the job ran")
                )
        self._metrics.gauge("queue_depth").set(0)


class Coalescer:
    """Stage 2: identical in-flight configurations share one future.

    The map is keyed by the canonical
    :func:`~repro.sim.stages.run_key`, so two requests that mean the
    same simulation — however they were spelled on the wire — join the
    same computation.  Entries are registered when a job is enqueued
    and resolved when its batch completes.
    """

    name = "coalescer"

    def __init__(self, metrics: MetricsScope) -> None:
        self._inflight: dict[StoreKey, Pending] = {}
        self._metrics = metrics

    def join(self, key: StoreKey) -> Pending | None:
        """The in-flight computation for ``key``, counting the share."""
        pending = self._inflight.get(key)
        if pending is not None:
            self._metrics.counter("coalesced_total").inc()
        return pending

    def register(self, pending: Pending) -> None:
        """Track a newly enqueued computation for later joiners."""
        self._inflight[pending.key] = pending

    def resolve(self, key: StoreKey) -> None:
        """Drop a completed (or failed) computation from the map."""
        self._inflight.pop(key, None)

    @property
    def inflight(self) -> int:
        """Computations currently tracked."""
        return len(self._inflight)

    def inflight_items(self) -> list[Pending]:
        """The tracked computations themselves.

        The supervisor reads these when a shard crashes: the map is the
        authoritative list of work with live waiters (queued *and*
        mid-batch), exactly what must be re-routed rather than dropped.
        """
        return list(self._inflight.values())

    def snapshot(self) -> dict:
        """The in-flight computation count."""
        return {"inflight": self.inflight}

    async def drain(self) -> None:
        """Forget every tracked computation (their futures are already
        resolved by the batcher or failed by admission's drain)."""
        self._inflight.clear()


class Batcher:
    """Stage 3: adaptive batch assembly and the shard's pacing brain.

    One batcher task drains the admission queue into executor calls,
    sizing each batch from the observed queue depth and lingering
    (briefly, and only when jobs are expensive enough for batching to
    pay) to let concurrent clients pile in.  It owns the per-job
    latency EMA, from which both the linger and admission's
    retry-after hint derive.

    Args:
        max_batch: Largest job count handed to one executor call.
        linger_s: Upper bound on how long a batch waits for company.
        retry_after_floor: Floor of the retry-after hint.
        clock: Monotonic time source.
        metrics: The shard's metrics scope.
    """

    name = "batcher"

    def __init__(
        self,
        max_batch: int,
        linger_s: float,
        retry_after_floor: float,
        clock: Clock,
        metrics: MetricsScope,
    ) -> None:
        self._max_batch = max_batch
        self._linger_cap = linger_s
        self._retry_after_floor = retry_after_floor
        self._clock = clock
        self._metrics = metrics
        self._ema: float | None = None
        self._task: asyncio.Task | None = None
        self._admission: Admission | None = None
        self._coalescer: Coalescer | None = None
        self._executor: "Executor | None" = None

    @property
    def job_latency_ema(self) -> float | None:
        """Observed per-job latency EMA, seconds (``None`` until the
        first batch completes)."""
        return self._ema

    def start(
        self,
        admission: Admission,
        coalescer: Coalescer,
        executor: "Executor",
        task_name: str = "repro-service-batcher",
    ) -> None:
        """Wire the stack and spawn the drain task.

        Idempotent while the task is alive; a finished (crashed or
        drained) task may be replaced, which is how the supervisor
        restarts a shard's stack in place.
        """
        if self._task is not None and not self._task.done():
            return
        self._admission = admission
        self._coalescer = coalescer
        self._executor = executor
        self._task = asyncio.get_running_loop().create_task(
            self._loop(), name=task_name
        )

    @property
    def running(self) -> bool:
        """Whether the drain task exists and has not finished."""
        return self._task is not None and not self._task.done()

    @property
    def crashed(self) -> bool:
        """Whether the drain task died with an unhandled exception.

        This is the supervisor's health probe: a healthy shard's task
        is alive, a drained shard's task finished cleanly, a crashed
        shard's task finished with an exception still attached.
        """
        task = self._task
        return (
            task is not None
            and task.done()
            and not task.cancelled()
            and task.exception() is not None
        )

    def crash_exception(self) -> BaseException | None:
        """The exception that killed the drain task, if any."""
        task = self._task
        if task is None or not task.done() or task.cancelled():
            return None
        return task.exception()

    def suggest_retry_after(self, queue_depth: int) -> float:
        """A retry-after hint scaled to how far behind the shard is."""
        if self._ema is None:
            return self._retry_after_floor
        backlog_batches = 1 + queue_depth // self._max_batch
        estimate = self._ema * self._max_batch * backlog_batches
        return min(30.0, max(self._retry_after_floor, estimate))

    def _linger_seconds(self) -> float:
        """How long this batch should wait for company.

        Adapts to observed per-job latency: when jobs are cheap,
        lingering would dominate service time, so the batcher skips it;
        when jobs are expensive, a bounded linger lets concurrent
        clients join the batch (and coalesce duplicates) at negligible
        relative cost.
        """
        if self._ema is None:
            return self._linger_cap
        return min(self._linger_cap, self._ema * _LINGER_FRACTION)

    def _target_batch_size(self, queue_depth: int) -> int:
        """Batch size adapted to the observed queue depth."""
        return max(1, min(self._max_batch, 1 + queue_depth))

    async def _loop(self) -> None:
        admission = self._admission
        assert admission is not None, "start() wires the stack first"
        while True:
            item = await admission.take()
            if item is SHUTDOWN:
                return
            assert isinstance(item, Pending)
            linger = self._linger_seconds()
            if linger > 0 and admission.depth == 0:
                await asyncio.sleep(linger)
            batch = [item]
            target = self._target_batch_size(admission.depth)
            while len(batch) < target:
                extra = admission.take_nowait()
                if extra is None:
                    break
                if extra is SHUTDOWN:
                    # Put the sentinel back for the next loop turn so
                    # the current batch still completes.
                    await admission.push_shutdown()
                    break
                assert isinstance(extra, Pending)
                batch.append(extra)
            self._metrics.gauge("queue_depth").set(admission.depth)
            batch = self._cancel_expired(batch)
            if batch:
                await self._run_batch(batch)

    def _cancel_expired(self, batch: list[Pending]) -> list[Pending]:
        """Drop pendings no waiter can use any more.

        A job is cancelled only when *every* coalesced waiter's deadline
        has passed (``Pending.deadline`` folds them with ``max``; an
        unbounded waiter pins it to ``None``).  Cancelled futures get a
        :class:`DeadlineExceeded`, the coalescer entry is resolved so a
        fresh request recomputes, and the expiry lands on the
        ``deadline_expirations`` counter.
        """
        now = self._clock.monotonic()
        live: list[Pending] = []
        for item in batch:
            if item.deadline is not None and now >= item.deadline:
                assert self._coalescer is not None
                self._coalescer.resolve(item.key)
                self._metrics.counter("deadline_expirations").inc()
                if not item.future.done():
                    item.future.set_exception(
                        DeadlineExceeded("cancelled before dispatch")
                    )
            else:
                live.append(item)
        return live

    async def _run_batch(self, batch: list[Pending]) -> None:
        assert self._executor is not None and self._coalescer is not None
        started = self._clock.monotonic()
        results = await self._executor.execute([item.job for item in batch])
        elapsed = self._clock.monotonic() - started
        per_job = elapsed / len(batch)
        self._ema = (
            per_job if self._ema is None
            else _EMA_ALPHA * per_job + (1 - _EMA_ALPHA) * self._ema
        )
        metrics = self._metrics
        metrics.counter("batches_total").inc()
        metrics.counter("engine_jobs_total").inc(len(batch))
        metrics.histogram("batch_size").observe(len(batch))
        metrics.histogram("batch_latency_s").observe(elapsed)
        metrics.gauge("job_latency_ema_s").set(self._ema)
        for item, result in zip(batch, results, strict=True):
            self._coalescer.resolve(item.key)
            if isinstance(result, FailedJob):
                metrics.counter(f"failed_{result.reason}_total").inc()
            if not item.future.done():
                item.future.set_result(result)

    def snapshot(self) -> dict:
        """Latency EMA, batch bound, and drain-task health."""
        return {
            "job_latency_ema_s": self._ema,
            "max_batch": self._max_batch,
            "running": self.running,
            "crashed": self.crashed,
        }

    async def drain(self) -> None:
        """Push the shutdown sentinel and wait for the task to exit.

        Robust against a crashed task: the sentinel is skipped when the
        task is already dead (nothing would consume it, and a full
        queue would block the push), and the task's own crash is logged
        rather than re-raised so shutdown always completes.
        """
        if self._task is None:
            return
        assert self._admission is not None
        if not self._task.done():
            await self._admission.push_shutdown()
        try:
            await self._task  # lint-ok: R006 - shutdown must not abandon it
        except asyncio.CancelledError:
            raise
        except BaseException:
            _log.warning(
                "batcher task had crashed before drain", exc_info=True
            )
        self._task = None


class Executor:
    """Stage 4: engine dispatch off the event loop.

    Runs :meth:`~repro.sim.engine.StagedEngine.run_many` in a thread so
    the event loop stays responsive, and absorbs engine-infrastructure
    crashes (not per-job failures — the hardened engine already types
    those) into :class:`~repro.sim.engine.FailedJob` slots, so a
    broken pool can never hang a waiter.

    Args:
        engine: The engine to drive.
        max_workers: Engine process-pool width per batch (``None``
            uses the engine default; 1 = in-process).
        job_timeout: Per-job seconds before the engine declares a
            :class:`~repro.sim.engine.FailedJob` (pool runs only).
        retries: Engine-level re-attempts per job.
        metrics: The shard's metrics scope.
        interceptor: Optional chaos hook awaited before each engine
            dispatch, *outside* the failure-isolation net: a sleeping
            interceptor injects stage latency, an ``Exception`` becomes
            typed :class:`~repro.sim.engine.FailedJob` slots via the
            net below it, and a :class:`BatchCrash` escapes and kills
            the drain task.  Production stacks leave it ``None``.
    """

    name = "executor"

    def __init__(
        self,
        engine: StagedEngine,
        max_workers: int | None,
        job_timeout: float | None,
        retries: int,
        metrics: MetricsScope,
        interceptor: Callable[[list[SimJob]], Awaitable[None]] | None = None,
    ) -> None:
        self.engine = engine
        self._max_workers = max_workers
        self._job_timeout = job_timeout
        self._retries = retries
        self._metrics = metrics
        self._interceptor = interceptor

    async def execute(self, jobs: list[SimJob]) -> list:
        """Run one batch; one result or :class:`FailedJob` per slot."""
        if self._interceptor is not None:
            # except Exception — a BatchCrash (BaseException) must
            # escape here and kill the drain task.
            try:
                await self._interceptor(jobs)
            except asyncio.CancelledError:
                raise  # shutdown outranks fault injection
            except Exception as exc:
                failure = FailedJob(job=None, reason="error", error=repr(exc))
                return [failure] * len(jobs)
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(None, self._run_many, jobs)
        except asyncio.CancelledError:
            raise  # drain-task cancellation must reach the supervisor
        except Exception as exc:  # engine infrastructure, not a job
            _log.exception(
                "batch of %d job(s) failed in the engine", len(jobs)
            )
            failure = FailedJob(job=None, reason="error", error=repr(exc))
            return [failure] * len(jobs)

    def _run_many(self, jobs: list[SimJob]) -> list:
        return self.engine.run_many(
            jobs,
            max_workers=self._max_workers,
            job_timeout=self._job_timeout,
            retries=self._retries,
        )

    def snapshot(self) -> dict:
        """The engine-dispatch knobs."""
        return {
            "max_workers": self._max_workers,
            "job_timeout": self._job_timeout,
            "retries": self._retries,
        }

    async def drain(self) -> None:
        """Nothing to release — batches own their pool lifetimes."""
        return None
