"""Consistent-hash routing of canonical run_keys across shards.

A sharded service must send every spelling of the same configuration to
the same shard, or the per-shard coalescing maps stop deduplicating.
The router therefore hashes the *canonical*
:func:`~repro.sim.stages.run_key` — the same tuple the store and the
coalescer key on — so "same simulation" and "same shard" are decided by
the same bytes.

The hash ring uses virtual nodes (``replicas`` points per shard) so
keys spread evenly even at small shard counts, and so growing from N to
N+1 shards remaps only ~1/(N+1) of the key space — a restarted service
scaled up one shard keeps most of its warehouse locality.

The same ring also answers *failover* routing: :meth:`ShardRouter.route`
takes an optional set of excluded (down or draining) shards and walks
the ring past the owner to the next healthy one.  Because the walk
starts at the key's own ring position, only keys owned by an excluded
shard remap — everything else keeps its shard, so a single crashed
shard does not reshuffle the whole key space (the supervisor leans on
this when it drains a dead shard's queue).
"""

from __future__ import annotations

import bisect
import hashlib

from repro.sim.store import StoreKey

__all__ = ["ShardRouter", "canonical_key_bytes"]


def canonical_key_bytes(key: StoreKey) -> bytes:
    """The canonical byte representation of a run_key.

    ``repr`` of the key tuple is deterministic: run_keys are tuples of
    strings and frozen config dataclasses, whose generated ``repr``
    lists every field in declaration order.
    """
    return repr(key).encode("utf-8")


def _point(token: str) -> int:
    """One ring position: a 64-bit digest of ``token``."""
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ShardRouter:
    """Maps canonical run_keys onto shard indices via a hash ring.

    Args:
        num_shards: Shards to route across (>= 1).
        replicas: Virtual nodes per shard; more replicas smooth the
            distribution at the cost of a larger (still tiny) ring.
    """

    def __init__(self, num_shards: int, replicas: int = 64) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.num_shards = num_shards
        self.replicas = replicas
        points: list[tuple[int, int]] = []
        for shard in range(num_shards):
            for replica in range(replicas):
                points.append((_point(f"shard:{shard}:replica:{replica}"),
                               shard))
        points.sort()
        self._ring = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def route(
        self, key: StoreKey, exclude: frozenset[int] | set[int] = frozenset()
    ) -> int:
        """The shard index owning ``key`` (stable across processes).

        Args:
            key: The canonical run_key to place.
            exclude: Shards currently unavailable (down, draining).
                The walk continues around the ring past the owner until
                it reaches a shard not in this set, so only keys owned
                by an excluded shard remap — every other key keeps its
                home shard.

        Raises:
            ValueError: every shard is excluded (nothing can own the
                key).
        """
        if not exclude:
            if self.num_shards == 1:
                return 0
            where = bisect.bisect_right(self._ring, _point_of(key))
            return self._owners[where % len(self._owners)]
        alive = set(range(self.num_shards)) - set(exclude)
        if not alive:
            raise ValueError("every shard is excluded; nothing can route")
        if self.num_shards == 1:
            return 0
        where = bisect.bisect_right(self._ring, _point_of(key))
        for step in range(len(self._owners)):
            owner = self._owners[(where + step) % len(self._owners)]
            if owner in alive:
                return owner
        raise ValueError(  # pragma: no cover - unreachable: alive != {}
            "ring walk exhausted without a live shard"
        )


def _point_of(key: StoreKey) -> int:
    digest = hashlib.blake2b(
        canonical_key_bytes(key), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")
