"""Shard supervision: detect crashed drain tasks, recover, re-route.

A shard's batcher task is its heartbeat — every queued request funnels
through it, so an unhandled crash (a chaos :class:`BatchCrash`, a bug
in a stage, a poisoned batch) would otherwise strand the shard's whole
queue on futures nobody will ever resolve.  The supervisor closes that
hole with a small health loop:

1. **detect** — every ``supervisor_interval_s`` it probes each shard's
   :attr:`~repro.service.stages.Batcher.crashed` flag (a finished task
   with an exception still attached);
2. **fence** — the crashed shard joins the service's ``down`` set (the
   router walks past it, so only its keys remap) and its breaker is
   forced open (requests that raced the fence shed with 503);
3. **drain** — the dead stack's stranded work is collected: the
   admission queue is emptied and the coalescing map (the
   authoritative list of computations with live waiters, queued *and*
   mid-batch) is cleared;
4. **re-route** — each stranded computation is re-submitted through
   the consistent-hash ring (excluding down shards) on its own task;
   the outcome — result or structured failure — lands on the original
   future, so every coalesced waiter resolves rather than hangs.  With
   no healthy shard left (the single-shard case) the work is held and
   re-routed after the restart instead;
5. **restart** — after a bounded exponential backoff (doubling per
   consecutive crash of the same shard, capped), the shard's execution
   stages are rebuilt and its task respawned; the breaker resets and
   the shard leaves the ``down`` set.

Recovery is observable: ``supervisor_restarts`` counts restarts (per
shard and in aggregate), ``supervisor_recovery_latency_s`` records
detect-to-restart latency, and the snapshot reports per-shard crash
counts.  The supervisor also runs the warehouse scrubber on a
configurable cadence (``scrub_interval_s``), counting repaired records
on ``scrub_repairs``.

Shutdown is orphan-free by construction: :meth:`ShardSupervisor.stop`
cancels the health loop, then settles every outstanding re-route task —
a re-route that cannot finish fails its future with a structured
:class:`~repro.service.stages.ServiceError` instead of leaking.
"""

from __future__ import annotations

import asyncio
import logging
from typing import TYPE_CHECKING

from repro.service.stages import Pending, ServiceError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.pipeline import ShardPipeline, SimulationService

__all__ = ["ShardSupervisor"]

_log = logging.getLogger("repro.service.supervisor")


class ShardSupervisor:
    """The health-check / restart / re-route loop over a service's
    shards.

    Args:
        service: The owning :class:`SimulationService`; interval,
            backoff, and scrub cadence come from its config.
    """

    def __init__(self, service: "SimulationService") -> None:
        self._service = service
        self._config = service.config
        self._clock = service.clock
        self._metrics = service.metrics
        self._task: asyncio.Task | None = None
        self._reroutes: set[asyncio.Task] = set()
        self._crash_counts: dict[int, int] = {}
        self._consecutive: dict[int, int] = {}
        self._restarted_at: dict[int, float] = {}
        self._last_scrub = 0.0

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Spawn the health loop; idempotent while alive."""
        if self._task is not None and not self._task.done():
            return
        self._last_scrub = self._clock.monotonic()
        self._task = asyncio.get_running_loop().create_task(
            self._loop(), name="repro-service-supervisor"
        )

    async def stop(self) -> None:
        """Cancel the health loop and settle every re-route task.

        No orphans: outstanding re-routes are cancelled and any future
        they still owned fails with a structured error.
        """
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task  # lint-ok: R006 - cancelled above
            # We cancelled the task one line up; awaiting it re-raises
            # that same CancelledError, which is the join succeeding.
            except asyncio.CancelledError:  # lint-ok: R007
                pass
            self._task = None
        if self._reroutes:
            tasks = list(self._reroutes)
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            self._reroutes.clear()

    # -- the health loop -----------------------------------------------

    async def _loop(self) -> None:
        interval = self._config.supervisor_interval_s
        while True:
            await asyncio.sleep(interval)
            for shard in self._service.shards:
                if shard.crashed and shard.index not in self._service.down:
                    await self._recover(shard)
                else:
                    self._maybe_forgive(shard.index)
            self._maybe_scrub()

    def _maybe_forgive(self, index: int) -> None:
        """Clear a shard's consecutive-crash streak once it has stayed
        healthy for a full (maximum) backoff window — so the next
        isolated crash restarts fast again, while a crash loop keeps
        its doubled delays."""
        restarted = self._restarted_at.get(index)
        if restarted is None or index not in self._consecutive:
            return
        stable_for = self._clock.monotonic() - restarted
        if stable_for >= self._config.restart_max_backoff_s:
            self._consecutive.pop(index, None)

    async def _recover(self, shard: "ShardPipeline") -> None:
        detected = self._clock.monotonic()
        index = shard.index
        self._crash_counts[index] = self._crash_counts.get(index, 0) + 1
        self._consecutive[index] = self._consecutive.get(index, 0) + 1
        exc = shard.batcher.crash_exception()
        _log.warning(
            "shard %d drain task crashed (%r); recovering", index, exc
        )
        # Fence: router walks past the shard, racing requests shed load.
        self._service.down.add(index)
        shard.breaker.force_open()
        # Drain the dead stack's stranded work.
        stranded = self._collect_stranded(shard)
        # Re-route through the ring now when any shard is alive;
        # otherwise hold the work for the restarted shard below.
        healthy_left = len(self._service.down) < len(self._service.shards)
        if healthy_left:
            for pending in stranded:
                self._spawn_reroute(pending)
            held: list[Pending] = []
        else:
            held = stranded
        # Bounded exponential backoff per consecutive crash.
        backoff = min(
            self._config.restart_max_backoff_s,
            self._config.restart_backoff_s
            * (2 ** (self._consecutive[index] - 1)),
        )
        await asyncio.sleep(backoff)
        shard.restart_stack()
        shard.breaker.reset()
        self._service.down.discard(index)
        self._restarted_at[index] = self._clock.monotonic()
        for pending in held:
            self._spawn_reroute(pending)
        scope = self._metrics.scoped(f"shard_{index}")
        scope.counter("supervisor_restarts").inc()
        scope.histogram("supervisor_recovery_latency_s").observe(
            self._clock.monotonic() - detected
        )

    def _collect_stranded(self, shard: "ShardPipeline") -> list[Pending]:
        """Empty the dead stack's queue and coalescing map, returning
        every computation that still has unresolved waiters."""
        while shard.admission.take_nowait() is not None:
            # The coalescing map is a superset of the queue (every
            # queued Pending is registered); emptying the queue just
            # keeps the restarted batcher from re-running them.
            pass
        stranded = [
            pending
            for pending in shard.coalescer.inflight_items()
            if not pending.future.done()
        ]
        for pending in stranded:
            shard.coalescer.resolve(pending.key)
        return stranded

    # -- re-routing ----------------------------------------------------

    def _spawn_reroute(self, pending: Pending) -> None:
        task = asyncio.get_running_loop().create_task(
            self._reroute(pending),
            name=f"repro-service-reroute-{len(self._reroutes)}",
        )
        self._reroutes.add(task)
        task.add_done_callback(self._reroutes.discard)

    async def _reroute(self, pending: Pending) -> None:
        """Re-submit one stranded computation through a live shard.

        Whatever happens lands on the original future — a result, a
        structured failure, or (on shutdown) a loud service error — so
        no coalesced waiter ever hangs on a crashed shard.
        """
        try:
            shard = self._service.shard_for(pending.key)
            result = await shard.submit(
                pending.key, pending.job, wait=True,
                deadline=pending.deadline,
            )
        except asyncio.CancelledError:
            if not pending.future.done():
                pending.future.set_exception(
                    ServiceError("service stopped before the job ran")
                )
            raise
        except ServiceError as exc:
            if not pending.future.done():
                pending.future.set_exception(exc)
        except Exception as exc:
            if not pending.future.done():
                pending.future.set_exception(
                    ServiceError(f"re-route failed: {exc!r}")
                )
        else:
            if not pending.future.done():
                pending.future.set_result(result)

    # -- scrubbing -----------------------------------------------------

    def _maybe_scrub(self) -> None:
        interval = self._config.scrub_interval_s
        if interval is None:
            return
        now = self._clock.monotonic()
        if now - self._last_scrub < interval:
            return
        self._last_scrub = now
        self.scrub_now()

    def scrub_now(self) -> dict:
        """Run one warehouse scrub pass and record its counters."""
        report = self._service.engine.store.scrub()
        if report.get("scanned", 0) or report.get("repaired", 0):
            _log.info("warehouse scrub: %s", report)
        self._metrics.counter("scrub_passes_total").inc()
        self._metrics.counter("scrub_repairs").inc(
            report.get("repaired", 0)
        )
        self._metrics.counter("scrub_lost_total").inc(
            report.get("lost", 0)
        )
        return report

    # -- observability -------------------------------------------------

    def snapshot(self) -> dict:
        """Crash counts and outstanding re-routes, JSON-ready."""
        return {
            "running": self._task is not None and not self._task.done(),
            "crash_counts": {
                f"shard_{index}": count
                for index, count in sorted(self._crash_counts.items())
            },
            "reroutes_inflight": len(self._reroutes),
        }
