"""The asyncio HTTP front-end of the simulation service.

A deliberately small HTTP/1.1 server over ``asyncio.start_server`` —
stdlib only, JSON in and out, keep-alive connections — exposing the
:class:`~repro.service.pipeline.SimulationService` pipeline:

========  =============  ===========================================
method    path           meaning
========  =============  ===========================================
GET       ``/healthz``   liveness: status, version, uptime, queue
GET       ``/metrics``   the full metrics snapshot (JSON)
POST      ``/simulate``  one simulation request (see codec)
POST      ``/sweep``     a grid sweep, expanded through the pipeline
========  =============  ===========================================

Error mapping is structural, never a hung connection: malformed
payloads are ``400``, an over-full queue is ``429`` with a
``Retry-After`` header, an open circuit breaker (or down shard) is
``503`` with a ``Retry-After`` header, an engine-timeout job or an
expired request deadline is ``504``, any other engine failure is
``500`` — each with a JSON body naming the error type, so clients
branch on data rather than prose.

**Deadline propagation**: a client may stamp an
``X-Repro-Deadline-S`` header (remaining budget, seconds) on
``/simulate`` and ``/sweep``; the budget rides the request through
every pipeline stage (admission refuses spent budgets, the batcher
cancels unservable jobs) and an exhausted budget answers with a
structured ``504 deadline-exceeded``.
"""

from __future__ import annotations

import asyncio
import json
import logging
from typing import Any, Awaitable, Callable, Mapping

from repro.service import codec
from repro.service.clock import MONOTONIC_CLOCK, Clock
from repro.service.pipeline import (
    Backpressure,
    DeadlineExceeded,
    ServiceError,
    ShardUnavailable,
    SimulationFailed,
    SimulationService,
)
from repro.sim.engine import SimJob
from repro.sim.sweeps import aggregate_points, expand_grid
from repro.util.version import package_version
from repro.workloads.profiles import profile
from repro.workloads.suites import PARALLEL_SUITE

__all__ = ["ServiceServer"]

_log = logging.getLogger("repro.service.server")

#: Largest request body the server will read, bytes.
_MAX_BODY = 1 << 20
#: Largest request line / header section the server will read, bytes.
_MAX_HEADER = 32 << 10
#: Seconds an idle keep-alive connection is held open.
_IDLE_TIMEOUT_S = 30.0
#: Request header carrying the client's remaining deadline budget.
_DEADLINE_HEADER = "x-repro-deadline-s"

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class _HttpError(Exception):
    """An error the connection loop turns into a structured response."""

    def __init__(
        self,
        status: int,
        error_type: str,
        message: str,
        headers: Mapping[str, str] | None = None,
        extra: Mapping[str, Any] | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.error_type = error_type
        self.message = message
        self.headers = dict(headers or {})
        self.extra = dict(extra or {})


class ServiceServer:
    """Serves a :class:`SimulationService` over local HTTP+JSON.

    Args:
        service: The (started) pipeline to expose.
        host / port: Bind address; port 0 picks an ephemeral port
            (read it back from :attr:`port` after :meth:`start`).
        clock: Monotonic time source for the uptime reading.
    """

    def __init__(
        self,
        service: SimulationService,
        host: str = "127.0.0.1",
        port: int = 0,
        clock: Clock | None = None,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.clock = clock if clock is not None else MONOTONIC_CLOCK
        self._server: asyncio.Server | None = None
        self._started_at: float | None = None
        self._connections: set[asyncio.Task] = set()

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections (resolves ephemeral port)."""
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = self.clock.monotonic()
        _log.info("repro service listening on %s:%d", self.host, self.port)

    async def serve_forever(self) -> None:
        """Serve until cancelled (the ``repro serve`` foreground loop)."""
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()  # lint-ok: R006 - foreground loop

    async def stop(self) -> None:
        """Close the listener, drop live connections, stop the pipeline."""
        if self._server is not None:
            self._server.close()
            # Closed above; this only reaps the accept loop.
            await self._server.wait_closed()  # lint-ok: R006
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
            self._connections.clear()
        await self.service.stop()

    # -- connection handling -------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                keep_alive = await self._handle_one(reader, writer)
                if not keep_alive:
                    break
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.TimeoutError,
        ):
            pass  # client went away; nothing to answer
        # Top of the per-connection task: stop() cancels these tasks and
        # then awaits them, so swallowing the cancellation here is the
        # shutdown protocol — nothing above this frame needs to see it.
        except asyncio.CancelledError:  # lint-ok: R007
            pass  # server shutting down; drop the connection quietly
        except Exception:
            _log.exception("connection handler failed")
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await asyncio.wait_for(
                    writer.wait_closed(), timeout=_IDLE_TIMEOUT_S
                )
            # Best-effort socket teardown while already unwinding; a
            # second cancellation here must not mask the original exit.
            except (  # lint-ok: R007
                ConnectionError,
                OSError,
                asyncio.CancelledError,
                asyncio.TimeoutError,
            ):
                pass

    async def _handle_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """Serve one request; returns whether to keep the connection."""
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=_IDLE_TIMEOUT_S
            )
        except asyncio.LimitOverrunError:
            await _respond_error(
                writer,
                _HttpError(413, "header-too-large", "header section too large"),
            )
            return False
        if len(head) > _MAX_HEADER:
            await _respond_error(
                writer,
                _HttpError(413, "header-too-large", "header section too large"),
            )
            return False
        try:
            method, path, headers = _parse_head(head)
        except ValueError as exc:
            await _respond_error(
                writer, _HttpError(400, "malformed-request", str(exc))
            )
            return False
        body = b""
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            await _respond_error(
                writer,
                _HttpError(400, "malformed-request",
                           f"bad Content-Length {length_text!r}"),
            )
            return False
        if length > _MAX_BODY:
            await _respond_error(
                writer,
                _HttpError(413, "payload-too-large",
                           f"body of {length} bytes exceeds {_MAX_BODY}"),
            )
            return False
        if length:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=_IDLE_TIMEOUT_S
            )
        keep_alive = headers.get("connection", "keep-alive") != "close"
        try:
            deadline_s = _parse_deadline(headers)
            status, payload = await self._route(method, path, body, deadline_s)
        except _HttpError as exc:
            await _respond_error(writer, exc, keep_alive)
            return keep_alive
        except asyncio.CancelledError:
            raise  # shutdown must not be answered as a 500
        except Exception as exc:  # a route handler bug; still answer
            _log.exception("unhandled error serving %s %s", method, path)
            await _respond_error(
                writer,
                _HttpError(500, "internal-error", repr(exc)),
                keep_alive,
            )
            return keep_alive
        await _write_response(writer, status, payload, keep_alive=keep_alive)
        return keep_alive

    # -- routing -------------------------------------------------------

    async def _route(
        self,
        method: str,
        path: str,
        body: bytes,
        deadline_s: float | None = None,
    ) -> tuple[int, Any]:
        handlers: dict[tuple[str, str], Callable[..., Awaitable]] = {
            ("GET", "/healthz"): self._healthz,
            ("GET", "/metrics"): self._metrics,
            ("POST", "/simulate"): self._simulate,
            ("POST", "/sweep"): self._sweep,
        }
        known_paths = {p for _, p in handlers}
        handler = handlers.get((method, path))
        if handler is None:
            if path in known_paths:
                raise _HttpError(
                    405, "method-not-allowed",
                    f"{method} is not supported on {path}",
                )
            raise _HttpError(404, "not-found", f"no route for {path}")
        if method == "POST":
            return await handler(_parse_json(body), deadline_s)
        return await handler()

    async def _healthz(self) -> tuple[int, Any]:
        uptime = (
            self.clock.monotonic() - self._started_at
            if self._started_at is not None
            else 0.0
        )
        queue_depth = self.service.metrics.gauge("queue_depth").value
        return 200, {
            "status": "ok",
            "version": package_version(),
            "uptime_s": round(uptime, 3),
            "queue_depth": queue_depth,
            "max_queue": self.service.config.max_queue,
        }

    async def _metrics(self) -> tuple[int, Any]:
        snapshot = self.service.snapshot()
        snapshot["version"] = package_version()
        return 200, snapshot

    async def _simulate(
        self, payload: Any, deadline_s: float | None = None
    ) -> tuple[int, Any]:
        try:
            job = codec.job_from_payload(payload)
        except codec.BadRequest as exc:
            raise _HttpError(400, "bad-request", str(exc)) from exc
        result = await self._submit(job, deadline_s)
        return 200, codec.result_to_payload(result)

    async def _sweep(
        self, payload: Any, deadline_s: float | None = None
    ) -> tuple[int, Any]:
        """A grid sweep, expanded into pipeline jobs (see sweeps doc).

        Shape::

            {"scheme": {...}, "fields": {"num_banks": [2, 8, 32]},
             "system": {...}, "apps": ["Ocean", ...]}   # apps optional
        """
        if not isinstance(payload, Mapping):
            raise _HttpError(400, "bad-request", "sweep must be a JSON object")
        unknown = sorted(set(payload) - {"scheme", "fields", "system", "apps"})
        if unknown:
            raise _HttpError(
                400, "bad-request",
                f"unknown sweep field(s) {', '.join(unknown)}",
            )
        fields = payload.get("fields")
        if not isinstance(fields, Mapping) or not fields:
            raise _HttpError(
                400, "bad-request",
                "sweep needs a non-empty 'fields' object of value lists",
            )
        try:
            scheme = codec.scheme_from_payload(payload.get("scheme", {}))
            base = codec.system_from_payload(payload.get("system", {}))
            apps = [
                profile(name) for name in payload.get(
                    "apps", [app.name for app in PARALLEL_SUITE]
                )
            ]
            combos = expand_grid(
                {name: list(values) for name, values in fields.items()}
            )
            jobs = [
                SimJob(app=app, scheme=scheme, system=base.with_(**params))
                for params in combos
                for app in apps
            ]
        except (codec.BadRequest, TypeError, ValueError) as exc:
            raise _HttpError(400, "bad-request", str(exc)) from exc
        results = await self._submit_many(jobs, deadline_s)
        points = aggregate_points(combos, apps, results)
        return 200, {
            "scheme": scheme.label(),
            "apps": [app.name for app in apps],
            "points": [
                {
                    "params": point.params,
                    "cycles": point.cycles,
                    "l2_energy_j": point.l2_energy_j,
                    "processor_energy_j": point.processor_energy_j,
                    "hit_latency": point.hit_latency,
                    "edp": point.edp,
                }
                for point in points
            ],
            "failed_points": [
                {
                    "params": failed.params,
                    "app": failed.app,
                    "reason": failed.reason,
                    "attempts": failed.attempts,
                }
                for failed in points.failed_points
            ],
        }

    async def _submit(self, job: SimJob, deadline_s: float | None = None):
        try:
            return await self.service.submit(job, deadline_s=deadline_s)
        except Backpressure as exc:
            raise _HttpError(
                429, "backpressure", str(exc),
                headers={"Retry-After": f"{exc.retry_after_s:.3f}"},
                extra={"retry_after_s": exc.retry_after_s,
                       "queue_depth": exc.queue_depth},
            ) from exc
        except ShardUnavailable as exc:
            raise _shard_unavailable_error(exc) from exc
        except DeadlineExceeded as exc:
            raise _deadline_exceeded_error(exc) from exc
        except SimulationFailed as exc:
            raise _simulation_failed_error(exc) from exc
        except ServiceError as exc:
            raise _HttpError(503, "service-unavailable", str(exc)) from exc

    async def _submit_many(
        self, jobs: list[SimJob], deadline_s: float | None = None
    ):
        try:
            return await self.service.submit_many(jobs, deadline_s=deadline_s)
        except ShardUnavailable as exc:
            raise _shard_unavailable_error(exc) from exc
        except DeadlineExceeded as exc:
            raise _deadline_exceeded_error(exc) from exc
        except SimulationFailed as exc:
            raise _simulation_failed_error(exc) from exc
        except ServiceError as exc:
            raise _HttpError(503, "service-unavailable", str(exc)) from exc


def _simulation_failed_error(exc: SimulationFailed) -> _HttpError:
    status = 504 if exc.reason == "timeout" else 500
    return _HttpError(
        status, "simulation-failed", str(exc),
        extra={"reason": exc.reason, "attempts": exc.attempts,
               "detail": exc.detail[-2000:]},
    )


def _shard_unavailable_error(exc: ShardUnavailable) -> _HttpError:
    return _HttpError(
        503, "shard-unavailable", str(exc),
        headers={"Retry-After": f"{exc.retry_after_s:.3f}"},
        extra={"shard": exc.shard, "state": exc.state,
               "retry_after_s": exc.retry_after_s},
    )


def _deadline_exceeded_error(exc: DeadlineExceeded) -> _HttpError:
    return _HttpError(
        504, "deadline-exceeded", str(exc), extra={"where": exc.where}
    )


def _parse_deadline(headers: Mapping[str, str]) -> float | None:
    """The ``X-Repro-Deadline-S`` budget, or ``None`` when absent.

    A malformed or non-positive budget is a client error, surfaced as
    a structured 400 rather than silently treated as unbounded.
    """
    raw = headers.get(_DEADLINE_HEADER)
    if raw is None:
        return None
    try:
        value = float(raw)
    except ValueError:
        raise _HttpError(
            400, "bad-request",
            f"bad {_DEADLINE_HEADER} value {raw!r}: expected seconds",
        ) from None
    if value <= 0:
        raise _HttpError(
            400, "bad-request",
            f"bad {_DEADLINE_HEADER} value {raw!r}: must be > 0",
        )
    return value


def _parse_head(head: bytes) -> tuple[str, str, dict[str, str]]:
    """Parse the request line + headers; raises ``ValueError`` when bad."""
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 total
        raise ValueError("undecodable header bytes") from exc
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise ValueError(f"malformed request line {lines[0]!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise ValueError(f"unsupported protocol {version!r}")
    path = target.split("?", 1)[0]
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ValueError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return method.upper(), path, headers


def _parse_json(body: bytes) -> Any:
    if not body:
        raise _HttpError(400, "bad-request", "request body is empty")
    try:
        return json.loads(body)
    except json.JSONDecodeError as exc:
        raise _HttpError(
            400, "bad-request", f"body is not valid JSON: {exc}"
        ) from exc


async def _write_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: Any,
    keep_alive: bool = True,
    headers: Mapping[str, str] | None = None,
) -> None:
    body = codec.encode_json(payload)
    reason = _STATUS_TEXT.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
    # Bounded: a client that stops reading must not pin the handler.
    await asyncio.wait_for(writer.drain(), timeout=_IDLE_TIMEOUT_S)


async def _respond_error(
    writer: asyncio.StreamWriter, error: _HttpError, keep_alive: bool = False
) -> None:
    payload = {
        "error": {
            "type": error.error_type,
            "message": error.message,
            **error.extra,
        }
    }
    await _write_response(
        writer, error.status, payload,
        keep_alive=keep_alive, headers=error.headers,
    )
