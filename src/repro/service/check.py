"""End-to-end self-check: ``repro serve --check``.

Boots a real service (HTTP listener, pipeline, engine) on an ephemeral
localhost port, drives it with N concurrent in-process clients sending
a duplicate-heavy stream over the 24 golden configurations (the 8
Figure-16 schemes x 3 golden applications), and asserts the service
contract:

* **zero dropped responses** — every request of every client gets an
  answer (backpressure rejections are retried by the client, so they
  must converge, never vanish);
* **coalescing works** — concurrent duplicate requests share
  computations (``coalesced_total > 0``) and the combined
  coalesce+store hit rate on the duplicate stream is at least 50 %;
* **byte-identical results** — every response, re-encoded canonically,
  equals a direct :class:`~repro.sim.engine.StagedEngine` run of the
  same configuration on a private store.  The serving layer may route,
  batch, cache, and coalesce, but never perturb a number.

:class:`ServerHarness` (the service in a background thread with a
ready/stop handshake) is exported for tests and examples.
"""

from __future__ import annotations

import asyncio
import json
import random
import sys
import threading
from dataclasses import asdict, dataclass, field

from repro.experiments.common import DEFAULT_SCHEMES
from repro.service import codec
from repro.service.client import ServiceClient
from repro.service.pipeline import ServiceConfig, SimulationService
from repro.service.router import ShardRouter
from repro.service.server import ServiceServer
from repro.sim import stages as sim_stages
from repro.sim.config import SystemConfig
from repro.sim.engine import SimJob, StagedEngine
from repro.sim.store import ResultStore
from repro.util.version import package_version

__all__ = ["ServerHarness", "run_check"]

#: The golden applications (the golden-run suite's three profiles).
GOLDEN_APPS = ("Ocean", "CG", "mcf")


def golden_jobs(system: SystemConfig) -> list[SimJob]:
    """The 24 golden configurations as canonical jobs."""
    return [
        SimJob.of(app, scheme, system)
        for app in GOLDEN_APPS
        for _, scheme in DEFAULT_SCHEMES
    ]


class ServerHarness:
    """A live service on an ephemeral port, in a background thread.

    Runs its own event loop so synchronous callers (tests, the
    self-check, example scripts) can drive the service over real HTTP
    from any number of threads.

    Args:
        service_config: Pipeline knobs for the hosted service.
        engine: Engine to serve (default: fresh engine + private store,
            so harnesses never leak state into the process-wide store).
        host: Bind address.
        interceptor_factory: Optional per-shard batch interceptor
            factory, passed through to the service — the chaos
            harness's injection point (see :mod:`repro.service.chaos`).
    """

    def __init__(
        self,
        service_config: ServiceConfig | None = None,
        engine: StagedEngine | None = None,
        host: str = "127.0.0.1",
        interceptor_factory=None,
    ) -> None:
        self.host = host
        self.port: int | None = None
        self.engine = (
            engine if engine is not None else StagedEngine(ResultStore())
        )
        self.service_config = (
            service_config if service_config is not None else ServiceConfig()
        )
        self.interceptor_factory = interceptor_factory
        self.service: SimulationService | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._failure: BaseException | None = None

    def start(self, timeout: float = 30.0) -> "ServerHarness":
        """Boot the server; blocks until it is accepting connections."""
        self._thread = threading.Thread(
            target=self._run, name="repro-service-harness", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("service harness did not come up in time")
        if self._failure is not None:
            raise RuntimeError(
                f"service harness failed to start: {self._failure!r}"
            )
        return self

    def stop(self) -> None:
        """Shut the server down and join the thread."""
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None

    def __enter__(self) -> "ServerHarness":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def client(self, **kwargs) -> ServiceClient:
        """A client pointed at this harness (one per thread, please)."""
        assert self.port is not None, "harness is not started"
        return ServiceClient(host=self.host, port=self.port, **kwargs)

    def run_in_loop(self, func, timeout: float = 30.0):
        """Call ``func()`` on the service's event loop thread.

        The chaos harness uses this to poke service internals (a
        supervisor scrub, a snapshot) without racing the loop.
        """
        assert self._loop is not None, "harness is not started"
        import concurrent.futures

        outcome: concurrent.futures.Future = concurrent.futures.Future()

        def call() -> None:
            try:
                outcome.set_result(func())
            except BaseException as exc:
                outcome.set_exception(exc)

        self._loop.call_soon_threadsafe(call)
        return outcome.result(timeout)

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surfaced by start()
            self._failure = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.service = SimulationService(
            engine=self.engine,
            config=self.service_config,
            interceptor_factory=self.interceptor_factory,
        )
        server = ServiceServer(self.service, host=self.host, port=0)
        await server.start()
        self.port = server.port
        self._ready.set()
        try:
            # Parked until stop(); not a request path.
            await self._stop.wait()  # lint-ok: R006
        finally:
            await server.stop()


@dataclass
class _ClientOutcome:
    """What one driver thread observed."""

    responses: list[tuple[int, dict]] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)


def _drive_client(
    harness: ServerHarness,
    client_index: int,
    request_indices: list[int],
    payloads: list[dict],
    outcome: _ClientOutcome,
    start_barrier: threading.Barrier,
) -> None:
    try:
        with harness.client(timeout=300.0, max_attempts=10) as client:
            start_barrier.wait(timeout=60)
            for config_index in request_indices:
                reply = client.simulate_payload(payloads[config_index])
                outcome.responses.append((config_index, reply))
    except Exception as exc:
        outcome.errors.append(f"client {client_index}: {exc!r}")


def run_check(
    quick: bool = False,
    num_clients: int = 32,
    requests_per_client: int | None = None,
    sample_blocks: int | None = None,
    metrics_out: str | None = None,
    workers: int = 1,
    shards: int | None = None,
    warehouse: str | None = None,
    expect_warm: bool = False,
) -> tuple[int, dict]:
    """Run the end-to-end smoke check; returns (exit code, summary).

    ``quick`` shrinks the per-application value sample (the simulation
    cost), not the traffic shape: the concurrency and duplication the
    check exists to exercise stay the same.

    ``workers`` > 1 runs engine batches in worker processes;
    ``shards`` routes across N shard pipelines (default: one per
    worker) and additionally asserts coalescing happened *per shard*.
    ``warehouse`` points the service's store at a disk tier, and
    ``expect_warm`` asserts the run was served (at least partly) from
    that tier — the warm-restart proof: run once to populate, re-run
    with ``expect_warm`` against the same path.
    """
    if sample_blocks is None:
        sample_blocks = 250 if quick else 1200
    if requests_per_client is None:
        requests_per_client = 3 if quick else 6
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if shards is None:
        shards = workers if workers > 1 else 1
    system = SystemConfig(sample_blocks=sample_blocks)
    jobs = golden_jobs(system)
    payloads = [
        {
            "app": job.app.name,
            "scheme": asdict(job.scheme),
            "system": asdict(job.system),
        }
        for job in jobs
    ]

    # The reference: direct StagedEngine runs on a private store, the
    # bytes every service response must match.
    reference_engine = StagedEngine(ResultStore())
    reference_bytes = [
        codec.encode_json(
            codec.result_to_payload(
                reference_engine.run(job.app, job.scheme, job.system)
            )
        )
        for job in jobs
    ]

    # Duplicate-heavy traffic: every client opens with one config per
    # covered shard (num_clients concurrent identical requests per
    # shard — the coalescing pressure test), then walks a seeded-random
    # mix of the full golden set.  With one shard the openers are just
    # ``[0]``, the historic single-shard traffic shape.
    router = ShardRouter(shards)
    shard_openers: dict[int, int] = {}
    for config_index, job in enumerate(jobs):
        key = sim_stages.run_key(job.app, job.scheme, job.system)
        shard_openers.setdefault(router.route(key), config_index)
    openers = [shard_openers[shard] for shard in sorted(shard_openers)]
    schedules = []
    for client_index in range(num_clients):
        rng = random.Random(1000 + client_index)
        indices = list(openers) + [
            rng.randrange(len(jobs)) for _ in range(requests_per_client - 1)
        ]
        schedules.append(indices)

    service_config = ServiceConfig(
        max_workers=workers if workers > 1 else None,
        shards=shards,
    )
    engine = StagedEngine(ResultStore(warehouse=warehouse))
    outcomes = [_ClientOutcome() for _ in range(num_clients)]
    barrier = threading.Barrier(num_clients)
    with ServerHarness(service_config=service_config, engine=engine) as harness:
        threads = [
            threading.Thread(
                target=_drive_client,
                args=(harness, i, schedules[i], payloads, outcomes[i], barrier),
                name=f"repro-check-client-{i}",
            )
            for i in range(num_clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        with harness.client() as probe:
            health = probe.healthz()
            metrics = probe.metrics()

    problems: list[str] = []
    for outcome in outcomes:
        problems.extend(outcome.errors)

    total_requests = sum(len(schedule) for schedule in schedules)
    answered = sum(len(outcome.responses) for outcome in outcomes)
    if answered != total_requests and not problems:
        problems.append(
            f"{total_requests - answered} request(s) silently dropped"
        )

    mismatches = 0
    for outcome in outcomes:
        for config_index, reply in outcome.responses:
            if codec.encode_json(reply) != reference_bytes[config_index]:
                mismatches += 1
    if mismatches:
        problems.append(
            f"{mismatches} response(s) differ from direct engine runs"
        )

    counters = metrics.get("counters", {})
    derived = metrics.get("derived", {})
    # Read the store's stats after the harness stopped: shutdown
    # flushes the warehouse's write-behind buffer, so segment counts
    # here reflect what actually landed on disk (the mid-run /metrics
    # snapshot predates that flush).
    store_stats = engine.store.stats()
    coalesced = counters.get("coalesced_total", 0)
    hit_rate = derived.get("combined_hit_rate", 0.0)
    # A warm replay is served from the store (that's the point), so
    # there is nothing in flight to coalesce — the coalescing contract
    # only binds cold runs.
    if answered and coalesced == 0 and not expect_warm:
        problems.append("no request was coalesced under concurrent duplicates")
    if answered and shards > 1 and not expect_warm:
        for shard in sorted(shard_openers):
            per_shard = counters.get(f"shard_{shard}/coalesced_total", 0)
            if per_shard == 0:
                problems.append(
                    f"shard_{shard} coalesced nothing under concurrent "
                    "duplicates"
                )
    if answered and hit_rate < 0.5:
        problems.append(
            f"combined coalesce+store hit rate {hit_rate:.1%} is below 50%"
        )
    if expect_warm and store_stats.disk_hits == 0:
        problems.append(
            "expected a warm start from the warehouse tier, but no lookup "
            "was served from disk"
        )
    if health.get("status") != "ok":
        problems.append(f"healthz reported {health!r}")
    if health.get("version") != package_version():
        problems.append(
            f"healthz version {health.get('version')!r} != "
            f"{package_version()!r}"
        )

    summary = {
        "quick": quick,
        "clients": num_clients,
        "requests": total_requests,
        "answered": answered,
        "golden_configs": len(jobs),
        "sample_blocks": sample_blocks,
        "byte_identical": mismatches == 0,
        "coalesced_total": coalesced,
        "combined_hit_rate": hit_rate,
        "workers": workers,
        "shards": shards,
        "warehouse": warehouse,
        "store_disk_hits": store_stats.disk_hits,
        "store_promotions": store_stats.promotions,
        "warehouse_segments": store_stats.warehouse_segments,
        "warehouse_bytes": store_stats.warehouse_bytes,
        "version": health.get("version"),
        "problems": problems,
        "metrics": metrics,
    }
    if metrics_out:
        with open(metrics_out, "w") as handle:
            json.dump(summary, handle, indent=2)
        print(f"wrote {metrics_out}", file=sys.stderr)
    return (1 if problems else 0), summary
