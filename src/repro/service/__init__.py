"""repro.service — the async serving layer over the staged engine.

Turns the batch/CLI-driven reproduction into an operable system: an
asyncio HTTP+JSON service (``repro serve``) that absorbs concurrent
simulation and sweep requests, deduplicates identical in-flight
configurations, serves repeats from the
:class:`~repro.sim.store.ResultStore`, and keeps the hardened engine
saturated with adaptively sized batches — all with explicit
backpressure instead of unbounded queues, and structured error
responses instead of hung connections.

Layers (each its own module, composable in-process without HTTP):

* :mod:`repro.service.stages` — the composable pipeline stages
  (Admission, Coalescer, Batcher, Executor) behind the
  :class:`~repro.service.stages.PipelineStage` protocol;
* :mod:`repro.service.router` — consistent-hash routing of canonical
  run_keys across shards (:class:`~repro.service.router.ShardRouter`);
* :mod:`repro.service.pipeline` — shards as wired stage stacks behind
  one facade (:class:`SimulationService`);
* :mod:`repro.service.server` — the HTTP front-end
  (:class:`ServiceServer`: ``/simulate``, ``/sweep``, ``/healthz``,
  ``/metrics``);
* :mod:`repro.service.breaker` — the per-shard circuit breaker
  (:class:`~repro.service.breaker.CircuitBreaker`): a sick shard sheds
  load with 503 + Retry-After instead of queueing doomed work;
* :mod:`repro.service.supervisor` — shard health checks, crash
  recovery with bounded backoff, queue re-routing, and the warehouse
  scrubber (:class:`~repro.service.supervisor.ShardSupervisor`);
* :mod:`repro.service.client` — the in-repo client with full-jitter
  429/503-aware retries, deadline stamping, and optional hedged
  requests (:class:`ServiceClient`);
* :mod:`repro.service.metrics` — the counters/gauges/histograms
  registry behind ``/metrics`` (also reused by ``repro bench``);
* :mod:`repro.service.codec` — request canonicalization and canonical
  result encoding;
* :mod:`repro.service.clock` — injectable monotonic time;
* :mod:`repro.service.check` — the end-to-end self-check behind
  ``repro serve --check``;
* :mod:`repro.service.chaos` — the seeded chaos campaign behind
  ``repro chaos`` (crash storms, failure bursts, byte flips, floods —
  golden traffic must stay byte-identical throughout).

See ``docs/service.md`` for the API schema, the metrics glossary, and
operational notes.
"""

from repro.service.breaker import BreakerConfig, CircuitBreaker
from repro.service.client import (
    ServiceClient,
    ServiceClientError,
    ServiceRequestError,
    ServiceUnavailable,
)
from repro.service.clock import MONOTONIC_CLOCK, Clock, FakeClock
from repro.service.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsScope,
)
from repro.service.pipeline import (
    Backpressure,
    DeadlineExceeded,
    ServiceConfig,
    ServiceError,
    ShardPipeline,
    ShardUnavailable,
    SimulationFailed,
    SimulationService,
)
from repro.service.router import ShardRouter
from repro.service.server import ServiceServer
from repro.service.stages import (
    Admission,
    BatchCrash,
    Batcher,
    Coalescer,
    Executor,
    PipelineStage,
)
from repro.service.supervisor import ShardSupervisor

__all__ = [
    "Admission",
    "Backpressure",
    "BatchCrash",
    "Batcher",
    "BreakerConfig",
    "CircuitBreaker",
    "Coalescer",
    "DeadlineExceeded",
    "Executor",
    "PipelineStage",
    "ShardPipeline",
    "ShardRouter",
    "ShardSupervisor",
    "ShardUnavailable",
    "Clock",
    "Counter",
    "FakeClock",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsScope",
    "MONOTONIC_CLOCK",
    "ServiceClient",
    "ServiceClientError",
    "ServiceConfig",
    "ServiceError",
    "ServiceRequestError",
    "ServiceServer",
    "ServiceUnavailable",
    "SimulationFailed",
    "SimulationService",
]
