"""Per-shard circuit breakers: a sick shard sheds load explicitly.

A shard whose engine keeps failing (a wedged pool, a poisoned native
kernel, injected chaos) should not keep absorbing requests that will
each burn a batch slot and come back as a 500.  The breaker watches the
shard's recent request outcomes over a sliding window and trips through
the classic three-state machine:

* **closed** — normal service; every outcome is recorded;
* **open** — tripped: the failure rate over the window crossed the
  threshold (with at least ``min_samples`` observations, so one early
  failure cannot trip a cold shard).  Requests are rejected up front
  with :class:`~repro.service.stages.ShardUnavailable`, which the HTTP
  layer maps to ``503`` + ``Retry-After`` — the shard sheds load while
  healthy shards keep serving.  After ``cooldown_s`` the breaker moves
  to half-open;
* **half-open** — probation: up to ``probes`` concurrent requests are
  admitted as probes.  A probe failure reopens the breaker (cooldown
  doubles, bounded); enough probe successes close it and reset the
  window.

Backpressure rejections never count as failures — a full queue is load,
not sickness — and neither do deadline expirations (the client's budget
is not the shard's health).  Only engine-level failures
(:class:`~repro.service.stages.SimulationFailed`, crashed batches)
trip the breaker.

Time flows through the injectable :class:`~repro.service.clock.Clock`,
so tests drive the cooldown with a :class:`~repro.service.clock.FakeClock`.
State transitions are exported on the shard's metrics scope: the
``breaker_state`` gauge (0 closed / 1 open / 2 half-open) and the
``breaker_opens_total`` / ``breaker_closes_total`` counters.
"""

from __future__ import annotations

from collections import deque

from repro.service.clock import Clock
from repro.service.metrics import MetricsScope

__all__ = ["BreakerConfig", "CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

#: Numeric encodings of the breaker states, as exported on the
#: ``breaker_state`` gauge.
CLOSED = 0
OPEN = 1
HALF_OPEN = 2

_STATE_NAMES = {CLOSED: "closed", OPEN: "open", HALF_OPEN: "half-open"}


class BreakerConfig:
    """The breaker's trip policy.

    Args:
        window: Outcomes retained in the sliding window.
        failure_threshold: Failure fraction over the window at (or
            above) which the breaker opens.
        min_samples: Observations required before the threshold can
            trip (a cold shard's first failure must not open it).
        cooldown_s: Seconds the breaker stays open before probing;
            doubles on every consecutive reopen, capped at
            ``max_cooldown_s``.
        max_cooldown_s: Upper bound of the cooldown growth.
        probes: Concurrent probe requests admitted while half-open;
            also the successes needed to close.
    """

    def __init__(
        self,
        window: int = 32,
        failure_threshold: float = 0.5,
        min_samples: int = 4,
        cooldown_s: float = 1.0,
        max_cooldown_s: float = 30.0,
        probes: int = 2,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError(
                f"failure_threshold must be in (0, 1], got {failure_threshold}"
            )
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        if cooldown_s <= 0:
            raise ValueError(f"cooldown_s must be > 0, got {cooldown_s}")
        if max_cooldown_s < cooldown_s:
            raise ValueError(
                f"max_cooldown_s ({max_cooldown_s}) must be >= cooldown_s "
                f"({cooldown_s})"
            )
        if probes < 1:
            raise ValueError(f"probes must be >= 1, got {probes}")
        self.window = window
        self.failure_threshold = failure_threshold
        self.min_samples = min_samples
        self.cooldown_s = cooldown_s
        self.max_cooldown_s = max_cooldown_s
        self.probes = probes


class CircuitBreaker:
    """The closed → open → half-open state machine for one shard.

    Args:
        config: Trip policy; see :class:`BreakerConfig`.
        clock: Monotonic time source for the cooldown.
        metrics: The shard's metrics scope (state gauge + transition
            counters land there).
    """

    def __init__(
        self,
        config: BreakerConfig,
        clock: Clock,
        metrics: MetricsScope,
    ) -> None:
        self.config = config
        self._clock = clock
        self._metrics = metrics
        self._state = CLOSED
        self._outcomes: deque[bool] = deque(maxlen=config.window)
        self._opened_at = 0.0
        self._cooldown = config.cooldown_s
        self._consecutive_opens = 0
        self._probes_inflight = 0
        self._probe_successes = 0
        metrics.gauge("breaker_state").set(CLOSED)

    # -- state -----------------------------------------------------------

    @property
    def state(self) -> int:
        """The current state (``CLOSED``/``OPEN``/``HALF_OPEN``),
        advancing an elapsed cooldown to half-open as a side effect."""
        self._maybe_half_open()
        return self._state

    @property
    def state_name(self) -> str:
        """The current state as text (for snapshots and errors)."""
        return _STATE_NAMES[self.state]

    def retry_after_s(self) -> float:
        """Seconds until the breaker will admit a probe (0 when it
        already would)."""
        if self._state != OPEN:
            return 0.0
        remaining = self._cooldown - (self._clock.monotonic() - self._opened_at)
        return max(0.0, remaining)

    def _set_state(self, state: int) -> None:
        self._state = state
        self._metrics.gauge("breaker_state").set(state)

    def _maybe_half_open(self) -> None:
        if self._state == OPEN and (
            self._clock.monotonic() - self._opened_at >= self._cooldown
        ):
            self._set_state(HALF_OPEN)
            self._probes_inflight = 0
            self._probe_successes = 0

    # -- admission -------------------------------------------------------

    def allow(self) -> bool:
        """Whether one request may proceed right now.

        Closed admits everything; open admits nothing (callers reject
        with 503 + :meth:`retry_after_s`); half-open admits up to the
        configured number of concurrent probes.  An admitted half-open
        request **must** be answered with :meth:`record_success` or
        :meth:`record_failure` to release its probe slot.
        """
        self._maybe_half_open()
        if self._state == CLOSED:
            return True
        if self._state == OPEN:
            return False
        if self._probes_inflight < self.config.probes:
            self._probes_inflight += 1
            return True
        return False

    # -- outcomes --------------------------------------------------------

    def record_success(self, probe: bool = False) -> None:
        """Record one successful request outcome.

        Args:
            probe: Whether the request was admitted while half-open
                (releases its probe slot and counts toward closing).
        """
        self._outcomes.append(True)
        if self._state == HALF_OPEN and probe:
            self._probes_inflight = max(0, self._probes_inflight - 1)
            self._probe_successes += 1
            if self._probe_successes >= self.config.probes:
                self._close()

    def record_failure(self, probe: bool = False) -> None:
        """Record one failed request outcome (engine-level only).

        A failure while half-open reopens immediately with a doubled
        (bounded) cooldown; while closed, the sliding-window failure
        rate decides.
        """
        self._outcomes.append(False)
        if self._state == HALF_OPEN and probe:
            self._probes_inflight = max(0, self._probes_inflight - 1)
            self._open()
            return
        if self._state == CLOSED and self._tripped():
            self._open()

    def release_probe(self) -> None:
        """Release a half-open probe slot without recording an outcome.

        For probes that never reached the engine (backpressure,
        deadline expiry, shutdown): they say nothing about the shard's
        health, but their slot must free up for the next probe.
        """
        if self._state == HALF_OPEN:
            self._probes_inflight = max(0, self._probes_inflight - 1)

    def _tripped(self) -> bool:
        if len(self._outcomes) < self.config.min_samples:
            return False
        failures = sum(1 for ok in self._outcomes if not ok)
        return failures / len(self._outcomes) >= self.config.failure_threshold

    def _open(self) -> None:
        self._consecutive_opens += 1
        self._cooldown = min(
            self.config.max_cooldown_s,
            self.config.cooldown_s * (2 ** (self._consecutive_opens - 1)),
        )
        self._opened_at = self._clock.monotonic()
        self._set_state(OPEN)
        self._metrics.counter("breaker_opens_total").inc()

    def _close(self) -> None:
        self._set_state(CLOSED)
        self._outcomes.clear()
        self._consecutive_opens = 0
        self._cooldown = self.config.cooldown_s
        self._metrics.counter("breaker_closes_total").inc()

    def force_open(self) -> None:
        """Trip the breaker unconditionally (the supervisor does this
        while a shard's stage stack is being restarted)."""
        self._maybe_half_open()
        if self._state != OPEN:
            self._open()

    def reset(self) -> None:
        """Return to closed with a clear window (post-restart)."""
        if self._state != CLOSED:
            self._close()
        else:
            self._outcomes.clear()

    def snapshot(self) -> dict:
        """JSON-ready operational state."""
        return {
            "state": self.state_name,
            "window": list(self._outcomes),
            "cooldown_s": self._cooldown,
            "retry_after_s": self.retry_after_s(),
            "consecutive_opens": self._consecutive_opens,
        }
