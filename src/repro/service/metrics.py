"""A small counters/gauges/histograms registry for the service.

The service pipeline records its operational signals — queue depth,
coalesce and store hit rates, batch sizes, service latency percentiles,
failure and fallback counts — in one :class:`MetricsRegistry`, which
the HTTP layer serializes at ``/metrics`` and ``repro bench`` reuses
for its live-traffic tier.  Plain data structures, no external
dependencies, thread-safe: the event loop, executor threads, and the
bench harness all write concurrently.

Histograms keep a bounded ring of recent observations (plus exact
count/sum over all of them), so percentile queries stay cheap and the
registry cannot grow without bound under sustained traffic.

A sharded service records through per-shard :class:`MetricsScope` views
(see :meth:`MetricsRegistry.scoped`): every counter and gauge write
lands twice — once on the bare aggregate name (``coalesced_total``) and
once on a shard-labelled name (``shard_0/coalesced_total``) — so
existing dashboards and the ``--check`` harness keep reading aggregate
totals while per-shard behaviour stays independently observable.
"""

from __future__ import annotations

import math
import threading
from typing import Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsScope",
    "ScopedCounter",
    "ScopedGauge",
]


class Counter:
    """A monotonically increasing integer."""

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A point-in-time numeric reading (queue depth, pool width, ...)."""

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Replace the reading."""
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        """Shift the reading by ``delta`` (either sign)."""
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Count/sum plus percentiles over a bounded ring of observations.

    Args:
        max_samples: Observations retained for percentile queries; the
            count and sum always cover every observation ever made.
    """

    def __init__(self, max_samples: int = 2048) -> None:
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self._max_samples = max_samples
        self._samples: list[float] = []
        self._next = 0  # ring cursor once the buffer is full
        self._count = 0
        self._sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if len(self._samples) < self._max_samples:
                self._samples.append(value)
            else:
                self._samples[self._next] = value
                self._next = (self._next + 1) % self._max_samples

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) of the retained samples.

        Nearest-rank on the sorted ring; ``nan`` when nothing has been
        observed yet.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            ordered = sorted(self._samples)
        if not ordered:
            return math.nan
        rank = max(0, math.ceil(q / 100 * len(ordered)) - 1)
        return ordered[rank]

    def summary(self) -> dict:
        """count/mean/min/max/p50/p95 as a JSON-ready dict."""
        with self._lock:
            ordered = sorted(self._samples)
            count = self._count
            total = self._sum
        if not ordered:
            return {"count": 0, "mean": None, "min": None, "max": None,
                    "p50": None, "p95": None}

        def rank(q: float) -> float:
            return ordered[max(0, math.ceil(q / 100 * len(ordered)) - 1)]

        return {
            "count": count,
            "mean": total / count,
            "min": ordered[0],
            "max": ordered[-1],
            "p50": rank(50),
            "p95": rank(95),
        }


class MetricsRegistry:
    """Named counters, gauges, and histograms with one JSON snapshot.

    Instruments are created on first use and live for the registry's
    lifetime, so concurrent readers always see every name that was ever
    recorded (a scrape never races a metric into or out of existence).
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter()
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge()
            return self._gauges[name]

    def histogram(self, name: str, max_samples: int = 2048) -> Histogram:
        """The histogram called ``name``, created on first use."""
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(max_samples=max_samples)
            return self._histograms[name]

    def scoped(self, label: str) -> "MetricsScope":
        """A labelled view of this registry (see :class:`MetricsScope`)."""
        return MetricsScope(self, label)

    def names(self) -> Iterable[str]:
        """Every instrument name currently registered, sorted."""
        with self._lock:
            return sorted(
                set(self._counters) | set(self._gauges) | set(self._histograms)
            )

    def snapshot(self) -> dict:
        """A JSON-ready view of every instrument, stable-keyed."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {
                name: counters[name].value for name in sorted(counters)
            },
            "gauges": {name: gauges[name].value for name in sorted(gauges)},
            "histograms": {
                name: histograms[name].summary() for name in sorted(histograms)
            },
        }


class ScopedCounter:
    """A counter that writes both its labelled and aggregate instrument.

    ``value`` reads the labelled (per-shard) counter, so a scope's own
    snapshot reflects only its share of the traffic.
    """

    def __init__(self, labelled: Counter, aggregate: Counter) -> None:
        self._labelled = labelled
        self._aggregate = aggregate

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` to both the labelled and aggregate counter."""
        self._labelled.inc(amount)
        self._aggregate.inc(amount)

    @property
    def value(self) -> int:
        return self._labelled.value


class ScopedGauge:
    """A gauge that writes both its labelled and aggregate instrument.

    The aggregate gauge sees the *same* write as the labelled one (not
    a sum over scopes); callers that need a cross-shard total — the
    service's ``queue_depth`` — compute and set it explicitly.
    """

    def __init__(self, labelled: Gauge, aggregate: Gauge) -> None:
        self._labelled = labelled
        self._aggregate = aggregate

    def set(self, value: float) -> None:
        """Replace both readings."""
        self._labelled.set(value)
        self._aggregate.set(value)

    def add(self, delta: float) -> None:
        """Shift both readings by ``delta``."""
        self._labelled.add(delta)
        self._aggregate.add(delta)

    @property
    def value(self) -> float:
        return self._labelled.value


class MetricsScope:
    """A labelled view of a :class:`MetricsRegistry`.

    Counter and gauge writes dual-record under the bare name and under
    ``{label}/{name}``; histograms record aggregate-only (percentiles
    across shards are what operators watch, and per-shard rings would
    multiply the retained-sample footprint by the shard count).

    Args:
        registry: The registry to record into.
        label: The scope label, e.g. ``shard_0``.
    """

    def __init__(self, registry: MetricsRegistry, label: str) -> None:
        self.registry = registry
        self.label = label

    def _labelled(self, name: str) -> str:
        return f"{self.label}/{name}"

    def counter(self, name: str) -> ScopedCounter:
        """The dual-writing counter called ``name``."""
        return ScopedCounter(
            self.registry.counter(self._labelled(name)),
            self.registry.counter(name),
        )

    def gauge(self, name: str) -> ScopedGauge:
        """The dual-writing gauge called ``name``."""
        return ScopedGauge(
            self.registry.gauge(self._labelled(name)),
            self.registry.gauge(name),
        )

    def histogram(self, name: str, max_samples: int = 2048) -> Histogram:
        """The aggregate histogram called ``name`` (not labelled)."""
        return self.registry.histogram(name, max_samples=max_samples)
