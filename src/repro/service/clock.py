"""Injectable monotonic time for the service layer.

Everything in :mod:`repro.service` that reads a clock — latency
histograms, retry-after math, uptime, client deadlines — takes a
:class:`Clock` instead of calling :mod:`time` directly, so tests drive
time deterministically with :class:`FakeClock` and the static-analysis
pass (rule R001, service scope) can verify no stray wall-clock or
monotonic read sneaks into the package.  :data:`MONOTONIC_CLOCK` is the
single process-wide real clock; its one ``time.monotonic()`` call is
the package's only suppressed timer read.
"""

from __future__ import annotations

import time
from typing import Protocol

__all__ = ["Clock", "FakeClock", "MONOTONIC_CLOCK", "MonotonicClock"]


class Clock(Protocol):
    """Anything that can report elapsed seconds on a monotonic scale."""

    def monotonic(self) -> float:
        """Seconds on a clock that never goes backwards."""
        ...


class MonotonicClock:
    """The real clock: a thin veneer over :func:`time.monotonic`."""

    def monotonic(self) -> float:
        """Seconds from :func:`time.monotonic`."""
        # The service package's single real timer read: every other
        # module takes a Clock so tests can fake time (enforced by
        # repro lint R001's service-clock scope).
        return time.monotonic()  # lint-ok: R001


class FakeClock:
    """A hand-cranked clock for deterministic tests.

    Args:
        start: Initial reading, seconds.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def monotonic(self) -> float:
        """The current fake reading, seconds."""
        return self._now

    def advance(self, seconds: float) -> None:
        """Move time forward (never backwards)."""
        if seconds < 0:
            raise ValueError(f"cannot rewind a monotonic clock ({seconds})")
        self._now += seconds


#: The process-wide real clock, shared so uptime and latency readings
#: across the service agree on a time base.
MONOTONIC_CLOCK = MonotonicClock()
