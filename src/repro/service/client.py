"""The in-repo client for the simulation service.

A small, dependency-free blocking client over :mod:`http.client` with
the retry discipline the service's error contract asks for:

* **429 backpressure / 503 unavailable** — honoured, not fought: the
  client sleeps for the server's ``Retry-After`` hint (bounded) and
  retries, up to its attempt budget (an open circuit breaker answers
  503, so clients naturally pace a recovering shard);
* **connection errors / timeouts** — simulation requests are pure and
  idempotent, so the client reconnects and retries with **full-jitter**
  exponential backoff: each sleep is drawn uniformly from
  ``[0, ceiling]`` where the ceiling doubles per retry, so a fleet of
  clients kicked off by the same outage desynchronizes instead of
  thundering back in lock-step.  The jitter RNG is seeded per client
  (``jitter_seed``), keeping test runs reproducible;
* **deadline propagation** — a client with a ``deadline_s`` budget
  stamps the *remaining* budget on every attempt as the
  ``X-Repro-Deadline-S`` header, so the server can refuse or cancel
  work the client can no longer use;
* **hedged requests** — with ``hedge_after_s`` set, a ``/simulate``
  request that hasn't answered within the hedge delay races a second
  connection against the first and takes whichever answers first.
  Simulations are deterministic and coalesced server-side, so the
  duplicate is nearly free when it lands on a cache hit — and a big
  tail-latency win when the first connection hit a sick shard;
* **structured errors** — non-retryable responses raise
  :class:`ServiceRequestError` carrying the server's error payload.

Deadlines are measured on the injectable
:class:`~repro.service.clock.Clock`, like everything else in the
package.
"""

from __future__ import annotations

import http.client
import json
import queue as queue_mod
import random
import socket
import threading
import time
from dataclasses import asdict, is_dataclass
from typing import Any, Mapping, Sequence

from repro.service.clock import MONOTONIC_CLOCK, Clock
from repro.sim.config import SchemeConfig, SystemConfig

__all__ = [
    "ServiceClient",
    "ServiceClientError",
    "ServiceRequestError",
    "ServiceUnavailable",
]

#: Upper bound on how long one Retry-After hint may stall the client.
_MAX_RETRY_AFTER_S = 5.0

#: Request header carrying the remaining deadline budget, seconds.
_DEADLINE_HEADER = "X-Repro-Deadline-S"


class ServiceClientError(Exception):
    """Base class for client-side failures."""


class ServiceUnavailable(ServiceClientError):
    """The service could not be reached (or stayed busy) within budget."""


class ServiceRequestError(ServiceClientError):
    """The service answered with a non-retryable error response.

    Attributes:
        status: HTTP status code.
        error: The server's structured ``error`` object (type, message,
            and any extra fields like ``reason`` or ``detail``).
    """

    def __init__(self, status: int, error: Mapping[str, Any]) -> None:
        super().__init__(
            f"HTTP {status}: {error.get('type', 'unknown')} - "
            f"{error.get('message', '')}"
        )
        self.status = status
        self.error = dict(error)


def _payload_dict(config: Any) -> dict:
    """A config dataclass (or ready dict) as a JSON-able object."""
    if is_dataclass(config) and not isinstance(config, type):
        return asdict(config)
    if isinstance(config, Mapping):
        return dict(config)
    raise TypeError(
        f"expected a config dataclass or mapping, got {type(config).__name__}"
    )


class ServiceClient:
    """Talks JSON to a running ``repro serve`` instance.

    Args:
        host / port: Where the service listens.
        timeout: Socket timeout per request, seconds.
        max_attempts: Total tries per request (connection errors and
            429/503 rejections both consume attempts).
        backoff_s: First backoff *ceiling*; doubles per retry.  Actual
            sleeps are full-jitter: uniform in ``[0, ceiling]``.
        deadline_s: Overall budget per logical request across every
            retry and backoff sleep (``None`` = attempts bound only).
            The remaining budget is stamped on each attempt as the
            ``X-Repro-Deadline-S`` header.
        clock: Monotonic time source for the deadline (tests inject a
            fake).
        jitter_seed: Seed for the backoff jitter RNG (``None`` seeds
            from OS entropy).  Two clients with different seeds
            desynchronize even when they fail in lock-step.
        hedge_after_s: When set, a ``/simulate`` request unanswered
            after this many seconds races a second connection and the
            first answer wins (``None`` disables hedging).

    Use as a context manager or call :meth:`close` when done.  One
    client holds one keep-alive connection; use a client per thread.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        timeout: float = 30.0,
        max_attempts: int = 5,
        backoff_s: float = 0.05,
        deadline_s: float | None = None,
        clock: Clock | None = None,
        jitter_seed: int | None = None,
        hedge_after_s: float | None = None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if hedge_after_s is not None and hedge_after_s <= 0:
            raise ValueError(
                f"hedge_after_s must be > 0 when set, got {hedge_after_s}"
            )
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_attempts = max_attempts
        self.backoff_s = backoff_s
        self.deadline_s = deadline_s
        self.clock = clock if clock is not None else MONOTONIC_CLOCK
        self.hedge_after_s = hedge_after_s
        self.hedges = 0  #: hedged (second) connections launched
        self._rng = random.Random(jitter_seed)
        self._conn: http.client.HTTPConnection | None = None

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Drop the keep-alive connection (reopened on next use)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- public API ----------------------------------------------------

    def healthz(self) -> dict:
        """The service's liveness document (status, version, uptime)."""
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        """The full metrics snapshot."""
        return self._request("GET", "/metrics")

    def simulate(
        self,
        app: str,
        scheme: SchemeConfig | Mapping[str, Any] | None = None,
        system: SystemConfig | Mapping[str, Any] | None = None,
    ) -> dict:
        """Run (or fetch) one simulation; returns the result payload."""
        payload: dict[str, Any] = {"app": app}
        if scheme is not None:
            payload["scheme"] = _payload_dict(scheme)
        if system is not None:
            payload["system"] = _payload_dict(system)
        return self.simulate_payload(payload)

    def simulate_payload(self, payload: Mapping[str, Any]) -> dict:
        """Run one simulation from a ready request payload."""
        return self._request("POST", "/simulate", dict(payload))

    def submit_many(
        self,
        payloads: Sequence[Mapping[str, Any]],
        *,
        max_in_flight: int = 8,
        return_exceptions: bool = False,
    ) -> list:
        """Run many ``/simulate`` requests with bounded concurrency.

        The fan-out helper callers used to hand-roll with threads: at
        most ``max_in_flight`` requests are in flight at once, each on
        its own keep-alive connection with this client's full retry /
        backoff / deadline / hedging discipline, and the results come
        back **in payload order**.

        Worker clients draw their jitter seeds from this client's
        seeded RNG, so a seeded client fans out reproducibly.

        Args:
            payloads: Ready ``/simulate`` request payloads.
            max_in_flight: Concurrent in-flight requests (>= 1).
            return_exceptions: When True, a failed request puts its
                exception in its result slot instead of raising; when
                False (default), the first failure (by payload order)
                is raised after all in-flight work drains.

        Returns:
            One response payload (or exception) per request, ordered.
        """
        if max_in_flight < 1:
            raise ValueError(
                f"max_in_flight must be >= 1, got {max_in_flight}"
            )
        payloads = list(payloads)
        if not payloads:
            return []
        results: list = [None] * len(payloads)
        workers = min(max_in_flight, len(payloads))
        if workers == 1:
            for index, payload in enumerate(payloads):
                try:
                    results[index] = self.simulate_payload(payload)
                except ServiceClientError as exc:
                    if not return_exceptions:
                        raise
                    results[index] = exc
            return results
        indices: queue_mod.SimpleQueue = queue_mod.SimpleQueue()
        for index in range(len(payloads)):
            indices.put(index)
        failed = threading.Event()

        def drain(client: "ServiceClient") -> None:
            with client:
                while not (failed.is_set() and not return_exceptions):
                    try:
                        index = indices.get_nowait()
                    except queue_mod.Empty:
                        return
                    try:
                        results[index] = client.simulate_payload(
                            payloads[index]
                        )
                    except ServiceClientError as exc:
                        results[index] = exc
                        failed.set()

        threads = [
            threading.Thread(
                target=drain,
                args=(self._clone(),),
                name=f"repro-client-fanout-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if not return_exceptions:
            for result in results:
                if isinstance(result, BaseException):
                    raise result
        return results

    def _clone(self) -> "ServiceClient":
        """A worker client with this client's settings and a derived
        jitter seed (deterministic for a seeded parent)."""
        return ServiceClient(
            host=self.host,
            port=self.port,
            timeout=self.timeout,
            max_attempts=self.max_attempts,
            backoff_s=self.backoff_s,
            deadline_s=self.deadline_s,
            clock=self.clock,
            jitter_seed=self._rng.randrange(2**32),
            hedge_after_s=self.hedge_after_s,
        )

    def sweep(
        self,
        fields: Mapping[str, Sequence],
        scheme: SchemeConfig | Mapping[str, Any] | None = None,
        system: SystemConfig | Mapping[str, Any] | None = None,
        apps: Sequence[str] | None = None,
    ) -> dict:
        """Run a grid sweep; returns ``{"scheme", "apps", "points",
        "failed_points"}``."""
        payload: dict[str, Any] = {
            "fields": {name: list(values) for name, values in fields.items()}
        }
        if scheme is not None:
            payload["scheme"] = _payload_dict(scheme)
        if system is not None:
            payload["system"] = _payload_dict(system)
        if apps is not None:
            payload["apps"] = list(apps)
        return self._request("POST", "/sweep", payload)

    # -- transport -----------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def _drop_connection(self) -> None:
        self.close()

    def _request(
        self, method: str, path: str, payload: Mapping[str, Any] | None = None
    ) -> dict:
        body = (
            json.dumps(payload).encode("utf-8") if payload is not None else None
        )
        base_headers = {"Content-Type": "application/json"} if body else {}
        ceiling = self.backoff_s
        started = self.clock.monotonic()
        last_error: Exception | None = None

        def remaining_budget() -> float | None:
            if self.deadline_s is None:
                return None
            return self.deadline_s - (self.clock.monotonic() - started)

        def sleep_or_stop(wait: float) -> bool:
            """Back off; False when the overall deadline forbids it."""
            budget = remaining_budget()
            if budget is not None and wait > budget:
                return False
            time.sleep(wait)
            return True

        for attempt in range(self.max_attempts):
            headers = dict(base_headers)
            budget = remaining_budget()
            if budget is not None:
                if budget <= 0:
                    break
                headers[_DEADLINE_HEADER] = f"{budget:.3f}"
            try:
                status, reply_headers, reply = self._once(
                    method, path, body, headers
                )
            except (ConnectionError, socket.timeout, OSError,
                    http.client.HTTPException) as exc:
                self._drop_connection()
                last_error = exc
                wait = self._jittered(ceiling)
                if attempt + 1 >= self.max_attempts or not sleep_or_stop(wait):
                    break
                ceiling *= 2
                continue
            if status in (429, 503):
                # Backpressure and open breakers are both "come back
                # later": honour the server's pacing hint, jittered so
                # synchronized clients spread out.
                last_error = ServiceRequestError(
                    status, reply.get("error", {})
                )
                hint = self._retry_after(
                    reply_headers, reply, self._jittered(ceiling)
                )
                wait = self._jittered(hint) if hint > 0 else hint
                if attempt + 1 >= self.max_attempts or not sleep_or_stop(wait):
                    break
                ceiling *= 2
                continue
            if status >= 400:
                raise ServiceRequestError(status, reply.get("error", {}))
            return reply
        raise ServiceUnavailable(
            f"{method} {path} failed after {self.max_attempts} attempt(s): "
            f"{last_error!r}"
        )

    def _jittered(self, ceiling: float) -> float:
        """A full-jitter wait: uniform in ``[0, ceiling]``."""
        return self._rng.uniform(0.0, max(0.0, ceiling))

    def _once(
        self,
        method: str,
        path: str,
        body: bytes | None,
        headers: Mapping[str, str],
    ) -> tuple[int, Mapping[str, str], dict]:
        if self.hedge_after_s is not None and path == "/simulate":
            return self._once_hedged(method, path, body, headers)
        conn = self._connection()
        status, lowered, reply = self._exchange(
            conn, method, path, body, headers
        )
        if lowered.get("connection", "keep-alive") == "close":
            self._drop_connection()
        return status, lowered, reply

    def _once_hedged(
        self,
        method: str,
        path: str,
        body: bytes | None,
        headers: Mapping[str, str],
    ) -> tuple[int, Mapping[str, str], dict]:
        """Race a second connection when the first is slow to answer.

        Safe because ``/simulate`` is pure and idempotent, and nearly
        free because the server coalesces the duplicate onto the same
        in-flight computation.  Each racer uses its own one-shot
        connection so a slow loser can be abandoned without corrupting
        the keep-alive stream.
        """
        results: queue_mod.Queue = queue_mod.Queue()

        def racer() -> None:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            try:
                results.put(("ok", self._exchange(
                    conn, method, path, body, headers
                )))
            except Exception as exc:
                results.put(("err", exc))
            finally:
                conn.close()

        threading.Thread(target=racer, daemon=True).start()
        racers = 1
        try:
            kind, value = results.get(timeout=self.hedge_after_s)
        except queue_mod.Empty:
            self.hedges += 1
            threading.Thread(target=racer, daemon=True).start()
            racers = 2
            kind, value = results.get(timeout=self.timeout + 1.0)
        while kind == "err" and racers > 1:
            # One racer failed; give the survivor its chance.
            racers -= 1
            try:
                kind, value = results.get(timeout=self.timeout + 1.0)
            except queue_mod.Empty:
                break
        if kind == "err":
            raise value
        return value

    def _exchange(
        self,
        conn: http.client.HTTPConnection,
        method: str,
        path: str,
        body: bytes | None,
        headers: Mapping[str, str],
    ) -> tuple[int, Mapping[str, str], dict]:
        conn.request(method, path, body=body, headers=dict(headers))
        response = conn.getresponse()
        raw = response.read()
        lowered = {
            name.lower(): value for name, value in response.getheaders()
        }
        try:
            reply = json.loads(raw) if raw else {}
        except json.JSONDecodeError as exc:
            raise http.client.HTTPException(
                f"undecodable response body: {raw[:200]!r}"
            ) from exc
        if not isinstance(reply, dict):
            reply = {"value": reply}
        return response.status, lowered, reply

    @staticmethod
    def _retry_after(
        headers: Mapping[str, str], reply: Mapping[str, Any], fallback: float
    ) -> float:
        hint = headers.get("retry-after")
        if hint is None:
            hint = reply.get("error", {}).get("retry_after_s")
        try:
            wait = float(hint) if hint is not None else fallback
        except (TypeError, ValueError):
            wait = fallback
        return max(0.0, min(wait, _MAX_RETRY_AFTER_S))
