"""The in-repo client for the simulation service.

A small, dependency-free blocking client over :mod:`http.client` with
the retry discipline the service's error contract asks for:

* **429 backpressure** — honoured, not fought: the client sleeps for
  the server's ``Retry-After`` hint (bounded) and retries, up to its
  attempt budget;
* **connection errors / timeouts** — simulation requests are pure and
  idempotent, so the client reconnects and retries with exponential
  backoff;
* **structured errors** — non-retryable responses raise
  :class:`ServiceRequestError` carrying the server's error payload.

Deadlines are measured on the injectable
:class:`~repro.service.clock.Clock`, like everything else in the
package.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from dataclasses import asdict, is_dataclass
from typing import Any, Mapping, Sequence

from repro.service.clock import MONOTONIC_CLOCK, Clock
from repro.sim.config import SchemeConfig, SystemConfig

__all__ = [
    "ServiceClient",
    "ServiceClientError",
    "ServiceRequestError",
    "ServiceUnavailable",
]

#: Upper bound on how long one Retry-After hint may stall the client.
_MAX_RETRY_AFTER_S = 5.0


class ServiceClientError(Exception):
    """Base class for client-side failures."""


class ServiceUnavailable(ServiceClientError):
    """The service could not be reached (or stayed busy) within budget."""


class ServiceRequestError(ServiceClientError):
    """The service answered with a non-retryable error response.

    Attributes:
        status: HTTP status code.
        error: The server's structured ``error`` object (type, message,
            and any extra fields like ``reason`` or ``detail``).
    """

    def __init__(self, status: int, error: Mapping[str, Any]) -> None:
        super().__init__(
            f"HTTP {status}: {error.get('type', 'unknown')} - "
            f"{error.get('message', '')}"
        )
        self.status = status
        self.error = dict(error)


def _payload_dict(config: Any) -> dict:
    """A config dataclass (or ready dict) as a JSON-able object."""
    if is_dataclass(config) and not isinstance(config, type):
        return asdict(config)
    if isinstance(config, Mapping):
        return dict(config)
    raise TypeError(
        f"expected a config dataclass or mapping, got {type(config).__name__}"
    )


class ServiceClient:
    """Talks JSON to a running ``repro serve`` instance.

    Args:
        host / port: Where the service listens.
        timeout: Socket timeout per request, seconds.
        max_attempts: Total tries per request (connection errors and
            429 rejections both consume attempts).
        backoff_s: First reconnect delay; doubles per retry.
        deadline_s: Overall budget per logical request across every
            retry and backoff sleep (``None`` = attempts bound only).
        clock: Monotonic time source for the deadline (tests inject a
            fake).

    Use as a context manager or call :meth:`close` when done.  One
    client holds one keep-alive connection; use a client per thread.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        timeout: float = 30.0,
        max_attempts: int = 5,
        backoff_s: float = 0.05,
        deadline_s: float | None = None,
        clock: Clock | None = None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_attempts = max_attempts
        self.backoff_s = backoff_s
        self.deadline_s = deadline_s
        self.clock = clock if clock is not None else MONOTONIC_CLOCK
        self._conn: http.client.HTTPConnection | None = None

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Drop the keep-alive connection (reopened on next use)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- public API ----------------------------------------------------

    def healthz(self) -> dict:
        """The service's liveness document (status, version, uptime)."""
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        """The full metrics snapshot."""
        return self._request("GET", "/metrics")

    def simulate(
        self,
        app: str,
        scheme: SchemeConfig | Mapping[str, Any] | None = None,
        system: SystemConfig | Mapping[str, Any] | None = None,
    ) -> dict:
        """Run (or fetch) one simulation; returns the result payload."""
        payload: dict[str, Any] = {"app": app}
        if scheme is not None:
            payload["scheme"] = _payload_dict(scheme)
        if system is not None:
            payload["system"] = _payload_dict(system)
        return self.simulate_payload(payload)

    def simulate_payload(self, payload: Mapping[str, Any]) -> dict:
        """Run one simulation from a ready request payload."""
        return self._request("POST", "/simulate", dict(payload))

    def sweep(
        self,
        fields: Mapping[str, Sequence],
        scheme: SchemeConfig | Mapping[str, Any] | None = None,
        system: SystemConfig | Mapping[str, Any] | None = None,
        apps: Sequence[str] | None = None,
    ) -> dict:
        """Run a grid sweep; returns ``{"scheme", "apps", "points"}``."""
        payload: dict[str, Any] = {
            "fields": {name: list(values) for name, values in fields.items()}
        }
        if scheme is not None:
            payload["scheme"] = _payload_dict(scheme)
        if system is not None:
            payload["system"] = _payload_dict(system)
        if apps is not None:
            payload["apps"] = list(apps)
        return self._request("POST", "/sweep", payload)

    # -- transport -----------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def _drop_connection(self) -> None:
        self.close()

    def _request(
        self, method: str, path: str, payload: Mapping[str, Any] | None = None
    ) -> dict:
        body = (
            json.dumps(payload).encode("utf-8") if payload is not None else None
        )
        headers = {"Content-Type": "application/json"} if body else {}
        backoff = self.backoff_s
        started = self.clock.monotonic()
        last_error: Exception | None = None

        def sleep_or_stop(wait: float) -> bool:
            """Back off; False when the overall deadline forbids it."""
            if self.deadline_s is not None:
                elapsed = self.clock.monotonic() - started
                if elapsed + wait > self.deadline_s:
                    return False
            time.sleep(wait)
            return True

        for attempt in range(self.max_attempts):
            try:
                status, reply_headers, reply = self._once(
                    method, path, body, headers
                )
            except (ConnectionError, socket.timeout, OSError,
                    http.client.HTTPException) as exc:
                self._drop_connection()
                last_error = exc
                if attempt + 1 >= self.max_attempts or not sleep_or_stop(backoff):
                    break
                backoff *= 2
                continue
            if status == 429:
                last_error = ServiceRequestError(
                    status, reply.get("error", {})
                )
                wait = self._retry_after(reply_headers, reply, backoff)
                if attempt + 1 >= self.max_attempts or not sleep_or_stop(wait):
                    break
                backoff *= 2
                continue
            if status >= 400:
                raise ServiceRequestError(status, reply.get("error", {}))
            return reply
        raise ServiceUnavailable(
            f"{method} {path} failed after {self.max_attempts} attempt(s): "
            f"{last_error!r}"
        )

    def _once(
        self,
        method: str,
        path: str,
        body: bytes | None,
        headers: Mapping[str, str],
    ) -> tuple[int, Mapping[str, str], dict]:
        conn = self._connection()
        conn.request(method, path, body=body, headers=dict(headers))
        response = conn.getresponse()
        raw = response.read()
        lowered = {
            name.lower(): value for name, value in response.getheaders()
        }
        if lowered.get("connection", "keep-alive") == "close":
            self._drop_connection()
        try:
            reply = json.loads(raw) if raw else {}
        except json.JSONDecodeError as exc:
            raise http.client.HTTPException(
                f"undecodable response body: {raw[:200]!r}"
            ) from exc
        if not isinstance(reply, dict):
            reply = {"value": reply}
        return response.status, lowered, reply

    @staticmethod
    def _retry_after(
        headers: Mapping[str, str], reply: Mapping[str, Any], fallback: float
    ) -> float:
        hint = headers.get("retry-after")
        if hint is None:
            hint = reply.get("error", {}).get("retry_after_s")
        try:
            wait = float(hint) if hint is not None else fallback
        except (TypeError, ValueError):
            wait = fallback
        return max(0.0, min(wait, _MAX_RETRY_AFTER_S))
