"""The service's request pipeline: route, admit, coalesce, batch, serve.

One :class:`SimulationService` fronts N independent shards.  Each shard
(:class:`ShardPipeline`) is a wired stack of the composable stages from
:mod:`repro.service.stages` — Admission, Coalescer, Batcher, Executor —
with its own metrics scope, and the
:class:`~repro.service.router.ShardRouter` consistent-hashes canonical
run_keys across them so every spelling of the same configuration lands
on the same shard (preserving the coalescing win per shard).  The full
request path:

1. **routing** — the canonical :func:`~repro.sim.stages.run_key` picks
   the owning shard;
2. **read-through cache** — a request whose run_key is already in the
   engine's :class:`~repro.sim.store.ResultStore` (memory LRU or the
   disk warehouse tier beneath it) is answered immediately;
3. **coalescing** — identical configurations *in flight* share one
   computation: the first request enqueues a job, the rest await the
   same future (``coalesced_total`` counts the sharers);
4. **admission control** — each shard's pending queue is bounded; a
   request that cannot be enqueued raises
   :class:`~repro.service.stages.Backpressure` with a suggested
   retry-after derived from observed latency, which the HTTP layer
   turns into a ``429`` (the service never silently queues unbounded
   work or hangs a connection);
5. **adaptive batching** — each shard's batcher task drains its queue
   into :meth:`~repro.sim.engine.StagedEngine.run_many` calls, sizing
   each batch from the observed queue depth and lingering (briefly, and
   only when jobs are expensive enough for batching to pay) to let
   concurrent clients pile in;
6. **failure isolation** — the hardened engine turns worker crashes,
   timeouts, and pool breakage into typed
   :class:`~repro.sim.engine.FailedJob` slots, which surface here as
   :class:`~repro.service.stages.SimulationFailed` — a structured error
   response, never a hung connection.

With ``--workers N`` each shard dispatches its batches into engine
worker processes, so N shards drive N pools concurrently; ``/sweep``
requests fan their expanded points across all shards through the same
:meth:`SimulationService.submit_many` path.

Every clock read goes through the injectable
:class:`~repro.service.clock.Clock` (see that module for the lint
story).  Determinism: the pipeline only ever *routes* work to the
engine — results are the engine's, bit-for-bit, no matter which tier
(store, coalescing map, fresh batch) or shard served them.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Iterable

from repro.sim import stages as sim_stages
from repro.sim.engine import (
    FailedJob,
    SimJob,
    StagedEngine,
    get_pool_fallback_count,
)
from repro.sim.metrics import RunResult
from repro.service.breaker import HALF_OPEN, BreakerConfig, CircuitBreaker
from repro.service.clock import MONOTONIC_CLOCK, Clock
from repro.service.metrics import MetricsRegistry, MetricsScope
from repro.service.router import ShardRouter
from repro.service.stages import (
    Admission,
    Backpressure,
    Batcher,
    Coalescer,
    DeadlineExceeded,
    Executor,
    Pending,
    ServiceError,
    ShardUnavailable,
    SimulationFailed,
)
from repro.sim.store import StoreKey

__all__ = [
    "Backpressure",
    "BreakerConfig",
    "DeadlineExceeded",
    "ServiceConfig",
    "ServiceError",
    "ShardPipeline",
    "ShardUnavailable",
    "SimulationFailed",
    "SimulationService",
]

#: An async hook awaited by a shard's executor before each engine
#: dispatch; see :class:`~repro.service.stages.Executor`.
Interceptor = Callable[[list[SimJob]], Awaitable[None]]


def _consume_exception(future: "asyncio.Future") -> None:
    """Mark a done future's exception retrieved (waiters detached)."""
    if not future.cancelled():
        future.exception()


@dataclass(frozen=True)
class ServiceConfig:
    """Every operational knob of the pipeline.

    Attributes:
        max_queue: Pending (not yet batched) jobs each shard will hold
            before rejecting new work with
            :class:`~repro.service.stages.Backpressure`.
        max_batch: Largest job count handed to one ``run_many`` call.
        batch_linger_s: Upper bound on how long a batcher waits for
            more arrivals after the first job of a batch; the actual
            linger adapts downward for cheap jobs.
        retry_after_s: Floor of the retry-after hint sent with a
            rejection; scaled up by observed latency and queue depth.
        max_sweep_jobs: Largest job count one sweep request may expand
            to (sweeps self-throttle through the queue rather than
            being rejected, so this bounds their footprint).
        max_workers: Engine process-pool width per batch (``None`` uses
            the engine default; 1 = in-process).
        job_timeout: Per-job seconds before the engine declares a
            :class:`~repro.sim.engine.FailedJob` (pool runs only).
        retries: Engine-level re-attempts per job.
        shards: Independent stage stacks the service routes across;
            each has its own queue, coalescing map, and batcher task.
        breaker: Per-shard circuit-breaker trip policy; see
            :class:`~repro.service.breaker.BreakerConfig`.
        supervisor_interval_s: How often the supervisor health-checks
            each shard's drain task (also its crash-detection latency).
        restart_backoff_s: First restart delay after a shard crash;
            doubles on repeated crashes, capped at
            ``restart_max_backoff_s``.
        restart_max_backoff_s: Upper bound of the restart backoff.
        scrub_interval_s: Seconds between background warehouse scrub
            passes (``None`` disables periodic scrubbing; an explicit
            ``repro scrub``-style call still works).
        default_deadline_s: Deadline budget applied to requests that
            do not carry one (``None`` = unbounded, the default).
    """

    max_queue: int = 128
    max_batch: int = 16
    batch_linger_s: float = 0.02
    retry_after_s: float = 0.25
    max_sweep_jobs: int = 1024
    max_workers: int | None = None
    job_timeout: float | None = None
    retries: int = 1
    shards: int = 1
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    supervisor_interval_s: float = 0.1
    restart_backoff_s: float = 0.05
    restart_max_backoff_s: float = 2.0
    scrub_interval_s: float | None = None
    default_deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.batch_linger_s < 0:
            raise ValueError(
                f"batch_linger_s must be >= 0, got {self.batch_linger_s}"
            )
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.supervisor_interval_s <= 0:
            raise ValueError(
                f"supervisor_interval_s must be > 0, "
                f"got {self.supervisor_interval_s}"
            )
        if self.restart_backoff_s <= 0:
            raise ValueError(
                f"restart_backoff_s must be > 0, "
                f"got {self.restart_backoff_s}"
            )
        if self.restart_max_backoff_s < self.restart_backoff_s:
            raise ValueError(
                f"restart_max_backoff_s ({self.restart_max_backoff_s}) must "
                f"be >= restart_backoff_s ({self.restart_backoff_s})"
            )
        if self.scrub_interval_s is not None and self.scrub_interval_s <= 0:
            raise ValueError(
                f"scrub_interval_s must be > 0 when set, "
                f"got {self.scrub_interval_s}"
            )
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise ValueError(
                f"default_deadline_s must be > 0 when set, "
                f"got {self.default_deadline_s}"
            )


class ShardPipeline:
    """One shard: a wired stack of pipeline stages over a shared engine.

    Args:
        index: The shard's position in the service's shard list (names
            its metrics scope and batcher task).
        engine: The engine every shard shares (the store beneath it is
            the cross-shard cache).
        config: Operational knobs; see :class:`ServiceConfig`.
        clock: Monotonic time source.
        metrics: The shard's labelled metrics scope.
        interceptor: Optional chaos hook for this shard's executor.
    """

    def __init__(
        self,
        index: int,
        engine: StagedEngine,
        config: ServiceConfig,
        clock: Clock,
        metrics: MetricsScope,
        interceptor: Interceptor | None = None,
    ) -> None:
        self.index = index
        self.metrics = metrics
        self._engine = engine
        self._config = config
        self._clock = clock
        self._interceptor = interceptor
        self.breaker = CircuitBreaker(config.breaker, clock, metrics)
        self.executor = self._build_executor()
        self.batcher = self._build_batcher()
        self.admission = Admission(
            max_queue=config.max_queue,
            metrics=metrics,
            # A lambda, not a bound method: restart_stack() replaces
            # the batcher and the hint must follow the live one.
            retry_after=lambda depth: self.batcher.suggest_retry_after(depth),
            clock=clock,
        )
        self.coalescer = Coalescer(metrics=metrics)

    def _build_executor(self) -> Executor:
        return Executor(
            engine=self._engine,
            max_workers=self._config.max_workers,
            job_timeout=self._config.job_timeout,
            retries=self._config.retries,
            metrics=self.metrics,
            interceptor=self._interceptor,
        )

    def _build_batcher(self) -> Batcher:
        return Batcher(
            max_batch=self._config.max_batch,
            linger_s=self._config.batch_linger_s,
            retry_after_floor=self._config.retry_after_s,
            clock=self._clock,
            metrics=self.metrics,
        )

    @property
    def stages(self) -> tuple:
        """The shard's stages in pipeline order."""
        return (self.admission, self.coalescer, self.batcher, self.executor)

    def start(self) -> None:
        """Spawn the shard's batcher task; idempotent while alive."""
        self.batcher.start(
            self.admission,
            self.coalescer,
            self.executor,
            task_name=f"repro-service-batcher-{self.index}",
        )

    @property
    def crashed(self) -> bool:
        """Whether this shard's drain task died with an exception."""
        return self.batcher.crashed

    def restart_stack(self) -> None:
        """Rebuild the crashed execution stages and respawn the task.

        The supervisor calls this after it has drained and re-routed
        the old stack's stranded work.  Executor and batcher are
        rebuilt (dropping any state the crash poisoned — including the
        latency EMA, which restarts cold); the admission queue and
        coalescing map survive, already emptied by the supervisor.
        """
        self.executor = self._build_executor()
        self.batcher = self._build_batcher()
        self.start()

    async def drain(self) -> None:
        """Shut the stages down in pipeline-safe order.

        The batcher exits first (completing its current batch), then
        admission fails anything stranded behind the sentinel, then the
        coalescing map clears.
        """
        # Shutdown path, bounded by the sentinel protocol: the batcher
        # exits at the sentinel and the later stages fail-fast anything
        # stranded rather than waiting on it.
        await self.batcher.drain()  # lint-ok: R006
        await self.admission.drain()  # lint-ok: R006
        await self.coalescer.drain()  # lint-ok: R006
        await self.executor.drain()  # lint-ok: R006

    async def submit(
        self,
        key: StoreKey,
        job: SimJob,
        wait: bool,
        deadline: float | None = None,
    ) -> RunResult:
        """Serve one routed job through this shard's stage stack.

        Args:
            key: The canonical run_key (routing and coalescing handle).
            job: The configuration to simulate.
            wait: Await queue space instead of raising
                :class:`Backpressure` when the queue is full.
            deadline: Absolute monotonic deadline, or ``None`` for
                unbounded.

        Raises:
            ShardUnavailable: The shard's breaker is open (store hits
                are still served — they never touch the engine).
            DeadlineExceeded: The budget ran out before a result.
        """
        self.metrics.counter("requests_total").inc()
        store = self.executor.engine.store
        if key in store:
            self.metrics.counter("store_hits_total").inc()
            return store.get(key)
        probe = self.breaker.state == HALF_OPEN
        if not self.breaker.allow():
            raise ShardUnavailable(
                self.index,
                self.breaker.retry_after_s(),
                self.breaker.state_name,
            )
        try:
            result = await self._submit_inner(key, job, wait, deadline)
        except SimulationFailed:
            self.breaker.record_failure(probe=probe)
            raise
        except ServiceError:
            # Backpressure, deadline expiry, shutdown: load and client
            # budgets, not shard sickness — no breaker outcome, but a
            # half-open probe slot must still be released.
            if probe:
                self.breaker.release_probe()
            raise
        self.breaker.record_success(probe=probe)
        return result

    async def _submit_inner(
        self,
        key: StoreKey,
        job: SimJob,
        wait: bool,
        deadline: float | None,
    ) -> RunResult:
        pending = self.coalescer.join(key)
        if pending is not None:
            # A later joiner may extend the job's lifetime: the batcher
            # cancels only when no waiter can use the result.
            pending.extend_deadline(deadline)
            return await self._await_result(pending, deadline)
        pending = Pending(
            key=key, job=job,
            future=asyncio.get_running_loop().create_future(),
            deadline=deadline,
        )
        if wait:
            # Register before the (possibly blocking) put so duplicates
            # arriving while we wait for queue space still coalesce.
            self.coalescer.register(pending)
            try:
                await self.admission.offer(pending, wait=True)
            except ServiceError:
                # Never leave a never-to-run future in the map.
                self.coalescer.resolve(key)
                raise
        else:
            # Offer first: a Backpressure rejection must not leave a
            # never-to-run future in the coalescing map.
            await self.admission.offer(pending, wait=False)
            self.coalescer.register(pending)
        return await self._await_result(pending, deadline)

    async def _await_result(
        self, pending: Pending, deadline: float | None
    ) -> RunResult:
        # shield(): many requests await one future; one caller being
        # cancelled (client disconnect) or timing out must not cancel
        # the shared computation out from under the others.
        if deadline is None:
            result = await asyncio.shield(pending.future)  # lint-ok: R006
        else:
            remaining = deadline - self._clock.monotonic()
            try:
                result = await asyncio.wait_for(
                    asyncio.shield(pending.future), timeout=remaining
                )
            except asyncio.TimeoutError:
                self.metrics.counter("deadline_expirations").inc()
                # This caller is detaching; if no other waiter remains,
                # the shared future's eventual exception must not rot
                # into an "exception was never retrieved" warning.
                pending.future.add_done_callback(_consume_exception)
                raise DeadlineExceeded("awaiting result") from None
        if isinstance(result, FailedJob):
            raise SimulationFailed(
                reason=result.reason,
                detail=result.error,
                attempts=result.attempts,
            )
        return result

    def snapshot(self) -> dict:
        """Each stage's operational snapshot, keyed by stage name,
        plus the shard's breaker state."""
        snap = {stage.name: stage.snapshot() for stage in self.stages}
        snap["breaker"] = self.breaker.snapshot()
        return snap


class SimulationService:
    """The async request pipeline in front of a :class:`StagedEngine`.

    Args:
        engine: The engine to drive (default: a fresh one over the
            process-wide store).  All shards share it — and the store
            beneath it, so a result computed by one shard is a store
            hit on every shard.
        config: Operational knobs; see :class:`ServiceConfig`.
        clock: Monotonic time source (tests inject a fake).
        metrics: Registry to record into (default: a private one).

    Use as an async context manager, or call :meth:`start` /
    :meth:`stop` explicitly.  All methods must be called from the
    event loop the service was started on.
    """

    def __init__(
        self,
        engine: StagedEngine | None = None,
        config: ServiceConfig | None = None,
        clock: Clock | None = None,
        metrics: MetricsRegistry | None = None,
        interceptor_factory: Callable[[int], Interceptor] | None = None,
    ) -> None:
        self.engine = engine if engine is not None else StagedEngine()
        self.config = config if config is not None else ServiceConfig()
        self.clock = clock if clock is not None else MONOTONIC_CLOCK
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.router = ShardRouter(self.config.shards)
        self.shards = [
            ShardPipeline(
                index=index,
                engine=self.engine,
                config=self.config,
                clock=self.clock,
                metrics=self.metrics.scoped(f"shard_{index}"),
                interceptor=(
                    interceptor_factory(index)
                    if interceptor_factory is not None else None
                ),
            )
            for index in range(self.config.shards)
        ]
        #: Shards currently down for restart; the router walks past
        #: them so only their keys remap (see ShardRouter.route).
        self.down: set[int] = set()
        self._started = False
        # Imported here to break the module cycle: the supervisor
        # drives the service, the service owns the supervisor.
        from repro.service.supervisor import ShardSupervisor

        self.supervisor = ShardSupervisor(self)

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Spawn every shard's batcher task and the supervisor;
        idempotent."""
        if self._started:
            return
        self._started = True
        for shard in self.shards:
            shard.start()
        self.supervisor.start()

    async def stop(self) -> None:
        """Stop supervision, drain every shard, flush the warehouse.

        The supervisor goes first (its re-route tasks either finish or
        fail their futures loudly — no orphaned tasks), then each shard
        drains, then the store's write-behind tier flushes.
        """
        if not self._started:
            return
        self._started = False
        await self.supervisor.stop()
        for shard in self.shards:
            await shard.drain()  # lint-ok: R006 - sentinel-bounded
        self.engine.store.flush()

    async def __aenter__(self) -> "SimulationService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # -- the request path ----------------------------------------------

    def shard_for(self, key: StoreKey) -> ShardPipeline:
        """The live shard owning ``key`` under the router.

        Down shards are excluded: while a crashed shard restarts, its
        keys (and only its keys) fail over around the ring.

        Raises:
            ShardUnavailable: Every shard is down.
        """
        try:
            index = self.router.route(key, exclude=frozenset(self.down))
        except ValueError:
            raise ShardUnavailable(
                shard=-1,
                retry_after_s=self.config.restart_backoff_s,
                state="all shards down",
            ) from None
        return self.shards[index]

    def queue_depth(self) -> int:
        """Pending jobs across every shard's admission queue."""
        return sum(shard.admission.depth for shard in self.shards)

    def _absolute_deadline(self, deadline_s: float | None) -> float | None:
        """An absolute monotonic deadline from a relative budget,
        falling back to the configured default budget."""
        budget = (
            deadline_s if deadline_s is not None
            else self.config.default_deadline_s
        )
        if budget is None:
            return None
        return self.clock.monotonic() + budget

    async def submit(
        self,
        job: SimJob,
        wait: bool = False,
        deadline_s: float | None = None,
    ) -> RunResult:
        """Serve one canonicalized job through the full pipeline.

        Args:
            job: The canonical configuration to simulate.
            wait: When the owning shard's queue is full, ``False`` (the
                default, used for external requests) raises
                :class:`~repro.service.stages.Backpressure`; ``True``
                (used by internal fan-outs like sweeps) awaits queue
                space instead, so a large expansion throttles itself
                rather than being rejected.
            deadline_s: Remaining budget in seconds (``None`` uses the
                configured default; both ``None`` = unbounded).  The
                deadline propagates through every stage: admission
                refuses spent budgets, the batcher cancels jobs no
                waiter can use, and the await gives up at the deadline
                even mid-computation.

        Raises:
            Backpressure: Queue full and ``wait`` is false.
            ShardUnavailable: The owning shard's breaker is open.
            DeadlineExceeded: The budget ran out before a result.
            SimulationFailed: The engine gave up on the job.
        """
        if not self._started:
            raise ServiceError("service is not running (call start())")
        started = self.clock.monotonic()
        key = sim_stages.run_key(job.app, job.scheme, job.system)
        deadline = self._absolute_deadline(deadline_s)
        result = await self.shard_for(key).submit(key, job, wait, deadline)
        return self._respond(started, result)

    async def submit_many(
        self,
        jobs: Iterable[SimJob],
        deadline_s: float | None = None,
    ) -> list[RunResult]:
        """Fan a set of jobs across the shards, preserving order.

        Used by sweep requests: every job routes to its owning shard
        and rides the same coalescing and batching machinery as
        individual requests (a concurrent client asking for one of the
        sweep's points shares its computation), so a sweep's points run
        on every shard's engine pool concurrently.  Jobs beyond a
        shard's queue bound throttle the caller instead of being
        rejected; an oversized expansion raises
        :class:`~repro.service.stages.ServiceError` up front.  An
        optional ``deadline_s`` budget applies to every point of the
        fan-out.
        """
        jobs = list(jobs)
        if len(jobs) > self.config.max_sweep_jobs:
            raise ServiceError(
                f"sweep expands to {len(jobs)} jobs, over the "
                f"configured cap of {self.config.max_sweep_jobs}"
            )
        return list(
            await asyncio.gather(
                *(
                    self.submit(job, wait=True, deadline_s=deadline_s)
                    for job in jobs
                )
            )
        )

    def _respond(self, started: float, result: RunResult) -> RunResult:
        self.metrics.counter("responses_total").inc()
        self.metrics.histogram("service_latency_s").observe(
            self.clock.monotonic() - started
        )
        return result

    # -- observability -------------------------------------------------

    def snapshot(self) -> dict:
        """The metrics snapshot plus derived rates, engine counters,
        warehouse-tier statistics, and per-shard stage state."""
        # The bare queue_depth gauge is last-writer-wins across shards;
        # pin it to the true cross-shard sum at snapshot time.
        self.metrics.gauge("queue_depth").set(self.queue_depth())
        snap = self.metrics.snapshot()
        counters = snap["counters"]
        requests = counters.get("requests_total", 0)
        coalesced = counters.get("coalesced_total", 0)
        store_hits = counters.get("store_hits_total", 0)
        store_stats = self.engine.store.stats()
        snap["derived"] = {
            "coalesce_hit_rate": coalesced / requests if requests else 0.0,
            "store_hit_rate": store_hits / requests if requests else 0.0,
            "combined_hit_rate": (
                (coalesced + store_hits) / requests if requests else 0.0
            ),
        }
        snap["engine"] = {
            "pool_fallbacks": get_pool_fallback_count(),
            "store_entries": store_stats.size,
            "store_hits": store_stats.hits,
            "store_misses": store_stats.misses,
            "store_evictions": store_stats.evictions,
            "store_max_entries": store_stats.max_entries,
            "store_disk_hits": store_stats.disk_hits,
            "store_promotions": store_stats.promotions,
            "warehouse_segments": store_stats.warehouse_segments,
            "warehouse_bytes": store_stats.warehouse_bytes,
        }
        snap["shards"] = {
            f"shard_{shard.index}": shard.snapshot() for shard in self.shards
        }
        snap["supervisor"] = self.supervisor.snapshot()
        snap["supervisor"]["down_shards"] = sorted(self.down)
        return snap
