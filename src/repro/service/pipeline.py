"""The service's request pipeline: admit, coalesce, batch, serve.

One :class:`SimulationService` owns the whole request path:

1. **read-through cache** — a request whose
   :func:`~repro.sim.stages.run_key` is already in the engine's
   :class:`~repro.sim.store.ResultStore` is answered immediately;
2. **coalescing** — identical configurations *in flight* share one
   computation: the first request enqueues a job, the rest await the
   same future (``coalesced_total`` counts the sharers);
3. **admission control** — the pending queue is bounded; a request that
   cannot be enqueued raises :class:`Backpressure` with a suggested
   retry-after derived from observed latency, which the HTTP layer
   turns into a ``429`` (the service never silently queues unbounded
   work or hangs a connection);
4. **adaptive batching** — a single batcher task drains the queue into
   :meth:`~repro.sim.engine.StagedEngine.run_many` calls, sizing each
   batch from the observed queue depth and lingering (briefly, and only
   when jobs are expensive enough for batching to pay) to let
   concurrent clients pile in;
5. **failure isolation** — the PR-3 hardened engine turns worker
   crashes, timeouts, and pool breakage into typed
   :class:`~repro.sim.engine.FailedJob` slots, which surface here as
   :class:`SimulationFailed` — a structured error response, never a
   hung connection.

Every clock read goes through the injectable
:class:`~repro.service.clock.Clock` (see that module for the lint
story).  Determinism: the pipeline only ever *routes* work to the
engine — results are the engine's, bit-for-bit, no matter which tier
(store, coalescing map, fresh batch) served them.
"""

from __future__ import annotations

import asyncio
import logging
from dataclasses import dataclass, field
from typing import Iterable

from repro.sim import stages
from repro.sim.engine import (
    FailedJob,
    SimJob,
    StagedEngine,
    get_pool_fallback_count,
)
from repro.sim.metrics import RunResult
from repro.sim.store import StoreKey
from repro.service.clock import MONOTONIC_CLOCK, Clock
from repro.service.metrics import MetricsRegistry

__all__ = [
    "Backpressure",
    "ServiceConfig",
    "ServiceError",
    "SimulationFailed",
    "SimulationService",
]

_log = logging.getLogger("repro.service.pipeline")

#: Exponential-moving-average weight for per-job latency observations.
_EMA_ALPHA = 0.3

#: Fraction of the per-job latency the batcher is willing to linger for
#: more arrivals; cheap jobs get (almost) no linger, expensive jobs get
#: up to ``ServiceConfig.batch_linger_s``.
_LINGER_FRACTION = 0.25


class ServiceError(Exception):
    """Base class for structured service-level failures."""


class Backpressure(ServiceError):
    """The pending queue is full; retry after ``retry_after_s``."""

    def __init__(self, retry_after_s: float, queue_depth: int) -> None:
        super().__init__(
            f"service queue is full ({queue_depth} pending); "
            f"retry in {retry_after_s:.2f}s"
        )
        self.retry_after_s = retry_after_s
        self.queue_depth = queue_depth


class SimulationFailed(ServiceError):
    """The engine could not produce a result for this job.

    Attributes:
        reason: ``"error"`` or ``"timeout"`` (see
            :class:`~repro.sim.engine.FailedJob`).
        detail: Traceback text of the final attempt (may be empty).
        attempts: How many times the engine tried.
    """

    def __init__(self, reason: str, detail: str, attempts: int) -> None:
        super().__init__(f"simulation failed ({reason}) after "
                         f"{attempts} attempt(s)")
        self.reason = reason
        self.detail = detail
        self.attempts = attempts


@dataclass(frozen=True)
class ServiceConfig:
    """Every operational knob of the pipeline.

    Attributes:
        max_queue: Pending (not yet batched) jobs the service will hold
            before rejecting new work with :class:`Backpressure`.
        max_batch: Largest job count handed to one ``run_many`` call.
        batch_linger_s: Upper bound on how long the batcher waits for
            more arrivals after the first job of a batch; the actual
            linger adapts downward for cheap jobs.
        retry_after_s: Floor of the retry-after hint sent with a
            rejection; scaled up by observed latency and queue depth.
        max_sweep_jobs: Largest job count one sweep request may expand
            to (sweeps self-throttle through the queue rather than
            being rejected, so this bounds their footprint).
        max_workers: Engine process-pool width per batch (``None`` uses
            the engine default; 1 = in-process).
        job_timeout: Per-job seconds before the engine declares a
            :class:`~repro.sim.engine.FailedJob` (pool runs only).
        retries: Engine-level re-attempts per job.
    """

    max_queue: int = 128
    max_batch: int = 16
    batch_linger_s: float = 0.02
    retry_after_s: float = 0.25
    max_sweep_jobs: int = 1024
    max_workers: int | None = None
    job_timeout: float | None = None
    retries: int = 1

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.batch_linger_s < 0:
            raise ValueError(
                f"batch_linger_s must be >= 0, got {self.batch_linger_s}"
            )


@dataclass
class _Pending:
    """One enqueued computation and everyone waiting on it."""

    key: StoreKey
    job: SimJob
    future: asyncio.Future = field(repr=False)


_SHUTDOWN = object()


class SimulationService:
    """The async request pipeline in front of a :class:`StagedEngine`.

    Args:
        engine: The engine to drive (default: a fresh one over the
            process-wide store).
        config: Operational knobs; see :class:`ServiceConfig`.
        clock: Monotonic time source (tests inject a fake).
        metrics: Registry to record into (default: a private one).

    Use as an async context manager, or call :meth:`start` /
    :meth:`stop` explicitly.  All methods must be called from the
    event loop the service was started on.
    """

    def __init__(
        self,
        engine: StagedEngine | None = None,
        config: ServiceConfig | None = None,
        clock: Clock | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.engine = engine if engine is not None else StagedEngine()
        self.config = config if config is not None else ServiceConfig()
        self.clock = clock if clock is not None else MONOTONIC_CLOCK
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._inflight: dict[StoreKey, _Pending] = {}
        self._queue: asyncio.Queue = asyncio.Queue(
            maxsize=self.config.max_queue
        )
        self._batcher: asyncio.Task | None = None
        self._job_latency_ema: float | None = None
        self._started = False

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Spawn the batcher task; idempotent."""
        if self._started:
            return
        self._started = True
        self._batcher = asyncio.get_running_loop().create_task(
            self._batch_loop(), name="repro-service-batcher"
        )

    async def stop(self) -> None:
        """Stop the batcher and fail anything still pending."""
        if not self._started:
            return
        self._started = False
        await self._queue.put(_SHUTDOWN)
        if self._batcher is not None:
            await self._batcher
            self._batcher = None
        # Anything enqueued behind the sentinel never ran.
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is _SHUTDOWN or item.future.done():
                continue
            item.future.set_exception(
                ServiceError("service stopped before the job ran")
            )
            self._inflight.pop(item.key, None)

    async def __aenter__(self) -> "SimulationService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # -- the request path ----------------------------------------------

    async def submit(self, job: SimJob, wait: bool = False) -> RunResult:
        """Serve one canonicalized job through the full pipeline.

        Args:
            job: The canonical configuration to simulate.
            wait: When the queue is full, ``False`` (the default, used
                for external requests) raises :class:`Backpressure`;
                ``True`` (used by internal fan-outs like sweeps) awaits
                queue space instead, so a large expansion throttles
                itself rather than being rejected.

        Raises:
            Backpressure: Queue full and ``wait`` is false.
            SimulationFailed: The engine gave up on the job.
        """
        if not self._started:
            raise ServiceError("service is not running (call start())")
        started = self.clock.monotonic()
        self.metrics.counter("requests_total").inc()
        key = stages.run_key(job.app, job.scheme, job.system)
        if key in self.engine.store:
            self.metrics.counter("store_hits_total").inc()
            return self._respond(started, self.engine.store.get(key))
        pending = self._inflight.get(key)
        if pending is not None:
            self.metrics.counter("coalesced_total").inc()
            return self._respond(started, await self._await_result(pending))
        pending = _Pending(
            key=key, job=job,
            future=asyncio.get_running_loop().create_future(),
        )
        if wait:
            self._inflight[key] = pending
            await self._queue.put(pending)
        else:
            try:
                self._queue.put_nowait(pending)
            except asyncio.QueueFull:
                self.metrics.counter("rejected_total").inc()
                raise Backpressure(
                    self._suggest_retry_after(), self._queue.qsize()
                ) from None
            self._inflight[key] = pending
        self.metrics.gauge("queue_depth").set(self._queue.qsize())
        return self._respond(started, await self._await_result(pending))

    async def submit_many(self, jobs: Iterable[SimJob]) -> list[RunResult]:
        """Fan a set of jobs through the pipeline, preserving order.

        Used by sweep requests: every job rides the same coalescing and
        batching machinery as individual requests (a concurrent client
        asking for one of the sweep's points shares its computation).
        Jobs beyond the queue bound throttle the caller instead of
        being rejected; an oversized expansion raises
        :class:`ServiceError` up front.
        """
        jobs = list(jobs)
        if len(jobs) > self.config.max_sweep_jobs:
            raise ServiceError(
                f"sweep expands to {len(jobs)} jobs, over the "
                f"configured cap of {self.config.max_sweep_jobs}"
            )
        return list(
            await asyncio.gather(
                *(self.submit(job, wait=True) for job in jobs)
            )
        )

    def _respond(self, started: float, result: RunResult) -> RunResult:
        self.metrics.counter("responses_total").inc()
        self.metrics.histogram("service_latency_s").observe(
            self.clock.monotonic() - started
        )
        return result

    @staticmethod
    async def _await_result(pending: _Pending) -> RunResult:
        # shield(): many requests await one future; one caller being
        # cancelled (client disconnect) must not cancel the shared
        # computation out from under the others.
        result = await asyncio.shield(pending.future)
        if isinstance(result, FailedJob):
            raise SimulationFailed(
                reason=result.reason,
                detail=result.error,
                attempts=result.attempts,
            )
        return result

    def _suggest_retry_after(self) -> float:
        """A retry-after hint scaled to how far behind the service is."""
        floor = self.config.retry_after_s
        if self._job_latency_ema is None:
            return floor
        backlog_batches = 1 + self._queue.qsize() // self.config.max_batch
        estimate = (
            self._job_latency_ema * self.config.max_batch * backlog_batches
        )
        return min(30.0, max(floor, estimate))

    # -- the batcher ---------------------------------------------------

    def _linger_seconds(self) -> float:
        """How long this batch should wait for company.

        Adapts to observed per-job latency: when jobs are cheap,
        lingering would dominate service time, so the batcher skips it;
        when jobs are expensive, a bounded linger lets concurrent
        clients join the batch (and coalesce duplicates) at negligible
        relative cost.
        """
        cap = self.config.batch_linger_s
        if self._job_latency_ema is None:
            return cap
        return min(cap, self._job_latency_ema * _LINGER_FRACTION)

    def _target_batch_size(self) -> int:
        """Batch size adapted to the observed queue depth."""
        return max(1, min(self.config.max_batch, 1 + self._queue.qsize()))

    async def _batch_loop(self) -> None:
        while True:
            item = await self._queue.get()
            if item is _SHUTDOWN:
                return
            linger = self._linger_seconds()
            if linger > 0 and self._queue.qsize() == 0:
                await asyncio.sleep(linger)
            batch = [item]
            target = self._target_batch_size()
            while len(batch) < target:
                try:
                    extra = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra is _SHUTDOWN:
                    # Put the sentinel back for the next loop turn so
                    # the current batch still completes.
                    await self._queue.put(_SHUTDOWN)
                    break
                batch.append(extra)
            self.metrics.gauge("queue_depth").set(self._queue.qsize())
            await self._run_batch(batch)

    def _run_many(self, jobs: list[SimJob]) -> list:
        return self.engine.run_many(
            jobs,
            max_workers=self.config.max_workers,
            job_timeout=self.config.job_timeout,
            retries=self.config.retries,
        )

    async def _run_batch(self, batch: list[_Pending]) -> None:
        jobs = [item.job for item in batch]
        started = self.clock.monotonic()
        loop = asyncio.get_running_loop()
        try:
            results = await loop.run_in_executor(None, self._run_many, jobs)
        except Exception as exc:  # engine infrastructure, not a job
            _log.exception("batch of %d job(s) failed in the engine", len(jobs))
            failure = FailedJob(job=None, reason="error", error=repr(exc))
            results = [failure] * len(batch)
        elapsed = self.clock.monotonic() - started
        per_job = elapsed / len(batch)
        self._job_latency_ema = (
            per_job if self._job_latency_ema is None
            else _EMA_ALPHA * per_job
            + (1 - _EMA_ALPHA) * self._job_latency_ema
        )
        self.metrics.counter("batches_total").inc()
        self.metrics.counter("engine_jobs_total").inc(len(batch))
        self.metrics.histogram("batch_size").observe(len(batch))
        self.metrics.histogram("batch_latency_s").observe(elapsed)
        self.metrics.gauge("job_latency_ema_s").set(self._job_latency_ema)
        for item, result in zip(batch, results, strict=True):
            self._inflight.pop(item.key, None)
            if isinstance(result, FailedJob):
                self.metrics.counter(
                    f"failed_{result.reason}_total"
                ).inc()
            if not item.future.done():
                item.future.set_result(result)

    # -- observability -------------------------------------------------

    def snapshot(self) -> dict:
        """The metrics snapshot plus derived rates and engine counters."""
        snap = self.metrics.snapshot()
        counters = snap["counters"]
        requests = counters.get("requests_total", 0)
        coalesced = counters.get("coalesced_total", 0)
        store_hits = counters.get("store_hits_total", 0)
        store_stats = self.engine.store.stats()
        snap["derived"] = {
            "coalesce_hit_rate": coalesced / requests if requests else 0.0,
            "store_hit_rate": store_hits / requests if requests else 0.0,
            "combined_hit_rate": (
                (coalesced + store_hits) / requests if requests else 0.0
            ),
        }
        snap["engine"] = {
            "pool_fallbacks": get_pool_fallback_count(),
            "store_entries": store_stats.size,
            "store_hits": store_stats.hits,
            "store_misses": store_stats.misses,
            "store_evictions": store_stats.evictions,
            "store_max_entries": store_stats.max_entries,
        }
        return snap
