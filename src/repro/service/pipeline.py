"""The service's request pipeline: route, admit, coalesce, batch, serve.

One :class:`SimulationService` fronts N independent shards.  Each shard
(:class:`ShardPipeline`) is a wired stack of the composable stages from
:mod:`repro.service.stages` — Admission, Coalescer, Batcher, Executor —
with its own metrics scope, and the
:class:`~repro.service.router.ShardRouter` consistent-hashes canonical
run_keys across them so every spelling of the same configuration lands
on the same shard (preserving the coalescing win per shard).  The full
request path:

1. **routing** — the canonical :func:`~repro.sim.stages.run_key` picks
   the owning shard;
2. **read-through cache** — a request whose run_key is already in the
   engine's :class:`~repro.sim.store.ResultStore` (memory LRU or the
   disk warehouse tier beneath it) is answered immediately;
3. **coalescing** — identical configurations *in flight* share one
   computation: the first request enqueues a job, the rest await the
   same future (``coalesced_total`` counts the sharers);
4. **admission control** — each shard's pending queue is bounded; a
   request that cannot be enqueued raises
   :class:`~repro.service.stages.Backpressure` with a suggested
   retry-after derived from observed latency, which the HTTP layer
   turns into a ``429`` (the service never silently queues unbounded
   work or hangs a connection);
5. **adaptive batching** — each shard's batcher task drains its queue
   into :meth:`~repro.sim.engine.StagedEngine.run_many` calls, sizing
   each batch from the observed queue depth and lingering (briefly, and
   only when jobs are expensive enough for batching to pay) to let
   concurrent clients pile in;
6. **failure isolation** — the hardened engine turns worker crashes,
   timeouts, and pool breakage into typed
   :class:`~repro.sim.engine.FailedJob` slots, which surface here as
   :class:`~repro.service.stages.SimulationFailed` — a structured error
   response, never a hung connection.

With ``--workers N`` each shard dispatches its batches into engine
worker processes, so N shards drive N pools concurrently; ``/sweep``
requests fan their expanded points across all shards through the same
:meth:`SimulationService.submit_many` path.

Every clock read goes through the injectable
:class:`~repro.service.clock.Clock` (see that module for the lint
story).  Determinism: the pipeline only ever *routes* work to the
engine — results are the engine's, bit-for-bit, no matter which tier
(store, coalescing map, fresh batch) or shard served them.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Iterable

from repro.sim import stages as sim_stages
from repro.sim.engine import (
    FailedJob,
    SimJob,
    StagedEngine,
    get_pool_fallback_count,
)
from repro.sim.metrics import RunResult
from repro.service.clock import MONOTONIC_CLOCK, Clock
from repro.service.metrics import MetricsRegistry, MetricsScope
from repro.service.router import ShardRouter
from repro.service.stages import (
    Admission,
    Backpressure,
    Batcher,
    Coalescer,
    Executor,
    Pending,
    ServiceError,
    SimulationFailed,
)
from repro.sim.store import StoreKey

__all__ = [
    "Backpressure",
    "ServiceConfig",
    "ServiceError",
    "ShardPipeline",
    "SimulationFailed",
    "SimulationService",
]


@dataclass(frozen=True)
class ServiceConfig:
    """Every operational knob of the pipeline.

    Attributes:
        max_queue: Pending (not yet batched) jobs each shard will hold
            before rejecting new work with
            :class:`~repro.service.stages.Backpressure`.
        max_batch: Largest job count handed to one ``run_many`` call.
        batch_linger_s: Upper bound on how long a batcher waits for
            more arrivals after the first job of a batch; the actual
            linger adapts downward for cheap jobs.
        retry_after_s: Floor of the retry-after hint sent with a
            rejection; scaled up by observed latency and queue depth.
        max_sweep_jobs: Largest job count one sweep request may expand
            to (sweeps self-throttle through the queue rather than
            being rejected, so this bounds their footprint).
        max_workers: Engine process-pool width per batch (``None`` uses
            the engine default; 1 = in-process).
        job_timeout: Per-job seconds before the engine declares a
            :class:`~repro.sim.engine.FailedJob` (pool runs only).
        retries: Engine-level re-attempts per job.
        shards: Independent stage stacks the service routes across;
            each has its own queue, coalescing map, and batcher task.
    """

    max_queue: int = 128
    max_batch: int = 16
    batch_linger_s: float = 0.02
    retry_after_s: float = 0.25
    max_sweep_jobs: int = 1024
    max_workers: int | None = None
    job_timeout: float | None = None
    retries: int = 1
    shards: int = 1

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.batch_linger_s < 0:
            raise ValueError(
                f"batch_linger_s must be >= 0, got {self.batch_linger_s}"
            )
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")


async def _await_result(pending: Pending) -> RunResult:
    # shield(): many requests await one future; one caller being
    # cancelled (client disconnect) must not cancel the shared
    # computation out from under the others.
    result = await asyncio.shield(pending.future)
    if isinstance(result, FailedJob):
        raise SimulationFailed(
            reason=result.reason,
            detail=result.error,
            attempts=result.attempts,
        )
    return result


class ShardPipeline:
    """One shard: a wired stack of pipeline stages over a shared engine.

    Args:
        index: The shard's position in the service's shard list (names
            its metrics scope and batcher task).
        engine: The engine every shard shares (the store beneath it is
            the cross-shard cache).
        config: Operational knobs; see :class:`ServiceConfig`.
        clock: Monotonic time source.
        metrics: The shard's labelled metrics scope.
    """

    def __init__(
        self,
        index: int,
        engine: StagedEngine,
        config: ServiceConfig,
        clock: Clock,
        metrics: MetricsScope,
    ) -> None:
        self.index = index
        self.metrics = metrics
        self.executor = Executor(
            engine=engine,
            max_workers=config.max_workers,
            job_timeout=config.job_timeout,
            retries=config.retries,
            metrics=metrics,
        )
        self.batcher = Batcher(
            max_batch=config.max_batch,
            linger_s=config.batch_linger_s,
            retry_after_floor=config.retry_after_s,
            clock=clock,
            metrics=metrics,
        )
        self.admission = Admission(
            max_queue=config.max_queue,
            metrics=metrics,
            retry_after=self.batcher.suggest_retry_after,
        )
        self.coalescer = Coalescer(metrics=metrics)

    @property
    def stages(self) -> tuple:
        """The shard's stages in pipeline order."""
        return (self.admission, self.coalescer, self.batcher, self.executor)

    def start(self) -> None:
        """Spawn the shard's batcher task; idempotent."""
        self.batcher.start(
            self.admission,
            self.coalescer,
            self.executor,
            task_name=f"repro-service-batcher-{self.index}",
        )

    async def drain(self) -> None:
        """Shut the stages down in pipeline-safe order.

        The batcher exits first (completing its current batch), then
        admission fails anything stranded behind the sentinel, then the
        coalescing map clears.
        """
        await self.batcher.drain()
        await self.admission.drain()
        await self.coalescer.drain()
        await self.executor.drain()

    async def submit(self, key: StoreKey, job: SimJob, wait: bool) -> RunResult:
        """Serve one routed job through this shard's stage stack."""
        self.metrics.counter("requests_total").inc()
        store = self.executor.engine.store
        if key in store:
            self.metrics.counter("store_hits_total").inc()
            return store.get(key)
        pending = self.coalescer.join(key)
        if pending is not None:
            return await _await_result(pending)
        pending = Pending(
            key=key, job=job,
            future=asyncio.get_running_loop().create_future(),
        )
        if wait:
            # Register before the (possibly blocking) put so duplicates
            # arriving while we wait for queue space still coalesce.
            self.coalescer.register(pending)
            await self.admission.offer(pending, wait=True)
        else:
            # Offer first: a Backpressure rejection must not leave a
            # never-to-run future in the coalescing map.
            await self.admission.offer(pending, wait=False)
            self.coalescer.register(pending)
        return await _await_result(pending)

    def snapshot(self) -> dict:
        """Each stage's operational snapshot, keyed by stage name."""
        return {stage.name: stage.snapshot() for stage in self.stages}


class SimulationService:
    """The async request pipeline in front of a :class:`StagedEngine`.

    Args:
        engine: The engine to drive (default: a fresh one over the
            process-wide store).  All shards share it — and the store
            beneath it, so a result computed by one shard is a store
            hit on every shard.
        config: Operational knobs; see :class:`ServiceConfig`.
        clock: Monotonic time source (tests inject a fake).
        metrics: Registry to record into (default: a private one).

    Use as an async context manager, or call :meth:`start` /
    :meth:`stop` explicitly.  All methods must be called from the
    event loop the service was started on.
    """

    def __init__(
        self,
        engine: StagedEngine | None = None,
        config: ServiceConfig | None = None,
        clock: Clock | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.engine = engine if engine is not None else StagedEngine()
        self.config = config if config is not None else ServiceConfig()
        self.clock = clock if clock is not None else MONOTONIC_CLOCK
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.router = ShardRouter(self.config.shards)
        self.shards = [
            ShardPipeline(
                index=index,
                engine=self.engine,
                config=self.config,
                clock=self.clock,
                metrics=self.metrics.scoped(f"shard_{index}"),
            )
            for index in range(self.config.shards)
        ]
        self._started = False

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Spawn every shard's batcher task; idempotent."""
        if self._started:
            return
        self._started = True
        for shard in self.shards:
            shard.start()

    async def stop(self) -> None:
        """Drain every shard and flush the store's warehouse tier."""
        if not self._started:
            return
        self._started = False
        for shard in self.shards:
            await shard.drain()
        self.engine.store.flush()

    async def __aenter__(self) -> "SimulationService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # -- the request path ----------------------------------------------

    def shard_for(self, key: StoreKey) -> ShardPipeline:
        """The shard owning ``key`` under the router."""
        return self.shards[self.router.route(key)]

    def queue_depth(self) -> int:
        """Pending jobs across every shard's admission queue."""
        return sum(shard.admission.depth for shard in self.shards)

    async def submit(self, job: SimJob, wait: bool = False) -> RunResult:
        """Serve one canonicalized job through the full pipeline.

        Args:
            job: The canonical configuration to simulate.
            wait: When the owning shard's queue is full, ``False`` (the
                default, used for external requests) raises
                :class:`~repro.service.stages.Backpressure`; ``True``
                (used by internal fan-outs like sweeps) awaits queue
                space instead, so a large expansion throttles itself
                rather than being rejected.

        Raises:
            Backpressure: Queue full and ``wait`` is false.
            SimulationFailed: The engine gave up on the job.
        """
        if not self._started:
            raise ServiceError("service is not running (call start())")
        started = self.clock.monotonic()
        key = sim_stages.run_key(job.app, job.scheme, job.system)
        result = await self.shard_for(key).submit(key, job, wait)
        return self._respond(started, result)

    async def submit_many(self, jobs: Iterable[SimJob]) -> list[RunResult]:
        """Fan a set of jobs across the shards, preserving order.

        Used by sweep requests: every job routes to its owning shard
        and rides the same coalescing and batching machinery as
        individual requests (a concurrent client asking for one of the
        sweep's points shares its computation), so a sweep's points run
        on every shard's engine pool concurrently.  Jobs beyond a
        shard's queue bound throttle the caller instead of being
        rejected; an oversized expansion raises
        :class:`~repro.service.stages.ServiceError` up front.
        """
        jobs = list(jobs)
        if len(jobs) > self.config.max_sweep_jobs:
            raise ServiceError(
                f"sweep expands to {len(jobs)} jobs, over the "
                f"configured cap of {self.config.max_sweep_jobs}"
            )
        return list(
            await asyncio.gather(
                *(self.submit(job, wait=True) for job in jobs)
            )
        )

    def _respond(self, started: float, result: RunResult) -> RunResult:
        self.metrics.counter("responses_total").inc()
        self.metrics.histogram("service_latency_s").observe(
            self.clock.monotonic() - started
        )
        return result

    # -- observability -------------------------------------------------

    def snapshot(self) -> dict:
        """The metrics snapshot plus derived rates, engine counters,
        warehouse-tier statistics, and per-shard stage state."""
        # The bare queue_depth gauge is last-writer-wins across shards;
        # pin it to the true cross-shard sum at snapshot time.
        self.metrics.gauge("queue_depth").set(self.queue_depth())
        snap = self.metrics.snapshot()
        counters = snap["counters"]
        requests = counters.get("requests_total", 0)
        coalesced = counters.get("coalesced_total", 0)
        store_hits = counters.get("store_hits_total", 0)
        store_stats = self.engine.store.stats()
        snap["derived"] = {
            "coalesce_hit_rate": coalesced / requests if requests else 0.0,
            "store_hit_rate": store_hits / requests if requests else 0.0,
            "combined_hit_rate": (
                (coalesced + store_hits) / requests if requests else 0.0
            ),
        }
        snap["engine"] = {
            "pool_fallbacks": get_pool_fallback_count(),
            "store_entries": store_stats.size,
            "store_hits": store_stats.hits,
            "store_misses": store_stats.misses,
            "store_evictions": store_stats.evictions,
            "store_max_entries": store_stats.max_entries,
            "store_disk_hits": store_stats.disk_hits,
            "store_promotions": store_stats.promotions,
            "warehouse_segments": store_stats.warehouse_segments,
            "warehouse_bytes": store_stats.warehouse_bytes,
        }
        snap["shards"] = {
            f"shard_{shard.index}": shard.snapshot() for shard in self.shards
        }
        return snap
