"""Chaos harness: ``repro chaos`` — prove the service survives faults.

Boots a real sharded service (HTTP listener, pipeline, supervisor,
breakers, disk warehouse) through the same :class:`ServerHarness` the
``--check`` smoke test uses, then drives duplicate-heavy golden traffic
while a **seeded chaos schedule** injects faults phase by phase:

1. **crash storm** — batches are killed mid-flight with
   :class:`~repro.service.stages.BatchCrash` (Bernoulli schedule) and
   slowed by bursty latency (Gilbert–Elliott schedule) while golden
   clients hammer the service; the supervisor must fence, re-route, and
   restart, and every client must still get byte-identical answers;
2. **failure burst** — every batch on the wire fails, driving the
   per-shard circuit breakers open; once chaos stops, cold probes must
   walk the breakers half-open → closed again;
3. **corruption + scrub** — bytes are flipped inside flushed warehouse
   segments on disk, then a supervisor scrub pass must detect the CRC
   damage and repair the records from the in-memory tier;
4. **tight deadlines** — latency injection plus near-zero client
   budgets must produce structured 504s (never hangs) and count
   ``deadline_expirations``;
5. **queue flood** — a burst of cold distinct configurations against a
   tiny admission queue; backpressured clients must retry and converge
   with zero silent drops.

The chaos *schedules* reuse the repository's seeded fault processes
(:mod:`repro.faults.processes`) with one "wire" per shard, so a run is
reproducible event-for-event from ``--seed`` — the same machinery that
perturbs wires in the link-level campaigns here decides which shard
dies when (see ``docs/faults.md``).

The run fails loudly unless: every verified response is byte-identical
to a direct :class:`~repro.sim.engine.StagedEngine` run, no request is
silently dropped, recovery actually happened (``supervisor_restarts``,
breaker opens *and* closes, ``scrub_repairs``, and
``deadline_expirations`` all > 0 in ``/metrics``), recovery latency
stayed bounded, and shutdown leaves no orphaned tasks.
"""

from __future__ import annotations

import asyncio
import json
import random
import sys
import threading
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.faults.processes import FaultConfig, make_process
from repro.service import codec
from repro.service.breaker import BreakerConfig
from repro.service.check import ServerHarness, golden_jobs
from repro.service.client import ServiceClientError, ServiceRequestError
from repro.service.pipeline import ServiceConfig
from repro.service.stages import BatchCrash
from repro.sim import stages as sim_stages
from repro.sim.config import SystemConfig
from repro.sim.engine import SimJob, StagedEngine
from repro.sim.store import ResultStore
from repro.sim.warehouse import _RECORD

__all__ = ["ChaosController", "ChaosSchedule", "run_chaos"]

#: Recovery must complete within this many seconds (detect → restart).
RECOVERY_LATENCY_BOUND_S = 5.0


class ChaosSchedule:
    """A seeded per-shard chaos event source.

    Reuses the fault-process machinery — one "wire" per shard, one tick
    per consultation — so chaos events flow from the same reproducible
    generators as the link-level fault campaigns.  An optional budget
    caps total events so a storm always quiets down.

    Args:
        rate: Per-consultation event probability per shard.
        shards: Number of shards ("wires").
        rng: The seeded generator every draw flows from.
        burst: Use the bursty Gilbert–Elliott chain instead of
            memoryless Bernoulli draws.
        budget: Maximum events ever fired, or None for unlimited.
    """

    def __init__(
        self,
        rate: float,
        shards: int,
        rng: np.random.Generator,
        burst: bool = False,
        budget: int | None = None,
    ) -> None:
        self._process = make_process(
            rate, shards, FaultConfig(burst=burst), rng
        )
        self._budget = budget
        self.fired = 0

    def fire(self, shard: int) -> bool:
        """Tick the schedule; True when this shard suffers an event."""
        events = self._process.sample()
        if self._budget is not None and self.fired >= self._budget:
            return False
        if bool(events[shard]):
            self.fired += 1
            return True
        return False


class ChaosController:
    """The switchboard the per-shard batch interceptors consult.

    The runner thread flips :attr:`mode`; the interceptors (running on
    the service's event loop) act on whatever mode they observe:

    * ``"kill"`` — the kill schedule decides which batches die with a
      :class:`BatchCrash`; the jitter schedule injects small bursty
      delays to widen the race windows around the crash;
    * ``"fail"`` — every batch raises, failing its jobs (the breaker
      fuel);
    * ``"slow"`` — every batch stalls ``latency_s`` before dispatch
      (the deadline fuel);
    * ``"off"`` — batches pass through untouched.
    """

    def __init__(
        self,
        shards: int,
        seed: int,
        kill_rate: float = 0.5,
        kill_budget: int = 4,
        jitter_rate: float = 0.3,
        jitter_s: float = 0.01,
        latency_s: float = 0.3,
    ) -> None:
        rng = np.random.default_rng(seed)
        self.mode = "off"
        self.kill_schedule = ChaosSchedule(
            kill_rate, shards, rng, burst=False, budget=kill_budget
        )
        self.jitter_schedule = ChaosSchedule(
            jitter_rate, shards, rng, burst=True
        )
        self.jitter_s = jitter_s
        self.latency_s = latency_s
        self.kills = 0
        self.failures = 0
        self.delays = 0

    def interceptor_for(self, shard: int):
        """The batch interceptor for one shard (service plug point)."""

        async def intercept(jobs: list[SimJob]) -> None:
            mode = self.mode
            if mode == "off":
                return
            if mode == "kill":
                if self.jitter_schedule.fire(shard):
                    self.delays += 1
                    await asyncio.sleep(self.jitter_s)
                if self.kill_schedule.fire(shard):
                    self.kills += 1
                    raise BatchCrash(
                        f"chaos kill on shard {shard} "
                        f"({len(jobs)} job(s) in flight)"
                    )
            elif mode == "fail":
                self.failures += 1
                raise RuntimeError(f"chaos failure injection on shard {shard}")
            elif mode == "slow":
                # Monotone stats counter: += is atomic between awaits on
                # the single event loop, and no reader couples delays to
                # other state, so interleaved increments are benign.
                self.delays += 1  # lint-ok: R007
                await asyncio.sleep(self.latency_s)

        return intercept

    def snapshot(self) -> dict:
        """Injected-event totals, JSON-ready."""
        return {
            "kills": self.kills,
            "failures": self.failures,
            "delays": self.delays,
        }


@dataclass
class _Outcome:
    """What one driver thread observed."""

    responses: list[tuple[int, dict]] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)


class _Oracle:
    """Byte-exact reference answers, computed on demand and cached."""

    def __init__(self) -> None:
        self._engine = StagedEngine(ResultStore())
        self._cache: dict = {}

    def bytes_for(self, job: SimJob) -> bytes:
        key = sim_stages.run_key(job.app, job.scheme, job.system)
        if key not in self._cache:
            result = self._engine.run(job.app, job.scheme, job.system)
            self._cache[key] = codec.encode_json(
                codec.result_to_payload(result)
            )
        return self._cache[key]


def _payload(job: SimJob) -> dict:
    return {
        "app": job.app.name,
        "scheme": asdict(job.scheme),
        "system": asdict(job.system),
    }


def _drive(
    harness: ServerHarness,
    indices: list[int],
    payloads: list[dict],
    outcome: _Outcome,
    barrier: threading.Barrier,
    hedge_after_s: float | None = None,
    jitter_seed: int | None = None,
) -> None:
    """One golden-traffic client: every request must converge."""
    try:
        with harness.client(
            timeout=120.0, max_attempts=12, backoff_s=0.05,
            jitter_seed=jitter_seed, hedge_after_s=hedge_after_s,
        ) as client:
            barrier.wait(timeout=60)
            for config_index in indices:
                reply = client.simulate_payload(payloads[config_index])
                outcome.responses.append((config_index, reply))
    except Exception as exc:
        outcome.errors.append(repr(exc))


def _run_phase(
    harness: ServerHarness,
    schedules: list[list[int]],
    payloads: list[dict],
    hedge_clients: int = 0,
) -> list[_Outcome]:
    """Drive one thread per schedule; join them all."""
    outcomes = [_Outcome() for _ in schedules]
    barrier = threading.Barrier(len(schedules))
    threads = [
        threading.Thread(
            target=_drive,
            args=(harness, schedule, payloads, outcomes[i], barrier),
            kwargs={
                "hedge_after_s": 2.0 if i < hedge_clients else None,
                "jitter_seed": 9000 + i,
            },
            name=f"repro-chaos-client-{i}",
        )
        for i, schedule in enumerate(schedules)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return outcomes


def _verify(
    outcomes: list[_Outcome],
    jobs: list[SimJob],
    oracle: _Oracle,
    expected: int,
    phase: str,
    problems: list[str],
) -> dict:
    """Assert zero drops and byte-identity for one phase's traffic."""
    answered = 0
    mismatches = 0
    for outcome in outcomes:
        problems.extend(f"[{phase}] {error}" for error in outcome.errors)
        for config_index, reply in outcome.responses:
            answered += 1
            if codec.encode_json(reply) != oracle.bytes_for(jobs[config_index]):
                mismatches += 1
    if answered != expected:
        problems.append(
            f"[{phase}] {expected - answered} request(s) silently dropped"
        )
    if mismatches:
        problems.append(
            f"[{phase}] {mismatches} response(s) differ from direct "
            "engine runs"
        )
    return {"expected": expected, "answered": answered,
            "mismatches": mismatches}


def _corrupt_segment_records(store: ResultStore, count: int) -> int:
    """Flip one value byte in up to ``count`` flushed warehouse records.

    Returns how many records were actually damaged on disk.
    """
    warehouse = store.warehouse
    assert warehouse is not None
    damaged = 0
    for _key, (path, offset, key_len, val_len, _crc) in list(
        warehouse._index.items()
    )[:count]:
        if val_len < 2:
            continue
        with open(path, "r+b") as handle:
            target = offset + _RECORD.size + key_len + 1
            handle.seek(target)
            byte = handle.read(1)
            handle.seek(target)
            handle.write(bytes([byte[0] ^ 0xFF]))
        damaged += 1
    return damaged


def run_chaos(
    quick: bool = False,
    seed: int = 0,
    num_clients: int | None = None,
    requests_per_client: int | None = None,
    sample_blocks: int | None = None,
    warehouse: str | None = None,
    report_out: str | None = None,
) -> tuple[int, dict]:
    """Run the chaos campaign; returns (exit code, report).

    One service instance lives through every phase, so the final
    ``/metrics`` scrape carries the whole campaign's recovery counters.
    ``quick`` shrinks the simulation cost and traffic volume, not the
    fault classes: every phase still runs.
    """
    if sample_blocks is None:
        sample_blocks = 200 if quick else 800
    if num_clients is None:
        num_clients = 8 if quick else 16
    if requests_per_client is None:
        requests_per_client = 3 if quick else 5

    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        return _run_chaos_inner(
            quick=quick,
            seed=seed,
            num_clients=num_clients,
            requests_per_client=requests_per_client,
            sample_blocks=sample_blocks,
            warehouse=warehouse if warehouse is not None else tmp,
            report_out=report_out,
        )


def _run_chaos_inner(
    quick: bool,
    seed: int,
    num_clients: int,
    requests_per_client: int,
    sample_blocks: int,
    warehouse: str,
    report_out: str | None,
) -> tuple[int, dict]:
    shards = 2
    system = SystemConfig(sample_blocks=sample_blocks)
    jobs = golden_jobs(system)
    oracle = _Oracle()
    controller = ChaosController(
        shards=shards,
        seed=seed,
        kill_budget=3 if quick else 6,
    )
    config = ServiceConfig(
        shards=shards,
        max_queue=8,
        breaker=BreakerConfig(
            window=8, failure_threshold=0.5, min_samples=2,
            cooldown_s=0.2, max_cooldown_s=1.0, probes=1,
        ),
        supervisor_interval_s=0.02,
        restart_backoff_s=0.02,
        restart_max_backoff_s=0.5,
    )
    engine = StagedEngine(ResultStore(warehouse=warehouse))
    problems: list[str] = []
    report: dict = {
        "quick": quick,
        "seed": seed,
        "shards": shards,
        "clients": num_clients,
        "sample_blocks": sample_blocks,
        "phases": {},
    }

    with ServerHarness(
        service_config=config,
        engine=engine,
        interceptor_factory=controller.interceptor_for,
    ) as harness:
        # -- phase 1: crash storm under golden duplicate-heavy traffic.
        controller.mode = "kill"
        golden_payloads = [_payload(job) for job in jobs]
        rng = random.Random(seed)
        schedules = [
            [rng.randrange(len(jobs))]
            + [rng.randrange(len(jobs))
               for _ in range(requests_per_client - 1)]
            for _ in range(num_clients)
        ]
        outcomes = _run_phase(
            harness, schedules, golden_payloads,
            hedge_clients=num_clients // 2,
        )
        controller.mode = "off"
        expected = sum(len(schedule) for schedule in schedules)
        report["phases"]["crash_storm"] = _verify(
            outcomes, jobs, oracle, expected, "crash-storm", problems
        )
        report["phases"]["crash_storm"]["kills"] = controller.kills
        if controller.kills == 0:
            problems.append(
                "[crash-storm] the seeded schedule never killed a batch"
            )

        # -- phase 2: failure burst opens the breakers, probes close
        # them.  Sacrificial cold configs; errors here are the point.
        controller.mode = "fail"
        burn_jobs = [
            SimJob.of(job.app.name, job.scheme,
                      system.with_(sample_blocks=sample_blocks + 1))
            for job in jobs[: 4 * shards]
        ]
        burned = 0
        with harness.client(max_attempts=1, backoff_s=0.01) as torch:
            for job in burn_jobs:
                try:
                    torch.simulate_payload(_payload(job))
                except ServiceClientError:
                    burned += 1
        controller.mode = "off"
        metrics_mid = harness.run_in_loop(
            lambda: harness.service.metrics.snapshot()
        )
        opens = metrics_mid["counters"].get("breaker_opens_total", 0)
        if opens == 0:
            problems.append(
                "[failure-burst] no breaker opened under a 100% "
                "failure rate"
            )
        # Cold probes walk the breakers half-open -> closed; the client
        # honours Retry-After on 503, so converged probes prove closure.
        probe_jobs = [
            SimJob.of(job.app.name, job.scheme,
                      system.with_(sample_blocks=sample_blocks + 2))
            for job in jobs[: 4 * shards]
        ]
        with harness.client(
            max_attempts=12, backoff_s=0.05, jitter_seed=seed,
        ) as probe:
            for job in probe_jobs:
                try:
                    probe.simulate_payload(_payload(job))
                except ServiceClientError as exc:
                    problems.append(
                        f"[failure-burst] recovery probe failed: {exc!r}"
                    )
        report["phases"]["failure_burst"] = {
            "burned": burned,
            "injected_failures": controller.failures,
            "breaker_opens": opens,
        }

        # -- phase 3: flip bytes in flushed segments, scrub repairs
        # them from the in-memory tier.
        harness.run_in_loop(engine.store.flush)
        damaged = _corrupt_segment_records(engine.store, count=3)
        scrub = harness.run_in_loop(
            harness.service.supervisor.scrub_now, timeout=60.0
        )
        report["phases"]["scrub"] = {"damaged": damaged, **scrub}
        if damaged == 0:
            problems.append(
                "[scrub] nothing was flushed to the warehouse to corrupt"
            )
        if scrub.get("repaired", 0) < damaged:
            problems.append(
                f"[scrub] corrupted {damaged} record(s) but only "
                f"{scrub.get('repaired', 0)} repaired"
            )
        if scrub.get("lost", 0):
            problems.append(
                f"[scrub] {scrub['lost']} record(s) lost outright"
            )

        # -- phase 4: bursty latency + near-zero budgets -> structured
        # 504s, never hangs.  Sacrificial cold configs again.
        controller.mode = "slow"
        slow_jobs = [
            SimJob.of(job.app.name, job.scheme,
                      system.with_(sample_blocks=sample_blocks + 3))
            for job in jobs[: 2 * shards]
        ]
        expirations_seen = 0
        with harness.client(
            max_attempts=1, deadline_s=0.05, backoff_s=0.01,
        ) as hurried:
            for job in slow_jobs:
                try:
                    hurried.simulate_payload(_payload(job))
                except ServiceRequestError as exc:
                    if exc.status == 504:
                        expirations_seen += 1
                except ServiceClientError:
                    pass
        controller.mode = "off"
        report["phases"]["deadlines"] = {"expired_504s": expirations_seen}
        if expirations_seen == 0:
            problems.append(
                "[deadlines] no request expired under injected latency"
            )

        # -- phase 5: flood a tiny queue with cold distinct configs;
        # backpressured clients retry and converge, zero drops.
        flood_jobs = [
            SimJob.of(job.app.name, job.scheme,
                      system.with_(sample_blocks=sample_blocks + 4))
            for job in jobs[: 8]
        ]
        flood_payloads = [_payload(job) for job in flood_jobs]
        flood_schedules = [
            list(range(len(flood_jobs))) for _ in range(num_clients)
        ]
        flood_outcomes = _run_phase(
            harness, flood_schedules, flood_payloads
        )
        flood_expected = num_clients * len(flood_jobs)
        report["phases"]["queue_flood"] = _verify(
            flood_outcomes, flood_jobs, oracle, flood_expected,
            "queue-flood", problems,
        )

        # -- final metrics scrape + shutdown hygiene.
        with harness.client() as probe:
            metrics = probe.metrics()
        service = harness.service
    # Harness stopped: nothing may linger.
    supervisor_snap = service.supervisor.snapshot()
    if supervisor_snap["reroutes_inflight"]:
        problems.append(
            f"{supervisor_snap['reroutes_inflight']} re-route task(s) "
            "orphaned after shutdown"
        )
    if supervisor_snap["running"]:
        problems.append("supervisor health loop survived shutdown")
    for shard in service.shards:
        if shard.batcher.running:
            problems.append(
                f"shard {shard.index} drain task survived shutdown"
            )

    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    histograms = metrics.get("histograms", {})
    for name in ("supervisor_restarts", "breaker_opens_total",
                 "breaker_closes_total", "scrub_repairs",
                 "deadline_expirations"):
        if counters.get(name, 0) <= 0:
            problems.append(f"/metrics counter {name} never moved")
    if not any(name.endswith("breaker_state") for name in gauges):
        problems.append("/metrics exports no breaker_state gauge")
    recovery = histograms.get("supervisor_recovery_latency_s") or {}
    worst = recovery.get("max")
    if worst is not None and worst > RECOVERY_LATENCY_BOUND_S:
        problems.append(
            f"worst recovery latency {worst:.2f}s exceeds the "
            f"{RECOVERY_LATENCY_BOUND_S}s bound"
        )

    report["chaos"] = controller.snapshot()
    report["supervisor"] = supervisor_snap
    report["recovery_latency"] = recovery
    report["counters"] = {
        name: counters.get(name, 0)
        for name in ("supervisor_restarts", "breaker_opens_total",
                     "breaker_closes_total", "scrub_repairs",
                     "scrub_passes_total", "deadline_expirations",
                     "rejected_total", "coalesced_total")
    }
    report["problems"] = problems
    report["ok"] = not problems
    if report_out:
        with open(report_out, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"wrote {report_out}", file=sys.stderr)
    return (1 if problems else 0), report
