"""Small statistics helpers (geometric mean, as the paper reports)."""

from __future__ import annotations

import math
from collections.abc import Iterable

__all__ = ["geomean"]


def geomean(values: Iterable[float]) -> float:
    """Geometric mean, the aggregate the paper uses across applications."""
    values = list(values)
    if not values:
        raise ValueError("geomean of an empty sequence")
    return math.exp(sum(math.log(v) for v in values) / len(values))
