"""Small argument-validation helpers used across the package.

These keep constructor bodies flat: validate early, raise ``ValueError``
with a message naming the offending parameter, then proceed knowing the
invariant holds (see the guide's "return early on bad input" idiom).
"""

from __future__ import annotations

__all__ = [
    "require_positive",
    "require_non_negative",
    "require_power_of_two",
    "require_in_range",
    "require_multiple",
]


def require_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")


def require_non_negative(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")


def require_power_of_two(name: str, value: int) -> None:
    """Raise ``ValueError`` unless ``value`` is a positive power of two."""
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{name} must be a power of two, got {value}")


def require_in_range(name: str, value: float, low: float, high: float) -> None:
    """Raise ``ValueError`` unless ``low <= value <= high``."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")


def require_multiple(name: str, value: int, factor: int) -> None:
    """Raise ``ValueError`` unless ``value`` is a multiple of ``factor``."""
    if value % factor:
        raise ValueError(f"{name} must be a multiple of {factor}, got {value}")
