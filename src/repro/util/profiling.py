"""Lightweight named-timer registry for hot-path profiling.

The simulation pipeline and the kernels layer wrap their hot sections
in :func:`timed` blocks.  Profiling is off by default and the disabled
path is a single attribute check, so instrumented code pays nothing in
normal runs; ``repro run figNN --profile`` (or
:meth:`TimerRegistry.enable`) turns collection on and prints a
per-section table afterwards.

Sections are named hierarchically with dots (``stage.workload``,
``kernel.multicore``) so reports group naturally.  Timers nest and
re-enter freely; each ``timed`` block adds its own wall-clock span to
its section, so a section's total can exceed the run's wall time when
blocks overlap on the stack.
"""

from __future__ import annotations

import time
from contextlib import AbstractContextManager, contextmanager
from dataclasses import dataclass
from typing import Iterator

__all__ = ["PROFILER", "SectionStat", "TimerRegistry", "timed"]


@dataclass
class SectionStat:
    """Accumulated wall-clock time for one named section."""

    calls: int = 0
    seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.seconds / self.calls if self.calls else 0.0


class TimerRegistry:
    """Accumulates wall-clock time per named section.

    One process-global instance (:data:`PROFILER`) backs the ``timed``
    helper; tests may construct private registries.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._stats: dict[str, SectionStat] = {}

    def enable(self) -> None:
        """Start collecting timings."""
        self.enabled = True

    def disable(self) -> None:
        """Stop collecting timings (already collected data is kept)."""
        self.enabled = False

    def reset(self) -> None:
        """Discard all collected timings."""
        self._stats.clear()

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Time a block under ``name`` (no-op while disabled)."""
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            stat = self._stats.get(name)
            if stat is None:
                stat = self._stats[name] = SectionStat()
            stat.calls += 1
            stat.seconds += elapsed

    def record(self, name: str, seconds: float) -> None:
        """Fold an externally measured span into ``name``.

        For callers that already hold a duration (e.g. the benchmark
        harness) and want it in the same report.
        """
        if not self.enabled:
            return
        stat = self._stats.get(name)
        if stat is None:
            stat = self._stats[name] = SectionStat()
        stat.calls += 1
        stat.seconds += seconds

    def report(self) -> dict[str, SectionStat]:
        """Sections observed so far, slowest first."""
        return dict(
            sorted(
                self._stats.items(),
                key=lambda item: item[1].seconds,
                reverse=True,
            )
        )

    def format_report(self) -> str:
        """A fixed-width table of the collected sections."""
        stats = self.report()
        if not stats:
            return "no profiling data collected"
        width = max(len(name) for name in stats)
        lines = [
            f"{'section':{width}s} {'calls':>8s} {'total':>10s} {'mean':>10s}"
        ]
        for name, stat in stats.items():
            lines.append(
                f"{name:{width}s} {stat.calls:8d} "
                f"{stat.seconds:9.3f}s {stat.mean_seconds * 1e3:8.3f}ms"
            )
        return "\n".join(lines)


#: The process-global registry that :func:`timed` records into.
PROFILER = TimerRegistry()


def timed(name: str) -> "AbstractContextManager[None]":
    """Context manager timing a block into the global registry."""
    return PROFILER.section(name)
