"""Bit-level helpers shared by the encoding, ECC, and core packages.

The simulator manipulates cache blocks in three interchangeable forms:

* **int** — an arbitrary-precision Python integer (bit ``i`` is
  ``(value >> i) & 1``).
* **bit array** — a ``numpy`` ``uint8`` array of 0/1 values, index ``i``
  holding bit ``i`` (little-endian bit order).
* **chunk array** — a ``numpy`` ``int64`` array of fixed-width fields cut
  from the bit string, chunk 0 holding the least-significant bits.

All converters here round-trip exactly and are property-tested in
``tests/util/test_bitops.py``.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.batched import popcount

__all__ = [
    "int_to_bits",
    "bits_to_int",
    "int_to_chunks",
    "chunks_to_int",
    "bits_to_chunks",
    "chunks_to_bits",
    "bit_matrix_to_chunks",
    "chunk_matrix_to_bits",
    "hamming_distance",
    "hamming_weight",
    "popcount_array",
    "random_bits",
    "random_block",
]


def int_to_bits(value: int, width: int) -> np.ndarray:
    """Expand ``value`` into ``width`` little-endian bits.

    Raises ``ValueError`` if the value does not fit or is negative.
    """
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    if value >> width:
        raise ValueError(f"value {value:#x} does not fit in {width} bits")
    if width == 0:
        return np.empty(0, dtype=np.uint8)
    raw = value.to_bytes((width + 7) // 8, "little")
    unpacked = np.unpackbits(np.frombuffer(raw, dtype=np.uint8), bitorder="little")
    return unpacked[:width]


def bits_to_int(bits: np.ndarray) -> int:
    """Collapse a little-endian 0/1 array back into an integer."""
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.size == 0:
        return 0
    packed = np.packbits(bits, bitorder="little")
    return int.from_bytes(packed.tobytes(), "little")


def int_to_chunks(value: int, chunk_bits: int, num_chunks: int) -> np.ndarray:
    """Split ``value`` into ``num_chunks`` fields of ``chunk_bits`` each.

    Chunk 0 receives the least-significant field, mirroring the paper's
    partitioning of a cache block into contiguous chunks (Figure 4).
    """
    if chunk_bits <= 0:
        raise ValueError(f"chunk_bits must be positive, got {chunk_bits}")
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    if value >> (chunk_bits * num_chunks):
        raise ValueError(
            f"value needs more than {num_chunks} chunks of {chunk_bits} bits"
        )
    mask = (1 << chunk_bits) - 1
    chunks = np.empty(num_chunks, dtype=np.int64)
    for i in range(num_chunks):
        chunks[i] = (value >> (i * chunk_bits)) & mask
    return chunks


def chunks_to_int(chunks: np.ndarray, chunk_bits: int) -> int:
    """Inverse of :func:`int_to_chunks`."""
    value = 0
    for i, chunk in enumerate(chunks):
        chunk = int(chunk)
        if chunk < 0 or chunk >> chunk_bits:
            raise ValueError(
                f"chunk {i} value {chunk} does not fit in {chunk_bits} bits"
            )
        value |= chunk << (i * chunk_bits)
    return value


def bits_to_chunks(bits: np.ndarray, chunk_bits: int) -> np.ndarray:
    """Group a little-endian bit array into ``chunk_bits``-wide fields."""
    return bit_matrix_to_chunks(np.asarray(bits)[None, :], chunk_bits)[0]


def chunks_to_bits(chunks: np.ndarray, chunk_bits: int) -> np.ndarray:
    """Inverse of :func:`bits_to_chunks`."""
    return chunk_matrix_to_bits(np.asarray(chunks)[None, :], chunk_bits)[0]


def bit_matrix_to_chunks(bits: np.ndarray, chunk_bits: int) -> np.ndarray:
    """Regroup a ``(n, width)`` bit matrix into ``chunk_bits``-wide fields.

    The vectorized batch form of :func:`bits_to_chunks`: row ``i`` of the
    result holds the chunk values of block ``i``, chunk 0 taking the
    least-significant bits.  This is the one bit→chunk implementation in
    the codebase; the simulation stages and the single-block helpers all
    delegate here.
    """
    bits = np.asarray(bits)
    if bits.ndim != 2:
        raise ValueError(f"expected a 2-D bit matrix, got shape {bits.shape}")
    n, width = bits.shape
    if width % chunk_bits:
        raise ValueError(
            f"bit width {width} is not a multiple of chunk size {chunk_bits}"
        )
    weights = (1 << np.arange(chunk_bits, dtype=np.int64))
    grouped = bits.astype(np.int64).reshape(n, width // chunk_bits, chunk_bits)
    return grouped @ weights


def chunk_matrix_to_bits(chunks: np.ndarray, chunk_bits: int) -> np.ndarray:
    """Inverse of :func:`bit_matrix_to_chunks` (little-endian bit order)."""
    chunks = np.asarray(chunks)
    if chunks.ndim != 2:
        raise ValueError(
            f"expected a 2-D chunk matrix, got shape {chunks.shape}"
        )
    shifts = np.arange(chunk_bits, dtype=np.int64)
    expanded = ((chunks.astype(np.int64)[:, :, None] >> shifts) & 1).astype(
        np.uint8
    )
    return expanded.reshape(chunks.shape[0], -1)


def hamming_distance(a: int, b: int) -> int:
    """Number of bit positions in which ``a`` and ``b`` differ."""
    return (a ^ b).bit_count()


def hamming_weight(a: int) -> int:
    """Number of set bits in ``a``."""
    return a.bit_count()


def popcount_array(values: np.ndarray) -> np.ndarray:
    """Per-element population count for a non-negative int64 array.

    Delegates to the batched kernel (:func:`repro.kernels.popcount`):
    one hardware ``popcnt`` pass instead of a shift-and-mask loop.
    """
    return popcount(values)


def random_bits(width: int, rng: np.random.Generator) -> np.ndarray:
    """Uniform random little-endian bit array of the given width."""
    return rng.integers(0, 2, size=width, dtype=np.uint8)


def random_block(width: int, rng: np.random.Generator) -> int:
    """Uniform random ``width``-bit integer."""
    return bits_to_int(random_bits(width, rng))
