"""Shared utilities: bit manipulation and argument validation."""

from repro.util.bitops import (
    bits_to_chunks,
    bits_to_int,
    chunks_to_bits,
    chunks_to_int,
    hamming_distance,
    hamming_weight,
    int_to_bits,
    int_to_chunks,
    popcount_array,
    random_bits,
    random_block,
)
from repro.util.stats import geomean
from repro.util.validation import (
    require_in_range,
    require_multiple,
    require_non_negative,
    require_positive,
    require_power_of_two,
)

__all__ = [
    "bits_to_chunks",
    "bits_to_int",
    "chunks_to_bits",
    "chunks_to_int",
    "hamming_distance",
    "hamming_weight",
    "int_to_bits",
    "int_to_chunks",
    "popcount_array",
    "random_bits",
    "geomean",
    "random_block",
    "require_in_range",
    "require_multiple",
    "require_non_negative",
    "require_positive",
    "require_power_of_two",
]
