"""The one place the package's version string is resolved.

Installed checkouts report the distribution metadata (what ``pip``
actually installed, wheels included); source-tree runs fall back to
``repro.__version__``.  Every surface that stamps a version — the
``repro --version`` flag, the service's ``/healthz`` response, the
``BENCH_<rev>.json`` reports — goes through :func:`package_version`
so they can never disagree.
"""

from __future__ import annotations

from importlib import metadata

__all__ = ["package_version"]


def package_version() -> str:
    """The repro version string (distribution metadata when installed)."""
    try:
        return metadata.version("repro")
    except metadata.PackageNotFoundError:
        from repro import __version__

        return __version__
