"""DESC's chunk-interleaved ECC data layout (Figure 9, Section 3.2.3).

DESC transfers a whole chunk with a single wire transition, so one wire
error can corrupt up to ``chunk_bits`` bits at once.  To keep
conventional SECDED usable, the cache block is cut into ``segments``
(e.g. four 128-bit segments protected by (137, 128) codes) and the bits
are interleaved so that **every chunk carries at most one bit of each
segment** — a corrupted chunk then costs each segment at most a single
bit, which SECDED corrects; two corrupted chunks cost at most two bits
per segment, which SECDED detects.

Mapping: data bit ``p`` of segment ``s`` rides in lane ``s % chunk_bits``
of data chunk ``p * (num_segments // chunk_bits) + s // chunk_bits``;
the per-segment parity bits are interleaved into parity chunks the same
way.  For the paper's default — 512-bit blocks, four 128-bit segments,
4-bit chunks — this gives 128 data chunks plus 9 parity chunks, i.e.
nine additional wires, exactly as Section 3.2.3 states.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.ecc.hamming import DecodeStatus, HammingSecded
from repro.util.validation import require_multiple, require_positive

__all__ = ["EccBlockResult", "DescEccLayout", "secded_extend_stream"]


def secded_extend_stream(blocks_bits: np.ndarray, segment_bits: int) -> np.ndarray:
    """Append SECDED check bits for a *binary* bus (Figures 28/29).

    Under binary encoding each bus beat carries one ``segment_bits``
    data segment plus its check bits on dedicated parity wires (the
    ``W-S`` configurations with ``W == S``).  This helper widens a
    ``(n, block_bits)`` stream to ``(n, nseg * (segment_bits + p))``
    with each segment's bits followed by its check bits, ready for
    :class:`~repro.encoding.binary.BinaryEncoder` at width
    ``segment_bits + p``.
    """
    blocks_bits = np.asarray(blocks_bits, dtype=np.uint8)
    if blocks_bits.ndim != 2 or blocks_bits.shape[1] % segment_bits:
        raise ValueError(
            f"blocks of shape {blocks_bits.shape} cannot be cut into "
            f"{segment_bits}-bit segments"
        )
    n, block_bits = blocks_bits.shape
    nseg = block_bits // segment_bits
    code = HammingSecded(segment_bits)
    segments = blocks_bits.reshape(n * nseg, segment_bits)
    codewords = code.encode(segments)
    parity = np.concatenate(
        [codewords[:, code._parity_positions - 1], codewords[:, -1:]], axis=1
    )
    beats = np.concatenate([segments, parity], axis=1)
    return beats.reshape(n, nseg * (segment_bits + code.parity_bits))


@dataclass(frozen=True)
class EccBlockResult:
    """Outcome of decoding one protected block.

    Attributes:
        data_bits: ``(block_bits,)`` corrected data bits.
        status: Per-segment :class:`DecodeStatus` values.
    """

    data_bits: np.ndarray
    status: tuple[DecodeStatus, ...]

    @property
    def ok(self) -> bool:
        """True when every segment decoded without an uncorrectable error."""
        return all(s != DecodeStatus.DETECTED for s in self.status)


class DescEccLayout:
    """Interleaves data + SECDED parity into DESC chunks."""

    def __init__(
        self, block_bits: int = 512, segment_bits: int = 128, chunk_bits: int = 4
    ) -> None:
        require_positive("block_bits", block_bits)
        require_positive("segment_bits", segment_bits)
        require_positive("chunk_bits", chunk_bits)
        require_multiple("block_bits", block_bits, segment_bits)
        self.block_bits = block_bits
        self.segment_bits = segment_bits
        self.chunk_bits = chunk_bits
        self.num_segments = block_bits // segment_bits
        if self.num_segments % chunk_bits:
            raise ValueError(
                f"{self.num_segments} segments cannot interleave evenly into "
                f"{chunk_bits}-bit chunks"
            )
        self.code = HammingSecded(segment_bits)

    @property
    def parity_bits_per_segment(self) -> int:
        """SECDED check bits protecting each segment."""
        return self.code.parity_bits

    @property
    def num_data_chunks(self) -> int:
        """Chunks carrying data bits (128 in the default layout)."""
        return self.block_bits // self.chunk_bits

    @property
    def num_parity_chunks(self) -> int:
        """Chunks carrying parity bits (the "additional wires")."""
        return (
            self.parity_bits_per_segment * self.num_segments // self.chunk_bits
        )

    @property
    def num_chunks(self) -> int:
        """All chunks of a protected block transfer."""
        return self.num_data_chunks + self.num_parity_chunks

    @property
    def codeword_bits_total(self) -> int:
        """Bits on the wires per protected block."""
        return self.num_chunks * self.chunk_bits

    @cached_property
    def _groups_per_lane(self) -> int:
        return self.num_segments // self.chunk_bits

    def _interleave(self, per_segment: np.ndarray) -> np.ndarray:
        """``(num_segments, bits)`` → chunk values, one segment bit per lane."""
        bits = per_segment.shape[1]
        g = self._groups_per_lane
        # chunk index = p * g + s // chunk_bits ; lane = s % chunk_bits
        chunks_bits = np.zeros((bits * g, self.chunk_bits), dtype=np.uint8)
        for s in range(self.num_segments):
            lane = s % self.chunk_bits
            group = s // self.chunk_bits
            chunk_index = np.arange(bits) * g + group
            chunks_bits[chunk_index, lane] = per_segment[s]
        weights = 1 << np.arange(self.chunk_bits, dtype=np.int64)
        return chunks_bits.astype(np.int64) @ weights

    def _deinterleave(self, chunks: np.ndarray, bits: int) -> np.ndarray:
        """Inverse of :meth:`_interleave`."""
        g = self._groups_per_lane
        shifts = np.arange(self.chunk_bits, dtype=np.int64)
        lanes = ((np.asarray(chunks, dtype=np.int64)[:, None] >> shifts) & 1).astype(
            np.uint8
        )
        per_segment = np.zeros((self.num_segments, bits), dtype=np.uint8)
        for s in range(self.num_segments):
            lane = s % self.chunk_bits
            group = s // self.chunk_bits
            chunk_index = np.arange(bits) * g + group
            per_segment[s] = lanes[chunk_index, lane]
        return per_segment

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def encode_block(self, data_bits: np.ndarray) -> np.ndarray:
        """Protect a block: returns the chunk values put on the wires.

        The first :attr:`num_data_chunks` values are data chunks, the
        rest parity chunks.
        """
        data_bits = np.asarray(data_bits, dtype=np.uint8)
        if data_bits.shape != (self.block_bits,):
            raise ValueError(
                f"expected {self.block_bits} data bits, got {data_bits.shape}"
            )
        segments = data_bits.reshape(self.num_segments, self.segment_bits)
        codewords = self.code.encode(segments)
        # The Hamming construction scatters data bits over the
        # non-power-of-two codeword positions; on the wires we keep the
        # segments in natural order and ship the check bits (Hamming
        # parities + overall parity) separately, re-assembling
        # position-ordered codewords at decode.
        parity = np.concatenate(
            [codewords[:, self.code._parity_positions - 1], codewords[:, -1:]],
            axis=1,
        )
        data_chunks = self._interleave(segments)
        parity_chunks = self._interleave(parity)
        return np.concatenate([data_chunks, parity_chunks])

    def encode_stream(self, blocks_bits: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`encode_block` over ``(n, block_bits)`` blocks.

        Returns ``(n, num_chunks)`` chunk values (data chunks first,
        then parity chunks) — the wire stream the ECC benchmarks feed
        to the DESC cost model.
        """
        blocks_bits = np.asarray(blocks_bits, dtype=np.uint8)
        if blocks_bits.ndim != 2 or blocks_bits.shape[1] != self.block_bits:
            raise ValueError(
                f"expected blocks of shape (n, {self.block_bits}), "
                f"got {blocks_bits.shape}"
            )
        n = blocks_bits.shape[0]
        segments = blocks_bits.reshape(n * self.num_segments, self.segment_bits)
        codewords = self.code.encode(segments)
        parity = np.concatenate(
            [codewords[:, self.code._parity_positions - 1], codewords[:, -1:]],
            axis=1,
        )
        data3 = segments.reshape(n, self.num_segments, self.segment_bits)
        parity3 = parity.reshape(n, self.num_segments, self.parity_bits_per_segment)
        return np.concatenate(
            [self._interleave_stream(data3), self._interleave_stream(parity3)],
            axis=1,
        )

    def _interleave_stream(self, per_segment: np.ndarray) -> np.ndarray:
        """``(n, num_segments, bits)`` → ``(n, bits * groups)`` chunk values.

        Segment ``s = group * chunk_bits + lane`` contributes its bit
        ``p`` to lane ``lane`` of chunk ``p * groups + group`` — the same
        mapping as :meth:`_interleave`, fully vectorized.
        """
        n, _, bits = per_segment.shape
        g = self._groups_per_lane
        lanes = per_segment.reshape(n, g, self.chunk_bits, bits)
        lanes = lanes.transpose(0, 3, 1, 2).reshape(n, bits * g, self.chunk_bits)
        weights = 1 << np.arange(self.chunk_bits, dtype=np.int64)
        return lanes.astype(np.int64) @ weights

    def decode_block(self, chunks: np.ndarray) -> EccBlockResult:
        """Recover (and correct) a block from possibly corrupted chunks."""
        chunks = np.asarray(chunks, dtype=np.int64)
        if chunks.shape != (self.num_chunks,):
            raise ValueError(
                f"expected {self.num_chunks} chunk values, got {chunks.shape}"
            )
        data_chunks = chunks[: self.num_data_chunks]
        parity_chunks = chunks[self.num_data_chunks:]
        segments = self._deinterleave(data_chunks, self.segment_bits)
        parity = self._deinterleave(parity_chunks, self.parity_bits_per_segment)
        codewords = self._assemble_codewords(segments, parity)
        result = self.code.decode(codewords)
        return EccBlockResult(
            data_bits=result.data.reshape(-1),
            status=tuple(result.status),
        )

    def _assemble_codewords(
        self, segments: np.ndarray, parity: np.ndarray
    ) -> np.ndarray:
        """Rebuild position-ordered codewords from wire-ordered bits."""
        words = segments.shape[0]
        codewords = np.zeros((words, self.code.codeword_bits), dtype=np.uint8)
        codewords[:, self.code._data_positions - 1] = segments
        codewords[:, self.code._parity_positions - 1] = parity[
            :, : self.code.hamming_parity_bits
        ]
        codewords[:, -1] = parity[:, -1]
        return codewords

    def __repr__(self) -> str:
        return (
            f"DescEccLayout(({self.code.codeword_bits}, {self.segment_bits}) x "
            f"{self.num_segments}, chunk_bits={self.chunk_bits})"
        )
