"""Fault injection for the DESC ECC layout.

A wire error on a DESC H-tree shifts or drops a toggle, so the receiver
latches a wrong counter value: the whole chunk takes an arbitrary wrong
value (up to ``chunk_bits`` corrupted bits at once).  The injector
models exactly that — it replaces whole chunk values — which is the
error model Figure 9's interleaving is designed for.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import require_non_negative

__all__ = ["inject_chunk_errors"]


def inject_chunk_errors(
    chunks: np.ndarray,
    num_errors: int,
    rng: np.random.Generator,
    chunk_bits: int = 4,
) -> tuple[np.ndarray, np.ndarray]:
    """Corrupt ``num_errors`` distinct chunks with arbitrary wrong values.

    Returns ``(corrupted_chunks, error_positions)``.  Each selected
    chunk is replaced by a uniformly random *different* value, modelling
    a mislatched DESC counter.
    """
    require_non_negative("num_errors", num_errors)
    chunks = np.asarray(chunks, dtype=np.int64).copy()
    if num_errors > len(chunks):
        raise ValueError(
            f"cannot corrupt {num_errors} of {len(chunks)} chunks"
        )
    positions = rng.choice(len(chunks), size=num_errors, replace=False)
    limit = 1 << chunk_bits
    for pos in positions:
        wrong = int(rng.integers(0, limit - 1))
        # Shift past the original value so the chunk always changes.
        if wrong >= chunks[pos]:
            wrong += 1
        chunks[pos] = wrong
    return chunks, positions
