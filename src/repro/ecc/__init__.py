"""SECDED ECC: Hamming codes, DESC's interleaved layout, fault injection."""

from repro.ecc.hamming import DecodeResult, DecodeStatus, HammingSecded
from repro.ecc.injection import inject_chunk_errors
from repro.ecc.layout import DescEccLayout, EccBlockResult

__all__ = [
    "DecodeResult",
    "DecodeStatus",
    "DescEccLayout",
    "EccBlockResult",
    "HammingSecded",
    "inject_chunk_errors",
]
