"""SECDED extended Hamming codes — (72, 64) and (137, 128) and friends.

Single-error-correcting, double-error-detecting codes built the
classical way: data bits occupy the non-power-of-two positions of the
codeword (1-indexed), each Hamming parity bit at position ``2**i``
covers the positions whose index has bit ``i`` set, and one extra
overall-parity bit extends the code to double-error detection
(Slayman [22] in the paper).

For 64 data bits this yields 7 + 1 = 8 check bits — the (72, 64) code —
and for 128 data bits 8 + 1 = 9 — the (137, 128) code the DESC ECC
layout of Figure 9 uses.

Encode/decode are vectorized over whole matrices of words, which the
fault-injection campaigns in the tests and the ECC figure harnesses
rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from functools import cached_property

import numpy as np

from repro.util.validation import require_positive

__all__ = ["DecodeStatus", "DecodeResult", "HammingSecded"]


class DecodeStatus(Enum):
    """Outcome of decoding one codeword."""

    OK = "ok"
    CORRECTED = "corrected"
    DETECTED = "detected"  # uncorrectable double error


@dataclass(frozen=True)
class DecodeResult:
    """Decoded data plus the per-word error status.

    Attributes:
        data: ``(words, data_bits)`` corrected data bits.
        status: ``(words,)`` array of :class:`DecodeStatus` values.
        corrected_position: ``(words,)`` 0-based corrected codeword
            position, or -1 where nothing was corrected.
    """

    data: np.ndarray
    status: np.ndarray
    corrected_position: np.ndarray


class HammingSecded:
    """A SECDED extended Hamming code over ``data_bits`` bits."""

    def __init__(self, data_bits: int) -> None:
        require_positive("data_bits", data_bits)
        self.data_bits = data_bits
        self.hamming_parity_bits = self._required_parity_bits(data_bits)
        # +1 for the overall parity bit that upgrades SEC to SECDED.
        self.parity_bits = self.hamming_parity_bits + 1
        self.codeword_bits = data_bits + self.parity_bits

    @staticmethod
    def _required_parity_bits(data_bits: int) -> int:
        r = 1
        while (1 << r) < data_bits + r + 1:
            r += 1
        return r

    # ------------------------------------------------------------------
    # Code geometry
    # ------------------------------------------------------------------

    @cached_property
    def _data_positions(self) -> np.ndarray:
        """1-indexed Hamming positions holding data bits."""
        positions = [
            p
            for p in range(1, self.data_bits + self.hamming_parity_bits + 1)
            if p & (p - 1)  # skip powers of two (parity positions)
        ]
        return np.asarray(positions, dtype=np.int64)

    @cached_property
    def _parity_positions(self) -> np.ndarray:
        """1-indexed Hamming positions holding Hamming parity bits."""
        return np.asarray(
            [1 << i for i in range(self.hamming_parity_bits)], dtype=np.int64
        )

    @cached_property
    def _coverage(self) -> np.ndarray:
        """``(hamming_parity_bits, hamming_codeword)`` coverage matrix.

        Row ``i`` marks the 1-indexed positions whose index has bit
        ``i`` set — the positions parity bit ``2**i`` checks.
        """
        length = self.data_bits + self.hamming_parity_bits
        positions = np.arange(1, length + 1, dtype=np.int64)
        rows = [
            ((positions >> i) & 1).astype(np.uint8)
            for i in range(self.hamming_parity_bits)
        ]
        return np.stack(rows)

    # ------------------------------------------------------------------
    # Encode / decode
    # ------------------------------------------------------------------

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode ``(words, data_bits)`` (or a single word) to codewords.

        Codeword layout: the Hamming codeword in position order
        (1-indexed positions 1..n map to columns 0..n-1), followed by
        the overall parity bit in the last column.
        """
        data = np.atleast_2d(np.asarray(data, dtype=np.uint8))
        if data.shape[1] != self.data_bits:
            raise ValueError(
                f"expected {self.data_bits} data bits per word, got {data.shape[1]}"
            )
        words = data.shape[0]
        length = self.data_bits + self.hamming_parity_bits
        codeword = np.zeros((words, length), dtype=np.uint8)
        codeword[:, self._data_positions - 1] = data
        # Parity bit 2**i makes the XOR of its covered positions zero.
        for i, pos in enumerate(self._parity_positions):
            covered = codeword & self._coverage[i]
            parity = covered.sum(axis=1) & 1
            codeword[:, pos - 1] = parity
            # The parity position itself is covered; setting it fixes the
            # XOR because it was zero before.
        overall = codeword.sum(axis=1) & 1
        return np.concatenate([codeword, overall[:, None]], axis=1)

    def decode(self, codewords: np.ndarray) -> DecodeResult:
        """Decode ``(words, codeword_bits)`` (or one codeword)."""
        codewords = np.atleast_2d(np.asarray(codewords, dtype=np.uint8))
        if codewords.shape[1] != self.codeword_bits:
            raise ValueError(
                f"expected {self.codeword_bits} bits per codeword, "
                f"got {codewords.shape[1]}"
            )
        hamming = codewords[:, :-1].copy()
        overall_stored = codewords[:, -1].astype(np.int64)

        syndrome = np.zeros(codewords.shape[0], dtype=np.int64)
        for i in range(self.hamming_parity_bits):
            parity = (hamming & self._coverage[i]).sum(axis=1) & 1
            syndrome |= parity.astype(np.int64) << i
        overall_calc = (hamming.sum(axis=1).astype(np.int64) + overall_stored) & 1

        status = np.full(codewords.shape[0], DecodeStatus.OK, dtype=object)
        corrected = np.full(codewords.shape[0], -1, dtype=np.int64)

        length = self.data_bits + self.hamming_parity_bits
        # Single error somewhere in the Hamming part: syndrome names it
        # and the overall parity disagrees.
        single = (syndrome != 0) & (overall_calc == 1) & (syndrome <= length)
        # Single error on the overall parity bit itself.
        overall_err = (syndrome == 0) & (overall_calc == 1)
        # Double error: syndrome fires but overall parity balances — or
        # the syndrome points past the end of the codeword.
        double = ((syndrome != 0) & (overall_calc == 0)) | (syndrome > length)

        for row in np.flatnonzero(single):
            position = int(syndrome[row])
            hamming[row, position - 1] ^= 1
            status[row] = DecodeStatus.CORRECTED
            corrected[row] = position - 1
        for row in np.flatnonzero(overall_err):
            status[row] = DecodeStatus.CORRECTED
            corrected[row] = self.codeword_bits - 1
        for row in np.flatnonzero(double):
            status[row] = DecodeStatus.DETECTED

        data = hamming[:, self._data_positions - 1]
        return DecodeResult(data=data, status=status, corrected_position=corrected)

    def __repr__(self) -> str:
        return f"HammingSecded(({self.codeword_bits}, {self.data_bits}))"
