"""Segment-level machinery shared by the segmented bus encoders.

Bus-invert coding, its zero-skipped variants, and dynamic zero
compression all partition the data bus into fixed-width *segments* and
keep per-segment wire state.  Their flip counts reduce to one common
quantity: the Hamming distance between the word currently on a segment's
wires and the word about to be driven — where "currently on the wires"
means the last *non-skipped* word, since skipped beats leave the bus
untouched.

This module computes that quantity fully vectorized:

* :func:`beat_view` — reshape a block stream into a time-ordered
  ``(beats, segments, segment_bits)`` bit tensor;
* :func:`held_pattern` — for every beat, the bit pattern physically held
  on each segment's wires just before the beat (forward-fill of the last
  driven word, all-zero before the first drive);
* :func:`level_transitions` — transitions of a level-signalled overhead
  wire (invert line, skip line, zero indicator).
"""

from __future__ import annotations

import numpy as np

from repro.kernels import batched as kernels

__all__ = ["beat_view", "held_pattern", "level_transitions", "per_block"]


def beat_view(blocks_bits: np.ndarray, data_wires: int, segment_bits: int) -> np.ndarray:
    """Reshape ``(n, block_bits)`` bits to ``(n*beats, nseg, segment_bits)``.

    Beat ``t`` of the result is the word driven on the bus at global bus
    cycle ``t``; segments slice the bus into contiguous wire groups.
    """
    num_blocks, block_bits = blocks_bits.shape
    if block_bits % data_wires:
        raise ValueError(
            f"block_bits {block_bits} not divisible by bus width {data_wires}"
        )
    if data_wires % segment_bits:
        raise ValueError(
            f"bus width {data_wires} not divisible by segment size {segment_bits}"
        )
    beats = block_bits // data_wires
    nseg = data_wires // segment_bits
    return blocks_bits.reshape(num_blocks * beats, nseg, segment_bits)


def held_pattern(beats: np.ndarray, driven: np.ndarray) -> np.ndarray:
    """Pattern on each segment's wires just before every beat.

    Args:
        beats: ``(T, nseg, s)`` bit tensor of words offered to the bus.
        driven: ``(T, nseg)`` bool — whether the word was actually driven
            (False = the beat was skipped and the wires kept their state).

    Returns:
        ``(T, nseg, s)`` bit tensor: for beat ``t`` the last driven word
        before ``t`` on that segment, or zeros if none was driven yet.

    Note the returned pattern is the *logical* word; encoders that drive
    inverted words (bus-invert) handle polarity themselves — Hamming
    distances to an inverted pattern are ``s`` minus the distance to the
    plain pattern, so the plain forward-fill is sufficient.
    """
    num_beats, nseg, _ = beats.shape
    time_index = np.arange(num_beats, dtype=np.int64)[:, None]
    drive_index = np.where(driven, time_index, np.int64(-1))
    last_drive = np.maximum.accumulate(drive_index, axis=0)
    # Pattern *before* beat t = last drive strictly earlier than t.
    before = kernels.shifted_prev(last_drive, np.int64(-1))
    padded = np.concatenate(
        [np.zeros((1, nseg, beats.shape[2]), dtype=beats.dtype), beats], axis=0
    )
    return np.take_along_axis(padded, (before + 1)[:, :, None], axis=0)


def level_transitions(levels: np.ndarray) -> np.ndarray:
    """Transitions of a level-signalled wire, per time step.

    ``levels`` is a ``(T, nseg)`` 0/1 array of wire levels; the wire is
    assumed low before the first beat.  Returns a ``(T, nseg)`` int64
    array with a 1 wherever the level changed.
    """
    return kernels.level_transitions(levels)


def per_block(per_beat: np.ndarray, num_blocks: int) -> np.ndarray:
    """Sum a ``(T, ...)`` per-beat quantity into per-block totals."""
    return per_beat.reshape(num_blocks, -1).sum(axis=1).astype(np.int64)
