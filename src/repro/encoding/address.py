"""Address-bus encodings: Gray and T0.

Section 3.2.1 opts *out* of applying DESC to the address and control
wires: "the physical wire activity caused by the address bits in
conventional binary encoding is relatively low, which makes it
inefficient to apply DESC to the address wires."  To check that claim
quantitatively (``benchmarks/test_ablation_address_bus.py``) this
module provides the classic address-bus encodings from the low-power
literature:

* **Gray code** — consecutive values differ in one bit; effective when
  the address stream is sequential;
* **T0 code** — an extra *increment* wire: when the next address equals
  the previous one plus a fixed stride, the bus freezes and the
  increment wire signals "+stride" with a single transition.

Both operate on single-beat word transfers (an address per access), so
``block_bits == data_wires``.
"""

from __future__ import annotations

import numpy as np

from repro.core.analysis import StreamCost
from repro.encoding.base import BusEncoder, as_bit_matrix
from repro.util.validation import require_positive

__all__ = ["GrayCodeEncoder", "T0Encoder", "addresses_to_bits"]


def addresses_to_bits(addresses: np.ndarray, width: int = 32) -> np.ndarray:
    """Little-endian bit matrix of an address stream (one row per access)."""
    addresses = np.asarray(addresses, dtype=np.int64)
    if (addresses < 0).any():
        raise ValueError("addresses must be non-negative")
    if width < 1 or (addresses >> width).any():
        raise ValueError(f"addresses do not fit in {width} bits")
    shifts = np.arange(width, dtype=np.int64)
    return ((addresses[:, None] >> shifts) & 1).astype(np.uint8)


class GrayCodeEncoder(BusEncoder):
    """Binary-reflected Gray code on a single-beat word bus."""

    name = "gray"

    def __init__(self, data_wires: int = 32) -> None:
        super().__init__(block_bits=data_wires, data_wires=data_wires)

    @property
    def overhead_wires(self) -> int:
        return 0

    def stream_cost(self, blocks_bits: np.ndarray) -> StreamCost:
        blocks_bits = as_bit_matrix(blocks_bits, self.block_bits)
        n = blocks_bits.shape[0]
        if n == 0:
            empty = np.zeros(0, dtype=np.int64)
            return StreamCost(empty, empty, empty, empty)
        weights = (1 << np.arange(self.data_wires, dtype=np.int64))
        values = blocks_bits.astype(np.int64) @ weights
        gray = values ^ (values >> 1)
        previous = np.empty_like(gray)
        previous[0] = 0
        previous[1:] = gray[:-1]
        from repro.util.bitops import popcount_array

        flips = popcount_array(gray ^ previous)
        zeros = np.zeros(n, dtype=np.int64)
        return StreamCost(
            data_flips=flips,
            overhead_flips=zeros,
            sync_flips=zeros.copy(),
            cycles=np.ones(n, dtype=np.int64),
        )


class T0Encoder(BusEncoder):
    """T0 coding: a freeze-the-bus increment wire for strided streams."""

    name = "t0"

    def __init__(self, data_wires: int = 32, stride: int = 64) -> None:
        super().__init__(block_bits=data_wires, data_wires=data_wires)
        require_positive("stride", stride)
        self.stride = stride

    @property
    def overhead_wires(self) -> int:
        return 1  # the increment wire

    def stream_cost(self, blocks_bits: np.ndarray) -> StreamCost:
        blocks_bits = as_bit_matrix(blocks_bits, self.block_bits)
        n = blocks_bits.shape[0]
        if n == 0:
            empty = np.zeros(0, dtype=np.int64)
            return StreamCost(empty, empty, empty, empty)
        weights = (1 << np.arange(self.data_wires, dtype=np.int64))
        values = blocks_bits.astype(np.int64) @ weights
        previous = np.empty_like(values)
        previous[0] = 0
        previous[1:] = values[:-1]
        strided = values == previous + self.stride
        strided[0] = False  # nothing on the bus yet; first access drives

        # Bus state holds the last *driven* value; an increment freezes
        # it, so the next driven access measures its distance from the
        # last non-strided value.
        from repro.util.bitops import popcount_array

        time_index = np.arange(n, dtype=np.int64)
        drive_index = np.where(~strided, time_index, np.int64(-1))
        last_drive = np.maximum.accumulate(drive_index)
        before = np.empty_like(last_drive)
        before[0] = -1
        before[1:] = last_drive[:-1]
        padded = np.concatenate(([np.int64(0)], values))
        held = padded[before + 1]

        data_flips = np.where(strided, 0, popcount_array(values ^ held))
        # Increment wire: level-signalled "strided" indicator.
        inc_levels = strided.astype(np.int64)
        inc_flips = np.empty_like(inc_levels)
        inc_flips[0] = inc_levels[0]
        inc_flips[1:] = np.abs(inc_levels[1:] - inc_levels[:-1])
        zeros = np.zeros(n, dtype=np.int64)
        return StreamCost(
            data_flips=data_flips.astype(np.int64),
            overhead_flips=inc_flips.astype(np.int64),
            sync_flips=zeros,
            cycles=np.ones(n, dtype=np.int64),
        )
