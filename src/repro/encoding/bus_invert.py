"""Bus-invert coding and its zero-skipped variants (Stan & Burleson).

Classic bus-invert coding (BIC) partitions the bus into segments of
``segment_bits`` wires plus one *invert* wire each.  If the Hamming
distance between the word held on a segment and the next word exceeds
half the segment width, the complemented word is driven and the invert
wire flags it — bounding data flips at ``s/2`` per segment per beat.

The paper extends BIC with *zero skipping* in two flavours
(Section 4.1):

* **sparse** — one additional skip wire per segment; a zero word leaves
  the data wires untouched and raises the skip line instead;
* **encoded** — the per-segment transfer modes (plain / inverted /
  skipped) of a beat are packed into a single binary *mode word* sent on
  ``ceil(nseg * log2 3)`` shared wires, trading wire count for mode-word
  switching.

Modelling notes (documented deviations):

* Zero words are always skipped when skipping is enabled.  An adaptive
  transmitter could occasionally transmit a zero plain (when the skip
  line would flip but the data flips are free); the difference is at
  most one flip per zero beat and forgoing it keeps the model
  closed-form.
* As in the paper, the energy and latency of the population-count and
  zero-detect logic are ignored for the baselines (footnote 4), so the
  reported flips are slightly optimistic for BIC/DZC — i.e. biased
  *against* DESC.

The per-beat cost is independent of the invert line's current level:
driving with the held polarity costs ``h`` data flips, switching
polarity costs ``s - h`` data flips plus the invert-line flip, where
``h`` is the distance between the *logical* held word and the new word.
This makes the whole computation vectorizable (no sequential bus-state
recursion); the equivalence is asserted against a step-by-step reference
implementation in ``tests/encoding/test_bus_invert.py``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.analysis import StreamCost
from repro.encoding import segments
from repro.encoding.base import BusEncoder, as_bit_payload
from repro.kernels import pipeline
from repro.kernels.batched import popcount, shifted_prev
from repro.util.validation import require_multiple, require_positive

__all__ = ["BusInvertEncoder"]

_ZERO_SKIP_MODES = (None, "sparse", "encoded")


class BusInvertEncoder(BusEncoder):
    """Segmented bus-invert coding, optionally with zero skipping."""

    def __init__(
        self,
        block_bits: int,
        data_wires: int,
        segment_bits: int,
        zero_skipping: str | None = None,
    ) -> None:
        super().__init__(block_bits, data_wires)
        require_positive("segment_bits", segment_bits)
        require_multiple("data_wires", data_wires, segment_bits)
        if zero_skipping not in _ZERO_SKIP_MODES:
            raise ValueError(
                f"zero_skipping must be one of {_ZERO_SKIP_MODES}, "
                f"got {zero_skipping!r}"
            )
        self.segment_bits = segment_bits
        self.zero_skipping = zero_skipping
        if zero_skipping == "encoded" and data_wires // segment_bits > 39:
            # 3**40 no longer fits in the int64 mode words used below.
            raise ValueError(
                "encoded zero skipping supports at most 39 segments; "
                f"got {data_wires // segment_bits}"
            )
        self.name = {
            None: "bus-invert",
            "sparse": "bus-invert+zero-skip",
            "encoded": "bus-invert+encoded-zero-skip",
        }[zero_skipping]

    @property
    def num_segments(self) -> int:
        """Independent invert domains on the bus."""
        return self.data_wires // self.segment_bits

    @property
    def overhead_wires(self) -> int:
        if self.zero_skipping is None:
            return self.num_segments  # one invert wire per segment
        if self.zero_skipping == "sparse":
            return 2 * self.num_segments  # invert + skip per segment
        # Encoded: three modes per segment packed into one binary word.
        return math.ceil(self.num_segments * math.log2(3.0))

    def stream_cost(self, blocks_bits: np.ndarray) -> StreamCost:
        blocks_bits = as_bit_payload(blocks_bits, self.block_bits)
        num_blocks = blocks_bits.shape[0]
        if num_blocks == 0:
            empty = np.zeros(0, dtype=np.int64)
            return StreamCost(empty, empty, empty, empty)

        data_flips, overhead_flips = pipeline.bus_invert_flips(
            blocks_bits, self.data_wires, self.segment_bits, self.zero_skipping
        )
        zeros = np.zeros(num_blocks, dtype=np.int64)
        cycles = np.full(num_blocks, self.beats, dtype=np.int64)
        return StreamCost(
            data_flips=data_flips,
            overhead_flips=overhead_flips,
            sync_flips=zeros,
            cycles=cycles,
        )

    def _flips_arrays(self, blocks_bits: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized flip tallies (the NumPy tier of ``bus_invert_flips``)."""
        num_blocks = blocks_bits.shape[0]
        s = self.segment_bits
        beats = segments.beat_view(blocks_bits, self.data_wires, s)
        if self.zero_skipping is None:
            skipped = np.zeros(beats.shape[:2], dtype=bool)
        else:
            skipped = ~beats.any(axis=2)
        driven = ~skipped

        held = segments.held_pattern(beats, driven)
        distance = (beats ^ held).sum(axis=2).astype(np.int64)
        # Classic Stan-Burleson decision on the physical bus: transmit
        # inverted iff hd(bus, word) > s/2.  Relative to the held word
        # this toggles the polarity when h > s/2, keeps it when
        # h < s/2, and *resets to plain* on an exact tie (h == s/2) —
        # the tie reset is what makes fine segmentation pay invert-line
        # traffic, the Figure 15 effect.
        toggle = driven & (distance * 2 > s)
        tie = driven & (distance * 2 == s)
        data_per_seg = np.where(driven, np.where(toggle, s - distance, distance), 0)

        polarity_before = self._polarity_before(toggle, tie)
        overhead_per_beat = self._overhead_flips(
            skipped, toggle, tie, polarity_before
        )

        data_flips = segments.per_block(data_per_seg, num_blocks)
        overhead_flips = segments.per_block(overhead_per_beat, num_blocks)
        return data_flips, overhead_flips

    @staticmethod
    def _polarity_before(toggle: np.ndarray, tie: np.ndarray) -> np.ndarray:
        """Absolute invert-line level *before* each beat.

        The polarity after a beat is: unchanged on skipped/keep beats,
        flipped on toggle beats, and forced to 0 (plain) on tie beats.
        Vectorized with a cumulative-toggle count rebased at the most
        recent tie of each segment.
        """
        num_beats = toggle.shape[0]
        toggles_cum = np.cumsum(toggle.astype(np.int64), axis=0)
        time_index = np.arange(num_beats, dtype=np.int64)[:, None]
        tie_index = np.where(tie, time_index, np.int64(-1))
        last_tie = np.maximum.accumulate(tie_index, axis=0)
        padded = np.concatenate(
            [np.zeros((1, toggle.shape[1]), dtype=np.int64), toggles_cum], axis=0
        )
        base = np.take_along_axis(padded, last_tie + 1, axis=0)
        polarity_after = (toggles_cum - base) & 1
        return shifted_prev(polarity_after, 0)  # invert lines start low

    def _overhead_flips(
        self,
        skipped: np.ndarray,
        toggle: np.ndarray,
        tie: np.ndarray,
        polarity_before: np.ndarray,
    ) -> np.ndarray:
        """Per-beat transitions on the scheme's overhead wires."""
        # The invert line changes level on toggles, and on ties reached
        # with the line currently high (the classic reset to plain).
        line_flips = toggle | (tie & (polarity_before == 1))
        if self.zero_skipping == "encoded":
            return self._encoded_mode_flips(skipped, toggle, tie, polarity_before)
        invert_flips = line_flips.astype(np.int64).sum(axis=1)
        if self.zero_skipping is None:
            return invert_flips
        skip_flips = segments.level_transitions(skipped).sum(axis=1)
        return invert_flips + skip_flips

    def _encoded_mode_flips(
        self,
        skipped: np.ndarray,
        toggle: np.ndarray,
        tie: np.ndarray,
        polarity_before: np.ndarray,
    ) -> np.ndarray:
        """Mode-word switching for the dense (encoded) variant.

        Each segment contributes a base-3 digit per beat: 0 = plain,
        1 = inverted (absolute polarity), 2 = skipped.  The digits pack
        into one integer transmitted in binary; its Hamming distance
        from the previous beat's word is the overhead flip count.
        """
        polarity_after = np.where(
            tie, 0, polarity_before ^ toggle.astype(np.int64)
        )
        digits = np.where(skipped, 2, polarity_after).astype(np.int64)
        weights = 3 ** np.arange(self.num_segments, dtype=np.int64)
        words = digits @ weights
        previous = shifted_prev(words, 0)  # mode wires start low
        return popcount(words ^ previous)
