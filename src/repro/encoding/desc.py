"""DESC exposed through the common :class:`BusEncoder` interface.

This adapter lets the cache controller, the energy model, and the
figure harnesses treat DESC uniformly with the baseline encodings: bits
in, per-block flips/cycles out.  Internally it converts the bit matrix
to chunk values and delegates to the closed-form
:class:`~repro.core.analysis.DescCostModel` (which is property-tested
against the cycle-accurate link).
"""

from __future__ import annotations

import numpy as np

from repro.core.analysis import DescCostModel, StreamCost
from repro.core.chunking import ChunkLayout
from repro.encoding.base import BusEncoder, as_bit_matrix
from repro.util.bitops import bit_matrix_to_chunks

__all__ = ["DescEncoder"]

_VARIANT_NAMES = {
    "none": "desc",
    "zero": "desc+zero-skip",
    "last-value": "desc+last-value-skip",
}


class DescEncoder(BusEncoder):
    """DESC as a bus encoder: data wires plus reset/skip and sync strobes."""

    def __init__(
        self,
        block_bits: int = 512,
        data_wires: int = 128,
        chunk_bits: int = 4,
        skip_policy: str = "zero",
    ) -> None:
        super().__init__(block_bits, data_wires)
        if skip_policy not in _VARIANT_NAMES:
            raise ValueError(
                f"skip_policy must be one of {tuple(_VARIANT_NAMES)}, "
                f"got {skip_policy!r}"
            )
        self.layout = ChunkLayout(
            block_bits=block_bits, chunk_bits=chunk_bits, num_wires=data_wires
        )
        self.skip_policy = skip_policy
        self.name = _VARIANT_NAMES[skip_policy]
        # One model per encoder, reset before each stream: every
        # ``stream_cost`` call still models a freshly reset bus (the
        # BusEncoder contract) without re-building the model's wire
        # history arrays on every call.
        self._model = DescCostModel(self.layout, skip_policy=skip_policy)

    @property
    def chunk_bits(self) -> int:
        """Chunk width in bits (paper default 4)."""
        return self.layout.chunk_bits

    @property
    def overhead_wires(self) -> int:
        return 2  # shared reset/skip wire + synchronization strobe

    @property
    def beats(self) -> int:
        """DESC has no fixed beat count; rounds stand in for beats."""
        return self.layout.num_rounds

    def stream_cost(self, blocks_bits: np.ndarray) -> StreamCost:
        blocks_bits = as_bit_matrix(blocks_bits, self.block_bits)
        chunks = self.bits_to_chunk_matrix(blocks_bits)
        return self.chunk_stream_cost(chunks)

    def chunk_stream_cost(self, chunk_blocks: np.ndarray) -> StreamCost:
        """Costs for blocks already given as chunk values (fast path)."""
        self._model.reset()
        return self._model.stream_cost(chunk_blocks)

    def bits_to_chunk_matrix(self, blocks_bits: np.ndarray) -> np.ndarray:
        """Vectorized bit-matrix → chunk-matrix conversion."""
        return bit_matrix_to_chunks(blocks_bits, self.layout.chunk_bits)
