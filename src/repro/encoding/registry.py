"""Factory for the eight data-transfer schemes of Figure 16.

The registry maps the scheme names used throughout the figures to
configured :class:`~repro.encoding.base.BusEncoder` instances.  As the
paper does (Section 4.1), each segmented baseline defaults to its
best-performing segment size; the paper marks its picks with stars in
Figure 15 without printing the values, so the defaults below are the
bests *our* Figure 15 harness derives on the synthetic workloads:
8-bit segments for dynamic zero compression, 4-bit for bus-invert
coding, and 8-bit for the two zero-skipped bus-invert variants.
"""

from __future__ import annotations

from repro.encoding.base import BusEncoder
from repro.encoding.binary import BinaryEncoder
from repro.encoding.bus_invert import BusInvertEncoder
from repro.encoding.desc import DescEncoder
from repro.encoding.serial import SerialEncoder
from repro.encoding.zero_compression import ZeroCompressionEncoder

__all__ = ["FIGURE16_SCHEMES", "make_encoder", "scheme_names"]

#: Scheme names in the order Figure 16 plots them.
FIGURE16_SCHEMES = (
    "binary",
    "zero-compression",
    "bus-invert",
    "bus-invert+zero-skip",
    "bus-invert+encoded-zero-skip",
    "desc",
    "desc+zero-skip",
    "desc+last-value-skip",
)

#: Best segment size per baseline scheme (bits), re-derived by the
#: Figure 15 harness (``repro.experiments.fig15_segment_size``).
BEST_SEGMENT_BITS = {
    "zero-compression": 8,
    "bus-invert": 4,
    "bus-invert+zero-skip": 8,
    "bus-invert+encoded-zero-skip": 8,
}


def scheme_names() -> tuple[str, ...]:
    """All encoder names the registry can build."""
    return FIGURE16_SCHEMES + ("serial",)


def make_encoder(
    name: str,
    block_bits: int = 512,
    data_wires: int = 64,
    segment_bits: int | None = None,
    desc_wires: int = 128,
    chunk_bits: int = 4,
) -> BusEncoder:
    """Build a configured encoder by scheme name.

    Args:
        name: One of :func:`scheme_names`.
        block_bits: Cache block size in bits.
        data_wires: Bus width for the binary-style schemes (the paper's
            baseline L2 uses a 64-bit data H-tree).
        segment_bits: Segment size for the segmented baselines; defaults
            to the per-scheme best configuration of Figure 15.
        desc_wires: Data-wire count for the DESC variants (paper: 128).
        chunk_bits: DESC chunk width (paper: 4).
    """
    if name == "binary":
        return BinaryEncoder(block_bits, data_wires)
    if name == "serial":
        return SerialEncoder(block_bits)
    if name == "zero-compression":
        bits = segment_bits or BEST_SEGMENT_BITS[name]
        return ZeroCompressionEncoder(block_bits, data_wires, bits)
    if name == "bus-invert":
        bits = segment_bits or BEST_SEGMENT_BITS[name]
        return BusInvertEncoder(block_bits, data_wires, bits, zero_skipping=None)
    if name == "bus-invert+zero-skip":
        bits = segment_bits or BEST_SEGMENT_BITS[name]
        return BusInvertEncoder(block_bits, data_wires, bits, zero_skipping="sparse")
    if name == "bus-invert+encoded-zero-skip":
        bits = segment_bits or BEST_SEGMENT_BITS[name]
        return BusInvertEncoder(block_bits, data_wires, bits, zero_skipping="encoded")
    if name == "desc":
        return DescEncoder(block_bits, desc_wires, chunk_bits, skip_policy="none")
    if name == "desc+zero-skip":
        return DescEncoder(block_bits, desc_wires, chunk_bits, skip_policy="zero")
    if name == "desc+last-value-skip":
        return DescEncoder(block_bits, desc_wires, chunk_bits, skip_policy="last-value")
    raise ValueError(f"unknown scheme {name!r}; expected one of {scheme_names()}")
