"""Factory for the eight data-transfer schemes of Figure 16.

The registry maps the scheme names used throughout the figures to
configured :class:`~repro.encoding.base.BusEncoder` instances.  As the
paper does (Section 4.1), each segmented baseline defaults to its
best-performing segment size; the paper marks its picks with stars in
Figure 15 without printing the values, so the defaults below are the
bests *our* Figure 15 harness derives on the synthetic workloads:
8-bit segments for dynamic zero compression, 4-bit for bus-invert
coding, and 8-bit for the two zero-skipped bus-invert variants.

Beyond raw encoders, the registry also dispatches whole *transfer
models* — the :class:`TransferModel` protocol the staged simulation
engine (:mod:`repro.sim.engine`) consumes.  A transfer model wraps a
scheme's complete system-level behaviour: stream statistics (with or
without ECC extension and null-block filtering), the encode/decode
latency it adds to a hit, and any controller-side switching it charges
per write.  DESC variants, the binary-style baselines, and their
ECC-wrapped forms all present this one interface, so the engine's run
loop never branches on what kind of scheme it is driving.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Protocol, runtime_checkable

from repro.encoding.base import BusEncoder
from repro.encoding.binary import BinaryEncoder
from repro.encoding.bus_invert import BusInvertEncoder
from repro.encoding.desc import DescEncoder
from repro.encoding.serial import SerialEncoder
from repro.encoding.zero_compression import ZeroCompressionEncoder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.sim.config import SchemeConfig, SystemConfig
    from repro.sim.metrics import TransferStats
    from repro.sim.stages import WorkloadSample

__all__ = [
    "FIGURE16_SCHEMES",
    "TransferModel",
    "make_encoder",
    "make_transfer_model",
    "register_transfer_model",
    "scheme_names",
    "transfer_model_names",
]

#: Scheme names in the order Figure 16 plots them.
FIGURE16_SCHEMES = (
    "binary",
    "zero-compression",
    "bus-invert",
    "bus-invert+zero-skip",
    "bus-invert+encoded-zero-skip",
    "desc",
    "desc+zero-skip",
    "desc+last-value-skip",
)

#: Best segment size per baseline scheme (bits), re-derived by the
#: Figure 15 harness (``repro.experiments.fig15_segment_size``).
BEST_SEGMENT_BITS = {
    "zero-compression": 8,
    "bus-invert": 4,
    "bus-invert+zero-skip": 8,
    "bus-invert+encoded-zero-skip": 8,
}


def scheme_names() -> tuple[str, ...]:
    """All encoder names the registry can build."""
    return FIGURE16_SCHEMES + ("serial",)


def make_encoder(
    name: str,
    block_bits: int = 512,
    data_wires: int = 64,
    segment_bits: int | None = None,
    desc_wires: int = 128,
    chunk_bits: int = 4,
) -> BusEncoder:
    """Build a configured encoder by scheme name.

    Args:
        name: One of :func:`scheme_names`.
        block_bits: Cache block size in bits.
        data_wires: Bus width for the binary-style schemes (the paper's
            baseline L2 uses a 64-bit data H-tree).
        segment_bits: Segment size for the segmented baselines; defaults
            to the per-scheme best configuration of Figure 15.
        desc_wires: Data-wire count for the DESC variants (paper: 128).
        chunk_bits: DESC chunk width (paper: 4).
    """
    if name == "binary":
        return BinaryEncoder(block_bits, data_wires)
    if name == "serial":
        return SerialEncoder(block_bits)
    if name == "zero-compression":
        bits = segment_bits or BEST_SEGMENT_BITS[name]
        return ZeroCompressionEncoder(block_bits, data_wires, bits)
    if name == "bus-invert":
        bits = segment_bits or BEST_SEGMENT_BITS[name]
        return BusInvertEncoder(block_bits, data_wires, bits, zero_skipping=None)
    if name == "bus-invert+zero-skip":
        bits = segment_bits or BEST_SEGMENT_BITS[name]
        return BusInvertEncoder(block_bits, data_wires, bits, zero_skipping="sparse")
    if name == "bus-invert+encoded-zero-skip":
        bits = segment_bits or BEST_SEGMENT_BITS[name]
        return BusInvertEncoder(block_bits, data_wires, bits, zero_skipping="encoded")
    if name == "desc":
        return DescEncoder(block_bits, desc_wires, chunk_bits, skip_policy="none")
    if name == "desc+zero-skip":
        return DescEncoder(block_bits, desc_wires, chunk_bits, skip_policy="zero")
    if name == "desc+last-value-skip":
        return DescEncoder(block_bits, desc_wires, chunk_bits, skip_policy="last-value")
    raise ValueError(f"unknown scheme {name!r}; expected one of {scheme_names()}")


# ----------------------------------------------------------------------
# Transfer-model dispatch (the staged engine's scheme interface)
# ----------------------------------------------------------------------


@runtime_checkable
class TransferModel(Protocol):
    """Everything the simulation engine needs to know about a scheme.

    One implementation covers a family of schemes (all DESC variants,
    all binary-style baselines); the registry maps each scheme *name*
    to its family's factory.  Implementations must be pure: the same
    inputs always yield the same outputs, so stage results can be
    memoized in the result store and recomputed in pool workers.
    """

    scheme: "SchemeConfig"

    def transfer_stats(
        self, sample: "WorkloadSample", exclude_null: bool = False
    ) -> "TransferStats":
        """Mean per-block wire activity on a workload sample.

        With ``exclude_null`` the statistics cover only non-null blocks
        (a null-block directory intercepts the all-zero transfers).
        """
        ...

    def scheme_delay_cycles(
        self, stats: "TransferStats", system: "SystemConfig"
    ) -> float:
        """Encode/decode latency the scheme adds to every L2 hit."""
        ...

    def controller_write_flips(self, system: "SystemConfig") -> float:
        """Extra controller-side wire flips charged per written block."""
        ...


TransferModelFactory = Callable[["SchemeConfig"], "TransferModel"]

_TRANSFER_MODELS: dict[str, TransferModelFactory] = {}


def register_transfer_model(
    names: Iterable[str], factory: TransferModelFactory
) -> None:
    """Register a transfer-model factory for the given scheme names.

    Later registrations win, so downstream code can override a stock
    family (e.g. to wrap it with instrumentation).
    """
    for name in names:
        _TRANSFER_MODELS[name] = factory


def _ensure_default_models() -> None:
    # The stock implementations live in repro.sim.transfer (they build
    # on the sim-layer dataclasses); importing the module registers
    # them.  Imported lazily to keep repro.encoding importable without
    # the sim package.
    if not _TRANSFER_MODELS:
        import repro.sim.transfer  # noqa: F401  (registers on import)


def transfer_model_names() -> tuple[str, ...]:
    """Scheme names with a registered transfer model."""
    _ensure_default_models()
    return tuple(sorted(_TRANSFER_MODELS))


def make_transfer_model(scheme: "SchemeConfig") -> "TransferModel":
    """Build the transfer model for a configured scheme.

    This is the single dispatch point between the simulation engine and
    the scheme zoo: the engine never inspects ``scheme.name`` (or any
    ``is_desc`` flag) itself.
    """
    _ensure_default_models()
    try:
        factory = _TRANSFER_MODELS[scheme.name]
    except KeyError:
        raise ValueError(
            f"no transfer model registered for scheme {scheme.name!r}; "
            f"known schemes: {transfer_model_names()}"
        ) from None
    return factory(scheme)
