"""Serial transmission over a single wire (Figure 3-b).

Included for the illustrative comparison of Section 3: one wire, one bit
per cycle, so a 512-bit block takes 512 cycles and flips the wire at
every 0↔1 boundary in the serialized stream.
"""

from __future__ import annotations

import numpy as np

from repro.core.analysis import StreamCost
from repro.encoding.base import BusEncoder, as_bit_payload
from repro.kernels.batched import level_transitions

__all__ = ["SerialEncoder"]


class SerialEncoder(BusEncoder):
    """Single-wire serial bus."""

    name = "serial"

    def __init__(self, block_bits: int) -> None:
        super().__init__(block_bits, data_wires=1)

    @property
    def overhead_wires(self) -> int:
        return 0

    def stream_cost(self, blocks_bits: np.ndarray) -> StreamCost:
        blocks_bits = as_bit_payload(blocks_bits, self.block_bits)
        if not isinstance(blocks_bits, np.ndarray):
            blocks_bits = blocks_bits.bits  # serial walks individual bits
        num_blocks = blocks_bits.shape[0]
        if num_blocks == 0:
            empty = np.zeros(0, dtype=np.int64)
            return StreamCost(empty, empty, empty, empty)
        # The serialized bit stream *is* a level-signalled wire: flips
        # are its level transitions (wire starts low).
        flips = level_transitions(blocks_bits.reshape(-1))
        data_flips = flips.reshape(num_blocks, -1).sum(axis=1)
        zeros = np.zeros(num_blocks, dtype=np.int64)
        cycles = np.full(num_blocks, self.block_bits, dtype=np.int64)
        return StreamCost(
            data_flips=data_flips,
            overhead_flips=zeros,
            sync_flips=zeros.copy(),
            cycles=cycles,
        )
