"""Dynamic zero compression (Villa, Zhang & Asanović, MICRO 2000).

DZC augments each bus segment with a *zero indicator bit* (ZIB).  A
segment whose word is all zeros raises its indicator and leaves the data
wires untouched; otherwise the indicator is low and the word is driven
in plain binary.  Runs of zero words therefore cost a single indicator
transition.

As in the paper's evaluation we model the interconnect effect of DZC
(its original formulation also gates SRAM bitlines; array energy is
handled separately by :mod:`repro.energy.cacti`, which both schemes
share) and ignore the zero-detect logic energy (paper footnote 4).
"""

from __future__ import annotations

import numpy as np

from repro.core.analysis import StreamCost
from repro.encoding import segments
from repro.encoding.base import BusEncoder, as_bit_payload
from repro.kernels import pipeline
from repro.util.validation import require_multiple, require_positive

__all__ = ["ZeroCompressionEncoder"]


class ZeroCompressionEncoder(BusEncoder):
    """Dynamic zero compression with one zero-indicator wire per segment."""

    name = "zero-compression"

    def __init__(self, block_bits: int, data_wires: int, segment_bits: int) -> None:
        super().__init__(block_bits, data_wires)
        require_positive("segment_bits", segment_bits)
        require_multiple("data_wires", data_wires, segment_bits)
        self.segment_bits = segment_bits

    @property
    def num_segments(self) -> int:
        """Independent zero-detection domains on the bus."""
        return self.data_wires // self.segment_bits

    @property
    def overhead_wires(self) -> int:
        return self.num_segments  # one zero-indicator wire per segment

    def stream_cost(self, blocks_bits: np.ndarray) -> StreamCost:
        blocks_bits = as_bit_payload(blocks_bits, self.block_bits)
        num_blocks = blocks_bits.shape[0]
        if num_blocks == 0:
            empty = np.zeros(0, dtype=np.int64)
            return StreamCost(empty, empty, empty, empty)

        data_flips, overhead_flips = pipeline.dzc_flips(
            blocks_bits, self.data_wires, self.segment_bits
        )
        zeros = np.zeros(num_blocks, dtype=np.int64)
        cycles = np.full(num_blocks, self.beats, dtype=np.int64)
        return StreamCost(
            data_flips=data_flips,
            overhead_flips=overhead_flips,
            sync_flips=zeros,
            cycles=cycles,
        )

    def _flips_arrays(self, blocks_bits: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized flip tallies (the NumPy tier of ``dzc_flips``)."""
        num_blocks = blocks_bits.shape[0]
        beats = segments.beat_view(blocks_bits, self.data_wires, self.segment_bits)
        is_zero = ~beats.any(axis=2)
        driven = ~is_zero
        held = segments.held_pattern(beats, driven)
        distance = (beats ^ held).sum(axis=2).astype(np.int64)
        data_per_seg = np.where(driven, distance, 0)
        indicator = segments.level_transitions(is_zero)
        data_flips = segments.per_block(data_per_seg, num_blocks)
        overhead_flips = segments.per_block(indicator, num_blocks)
        return data_flips, overhead_flips
