"""Common interface for all bus-encoding schemes evaluated in the paper.

Every scheme — conventional binary, serial, bus-invert coding and its
zero-skipped variants, dynamic zero compression, and DESC itself — is
exposed as a :class:`BusEncoder`: given a stream of cache blocks (bit
matrices), it reports per-block wire transitions split into *data* wires
and *overhead* wires (invert lines, skip lines, zero indicators, DESC's
reset/skip and synchronization strobes), plus per-block transfer latency
in bus cycles.

The shared cost containers live in :mod:`repro.core.analysis`
(:class:`~repro.core.analysis.StreamCost`) and
:mod:`repro.core.protocol` (:class:`~repro.core.protocol.TransferCost`).

State semantics: each call to :meth:`BusEncoder.stream_cost` models a
freshly reset bus (all wires low); state *within* a stream (bus levels,
invert/skip lines, DESC wire history) chains across the blocks of that
stream, exactly as consecutive transfers share physical wires.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.analysis import StreamCost
from repro.core.protocol import TransferCost
from repro.util.validation import require_multiple, require_positive

__all__ = ["BusEncoder", "as_bit_matrix", "as_bit_payload"]


def as_bit_matrix(blocks_bits: np.ndarray, block_bits: int) -> np.ndarray:
    """Validate and normalise a ``(num_blocks, block_bits)`` 0/1 matrix."""
    blocks_bits = np.asarray(blocks_bits)
    if blocks_bits.ndim != 2 or blocks_bits.shape[1] != block_bits:
        raise ValueError(
            f"expected bit matrix of shape (n, {block_bits}), "
            f"got {blocks_bits.shape}"
        )
    if blocks_bits.dtype != np.uint8:
        blocks_bits = blocks_bits.astype(np.uint8)
    if ((blocks_bits != 0) & (blocks_bits != 1)).any():
        raise ValueError("bit matrix entries must be 0 or 1")
    return blocks_bits


def as_bit_payload(blocks_bits, block_bits: int):
    """Normalise an encoder payload: bit matrix or pre-packed words.

    A :class:`repro.kernels.pipeline.PackedBits` passes through after a
    shape check — its words were validated and packed once when the
    sample was assembled, so re-validating (and re-packing) the unpacked
    matrix per scheme would defeat the pack-once design.  Anything else
    goes through :func:`as_bit_matrix`.
    """
    from repro.kernels.pipeline import PackedBits

    if isinstance(blocks_bits, PackedBits):
        if blocks_bits.block_bits != block_bits:
            raise ValueError(
                f"expected packed bits with block_bits={block_bits}, "
                f"got {blocks_bits.block_bits}"
            )
        return blocks_bits
    return as_bit_matrix(blocks_bits, block_bits)


class BusEncoder(ABC):
    """A data-transfer scheme for the cache H-tree.

    Attributes:
        name: Scheme identifier used in figures and the registry.
        block_bits: Bits per transferred cache block (512 for the L2).
        data_wires: Physical data wires in the bus.
    """

    name: str = "abstract"

    def __init__(self, block_bits: int, data_wires: int) -> None:
        require_positive("block_bits", block_bits)
        require_positive("data_wires", data_wires)
        require_multiple("block_bits", block_bits, data_wires)
        self.block_bits = block_bits
        self.data_wires = data_wires

    @property
    def beats(self) -> int:
        """Bus cycles a block needs at one word per cycle."""
        return self.block_bits // self.data_wires

    @property
    @abstractmethod
    def overhead_wires(self) -> int:
        """Extra wires beyond the data bus (invert/skip/indicator/strobes)."""

    @property
    def total_wires(self) -> int:
        """All wires the scheme routes through the H-tree."""
        return self.data_wires + self.overhead_wires

    @abstractmethod
    def stream_cost(self, blocks_bits: np.ndarray) -> StreamCost:
        """Per-block costs for a ``(num_blocks, block_bits)`` bit matrix.

        The bus starts from the all-zero reset state; wire state chains
        across the blocks of the stream.
        """

    def transfer_block(self, bits: np.ndarray) -> TransferCost:
        """Cost of a single block on a freshly reset bus."""
        stream = self.stream_cost(np.asarray(bits)[None, :])
        return stream.block(0)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(block_bits={self.block_bits}, "
            f"data_wires={self.data_wires})"
        )
