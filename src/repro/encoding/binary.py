"""Conventional parallel binary transmission (the paper's baseline).

A 512-bit block crosses a ``W``-wire bus in ``512/W`` beats; every beat
drives the next word, and the wires flip wherever consecutive words
differ.  For random data this costs ``W/2`` expected flips per beat —
the activity factor DESC attacks.
"""

from __future__ import annotations

import numpy as np

from repro.core.analysis import StreamCost
from repro.encoding import segments
from repro.encoding.base import BusEncoder, as_bit_payload
from repro.kernels import pipeline

__all__ = ["BinaryEncoder"]


class BinaryEncoder(BusEncoder):
    """Plain binary bus: no overhead wires, one word per cycle."""

    name = "binary"

    @property
    def overhead_wires(self) -> int:
        return 0

    def stream_cost(self, blocks_bits: np.ndarray) -> StreamCost:
        blocks_bits = as_bit_payload(blocks_bits, self.block_bits)
        num_blocks = blocks_bits.shape[0]
        if num_blocks == 0:
            empty = np.zeros(0, dtype=np.int64)
            return StreamCost(empty, empty, empty, empty)
        data_flips, overhead_flips = pipeline.binary_flips(
            blocks_bits, self.data_wires
        )
        zeros = np.zeros(num_blocks, dtype=np.int64)
        cycles = np.full(num_blocks, self.beats, dtype=np.int64)
        return StreamCost(
            data_flips=data_flips,
            overhead_flips=overhead_flips,
            sync_flips=zeros,
            cycles=cycles,
        )

    def _flips_arrays(self, blocks_bits: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized flip tallies (the NumPy tier of ``binary_flips``)."""
        num_blocks = blocks_bits.shape[0]
        beats = segments.beat_view(blocks_bits, self.data_wires, self.data_wires)
        driven = np.ones(beats.shape[:2], dtype=bool)
        held = segments.held_pattern(beats, driven)
        flips = (beats ^ held).sum(axis=(1, 2))
        data_flips = segments.per_block(flips, num_blocks)
        return data_flips, np.zeros(num_blocks, dtype=np.int64)
