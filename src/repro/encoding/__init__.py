"""Bus-encoding schemes: the paper's baselines plus DESC as an encoder.

All schemes implement :class:`~repro.encoding.base.BusEncoder` and are
built via :func:`~repro.encoding.registry.make_encoder`.
"""

from repro.encoding.address import GrayCodeEncoder, T0Encoder, addresses_to_bits
from repro.encoding.base import BusEncoder, as_bit_matrix
from repro.encoding.binary import BinaryEncoder
from repro.encoding.bus_invert import BusInvertEncoder
from repro.encoding.desc import DescEncoder
from repro.encoding.registry import (
    BEST_SEGMENT_BITS,
    FIGURE16_SCHEMES,
    make_encoder,
    scheme_names,
)
from repro.encoding.serial import SerialEncoder
from repro.encoding.zero_compression import ZeroCompressionEncoder

__all__ = [
    "BEST_SEGMENT_BITS",
    "BinaryEncoder",
    "BusEncoder",
    "BusInvertEncoder",
    "DescEncoder",
    "FIGURE16_SCHEMES",
    "GrayCodeEncoder",
    "T0Encoder",
    "SerialEncoder",
    "ZeroCompressionEncoder",
    "addresses_to_bits",
    "as_bit_matrix",
    "make_encoder",
    "scheme_names",
]
