"""Energy and physical-design models: technology, cache, processor, synthesis."""

from repro.energy.cacti import CacheEnergyModel, CacheGeometry
from repro.energy.mcpat import ProcessorEnergyBreakdown, ProcessorPowerModel
from repro.energy.synthesis import DescSynthesisModel, SynthesisResult
from repro.energy.technology import (
    DEVICE_TYPES,
    NODE_22NM,
    NODE_45NM,
    DeviceType,
    TechnologyNode,
)

__all__ = [
    "CacheEnergyModel",
    "CacheGeometry",
    "DEVICE_TYPES",
    "DescSynthesisModel",
    "DeviceType",
    "NODE_22NM",
    "NODE_45NM",
    "ProcessorEnergyBreakdown",
    "ProcessorPowerModel",
    "SynthesisResult",
    "TechnologyNode",
]
