"""Technology parameters: process nodes (Table 3) and ITRS device types.

The paper synthesizes DESC at 45 nm and scales to 22 nm using the
parameters of its Table 3, and explores ITRS high-performance (HP), low
operating power (LOP), and low standby power (LSTP) devices for the
SRAM cells and the cache periphery (Section 4.1, Figure 14).

Device-type figures are *relative* factors anchored to published ITRS
trends: LSTP transistors leak three-plus orders of magnitude less than
HP (the paper cites row-by-row VDD control reaching "two orders of
magnitude" on top of device choice) but switch about twice as slowly —
the paper's footnote 3 notes HP devices give "approximately 2× faster
access time" than LSTP with <2 % end-to-end performance impact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import require_positive

__all__ = ["TechnologyNode", "DeviceType", "NODE_45NM", "NODE_22NM", "DEVICE_TYPES"]


@dataclass(frozen=True)
class TechnologyNode:
    """A process node (paper Table 3).

    Attributes:
        name: Node label, e.g. ``"22nm"``.
        feature_nm: Drawn feature size in nanometres.
        voltage_v: Nominal supply voltage.
        fo4_delay_s: Fanout-of-4 inverter delay.
        sram_cell_area_um2: 6T SRAM cell footprint.
        gate_area_um2: Area of a NAND2-equivalent standard cell.
        gate_energy_j: Switching energy of a NAND2-equivalent gate.
        gate_leakage_w: Leakage of a NAND2-equivalent HP gate.
    """

    name: str
    feature_nm: float
    voltage_v: float
    fo4_delay_s: float
    sram_cell_area_um2: float
    gate_area_um2: float
    gate_energy_j: float
    gate_leakage_w: float

    def __post_init__(self) -> None:
        require_positive("feature_nm", self.feature_nm)
        require_positive("voltage_v", self.voltage_v)
        require_positive("fo4_delay_s", self.fo4_delay_s)
        require_positive("sram_cell_area_um2", self.sram_cell_area_um2)
        require_positive("gate_area_um2", self.gate_area_um2)
        require_positive("gate_energy_j", self.gate_energy_j)
        require_positive("gate_leakage_w", self.gate_leakage_w)


#: Table 3, 45 nm row (FreePDK45 synthesis node).
NODE_45NM = TechnologyNode(
    name="45nm",
    feature_nm=45.0,
    voltage_v=1.1,
    fo4_delay_s=20.25e-12,
    sram_cell_area_um2=0.35,
    gate_area_um2=1.6,
    gate_energy_j=1.6e-15,
    gate_leakage_w=40e-9,
)

#: Table 3, 22 nm row (evaluation node).
NODE_22NM = TechnologyNode(
    name="22nm",
    feature_nm=22.0,
    voltage_v=0.83,
    fo4_delay_s=11.75e-12,
    sram_cell_area_um2=0.1,
    gate_area_um2=0.4,
    gate_energy_j=0.45e-15,
    gate_leakage_w=25e-9,
)


@dataclass(frozen=True)
class DeviceType:
    """Relative figures of an ITRS device flavour.

    All factors are relative to the HP device at the same node.

    Attributes:
        name: ``"HP"``, ``"LOP"`` or ``"LSTP"``.
        leakage_factor: Subthreshold leakage relative to HP.
        delay_factor: Switching delay relative to HP.
        dynamic_factor: Switching energy relative to HP (higher-Vt
            devices swing less internal capacitance).
    """

    name: str
    leakage_factor: float
    delay_factor: float
    dynamic_factor: float

    def __post_init__(self) -> None:
        require_positive("leakage_factor", self.leakage_factor)
        require_positive("delay_factor", self.delay_factor)
        require_positive("dynamic_factor", self.dynamic_factor)


#: ITRS device flavours used in the Figure 14 design-space exploration.
DEVICE_TYPES = {
    "HP": DeviceType(name="HP", leakage_factor=1.0, delay_factor=1.0, dynamic_factor=1.0),
    "LOP": DeviceType(name="LOP", leakage_factor=0.02, delay_factor=1.4, dynamic_factor=0.7),
    "LSTP": DeviceType(
        name="LSTP", leakage_factor=1.1e-3, delay_factor=2.0, dynamic_factor=0.85
    ),
}
