"""McPAT-class processor power model.

The paper uses McPAT to put the L2 savings in processor context: the
8 MB L2 averages 15 % of total processor energy (Figure 1), so a 1.81×
L2 reduction yields the headline 7 % processor-energy saving
(Figure 19).  This model reproduces that accounting: per-instruction
core energy, core leakage, L1 access energy, and memory-interface
energy, combined with the L2 energy computed elsewhere.

Constants are calibrated so the evaluated *memory-intensive* workload
mix lands near the published 15 % L2 share on the Niagara-like
configuration; per-application variation then follows from each
application's instruction/L2-access mix (DESIGN.md §6).  Absolute watts
are not calibrated — every figure the paper reports is normalized.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import require_non_negative, require_positive

__all__ = ["ProcessorEnergyBreakdown", "ProcessorPowerModel"]


@dataclass(frozen=True)
class ProcessorEnergyBreakdown:
    """Processor energy split for one simulation (joules).

    Attributes:
        core_dynamic_j: Pipeline + register file + L1-interface dynamic.
        core_static_j: Core and L1 leakage over the run.
        l1_dynamic_j: Instruction and data L1 access energy.
        memory_interface_j: Memory-controller and DRAM-bus I/O energy.
        l2_j: Last-level cache energy (from the cache model).
    """

    core_dynamic_j: float
    core_static_j: float
    l1_dynamic_j: float
    memory_interface_j: float
    l2_j: float

    @property
    def total_j(self) -> float:
        """Whole-processor energy."""
        return (
            self.core_dynamic_j
            + self.core_static_j
            + self.l1_dynamic_j
            + self.memory_interface_j
            + self.l2_j
        )

    @property
    def l2_fraction(self) -> float:
        """Share of processor energy spent in the L2 (Figure 1)."""
        return self.l2_j / self.total_j if self.total_j else 0.0

    @property
    def non_l2_j(self) -> float:
        """Everything except the L2 ("other hardware units", Figure 19)."""
        return self.total_j - self.l2_j


class ProcessorPowerModel:
    """Core/L1/memory-interface energy for the simulated systems."""

    def __init__(
        self,
        num_cores: int = 8,
        clock_hz: float = 3.2e9,
        core_energy_per_instruction_j: float = 1.38e-11,
        core_leakage_w_per_core: float = 6.0e-3,
        l1_access_energy_j: float = 2.0e-12,
        memory_access_energy_j: float = 0.6e-9,
    ) -> None:
        require_positive("num_cores", num_cores)
        require_positive("clock_hz", clock_hz)
        require_positive(
            "core_energy_per_instruction_j", core_energy_per_instruction_j
        )
        require_positive("core_leakage_w_per_core", core_leakage_w_per_core)
        require_positive("l1_access_energy_j", l1_access_energy_j)
        require_positive("memory_access_energy_j", memory_access_energy_j)
        self.num_cores = num_cores
        self.clock_hz = clock_hz
        self.core_energy_per_instruction_j = core_energy_per_instruction_j
        self.core_leakage_w_per_core = core_leakage_w_per_core
        self.l1_access_energy_j = l1_access_energy_j
        self.memory_access_energy_j = memory_access_energy_j

    def breakdown(
        self,
        instructions: float,
        cycles: float,
        l1_accesses: float,
        memory_accesses: float,
        l2_energy_j: float,
    ) -> ProcessorEnergyBreakdown:
        """Assemble the processor energy split for one run.

        Args:
            instructions: Committed instructions across all cores.
            cycles: Execution time in core clock cycles.
            l1_accesses: IL1 + DL1 accesses across all cores.
            memory_accesses: Off-chip (DRAM) accesses.
            l2_energy_j: Total L2 energy from the cache/encoding models.
        """
        require_non_negative("instructions", instructions)
        require_non_negative("cycles", cycles)
        require_non_negative("l1_accesses", l1_accesses)
        require_non_negative("memory_accesses", memory_accesses)
        require_non_negative("l2_energy_j", l2_energy_j)
        seconds = cycles / self.clock_hz
        return ProcessorEnergyBreakdown(
            core_dynamic_j=instructions * self.core_energy_per_instruction_j,
            core_static_j=seconds * self.core_leakage_w_per_core * self.num_cores,
            l1_dynamic_j=l1_accesses * self.l1_access_energy_j,
            memory_interface_j=memory_accesses * self.memory_access_energy_j,
            l2_j=l2_energy_j,
        )
