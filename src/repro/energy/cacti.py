"""CACTI-class analytical model of a banked SRAM last-level cache.

Composes the H-tree geometry (:mod:`repro.interconnect`) with SRAM
array and peripheral-circuit estimates to produce the quantities the
evaluation needs: area, leakage power, per-access array energy,
per-flip H-tree energy, and access-latency components, all as functions
of capacity, bank count, bus width, and the ITRS device types chosen
for the cells and the periphery (Section 4.1).

The model is *structural*: trends across banks/width/size/devices come
from geometry and device factors, while a handful of constants (array
efficiency, peripheral gate counts, address activity) anchor the
baseline 8 MB / 8-bank / 64-bit LSTP-LSTP configuration to the paper's
published shares — H-tree dynamic ≈ 80 % of L2 energy (Figure 2) and a
~15 % static share (Figure 18).  See DESIGN.md §6.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.energy.technology import DEVICE_TYPES, NODE_22NM, DeviceType, TechnologyNode
from repro.interconnect.htree import HTreeModel
from repro.interconnect.wires import WireModel
from repro.util.validation import require_positive, require_power_of_two

__all__ = ["CacheGeometry", "CacheEnergyModel"]

# Fraction of the die actually covered by storage cells; the rest is
# sense amplifiers, decoders, and routing (CACTI-class value).
_ARRAY_EFFICIENCY = 0.45
# Peripheral circuitry per bank, in NAND2-equivalent gates: a term that
# scales with the bank's bitline/wordline periphery plus a fixed bank
# controller.  More banks buy shorter internal wires but pay this fixed
# cost — the upturn of Figure 25 beyond 8 banks.
_PERIPH_GATES_PER_SQRT_BIT = 1200.0
_PERIPH_GATES_FIXED = 300_000.0
# SRAM cell leakage relative to a NAND2 gate of the same device type.
_CELL_LEAK_VS_GATE = 4.0
# Array dynamic energy: gate-energy equivalents switched per accessed
# bit (wordline, bitline swing, sense amp) in the active mats.
_ARRAY_GATE_EQUIV_PER_BIT = 18.0
# Row decode + comparators per access, gate-equivalents.
_DECODE_GATE_EQUIV = 14_000.0
# Address/control wires routed alongside the data bus, and their mean
# switching activity per access under binary encoding (the paper keeps
# address/control in binary for DESC too, Section 3.2.1).
_ADDRESS_WIRES = 32
_ADDRESS_ACTIVITY = 0.25
# Metal pitch of the global H-tree wires (mm per wire track).
_WIRE_PITCH_MM = 0.6e-3
# The H-tree routing channel accommodates up to this many wires at a
# relaxed pitch (the paper's widest evaluated interface, DESC's 128
# data wires + strobes + address, fits).  Wider buses pack at tighter
# pitch, and sidewall coupling raises the switched capacitance per
# flip logarithmically in the overflow.
_CHANNEL_WIRES = 176
_COUPLING_SLOPE = 0.5
# Array access time, in FO4 delays, for a mat read (decode + sense).
_ARRAY_FO4_DELAYS = 28.0


@dataclass(frozen=True)
class CacheGeometry:
    """Organisation of the last-level cache (Table 1 defaults).

    Attributes:
        size_bytes: Total capacity (8 MB in the paper).
        block_bytes: Cache block size (64 B).
        associativity: Set associativity (16).
        num_banks: Independently addressable banks (8).
        subbanks_per_bank: Subbanks below each bank (4, Figure 7).
        mats_per_subbank: Mats below each subbank (4, Figure 7).
        data_wires: Width of the data H-tree in wires (64).
        overhead_wires: Extra scheme wires routed with the data bus.
    """

    size_bytes: int = 8 * 1024 * 1024
    block_bytes: int = 64
    associativity: int = 16
    num_banks: int = 8
    subbanks_per_bank: int = 4
    mats_per_subbank: int = 4
    data_wires: int = 64
    overhead_wires: int = 0

    def __post_init__(self) -> None:
        require_positive("size_bytes", self.size_bytes)
        require_positive("block_bytes", self.block_bytes)
        require_positive("associativity", self.associativity)
        require_power_of_two("num_banks", self.num_banks)
        require_power_of_two("subbanks_per_bank", self.subbanks_per_bank)
        require_power_of_two("mats_per_subbank", self.mats_per_subbank)
        require_positive("data_wires", self.data_wires)

    @property
    def total_bits(self) -> int:
        """Storage bits (data array; tags are folded into efficiency)."""
        return self.size_bytes * 8

    @property
    def block_bits(self) -> int:
        """Bits per cache block."""
        return self.block_bytes * 8

    @property
    def num_sets(self) -> int:
        """Cache sets."""
        return self.size_bytes // (self.block_bytes * self.associativity)

    @property
    def internal_leaves(self) -> int:
        """Mats reachable below one bank."""
        return self.subbanks_per_bank * self.mats_per_subbank

    @property
    def total_wires(self) -> int:
        """Wires in the H-tree bundle: data + scheme overhead + address."""
        return self.data_wires + self.overhead_wires + _ADDRESS_WIRES


class CacheEnergyModel:
    """Area, power, energy, and latency figures for one cache design."""

    def __init__(
        self,
        geometry: CacheGeometry | None = None,
        cell_device: str = "LSTP",
        periph_device: str = "LSTP",
        node: TechnologyNode = NODE_22NM,
        clock_hz: float = 3.2e9,
        wire_model: WireModel | None = None,
        route_scale: float = 1.0,
    ) -> None:
        self.geometry = geometry if geometry is not None else CacheGeometry()
        if cell_device not in DEVICE_TYPES or periph_device not in DEVICE_TYPES:
            raise ValueError(
                f"devices must be in {tuple(DEVICE_TYPES)}; "
                f"got {cell_device!r}, {periph_device!r}"
            )
        self.cell_device: DeviceType = DEVICE_TYPES[cell_device]
        self.periph_device: DeviceType = DEVICE_TYPES[periph_device]
        self.node = node
        require_positive("clock_hz", clock_hz)
        require_positive("route_scale", route_scale)
        self.clock_hz = clock_hz
        # Fraction of the full H-tree route an average access traverses:
        # 1.0 for the recursive shared H-tree; S-NUCA-1's statically
        # routed per-bank channels average a shorter distance.
        self.route_scale = route_scale
        base_wires = wire_model if wire_model is not None else WireModel()
        self.wire_model = base_wires.scaled(voltage_v=node.voltage_v)
        self._htree = self._build_htree()

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    def _build_htree(self) -> HTreeModel:
        """Solve the area fixed point (wire area depends on total area)."""
        g = self.geometry
        cell_area_mm2 = (
            g.total_bits * self.node.sram_cell_area_um2 / _ARRAY_EFFICIENCY * 1e-6
        )
        periph_area_mm2 = (
            self._periph_gates_total() * self.node.gate_area_um2 * 1e-6
        )
        area = cell_area_mm2 + periph_area_mm2
        for _ in range(4):  # converges in a couple of iterations
            wire_area = g.total_wires * 2.0 * math.sqrt(area) * _WIRE_PITCH_MM
            area = cell_area_mm2 + periph_area_mm2 + wire_area
        return HTreeModel(
            area_mm2=area,
            num_banks=g.num_banks,
            internal_leaves=g.internal_leaves,
            wires=self.wire_model,
            num_wires=g.total_wires,
        )

    @property
    def htree(self) -> HTreeModel:
        """The solved interconnect model."""
        return self._htree

    @property
    def area_mm2(self) -> float:
        """Total cache footprint."""
        return self._htree.area_mm2

    def _periph_gates_per_bank(self) -> float:
        bits_per_bank = self.geometry.total_bits / self.geometry.num_banks
        return (
            _PERIPH_GATES_PER_SQRT_BIT * math.sqrt(bits_per_bank)
            + _PERIPH_GATES_FIXED
        )

    def _periph_gates_total(self) -> float:
        return self._periph_gates_per_bank() * self.geometry.num_banks

    # ------------------------------------------------------------------
    # Static power
    # ------------------------------------------------------------------

    @property
    def cell_leakage_w(self) -> float:
        """Leakage of the storage arrays."""
        per_cell = self.node.gate_leakage_w * _CELL_LEAK_VS_GATE
        return self.geometry.total_bits * per_cell * self.cell_device.leakage_factor

    @property
    def periph_leakage_w(self) -> float:
        """Leakage of decoders, sense amps, bank controllers, repeaters."""
        gates = self._periph_gates_total() * self.node.gate_leakage_w
        repeaters = self._htree.repeater_leakage_w
        return (gates + repeaters) * self.periph_device.leakage_factor

    @property
    def leakage_w(self) -> float:
        """Total standby power of the cache."""
        return self.cell_leakage_w + self.periph_leakage_w

    # ------------------------------------------------------------------
    # Dynamic energy
    # ------------------------------------------------------------------

    @property
    def coupling_factor(self) -> float:
        """Capacitance penalty of packing the bus tighter than the
        relaxed-pitch channel allows (1.0 up to 176 wires)."""
        overflow = self.geometry.total_wires / _CHANNEL_WIRES
        if overflow <= 1.0:
            return 1.0
        return 1.0 + _COUPLING_SLOPE * math.log2(overflow)

    @property
    def energy_per_flip_j(self) -> float:
        """H-tree energy of one wire transition (controller to mat)."""
        return (
            self._htree.energy_per_flip_j
            * self.periph_device.dynamic_factor
            * self.route_scale
            * self.coupling_factor
        )

    @property
    def array_access_energy_j(self) -> float:
        """Array-side energy of reading/writing one block (active mats only)."""
        per_bit = _ARRAY_GATE_EQUIV_PER_BIT * self.node.gate_energy_j
        array = self.geometry.block_bits * per_bit * self.cell_device.dynamic_factor
        decode = (
            _DECODE_GATE_EQUIV * self.node.gate_energy_j
            * self.periph_device.dynamic_factor
        )
        return array + decode

    @property
    def address_energy_j(self) -> float:
        """Mean H-tree energy of the (binary-encoded) address per access."""
        flips = _ADDRESS_WIRES * _ADDRESS_ACTIVITY
        return flips * self.energy_per_flip_j

    # ------------------------------------------------------------------
    # Latency
    # ------------------------------------------------------------------

    @property
    def htree_delay_cycles(self) -> int:
        """One-way H-tree traversal, in clock cycles."""
        delay = self._htree.traversal_delay_s * self.route_scale
        return max(1, math.ceil(delay * self.clock_hz))

    @property
    def array_delay_cycles(self) -> int:
        """Mat access (decode + read + sense), in clock cycles."""
        device = max(self.cell_device.delay_factor, self.periph_device.delay_factor)
        seconds = _ARRAY_FO4_DELAYS * self.node.fo4_delay_s * device
        return max(1, math.ceil(seconds * self.clock_hz))

    @property
    def base_hit_cycles(self) -> int:
        """Hit latency before the data-transfer beats: request H-tree in,
        array access, first-word H-tree out."""
        return 2 * self.htree_delay_cycles + self.array_delay_cycles

    def __repr__(self) -> str:
        g = self.geometry
        return (
            f"CacheEnergyModel({g.size_bytes // (1024 * 1024)}MB, "
            f"{g.num_banks} banks, {g.data_wires}-bit bus, "
            f"{self.cell_device.name}-{self.periph_device.name})"
        )
