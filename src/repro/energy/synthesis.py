"""Gate-inventory model of the DESC transmitter/receiver (Figure 17).

The paper implements DESC in Verilog and synthesizes it with Cadence
RTL Compiler on FreePDK45, then scales to 22 nm (Tables 3).  Without the
RTL toolchain we model the same structural inventory in NAND2-equivalent
gates:

* per chunk transmitter (Figure 11-a): a ``k``-bit chunk register, a
  ``k``-bit comparator against the counter, a toggle generator, and
  skip/start control;
* per chunk receiver (Figure 11-b): a toggle detector, a ``k``-bit
  capture register, and load control;
* shared per endpoint: the ``k``-bit up/down counter, the reset/skip
  transmitter, the synchronization toggle generator/detector, and the
  ready/done reduction tree over all chunks.

Area, power, and delay then follow from the per-gate figures of the
process node (Table 3).  The constants below are calibrated so the
default 128-chunk, 4-bit interface lands on the published 22 nm
figures: ≈2120 µm² for a transmitter+receiver pair, ≈46 mW peak power,
and ≈625 ps of added round-trip logic delay.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.technology import NODE_22NM, TechnologyNode
from repro.util.validation import require_positive

__all__ = ["SynthesisResult", "DescSynthesisModel"]

# NAND2-equivalents of a D flip-flop.
_FF_GATE_EQUIV = 3.0
# Comparator gates per bit (XNOR + AND-tree share).
_COMPARATOR_GATES_PER_BIT = 1.0
# Toggle generator: one FF + XOR; toggle detector: delay cell + XOR.
_TOGGLE_GEN_GATES = _FF_GATE_EQUIV + 2.0
_TOGGLE_DET_GATES = 3.0
# Control overhead per chunk endpoint (start/done/skip gating).
_CHUNK_CONTROL_GATES = 2.0
# Shared control per endpoint beyond the counter (FSM, ready tree seed).
_SHARED_CONTROL_GATES = 55.0
# Fraction of gates switching in the peak cycle (clock + counters +
# all comparators evaluating simultaneously).
_PEAK_ACTIVITY = 5.9
# Critical path of one endpoint in FO4 delays (comparator + toggle).
_ENDPOINT_FO4_DELAYS = 26.0


@dataclass(frozen=True)
class SynthesisResult:
    """Synthesis-style figures for one DESC endpoint or pair.

    Attributes:
        area_um2: Cell area.
        peak_power_w: Worst-cycle dynamic power at the given clock.
        delay_s: Added logic delay on the data path.
        gate_equivalents: NAND2-equivalent gate count.
    """

    area_um2: float
    peak_power_w: float
    delay_s: float
    gate_equivalents: float

    def __add__(self, other: "SynthesisResult") -> "SynthesisResult":
        return SynthesisResult(
            area_um2=self.area_um2 + other.area_um2,
            peak_power_w=self.peak_power_w + other.peak_power_w,
            delay_s=self.delay_s + other.delay_s,
            gate_equivalents=self.gate_equivalents + other.gate_equivalents,
        )


class DescSynthesisModel:
    """Area/power/delay of DESC interface hardware at a process node."""

    def __init__(
        self,
        num_chunks: int = 128,
        chunk_bits: int = 4,
        node: TechnologyNode = NODE_22NM,
        clock_hz: float = 3.2e9,
    ) -> None:
        require_positive("num_chunks", num_chunks)
        require_positive("chunk_bits", chunk_bits)
        require_positive("clock_hz", clock_hz)
        self.num_chunks = num_chunks
        self.chunk_bits = chunk_bits
        self.node = node
        self.clock_hz = clock_hz

    def _result(self, gates: float) -> SynthesisResult:
        area = gates * self.node.gate_area_um2
        peak = (
            gates * _PEAK_ACTIVITY * self.node.gate_energy_j * self.clock_hz
        )
        delay = _ENDPOINT_FO4_DELAYS * self.node.fo4_delay_s
        return SynthesisResult(
            area_um2=area, peak_power_w=peak, delay_s=delay, gate_equivalents=gates
        )

    def transmitter(self) -> SynthesisResult:
        """The chunk transmitters plus shared counter and strobe logic."""
        k = self.chunk_bits
        per_chunk = (
            k * _FF_GATE_EQUIV  # chunk register
            + k * _COMPARATOR_GATES_PER_BIT  # counter comparator
            + _TOGGLE_GEN_GATES  # data strobe driver
            + _CHUNK_CONTROL_GATES
        )
        shared = (
            k * _FF_GATE_EQUIV + 4.0 * k  # down counter + increment logic
            + _TOGGLE_GEN_GATES * 2  # reset/skip + synchronization strobes
            + _SHARED_CONTROL_GATES
            + self.num_chunks * 0.5  # done-reduction tree
        )
        return self._result(self.num_chunks * per_chunk + shared)

    def receiver(self) -> SynthesisResult:
        """The chunk receivers plus shared counter and detectors."""
        k = self.chunk_bits
        per_chunk = (
            k * _FF_GATE_EQUIV  # capture register
            + _TOGGLE_DET_GATES  # data strobe detector
            + _CHUNK_CONTROL_GATES
        )
        shared = (
            k * _FF_GATE_EQUIV + 4.0 * k  # up counter
            + _TOGGLE_DET_GATES * 2  # reset/skip + synchronization detectors
            + _SHARED_CONTROL_GATES
            + self.num_chunks * 0.5  # ready-reduction tree
        )
        return self._result(self.num_chunks * per_chunk + shared)

    def interface_pair(self) -> SynthesisResult:
        """A transmitter + receiver pair as placed at each mat."""
        return self.transmitter() + self.receiver()

    def round_trip_delay_s(self) -> float:
        """Logic delay added to a round-trip cache access (two endpoints)."""
        return self.transmitter().delay_s + self.receiver().delay_s

    def round_trip_delay_cycles(self) -> int:
        """Added delay quantized to clock cycles."""
        import math

        return max(1, math.ceil(self.round_trip_delay_s() * self.clock_hz))
