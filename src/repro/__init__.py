"""repro — a reproduction of DESC (Bojnordi & Ipek, MICRO 2013).

DESC is an energy-efficient data-exchange technique for last-level-cache
interconnects that represents chunk values as the delay between pulses on
a wire, bounding transitions to one per chunk.  This package implements
DESC and every substrate the paper's evaluation depends on: baseline bus
encodings, an H-tree interconnect and cache energy model, a banked cache
with MESI-coherent L1s, SECDED ECC with DESC's interleaved layout, a
trace-driven multicore timing model, synthetic workloads calibrated to
the paper's published value statistics, and one experiment module per
figure.

Quick start::

    from repro import ChunkLayout, DescLink
    import numpy as np

    link = DescLink(ChunkLayout(block_bits=512, chunk_bits=4, num_wires=128),
                    skip_policy="zero")
    block = np.random.default_rng(0).integers(0, 16, size=128)
    cost = link.send_block(block)
    print(cost.total_flips, cost.cycles)
"""

from repro.core import (
    ChunkLayout,
    DescCostModel,
    DescLink,
    DescReceiver,
    DescTransmitter,
    StreamCost,
    TransferCost,
)

__version__ = "1.0.0"

__all__ = [
    "ChunkLayout",
    "DescCostModel",
    "DescLink",
    "DescReceiver",
    "DescTransmitter",
    "StreamCost",
    "TransferCost",
    "__version__",
]
