"""Fault-injection campaigns: a faulty link vs. a fault-free reference.

:func:`run_campaign` drives a seeded stream of random cache blocks
through a :class:`~repro.core.link.DescLink` carrying a
:class:`~repro.faults.injector.LinkFaultInjector`, optionally protecting
every block with the paper's chunk-interleaved SECDED layout (Figure 9),
and classifies each delivered block against the transmitted data:
clean, ECC-corrected, *detected* corrupt (sentinels or uncorrectable
syndrome — a retry candidate), or *silently* wrong (the failure mode
that actually matters).  A fault-free reference link carries the same
stream so recovery costs can be expressed as overhead ratios.

The campaign is a pure function of its config: all randomness comes from
the config's seeds, so results are identical whether campaigns run
serially or across pool workers — which is what lets the staged engine
cache and parallelize them like any other batch job.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.chunking import ChunkLayout
from repro.core.link import DescLink
from repro.core.receiver import CORRUPT_CHUNK
from repro.ecc.hamming import DecodeStatus
from repro.ecc.layout import DescEccLayout
from repro.faults.injector import LinkFaultInjector
from repro.faults.processes import FaultConfig
from repro.sim.metrics import FaultStats

__all__ = [
    "FaultCampaignConfig",
    "FaultCampaignResult",
    "run_campaign",
    "sweep_grid",
]


@dataclass(frozen=True)
class FaultCampaignConfig:
    """One point of a fault sweep: environment, protection, workload.

    Attributes:
        fault: The link's fault environment (rates + injector seed).
        num_blocks: Blocks to push through the link.
        block_bits: Data bits per block.
        chunk_bits: DESC chunk width.
        segment_bits: SECDED segment size (only with ``use_ecc``).
        skip_policy: Transfer-skipping policy name for both endpoints.
        wire_delay: Link propagation delay in cycles.
        resync_interval: Blocks between periodic resync strobes
            (``None`` disables periodic recovery; the block watchdog
            still forces a resync after a lost block).
        use_ecc: Protect blocks with the Figure 9 interleaved SECDED
            layout; off, corrupted chunks land in the data unchecked.
        data_seed: Seed of the random block stream (independent of the
            fault seed so the two can vary separately in sweeps).
    """

    fault: FaultConfig = FaultConfig()
    num_blocks: int = 64
    block_bits: int = 512
    chunk_bits: int = 4
    segment_bits: int = 128
    skip_policy: str = "none"
    wire_delay: int = 0
    resync_interval: int | None = 8
    use_ecc: bool = True
    data_seed: int = 1

    def __post_init__(self) -> None:
        if self.num_blocks < 1:
            raise ValueError(f"num_blocks must be >= 1, got {self.num_blocks}")

    def key(self) -> str:
        """A stable identity string for result-store caching."""
        f = self.fault
        fault_part = (
            f"d{f.drop_rate}:g{f.glitch_rate}:s{f.strobe_glitch_rate}"
            f":c{f.desync_rate}:w{f.stuck_wires}:l{f.stuck_level}"
            f":b{int(f.burst)}:{f.burst_on_rate}:{f.burst_off_rate}"
            f":{f.burst_gain}:seed{f.seed}"
        )
        return (
            f"faults/{fault_part}/n{self.num_blocks}:bb{self.block_bits}"
            f":cb{self.chunk_bits}:sb{self.segment_bits}:{self.skip_policy}"
            f":wd{self.wire_delay}:ri{self.resync_interval}"
            f":ecc{int(self.use_ecc)}:ds{self.data_seed}"
        )


@dataclass(frozen=True)
class FaultCampaignResult:
    """A campaign's config echoed back with its measured statistics."""

    config: FaultCampaignConfig
    stats: FaultStats


def _link_layout(config: FaultCampaignConfig, num_chunks: int) -> ChunkLayout:
    """One wire per chunk: every block is a single round.

    The ECC chunk count (137 in the paper's default) is prime, so the
    protected stream cannot split into multiple equal rounds anyway;
    matching geometry on the unprotected path keeps the two comparable.
    """
    return ChunkLayout(
        block_bits=num_chunks * config.chunk_bits,
        chunk_bits=config.chunk_bits,
        num_wires=num_chunks,
    )


def _bit_weight(values: np.ndarray, chunk_bits: int) -> int:
    """Total set bits across ``values`` (each < 2**chunk_bits)."""
    shifts = np.arange(chunk_bits, dtype=np.int64)
    return int(((values[:, None] >> shifts) & 1).sum())


def run_campaign(config: FaultCampaignConfig) -> FaultCampaignResult:
    """Run one fault-injection campaign; pure in ``config``."""
    rng = np.random.default_rng(config.data_seed)
    bits = rng.integers(
        0, 2, size=(config.num_blocks, config.block_bits), dtype=np.uint8
    )

    ecc: DescEccLayout | None = None
    if config.use_ecc:
        ecc = DescEccLayout(
            block_bits=config.block_bits,
            segment_bits=config.segment_bits,
            chunk_bits=config.chunk_bits,
        )
        stream = ecc.encode_stream(bits)
    else:
        shifts = np.arange(config.chunk_bits, dtype=np.int64)
        lanes = bits.reshape(config.num_blocks, -1, config.chunk_bits)
        stream = (lanes.astype(np.int64) << shifts).sum(axis=2)
    layout = _link_layout(config, stream.shape[1])

    injector = (
        LinkFaultInjector(config.fault, layout.num_wires)
        if config.fault.any_faults
        else None
    )
    faulty = DescLink(
        layout,
        skip_policy=config.skip_policy,
        wire_delay=config.wire_delay,
        injector=injector,
        resync_interval=config.resync_interval,
    )
    reference = DescLink(
        layout, skip_policy=config.skip_policy, wire_delay=config.wire_delay
    )

    clean = corrected = detected = silent = 0
    chunk_errors = chunks_total = 0
    bit_errors = bits_total = 0
    for i in range(config.num_blocks):
        delivered_before = len(faulty.receiver.received_blocks)
        faulty.send_block(stream[i])
        reference.send_block(stream[i])
        if len(faulty.receiver.received_blocks) == delivered_before:
            continue  # lost block, already counted by the link watchdog
        got = faulty.receiver.received_blocks[-1]
        chunk_errors += int((got != stream[i]).sum())
        chunks_total += layout.num_chunks
        if ecc is not None:
            result = ecc.decode_block(got)
            wrong = int((result.data_bits != bits[i]).sum())
            if not result.ok:
                detected += 1
            elif wrong:
                silent += 1
                bit_errors += wrong
                bits_total += config.block_bits
            else:
                bits_total += config.block_bits
                if any(s == DecodeStatus.CORRECTED for s in result.status):
                    corrected += 1
                else:
                    clean += 1
        else:
            if (got == CORRUPT_CHUNK).any():
                detected += 1
            else:
                wrong = _bit_weight(got ^ stream[i], config.chunk_bits)
                bits_total += config.block_bits
                if wrong:
                    silent += 1
                    bit_errors += wrong
                else:
                    clean += 1

    report = faulty.fault_report()
    inj = injector.stats() if injector is not None else None
    cost = faulty.cost_so_far()
    base = reference.cost_so_far()
    stats = FaultStats(
        blocks_sent=report.blocks_sent,
        blocks_delivered=report.blocks_delivered,
        blocks_lost=report.blocks_lost,
        clean_blocks=clean,
        corrected_blocks=corrected,
        detected_blocks=detected,
        silent_blocks=silent,
        chunk_errors_pre_ecc=chunk_errors,
        chunks_total=chunks_total,
        bit_errors_post_ecc=bit_errors,
        bits_total=bits_total,
        resyncs=report.resyncs,
        mean_recovery_latency=report.mean_recovery_latency,
        resync_flips=report.resync_flips,
        resync_cycles=report.resync_cycles,
        total_flips=int(cost.total_flips),
        total_cycles=int(cost.cycles),
        baseline_flips=int(base.total_flips),
        baseline_cycles=int(base.cycles),
        dropped_toggles=inj.dropped_toggles if inj else 0,
        spurious_toggles=inj.spurious_toggles if inj else 0,
        strobe_glitches=inj.strobe_glitches if inj else 0,
        desync_events=inj.desync_events if inj else 0,
        watchdog_aborts=report.receiver_events.watchdog_aborts,
    )
    return FaultCampaignResult(config=config, stats=stats)


def sweep_grid(
    base: FaultCampaignConfig,
    drop_rates: tuple[float, ...],
    resync_intervals: tuple[int | None, ...],
    ecc_settings: tuple[bool, ...] = (True, False),
) -> list[FaultCampaignConfig]:
    """The cross-product grid of a fault sweep, as campaign configs."""
    grid: list[FaultCampaignConfig] = []
    for rate in drop_rates:
        for interval in resync_intervals:
            for use_ecc in ecc_settings:
                grid.append(
                    replace(
                        base,
                        fault=replace(base.fault, drop_rate=rate),
                        resync_interval=interval,
                        use_ecc=use_ecc,
                    )
                )
    return grid
