"""Seeded per-wire fault processes (Bernoulli and Gilbert–Elliott).

Each process answers one question every cycle: *which wires suffer a
fault event right now?*  The memoryless :class:`BernoulliProcess` models
independent transient upsets; the two-state :class:`GilbertElliottProcess`
models bursty channels (crosstalk windows, supply droop) where errors
cluster — the regime the skip-based encoding literature studies for
error-resilient transfer (see PAPERS.md).

All randomness flows from one :class:`numpy.random.Generator` owned by
the injector, so a campaign seeded once is reproducible event-for-event
regardless of host or worker count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "FaultConfig",
    "BernoulliProcess",
    "GilbertElliottProcess",
    "make_process",
]


def _require_rate(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class FaultConfig:
    """A frozen, hashable description of the link's fault environment.

    Rates are per wire per cycle.  The default instance injects nothing,
    so ``FaultConfig()`` doubles as the explicit "no faults" value.

    Attributes:
        drop_rate: Probability that a wire transition is masked (the
            delivered level holds).  A drop inverts the parity of every
            later toggle on that wire until a resync re-arms the
            receiver — the paper's counter-desynchronization hazard.
        glitch_rate: Probability of a spurious transition on a data
            wire (delivered level inverts from this cycle on).
        strobe_glitch_rate: Probability of a spurious transition on the
            shared reset/skip wire — mis-framing a whole round.
        desync_rate: Probability per cycle of a receiver counter upset
            (the count mislatches by ±1 mid-round).
        stuck_wires: Data-wire indices pinned to ``stuck_level``
            (hard faults).
        stuck_level: The level stuck wires are pinned to.
        burst: Drive drop/glitch events through a per-wire
            Gilbert–Elliott chain instead of memoryless Bernoulli draws.
        burst_on_rate: Good→bad state transition probability per cycle.
        burst_off_rate: Bad→good state transition probability per cycle.
        burst_gain: Multiplier applied to the base event rate while a
            wire is in the bad state (clipped to 1).
        seed: Seed of the injector's generator; every fault event is a
            pure function of this seed and the driven levels.
    """

    drop_rate: float = 0.0
    glitch_rate: float = 0.0
    strobe_glitch_rate: float = 0.0
    desync_rate: float = 0.0
    stuck_wires: tuple[int, ...] = ()
    stuck_level: int = 0
    burst: bool = False
    burst_on_rate: float = 0.02
    burst_off_rate: float = 0.25
    burst_gain: float = 20.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "glitch_rate", "strobe_glitch_rate",
                     "desync_rate", "burst_on_rate", "burst_off_rate"):
            _require_rate(name, getattr(self, name))
        if self.stuck_level not in (0, 1):
            raise ValueError(
                f"stuck_level must be 0 or 1, got {self.stuck_level}"
            )
        if self.burst_gain <= 0:
            raise ValueError(
                f"burst_gain must be positive, got {self.burst_gain}"
            )
        if not isinstance(self.stuck_wires, tuple):
            # Accept lists for convenience while keeping hashability.
            object.__setattr__(self, "stuck_wires", tuple(self.stuck_wires))

    @property
    def any_faults(self) -> bool:
        """Whether this configuration can perturb the link at all."""
        return bool(
            self.drop_rate or self.glitch_rate or self.strobe_glitch_rate
            or self.desync_rate or self.stuck_wires
        )


class BernoulliProcess:
    """Memoryless per-wire fault events at a fixed rate."""

    def __init__(
        self, rate: float, num_wires: int, rng: np.random.Generator
    ) -> None:
        _require_rate("rate", rate)
        if num_wires <= 0:
            raise ValueError(f"num_wires must be positive, got {num_wires}")
        self.rate = rate
        self.num_wires = num_wires
        self._rng = rng

    def sample(self) -> np.ndarray:
        """Boolean event vector for this cycle, one entry per wire."""
        if self.rate == 0.0:
            return np.zeros(self.num_wires, dtype=bool)
        return self._rng.random(self.num_wires) < self.rate


class GilbertElliottProcess:
    """Bursty per-wire fault events from a two-state Markov chain.

    Each wire is independently in a *good* state (events at
    ``base_rate``) or a *bad* state (events at ``base_rate * gain``,
    clipped to 1).  Transitions happen per cycle with the configured
    probabilities, so the stationary bad-state occupancy is
    ``on_rate / (on_rate + off_rate)``.
    """

    def __init__(
        self,
        base_rate: float,
        num_wires: int,
        rng: np.random.Generator,
        on_rate: float = 0.02,
        off_rate: float = 0.25,
        gain: float = 20.0,
    ) -> None:
        _require_rate("base_rate", base_rate)
        if num_wires <= 0:
            raise ValueError(f"num_wires must be positive, got {num_wires}")
        self.base_rate = base_rate
        self.bad_rate = min(1.0, base_rate * gain)
        self.num_wires = num_wires
        self.on_rate = on_rate
        self.off_rate = off_rate
        self._rng = rng
        self._bad = np.zeros(num_wires, dtype=bool)

    @property
    def bad_states(self) -> np.ndarray:
        """Current per-wire state (True = bad/bursty)."""
        return self._bad.copy()

    def sample(self) -> np.ndarray:
        """Advance the chains one cycle; return this cycle's events."""
        if self.base_rate == 0.0:
            return np.zeros(self.num_wires, dtype=bool)
        draws = self._rng.random(self.num_wires)
        flips = self._rng.random(self.num_wires)
        rates = np.where(self._bad, self.bad_rate, self.base_rate)
        events = draws < rates
        enter_bad = ~self._bad & (flips < self.on_rate)
        leave_bad = self._bad & (flips < self.off_rate)
        self._bad = (self._bad | enter_bad) & ~leave_bad
        return events


def make_process(
    rate: float,
    num_wires: int,
    config: FaultConfig,
    rng: np.random.Generator,
):
    """The configured process type for one fault class at ``rate``."""
    if config.burst:
        return GilbertElliottProcess(
            rate,
            num_wires,
            rng,
            on_rate=config.burst_on_rate,
            off_rate=config.burst_off_rate,
            gain=config.burst_gain,
        )
    return BernoulliProcess(rate, num_wires, rng)
