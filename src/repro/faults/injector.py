"""The link-level fault injector: perturbs delivered wire *levels*.

DESC endpoints communicate through level transitions, so faults are
modelled as an XOR mask between the transmitter's driven levels and the
levels the receiver observes:

* a **dropped toggle** flips the mask exactly when the transmitter
  toggles — the edge is masked, and (crucially) every later toggle on
  that wire arrives with inverted parity until something re-arms the
  receiver.  One drop therefore poisons a wire indefinitely, which is
  the counter-desynchronization hazard the paper's resync machinery
  exists for.
* a **spurious toggle** (glitch) flips the mask at an arbitrary cycle —
  one phantom edge now, normal edges afterwards.
* a **strobe glitch** is a glitch on the shared reset/skip wire
  (index 0), mis-framing the current round.
* a **stuck-at wire** is pinned to a constant level after masking.
* a **counter desync** is not a wire fault: the injector reports the
  event and :class:`~repro.core.link.DescLink` applies it to the
  receiver's round counter.

The injector is deterministic in its :class:`FaultConfig` seed: the
same config and the same driven-level sequence produce the same faults,
which is what makes fault campaigns reproducible across serial and
parallel execution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.processes import FaultConfig, make_process

__all__ = ["InjectorStats", "LinkFaultInjector"]


@dataclass(frozen=True)
class InjectorStats:
    """Counters of the fault events an injector has produced.

    Attributes:
        dropped_toggles: Transmitter transitions masked from the receiver.
        spurious_toggles: Phantom data-wire transitions delivered.
        strobe_glitches: Phantom reset/skip-wire transitions delivered.
        desync_events: Receiver counter upsets signalled.
        cycles: Cycles the injector has perturbed.
    """

    dropped_toggles: int
    spurious_toggles: int
    strobe_glitches: int
    desync_events: int
    cycles: int

    @property
    def total_events(self) -> int:
        """All fault events of any class."""
        return (
            self.dropped_toggles + self.spurious_toggles
            + self.strobe_glitches + self.desync_events
        )


class LinkFaultInjector:
    """Stateful per-link fault source; one instance per faulty link.

    Args:
        config: The fault environment to realize.
        num_wires: Data-wire count of the link's layout (the injector
            perturbs ``1 + num_wires`` lines; line 0 is the shared
            reset/skip wire).
    """

    def __init__(self, config: FaultConfig, num_wires: int) -> None:
        if num_wires <= 0:
            raise ValueError(f"num_wires must be positive, got {num_wires}")
        for wire in config.stuck_wires:
            if not 0 <= wire < num_wires:
                raise ValueError(
                    f"stuck wire {wire} outside data wires 0..{num_wires - 1}"
                )
        self.config = config
        self.num_wires = num_wires
        self._rng = np.random.default_rng(config.seed)
        lines = 1 + num_wires
        # Drops apply to every line (a masked strobe toggle mis-frames a
        # round); glitches are split between the data wires and the
        # dedicated strobe process so their rates tune independently.
        self._drop = make_process(config.drop_rate, lines, config, self._rng)
        self._glitch = make_process(
            config.glitch_rate, num_wires, config, self._rng
        )
        self._strobe = make_process(
            config.strobe_glitch_rate, 1, config, self._rng
        )
        self._desync = make_process(config.desync_rate, 1, config, self._rng)
        self._mask = np.zeros(lines, dtype=np.uint8)
        self._last_driven: np.ndarray | None = None
        self._pending_desync = 0
        self.dropped_toggles = 0
        self.spurious_toggles = 0
        self.strobe_glitches = 0
        self.desync_events = 0
        self.cycles = 0

    def stats(self) -> InjectorStats:
        """A snapshot of the event counters."""
        return InjectorStats(
            dropped_toggles=self.dropped_toggles,
            spurious_toggles=self.spurious_toggles,
            strobe_glitches=self.strobe_glitches,
            desync_events=self.desync_events,
            cycles=self.cycles,
        )

    def perturb(self, levels: np.ndarray) -> np.ndarray:
        """One cycle of faults: driven levels in, delivered levels out.

        Must be called exactly once per link cycle — the fault processes
        advance on every call.
        """
        driven = np.asarray(levels, dtype=np.uint8)
        if len(driven) != 1 + self.num_wires:
            raise ValueError(
                f"expected {1 + self.num_wires} wire levels, got {len(driven)}"
            )
        if self._last_driven is None:
            toggled = np.zeros(1 + self.num_wires, dtype=bool)
        else:
            toggled = driven != self._last_driven
        self._last_driven = driven.copy()

        drops = self._drop.sample() & toggled
        if drops.any():
            self._mask[drops] ^= 1
            self.dropped_toggles += int(drops.sum())
        glitches = self._glitch.sample()
        if glitches.any():
            self._mask[1:][glitches] ^= 1
            self.spurious_toggles += int(glitches.sum())
        if self._strobe.sample()[0]:
            self._mask[0] ^= 1
            self.strobe_glitches += 1
        if self._desync.sample()[0]:
            self.desync_events += 1
            # Alternate the drift direction so campaigns see both.
            self._pending_desync = 1 if self.desync_events % 2 else -1
        self.cycles += 1
        return self.deliver(driven)

    def deliver(self, levels: np.ndarray) -> np.ndarray:
        """Apply the *current* fault state without advancing it.

        Used by the resync protocol to read the settled delivered levels
        while the link is stalled.
        """
        delivered = np.asarray(levels, dtype=np.uint8) ^ self._mask
        for wire in self.config.stuck_wires:
            delivered[1 + wire] = self.config.stuck_level
        return delivered

    def take_desync(self) -> int:
        """Counter drift (±1) to apply this cycle, or 0.

        Consuming resets the pending event, so each desync fires once.
        """
        delta = self._pending_desync
        self._pending_desync = 0
        return delta
