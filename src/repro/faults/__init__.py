"""Link-level fault injection and recovery for DESC (PAPER.md §ECC).

DESC's one-transition-per-chunk signaling makes the link uniquely
sensitive to transient faults: a glitched or dropped toggle mislatches a
whole chunk, and because the endpoints communicate through wire *levels*
a single masked transition inverts the parity of every later toggle on
that wire — the counters stay desynchronized until an explicit
resynchronization.  This package models exactly that failure mode and
the recovery machinery around it:

* :class:`FaultConfig` — a frozen description of the fault environment
  (per-wire drop/glitch rates, strobe glitches, stuck-at wires, counter
  desync events, optional Gilbert–Elliott burstiness), seeded for
  reproducibility.
* :class:`BernoulliProcess` / :class:`GilbertElliottProcess` — the
  per-wire stochastic processes driving fault events.
* :class:`LinkFaultInjector` — perturbs delivered wire levels inside
  :meth:`repro.core.link.DescLink.step` via an XOR fault mask, so drops
  and glitches have the paper's level-persistent consequences.
* :func:`run_campaign` — sends a seeded block stream through a faulty
  link (optionally ECC-protected by the Figure 9 interleaved layout)
  next to a fault-free reference, and reports residual error rates,
  detected-vs-silent corruption, recovery latency, and the energy
  overhead of the resync protocol as a
  :class:`~repro.sim.metrics.FaultStats`.

The recovery protocol itself (round-boundary watchdog, periodic resync
strobes) lives with the endpoints in :mod:`repro.core.receiver` and
:mod:`repro.core.link`; this package supplies the fault environment and
the measurement harness.
"""

from repro.faults.campaign import (
    FaultCampaignConfig,
    FaultCampaignResult,
    run_campaign,
    sweep_grid,
)
from repro.faults.injector import InjectorStats, LinkFaultInjector
from repro.faults.processes import (
    BernoulliProcess,
    FaultConfig,
    GilbertElliottProcess,
    make_process,
)

__all__ = [
    "BernoulliProcess",
    "FaultCampaignConfig",
    "FaultCampaignResult",
    "FaultConfig",
    "GilbertElliottProcess",
    "InjectorStats",
    "LinkFaultInjector",
    "make_process",
    "run_campaign",
    "sweep_grid",
]
