"""Tracked performance benchmarks: hot kernels and end-to-end runs.

``python -m repro bench`` measures the performance-critical paths and
writes a ``BENCH_<rev>.json`` snapshot so kernel regressions show up in
review diffs rather than in users' wall clocks.  Three tiers:

* **kernels** — throughput of the shared batched primitives
  (:mod:`repro.kernels.batched`) and trace generation.
* **multicore** — the trace-execution engines on the *parallel16*
  workload: every parallel-suite application's memory trace at the
  default :class:`~repro.cpu.multicore.MulticoreConfig`, one fixed
  reference count and seed per profile.  Reported per engine with
  speedups relative to the reference event loop.
* **end_to_end** — the fig20 execution-time experiment against a cold
  result store, reported both as wall seconds and as a pipeline rate
  (blocks/sec across all scheme x app jobs) so quick and full runs
  stay comparable.
* **service** — the serving pipeline (:mod:`repro.service`) under
  duplicate-heavy concurrent traffic: request latency percentiles and
  coalesce/store hit rates straight from the service's own
  :class:`~repro.service.metrics.MetricsRegistry`.

Timings are best-of-N wall clock (N=1 with ``--quick``, the CI smoke
mode).  The report is plain JSON, stable-keyed for diffing.

``python -m repro bench --against BENCH_<rev>.json`` additionally
compares the fresh run's throughput metrics against a committed
snapshot and exits non-zero when any rate regresses past the
``--tolerance`` band (:func:`compare_reports`).
"""

from __future__ import annotations

import datetime
import json
import platform
import subprocess
import time
from pathlib import Path

import numpy as np

from repro.util.version import package_version
from repro.workloads.generator import memory_trace
from repro.workloads.profiles import PARALLEL_PROFILES, profile

__all__ = [
    "run_benchmarks",
    "write_report",
    "parallel16_traces",
    "compare_reports",
    "resolve_baseline",
    "format_comparison",
]

#: References simulated per parallel-suite profile in the multicore tier.
PARALLEL16_REFERENCES = 40_000
#: Seed used for every parallel16 trace.
PARALLEL16_SEED = 0


def _best_of(repeats: int, fn) -> float:
    return min(fn() for _ in range(max(1, repeats)))


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


# -- tier 1: kernel micro-benchmarks -----------------------------------


def _bench_kernels(quick: bool) -> dict:
    from repro.kernels import batched

    # Quick mode shrinks the arrays but keeps a few repeats: a single
    # cold measurement is dominated by first-touch/allocation overhead
    # and reads tens of percent below the true rate, which would make
    # the --against gate meaningless for quick-vs-full comparisons.
    n = 500_000 if quick else 2_000_000
    repeats = 3 if quick else 5
    rng = np.random.default_rng(0)
    words = rng.integers(0, 2**62, size=n, dtype=np.int64)
    cycles = np.sort(rng.integers(0, 4 * n, size=n))
    levels = rng.integers(0, 16, size=n)

    results = {}

    def throughput(name: str, fn) -> None:
        seconds = _best_of(repeats, lambda: _timed(fn))
        results[name] = {
            "elements": n,
            "seconds": round(seconds, 6),
            "elements_per_sec": round(n / seconds),
        }

    throughput("popcount", lambda: batched.popcount(words))
    throughput("level_transitions", lambda: batched.level_transitions(levels))
    throughput("strobe_flips", lambda: batched.strobe_flips(cycles, 0))
    throughput("group_rank", lambda: batched.group_rank(levels))

    gen_n = 50_000 if quick else 200_000
    app = profile("Ocean")
    gen_seconds = _best_of(
        repeats, lambda: _timed(lambda: memory_trace(app, gen_n, seed=1))
    )
    results["memory_trace"] = {
        "elements": gen_n,
        "seconds": round(gen_seconds, 6),
        "elements_per_sec": round(gen_n / gen_seconds),
    }
    return results


# -- tier 2: multicore engines on parallel16 ---------------------------


def parallel16_traces(num_references: int | None = None) -> list:
    """The benchmark workload: one trace per parallel-suite profile."""
    n = PARALLEL16_REFERENCES if num_references is None else num_references
    return [
        memory_trace(app, n, seed=PARALLEL16_SEED)
        for app in PARALLEL_PROFILES
    ]


def _bench_multicore(quick: bool) -> dict:
    from repro.cpu.multicore import MulticoreSimulator
    from repro.kernels.native import native_available

    # Longer quick traces + a second repeat: the fast engines finish a
    # 4k-reference trace in microseconds, so per-trace setup would
    # otherwise swamp the rate (see the note in ``_bench_kernels``).
    n = 20_000 if quick else PARALLEL16_REFERENCES
    apps = PARALLEL_PROFILES[:4] if quick else PARALLEL_PROFILES
    traces = [memory_trace(app, n, seed=PARALLEL16_SEED) for app in apps]
    repeats = 2 if quick else 3
    engines = ["reference", "vectorized"]
    if native_available():
        engines.append("native")

    def run_all(engine: str) -> float:
        def once() -> float:
            start = time.perf_counter()
            for trace in traces:
                MulticoreSimulator(engine=engine).run(trace)
            return time.perf_counter() - start

        return _best_of(repeats, once)

    timings = {engine: run_all(engine) for engine in engines}
    total_refs = n * len(traces)
    ref_seconds = timings["reference"]
    engine_rows = {}
    for engine, seconds in timings.items():
        engine_rows[engine] = {
            "seconds": round(seconds, 4),
            "references_per_sec": round(total_refs / seconds),
            "speedup_vs_reference": round(ref_seconds / seconds, 2),
        }
    return {
        "workload": "parallel16" if not quick else "parallel16-quick",
        "profiles": [app.name for app in apps],
        "references_per_profile": n,
        "seed": PARALLEL16_SEED,
        "best_of": repeats,
        "engines": engine_rows,
    }


# -- tier 3: end-to-end figure runtime ---------------------------------


def _bench_end_to_end(quick: bool) -> dict:
    from repro.experiments import fig20_exec_time
    from repro.experiments.common import DEFAULT_SCHEMES
    from repro.sim.config import SystemConfig
    from repro.sim.store import RESULT_STORE
    from repro.workloads.suites import PARALLEL_SUITE

    sample_blocks = 300 if quick else 1500
    system = SystemConfig(sample_blocks=sample_blocks)

    def once() -> float:
        RESULT_STORE.clear()  # cold store: measure real work, not hits
        return _timed(lambda: fig20_exec_time.run(system))

    seconds = _best_of(2 if quick else 3, once)
    RESULT_STORE.clear()
    # Every unique (scheme, app) job streams ``sample_blocks`` blocks
    # through the full pipeline (generate -> encode -> queueing ->
    # energy), so blocks/sec is the tracked end-to-end rate: it stays
    # comparable between quick and full runs where raw seconds do not.
    jobs = len(DEFAULT_SCHEMES) * len(PARALLEL_SUITE)
    return {
        "experiment": "fig20",
        "sample_blocks": sample_blocks,
        "jobs": jobs,
        "seconds": round(seconds, 4),
        "blocks_per_sec": round(sample_blocks * jobs / seconds),
    }


# -- tier 4: the serving layer under live traffic ----------------------


def _bench_service(quick: bool) -> dict:
    import asyncio

    from repro.experiments.common import DEFAULT_SCHEMES
    from repro.service.pipeline import SimulationService
    from repro.sim.config import SystemConfig
    from repro.sim.engine import SimJob, StagedEngine
    from repro.sim.store import ResultStore

    sample_blocks = 150 if quick else 600
    rounds = 3 if quick else 6
    system = SystemConfig(sample_blocks=sample_blocks)
    jobs = [
        SimJob.of(app, scheme, system)
        for app in ("Ocean", "CG", "mcf")
        for _, scheme in DEFAULT_SCHEMES
    ]

    async def drive() -> dict:
        async with SimulationService(
            engine=StagedEngine(ResultStore())
        ) as service:
            # Duplicate-heavy: every config requested ``rounds`` times
            # concurrently, so coalescing and the read-through store
            # both carry real load.
            await asyncio.gather(
                *(
                    service.submit(job, wait=True)
                    for _ in range(rounds)
                    for job in jobs
                )
            )
            return service.snapshot()

    snapshot = asyncio.run(drive())
    latency = snapshot["histograms"]["service_latency_s"]
    derived = snapshot["derived"]
    counters = snapshot["counters"]
    return {
        "unique_configs": len(jobs),
        "rounds": rounds,
        "requests": len(jobs) * rounds,
        "sample_blocks": sample_blocks,
        "latency_s": {
            "mean": round(latency["mean"], 6),
            "p50": round(latency["p50"], 6),
            "p95": round(latency["p95"], 6),
        },
        "coalesce_hit_rate": round(derived["coalesce_hit_rate"], 4),
        "store_hit_rate": round(derived["store_hit_rate"], 4),
        "combined_hit_rate": round(derived["combined_hit_rate"], 4),
        "batches": counters.get("batches_total", 0),
        "engine_jobs": counters.get("engine_jobs_total", 0),
    }


# -- report assembly ---------------------------------------------------


def _git_revision() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def run_benchmarks(quick: bool = False) -> dict:
    """Run all benchmark tiers; returns the JSON-ready report."""
    from repro.kernels.native import load_native_kernel, native_available

    load_native_kernel()  # compile outside the timed regions
    report = {
        "schema": 1,
        "revision": _git_revision(),
        "version": package_version(),
        # Report metadata, never a simulation input: the one legitimate
        # wall-clock read in the package.
        "generated": datetime.datetime.now(  # lint-ok: R001
            datetime.timezone.utc
        ).isoformat(timespec="seconds"),
        "quick": quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "native_kernel": native_available(),
        "kernels": _bench_kernels(quick),
        "multicore": _bench_multicore(quick),
        "end_to_end": _bench_end_to_end(quick),
        "service": _bench_service(quick),
    }
    return report


def write_report(report: dict, out: str | None = None) -> Path:
    """Write the report to ``out`` or ``BENCH_<revision>.json``."""
    path = Path(out) if out else Path(f"BENCH_{report['revision']}.json")
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


# -- baseline comparison -----------------------------------------------


def _rate_metrics(report: dict) -> dict[str, float]:
    """Flatten a report to its throughput metrics.

    Only *rates* are compared across reports: unlike raw seconds they
    stay meaningful when one side ran in ``--quick`` mode (smaller
    element counts) or on a differently loaded machine.
    """
    rates: dict[str, float] = {}
    for name, row in report.get("kernels", {}).items():
        rate = row.get("elements_per_sec")
        if rate:
            rates[f"kernels.{name}"] = float(rate)
    engines = report.get("multicore", {}).get("engines", {})
    for engine, row in engines.items():
        rate = row.get("references_per_sec")
        if rate:
            rates[f"multicore.{engine}"] = float(rate)
    e2e = report.get("end_to_end", {})
    rate = e2e.get("blocks_per_sec")
    if not rate and e2e.get("seconds") and e2e.get("sample_blocks"):
        # Pre-schema-addition baselines recorded only wall seconds; the
        # fig20 sweep has always covered the same 8 x 16 job grid, so
        # the rate can be reconstructed.
        rate = e2e["sample_blocks"] * e2e.get("jobs", 128) / e2e["seconds"]
    if rate:
        rates[f"end_to_end.{e2e.get('experiment', 'fig20')}"] = float(rate)
    return rates


def compare_reports(
    current: dict, baseline: dict, tolerance: float = 0.5
) -> tuple[list[dict], list[str]]:
    """Per-metric throughput deltas of ``current`` against ``baseline``.

    Returns ``(rows, regressions)``: one row per metric present in both
    reports (``metric``, ``baseline``, ``current``, ``ratio``), and the
    names of metrics whose current rate fell below ``baseline * (1 -
    tolerance)``.  Improvements never fail; ``tolerance`` only guards
    the downside.  The default is deliberately loose — shared CI boxes
    jitter by tens of percent, and the committed ``BENCH_<rev>.json``
    snapshots remain the precise record.
    """
    base_rates = _rate_metrics(baseline)
    cur_rates = _rate_metrics(current)
    rows: list[dict] = []
    regressions: list[str] = []
    for metric, base in base_rates.items():
        cur = cur_rates.get(metric)
        if cur is None:
            continue
        ratio = cur / base
        rows.append({
            "metric": metric,
            "baseline": base,
            "current": cur,
            "ratio": ratio,
        })
        if cur < base * (1.0 - tolerance):
            regressions.append(metric)
    return rows, regressions


def resolve_baseline(path: str) -> Path:
    """Resolve ``--against`` to a baseline report file.

    A file path is used as-is.  A directory is scanned for committed
    ``BENCH_*.json`` snapshots and the one with the newest ``generated``
    stamp wins — checkouts do not preserve mtimes, so the stamp inside
    the report is the only reliable ordering.
    """
    p = Path(path)
    if p.is_file():
        return p
    if p.is_dir():
        candidates = []
        for snap in sorted(p.glob("BENCH_*.json")):
            try:
                generated = json.loads(snap.read_text()).get("generated", "")
            except (OSError, json.JSONDecodeError):
                continue
            candidates.append((generated, snap))
        if candidates:
            return max(candidates)[1]
        raise FileNotFoundError(
            f"no readable BENCH_*.json snapshot under {path!r}"
        )
    raise FileNotFoundError(f"baseline {path!r} does not exist")


def format_comparison(rows: list[dict], regressions: list[str]) -> str:
    """Human-readable delta table for the CLI."""
    lines = [
        f"{'metric':34s} {'baseline':>14s} {'current':>14s} {'delta':>8s}"
    ]
    failed = set(regressions)
    for row in rows:
        delta = (row["ratio"] - 1.0) * 100.0
        flag = "  REGRESSED" if row["metric"] in failed else ""
        lines.append(
            f"{row['metric']:34s} {row['baseline']:>14,.0f} "
            f"{row['current']:>14,.0f} {delta:>+7.1f}%{flag}"
        )
    if not rows:
        lines.append("(no comparable throughput metrics)")
    return "\n".join(lines)
