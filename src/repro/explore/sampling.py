"""Seeded samplers for the unit cube.

Three sampling shapes, all pure functions of their seeds so studies are
byte-reproducible:

* :func:`halton_point` / :class:`HaltonSampler` — the coarse pass: a
  scrambled Halton low-discrepancy sequence (no SciPy dependency; the
  classic radical-inverse construction with a seeded digit permutation
  per dimension, which removes the correlation artifacts plain Halton
  shows in higher dimensions);
* :func:`stratified_point` — seeded stratified (jittered-grid) samples,
  used by the self-check's equal-budget random baseline;
* :func:`bisect_neighbours` — the refinement move: around a frontier
  point, step each coordinate by ``+/- width/2`` (clipped to the cube),
  which halves the search scale every round like an axis bisection.

All functions take and return plain floats in ``[0, 1)``; mapping to
concrete axis values is :meth:`repro.explore.spec.Axis.value_at`'s job.
"""

from __future__ import annotations

import random
from typing import Iterator, Sequence

__all__ = [
    "HaltonSampler",
    "bisect_neighbours",
    "halton_point",
    "stratified_point",
]

#: The first primes, one per dimension (13 axes is far beyond any spec).
_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)


def _radical_inverse(index: int, base: int, permutation: Sequence[int]) -> float:
    """The scrambled radical inverse of ``index`` in ``base``.

    ``permutation`` is a permutation of ``range(base)`` with
    ``permutation[0] == 0`` (so trailing zeros stay zero and the
    sequence keeps its low-discrepancy structure).
    """
    result = 0.0
    scale = 1.0 / base
    while index > 0:
        index, digit = divmod(index, base)
        result += permutation[digit] * scale
        scale /= base
    return result


def _scramble(base: int, rng: random.Random) -> tuple[int, ...]:
    """A seeded digit permutation for one base, fixing 0 in place."""
    rest = list(range(1, base))
    rng.shuffle(rest)
    return (0, *rest)


def halton_point(
    index: int, dimensions: int, seed: int
) -> tuple[float, ...]:
    """The ``index``-th point of the seeded scrambled Halton sequence.

    A pure function: the same (index, dimensions, seed) triple always
    produces the same point, so a resumed study regenerates exactly the
    samples the interrupted one drew.
    """
    if dimensions > len(_PRIMES):
        raise ValueError(
            f"at most {len(_PRIMES)} dimensions supported, got {dimensions}"
        )
    point = []
    for dim in range(dimensions):
        base = _PRIMES[dim]
        # Integer seed derivation (tuple seeds would hash, and string
        # hashing varies with PYTHONHASHSEED).
        permutation = _scramble(base, random.Random(seed * 1000003 + dim))
        # Skip index 0 (the all-zero corner) — start the sequence at 1.
        point.append(_radical_inverse(index + 1, base, permutation))
    return tuple(point)


class HaltonSampler:
    """A cursor over the seeded scrambled Halton sequence.

    The cursor (how many points have been drawn) is the sampler's whole
    state, so it journals as a single integer and a resumed study picks
    up exactly where the interrupted one stopped.
    """

    def __init__(self, dimensions: int, seed: int, cursor: int = 0) -> None:
        if dimensions < 1:
            raise ValueError(f"dimensions must be >= 1, got {dimensions}")
        if cursor < 0:
            raise ValueError(f"cursor must be >= 0, got {cursor}")
        self.dimensions = dimensions
        self.seed = seed
        self.cursor = cursor

    def draw(self) -> tuple[float, ...]:
        """The next point; advances the cursor."""
        point = halton_point(self.cursor, self.dimensions, self.seed)
        self.cursor += 1
        return point

    def take(self, count: int) -> list[tuple[float, ...]]:
        """The next ``count`` points, in sequence order."""
        return [self.draw() for _ in range(count)]


def stratified_point(
    rng: random.Random, dimensions: int
) -> tuple[float, ...]:
    """One uniform random point from an explicitly seeded generator.

    The self-check's equal-budget baseline: plain Monte-Carlo sampling
    with no adaptivity, the thing the adaptive driver must beat.
    """
    return tuple(rng.random() for _ in range(dimensions))


def bisect_neighbours(
    center: Sequence[float], width: float
) -> Iterator[tuple[float, ...]]:
    """Axis-bisection neighbours of ``center``.

    For each coordinate, step ``-width/2`` and ``+width/2`` (clipped to
    the unit interval), keeping every other coordinate fixed — ``2*d``
    candidates per frontier point.  The driver halves ``width`` every
    round, so refinement zooms in on the frontier geometrically.
    """
    if not 0.0 < width <= 1.0:
        raise ValueError(f"width must be in (0, 1], got {width}")
    for dim in range(len(center)):
        for direction in (-1.0, 1.0):
            coordinate = center[dim] + direction * width / 2.0
            if not 0.0 <= coordinate <= 1.0:
                coordinate = min(max(coordinate, 0.0), 1.0)
            neighbour = list(center)
            neighbour[dim] = coordinate
            yield tuple(neighbour)
