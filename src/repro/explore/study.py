"""The adaptive study driver and its crash-safe journal.

A study spends a fixed budget of design-point evaluations in two
movements:

1. **Coarse pass** — a seeded scrambled-Halton sweep of the unit cube
   (:class:`~repro.explore.sampling.HaltonSampler`), covering the space
   evenly with ``spec.init_samples`` unique points;
2. **Refinement rounds** — around every frontier point, bisection
   candidates (:func:`~repro.explore.sampling.bisect_neighbours`) with
   the step width halving each round, so the search zooms in on the
   Pareto frontier geometrically.  A round that discovers nothing new
   tops up from the Halton sequence instead of stalling.

Determinism is the design center: every candidate is a pure function of
``(spec, seed, frontier state)``, the frontier itself is
order-independent at epsilon-ties, and evaluated points are keyed by
the canonical JSON of their *canonical* parameters (alias axis values
collapse, see :func:`~repro.explore.objectives.canonical_params`).
A study is therefore **byte-reproducible**: same spec, same seed, same
frontier bytes — on any backend.

Crash safety reuses the warehouse's discipline:

* every evaluation appends one fsynced JSONL record to
  ``journal.jsonl`` (append-only; an undecodable torn tail from a
  mid-write crash is tolerated and ignored);
* the frontier snapshot ``frontier.json`` is replaced atomically
  (write ``.tmp``, fsync, ``os.replace``, fsync the directory).

**Resume is deterministic replay**: :func:`resume_study` re-runs the
driver from the journaled spec, and the journal acts as an evaluation
cache — already-evaluated points return instantly, the search re-walks
the identical trajectory, and the run continues live exactly where the
crash cut it off.  The resumed frontier is byte-identical to an
uninterrupted run's (the self-check's crash-consistency assertion).
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from repro.explore.backends import EvaluationError, SubmissionBackend
from repro.explore.frontier import FrontierPoint, ParetoFrontier, point_key
from repro.explore.objectives import (
    canonical_params,
    objectives_from_payloads,
    resolve_design,
)
from repro.explore.sampling import HaltonSampler, bisect_neighbours
from repro.explore.spec import StudySpec
from repro.service import codec

__all__ = [
    "StudyJournal",
    "StudyResult",
    "random_frontier",
    "resume_study",
    "run_study",
]

#: Journal format version (bumped on incompatible record changes).
JOURNAL_VERSION = 1

#: Cap on Halton draws per unique point wanted, against degenerate
#: specs whose whole cube collapses onto a handful of canonical points.
_DRAW_FACTOR = 64


@dataclass
class StudyResult:
    """Everything one finished (or resumed) study produced.

    Attributes:
        spec: The specification the study ran.
        frontier: The final epsilon-Pareto archive.
        evaluations: One record per unique design point, in evaluation
            order (the journal's eval records, including failures).
        spent: Unique design points charged against the budget.
        reused: How many of those came from the journal cache (0 for a
            fresh run; >0 after a resume).
        rounds: Refinement rounds actually executed.
        out_dir: Journal directory, when the study was journaled.
    """

    spec: StudySpec
    frontier: ParetoFrontier
    evaluations: list[dict] = field(default_factory=list)
    spent: int = 0
    reused: int = 0
    rounds: int = 0
    out_dir: Path | None = None

    @property
    def failed_points(self) -> list[dict]:
        """The evaluation records that failed (config + reason)."""
        return [record for record in self.evaluations if record["failed"]]

    def frontier_bytes(self) -> bytes:
        """Canonical frontier bytes — the byte-identity contract."""
        return self.frontier.snapshot_bytes()

    def to_payload(self) -> dict:
        """The JSON shape of the result (reports, ``--json`` output)."""
        return {
            "spec": self.spec.to_payload(),
            "frontier": self.frontier.snapshot(),
            "spent": self.spent,
            "reused": self.reused,
            "rounds": self.rounds,
            "evaluations": len(self.evaluations),
            "failed": len(self.failed_points),
        }


class StudyJournal:
    """Append-only evaluation journal + atomic frontier snapshots.

    Layout inside ``directory``::

        journal.jsonl    # meta line, then one record per evaluation
        frontier.json    # latest frontier snapshot (atomic replace)

    Records are canonical JSON lines; each append is flushed and
    fsynced before the evaluation is considered durable, so a crash
    can lose at most the in-flight record — and a torn tail from that
    crash is detected and ignored on reopen.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.journal_path = self.directory / "journal.jsonl"
        self.frontier_path = self.directory / "frontier.json"
        self._handle: Any = None

    # -- reading -------------------------------------------------------

    def load(self) -> tuple[StudySpec | None, list[dict]]:
        """Read ``(spec, eval_records)`` back from the journal.

        Returns ``(None, [])`` for a missing or empty journal.  A torn
        final line (mid-write crash) is ignored; a torn line anywhere
        else is corruption and raises.
        """
        if not self.journal_path.exists():
            return None, []
        raw = self.journal_path.read_bytes()
        if not raw:
            return None, []
        lines = raw.split(b"\n")
        # A well-formed journal ends with a newline, leaving one empty
        # trailing chunk; anything else is a torn tail to discard.
        if lines and lines[-1] == b"":
            lines.pop()
        spec: StudySpec | None = None
        records: list[dict] = []
        for index, line in enumerate(lines):
            try:
                payload = json.loads(line)
            except ValueError:
                if index == len(lines) - 1:
                    break  # torn tail: the crashed append, ignore
                raise ValueError(
                    f"{self.journal_path}: corrupt record at line {index + 1}"
                ) from None
            kind = payload.get("type")
            if kind == "meta":
                if payload.get("version") != JOURNAL_VERSION:
                    raise ValueError(
                        f"{self.journal_path}: journal version "
                        f"{payload.get('version')!r} != {JOURNAL_VERSION}"
                    )
                spec = StudySpec.from_payload(payload["spec"])
            elif kind == "eval":
                records.append(payload)
            else:
                raise ValueError(
                    f"{self.journal_path}: unknown record type {kind!r} "
                    f"at line {index + 1}"
                )
        return spec, records

    # -- writing -------------------------------------------------------

    def _append(self, payload: Mapping[str, Any]) -> None:
        if self._handle is None:
            self._handle = open(self.journal_path, "ab")
        self._handle.write(codec.encode_json(dict(payload)) + b"\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def write_meta(self, spec: StudySpec) -> None:
        """Append the meta record (first line of a fresh journal)."""
        self._append(
            {"type": "meta", "version": JOURNAL_VERSION,
             "spec": spec.to_payload()}
        )

    def write_eval(self, record: Mapping[str, Any]) -> None:
        """Append one evaluation record durably."""
        self._append({"type": "eval", **record})

    def write_frontier(self, frontier: ParetoFrontier) -> None:
        """Replace the frontier snapshot atomically.

        The warehouse's crash-consistent protocol: write a ``.tmp``
        sibling, fsync it, ``os.replace`` onto the final name, fsync
        the directory.  A crash leaves the old snapshot or the new —
        never a torn one.
        """
        tmp = self.frontier_path.with_suffix(f".{os.getpid()}.tmp")
        with open(tmp, "wb") as handle:
            handle.write(frontier.snapshot_bytes() + b"\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.frontier_path)
        self._fsync_dir()

    def _fsync_dir(self) -> None:
        fd = os.open(self.directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def close(self) -> None:
        """Close the append handle (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class _Evaluator:
    """Budgeted, deduplicating, journal-backed evaluation of coords."""

    def __init__(
        self,
        spec: StudySpec,
        backend: SubmissionBackend,
        budget: int,
        cache: Mapping[str, Mapping[str, Any]],
        journal: StudyJournal | None,
        frontier: ParetoFrontier,
    ) -> None:
        self.spec = spec
        self.backend = backend
        self.budget = budget
        self.cache = cache
        self.journal = journal
        self.frontier = frontier
        self.evaluations: list[dict] = []
        self.coords_by_key: dict[str, tuple[float, ...]] = {}
        self.spent = 0
        self.reused = 0

    @property
    def exhausted(self) -> bool:
        """Whether the evaluation budget is fully spent."""
        return self.spent >= self.budget

    def offer(self, coordinates: Sequence[float]) -> bool:
        """Evaluate the design point at ``coordinates`` if it is new.

        Returns True when a *new unique* point was charged against the
        budget (fresh or replayed from the journal cache); False when
        the coordinates alias an already-evaluated point.
        """
        coordinates = tuple(float(u) for u in coordinates)
        params = canonical_params(self.spec.resolve(coordinates))
        key = point_key(params)
        if key in self.coords_by_key:
            return False
        self.coords_by_key[key] = coordinates
        cached = self.cache.get(key)
        if cached is not None:
            record = dict(cached)
            self.reused += 1
        else:
            record = self._evaluate(key, params, coordinates)
            if self.journal is not None:
                self.journal.write_eval(record)
        self.spent += 1
        self.evaluations.append(record)
        if not record["failed"]:
            objectives = [
                record["objectives"][name] for name in self.spec.objectives
            ]
            self.frontier.add(record["params"], objectives, key=key)
        return True

    def _evaluate(
        self, key: str, params: dict, coordinates: tuple[float, ...]
    ) -> dict:
        record: dict[str, Any] = {
            "key": key,
            "params": params,
            "coordinates": list(coordinates),
            "objectives": None,
            "metrics": None,
            "failed": False,
            "reason": None,
        }
        try:
            design = resolve_design(params)
            jobs = design.jobs(self.spec.apps, self.spec.sample_blocks)
            payloads = self.backend.submit(jobs)
            objectives, metrics = objectives_from_payloads(
                design, payloads, self.spec.objectives
            )
        except (EvaluationError, ValueError, TypeError) as exc:
            record["failed"] = True
            record["reason"] = f"{type(exc).__name__}: {exc}"
            return record
        record["objectives"] = objectives
        record["metrics"] = metrics
        return record


def run_study(
    spec: StudySpec,
    backend: SubmissionBackend,
    out_dir: str | Path | None = None,
    *,
    budget: int | None = None,
    progress: Callable[[str], None] | None = None,
) -> StudyResult:
    """Run (or continue) one adaptive exploration study.

    Args:
        spec: What to explore (axes, apps, objectives, search knobs).
        backend: How design points are evaluated
            (:class:`~repro.explore.backends.LocalBackend` or
            :class:`~repro.explore.backends.ServiceBackend`).
        out_dir: Journal directory.  ``None`` runs un-journaled (tests,
            throwaway studies); an existing journal there is **replayed
            as an evaluation cache** before live evaluation continues,
            which is exactly how resume works.
        budget: Override ``spec.budget`` (the CLI's ``--budget``).
        progress: Optional line sink for human progress output.

    Returns:
        The :class:`StudyResult`, frontier snapshot already durable
        when journaled.
    """
    total = spec.budget if budget is None else budget
    if total < 1:
        raise ValueError(f"budget must be >= 1, got {total}")
    say = progress if progress is not None else lambda line: None
    journal: StudyJournal | None = None
    cache: dict[str, dict] = {}
    if out_dir is not None:
        journal = StudyJournal(out_dir)
        journaled_spec, records = journal.load()
        if journaled_spec is not None and journaled_spec != spec:
            journal.close()
            raise ValueError(
                f"journal at {journal.directory} was written by a "
                f"different study spec ({journaled_spec.name!r}); refusing "
                "to mix studies in one journal"
            )
        cache = {record["key"]: record for record in records}
        if journaled_spec is None:
            journal.write_meta(spec)
    frontier = ParetoFrontier(spec.epsilon)
    evaluator = _Evaluator(spec, backend, total, cache, journal, frontier)
    try:
        sampler = HaltonSampler(spec.dimensions, spec.seed)
        init_target = min(spec.init_samples, total)
        _drain_sampler(evaluator, sampler, init_target)
        say(
            f"coarse pass: {evaluator.spent} point(s), "
            f"frontier size {len(frontier)}"
        )
        if journal is not None:
            journal.write_frontier(frontier)
        rounds = 0
        for round_index in range(spec.max_rounds):
            if evaluator.exhausted:
                break
            width = 0.5 ** (round_index + 1)
            fresh = _refinement_round(evaluator, frontier, width)
            if not evaluator.exhausted and fresh == 0:
                # The bisection neighbourhood is exhausted around this
                # frontier; spend the remainder widening coverage.
                fresh = _drain_sampler(
                    evaluator, sampler, evaluator.spent + 1
                )
            rounds = round_index + 1
            say(
                f"round {rounds}: width {width:g}, {fresh} new point(s), "
                f"spent {evaluator.spent}/{total}, "
                f"frontier size {len(frontier)}"
            )
            if journal is not None:
                journal.write_frontier(frontier)
            if fresh == 0:
                break
        # Any leftover budget (tiny frontiers, early-dry rounds) goes to
        # coverage so equal budgets mean equal work.
        if not evaluator.exhausted:
            _drain_sampler(evaluator, sampler, total)
            if journal is not None:
                journal.write_frontier(frontier)
        if journal is not None:
            journal.write_frontier(frontier)
    finally:
        if journal is not None:
            journal.close()
    return StudyResult(
        spec=spec,
        frontier=frontier,
        evaluations=evaluator.evaluations,
        spent=evaluator.spent,
        reused=evaluator.reused,
        rounds=rounds,
        out_dir=journal.directory if journal is not None else None,
    )


def resume_study(
    out_dir: str | Path,
    backend: SubmissionBackend,
    *,
    budget: int | None = None,
    progress: Callable[[str], None] | None = None,
) -> StudyResult:
    """Resume an interrupted study from its journal directory.

    The spec is read back from the journal's meta record, and
    :func:`run_study` replays the deterministic trajectory with the
    journal as an evaluation cache: finished points are free, the first
    unfinished point continues live.  The final frontier is
    byte-identical to an uninterrupted run's.
    """
    journal = StudyJournal(out_dir)
    spec, _ = journal.load()
    journal.close()
    if spec is None:
        raise ValueError(
            f"no journal to resume at {journal.directory} "
            "(missing or empty journal.jsonl)"
        )
    return run_study(
        spec, backend, out_dir, budget=budget, progress=progress
    )


def _drain_sampler(
    evaluator: _Evaluator, sampler: HaltonSampler, target: int
) -> int:
    """Draw Halton points until ``target`` total points are evaluated.

    Returns how many new unique points were charged.  Bounded by
    ``_DRAW_FACTOR`` draws per wanted point so a degenerate spec (all
    coordinates aliasing a few canonical points) terminates.
    """
    wanted = target - evaluator.spent
    if wanted <= 0:
        return 0
    fresh = 0
    draws_left = _DRAW_FACTOR * wanted
    while evaluator.spent < target and draws_left > 0:
        draws_left -= 1
        if evaluator.offer(sampler.draw()):
            fresh += 1
    return fresh


def _refinement_round(
    evaluator: _Evaluator, frontier: ParetoFrontier, width: float
) -> int:
    """One bisection round around the current frontier.

    Candidates come from the frontier in canonical order, each point
    yielding its ``2 * dimensions`` axis-bisection neighbours — a
    deterministic function of (frontier state, width), which is what
    makes replayed rounds identical.  The frontier snapshot is taken
    up front: points discovered mid-round refine in the *next* round.
    """
    fresh = 0
    anchors: list[FrontierPoint] = frontier.points()
    for anchor in anchors:
        center = evaluator.coords_by_key.get(anchor.key)
        if center is None:  # pragma: no cover - journal-only frontier
            continue
        for candidate in bisect_neighbours(center, width):
            if evaluator.exhausted:
                return fresh
            if evaluator.offer(candidate):
                fresh += 1
    return fresh


def random_frontier(
    spec: StudySpec,
    backend: SubmissionBackend,
    *,
    budget: int | None = None,
    seed_offset: int = 1,
) -> StudyResult:
    """An equal-budget *non-adaptive* baseline study.

    Pure seeded Monte-Carlo sampling of the cube — the strawman the
    adaptive driver must beat.  Used by the self-check's
    frontier-dominance assertion; exported for experiments.
    """
    import random as random_mod

    from repro.explore.sampling import stratified_point

    total = spec.budget if budget is None else budget
    frontier = ParetoFrontier(spec.epsilon)
    evaluator = _Evaluator(spec, backend, total, {}, None, frontier)
    rng = random_mod.Random(spec.seed + seed_offset * 7919)
    draws_left = _DRAW_FACTOR * total
    while not evaluator.exhausted and draws_left > 0:
        draws_left -= 1
        evaluator.offer(stratified_point(rng, spec.dimensions))
    return StudyResult(
        spec=spec,
        frontier=frontier,
        evaluations=evaluator.evaluations,
        spent=evaluator.spent,
        reused=0,
        rounds=0,
        out_dir=None,
    )
