"""Study specifications: the typed axes a study explores.

A :class:`StudySpec` names the design axes (what varies), the
applications driven through each point, the objectives, and the
search-shape knobs (budget, rounds, epsilon).  Axes are richer than the
plain value lists :func:`repro.sim.sweeps.expand_grid` takes — an
:class:`Axis` can be categorical, integer, or float, linear or
log-scaled — but every axis can also quantize itself onto a grid, so a
spec *compiles down* to the ``expand_grid`` substrate
(:meth:`StudySpec.to_grid`) when exhaustive enumeration is wanted.

The adaptive driver works in unit-cube coordinates: each axis maps a
coordinate ``u`` in ``[0, 1)`` to a concrete value
(:meth:`Axis.value_at`), and two coordinates that land on the same
concrete point deduplicate by the point's canonical key.

Specs are plain data.  :func:`load_spec` reads one from a JSON file,
:func:`preset_spec` returns the named built-ins (``quick``,
``frontier``), and :meth:`StudySpec.to_payload` round-trips a spec
through the same JSON shape for journaling.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

__all__ = ["Axis", "StudySpec", "load_spec", "preset_spec", "PRESETS"]

#: Axis kinds an :class:`Axis` may declare.
_KINDS = ("categorical", "int", "float")

#: Objective names a spec may select (all minimized).
OBJECTIVES = ("energy_j", "latency_cycles", "risk")

#: Scheme names an axis named ``scheme`` may take (the CLI's spellings).
SCHEME_CHOICES = ("binary", "desc", "desc-zero", "desc-last-value")

#: Axis names routed to SchemeConfig fields.
_SCHEME_FIELDS = ("chunk_bits", "data_wires", "segment_bits")

#: Virtual axes consumed by the resilience model, not the simulator.
_LINK_FIELDS = ("fault_rate", "resync_interval")


@dataclass(frozen=True)
class Axis:
    """One design axis: a name plus the set/range it varies over.

    Attributes:
        name: Config field the axis drives — a
            :class:`~repro.sim.config.SchemeConfig` field
            (``chunk_bits``, ``data_wires``), a
            :class:`~repro.sim.config.SystemConfig` field
            (``num_banks``, ...), the virtual ``scheme`` axis, or one
            of the link axes (``fault_rate``, ``resync_interval``)
            consumed by the analytic resilience model.
        kind: ``"categorical"``, ``"int"``, or ``"float"``.
        values: The choices of a categorical axis, in order.
        low / high: Inclusive bounds of an int/float axis.
        log: Space the axis geometrically instead of linearly
            (int/float axes only; bounds must be positive).
    """

    name: str
    kind: str = "categorical"
    values: tuple[Any, ...] = ()
    low: float = 0.0
    high: float = 0.0
    log: bool = False

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"axis {self.name!r}: kind must be one of {_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.kind == "categorical":
            if not self.values:
                raise ValueError(
                    f"categorical axis {self.name!r} needs at least one value"
                )
        else:
            if not self.high >= self.low:
                raise ValueError(
                    f"axis {self.name!r}: high must be >= low, got "
                    f"[{self.low}, {self.high}]"
                )
            if self.log and self.low <= 0:
                raise ValueError(
                    f"log axis {self.name!r} needs positive bounds, "
                    f"got low={self.low}"
                )

    def value_at(self, u: float) -> Any:
        """The concrete value at unit coordinate ``u`` in ``[0, 1]``.

        Categorical axes partition the interval evenly; numeric axes
        interpolate (geometrically when ``log``), and int axes round to
        the nearest integer.  The mapping is monotone and pure, so the
        same coordinate always resolves to the same value.
        """
        u = min(max(u, 0.0), 1.0)
        if self.kind == "categorical":
            index = min(int(u * len(self.values)), len(self.values) - 1)
            return self.values[index]
        if self.log:
            raw = self.low * (self.high / self.low) ** u if self.high > self.low else self.low
        else:
            raw = self.low + (self.high - self.low) * u
        if self.kind == "int":
            return int(min(max(round(raw), self.low), self.high))
        return float(raw)

    def grid(self, resolution: int) -> list[Any]:
        """Quantize the axis onto at most ``resolution`` values.

        This is the bridge to the :func:`~repro.sim.sweeps.expand_grid`
        substrate: categorical axes return their value list, numeric
        axes return ``resolution`` evenly (or log-evenly) spaced
        values, deduplicated in order for int axes.
        """
        if resolution < 1:
            raise ValueError(f"resolution must be >= 1, got {resolution}")
        if self.kind == "categorical":
            return list(self.values)
        if resolution == 1:
            return [self.value_at(0.5)]
        values = [
            self.value_at(i / (resolution - 1)) for i in range(resolution)
        ]
        deduped: list[Any] = []
        for value in values:
            if not deduped or value != deduped[-1]:
                deduped.append(value)
        return deduped

    def to_payload(self) -> dict:
        """The JSON shape of this axis (see :func:`load_spec`)."""
        payload: dict[str, Any] = {"name": self.name, "kind": self.kind}
        if self.kind == "categorical":
            payload["values"] = list(self.values)
        else:
            payload["low"] = self.low
            payload["high"] = self.high
            payload["log"] = self.log
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "Axis":
        """Build an axis from its JSON shape (strict keys)."""
        known = {"name", "kind", "values", "low", "high", "log"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown axis field(s) {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known))}"
            )
        if "name" not in payload:
            raise ValueError("axis is missing the required 'name' field")
        return cls(
            name=payload["name"],
            kind=payload.get("kind", "categorical"),
            values=tuple(payload.get("values", ())),
            low=float(payload.get("low", 0.0)),
            high=float(payload.get("high", 0.0)),
            log=bool(payload.get("log", False)),
        )


@dataclass(frozen=True)
class StudySpec:
    """Everything one exploration study is, as plain data.

    Attributes:
        name: Study name (labels the journal, reports, output dir).
        axes: The design axes, in a fixed order (the unit-cube
            dimensions of the sampler).
        apps: Application profiles driven through every design point
            (objectives aggregate across them, suite-geomean style).
        objectives: Objective names, all minimized (a subset of
            ``("energy_j", "latency_cycles", "risk")``).
        budget: Total design-point evaluations the study may spend.
        init_fraction: Fraction of the budget spent on the coarse
            low-discrepancy pass before refinement starts.
        max_rounds: Refinement rounds after the coarse pass.
        epsilon: Epsilon-dominance resolution of the frontier archive.
        sample_blocks: Per-application value-sample size (simulation
            cost knob, forwarded to SystemConfig).
        seed: Master seed; every random draw in the study flows from it.
    """

    name: str
    axes: tuple[Axis, ...]
    apps: tuple[str, ...] = ("Ocean", "FFT")
    objectives: tuple[str, ...] = OBJECTIVES
    budget: int = 64
    init_fraction: float = 0.5
    max_rounds: int = 4
    epsilon: float = 0.02
    sample_blocks: int = 1200
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.axes:
            raise ValueError("a study needs at least one axis")
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate axis names in {names}")
        if not self.apps:
            raise ValueError("a study needs at least one application")
        bad = sorted(set(self.objectives) - set(OBJECTIVES))
        if bad:
            raise ValueError(
                f"unknown objective(s) {', '.join(bad)}; "
                f"known: {', '.join(OBJECTIVES)}"
            )
        if len(self.objectives) < 2:
            raise ValueError("a Pareto study needs at least two objectives")
        if self.budget < 1:
            raise ValueError(f"budget must be >= 1, got {self.budget}")
        if not 0.0 < self.init_fraction <= 1.0:
            raise ValueError(
                f"init_fraction must be in (0, 1], got {self.init_fraction}"
            )
        if self.max_rounds < 0:
            raise ValueError(f"max_rounds must be >= 0, got {self.max_rounds}")
        if not 0.0 < self.epsilon < 1.0:
            raise ValueError(f"epsilon must be in (0, 1), got {self.epsilon}")
        if self.sample_blocks < 1:
            raise ValueError(
                f"sample_blocks must be >= 1, got {self.sample_blocks}"
            )

    @property
    def dimensions(self) -> int:
        """Number of unit-cube dimensions (one per axis)."""
        return len(self.axes)

    @property
    def init_samples(self) -> int:
        """Evaluations of the coarse pass (at least one)."""
        return max(1, int(math.ceil(self.budget * self.init_fraction)))

    def resolve(self, coordinates: Sequence[float]) -> dict[str, Any]:
        """Map unit-cube coordinates to concrete axis values, in order."""
        if len(coordinates) != len(self.axes):
            raise ValueError(
                f"{len(coordinates)} coordinates for {len(self.axes)} axes"
            )
        return {
            axis.name: axis.value_at(u)
            for axis, u in zip(self.axes, coordinates, strict=True)
        }

    def to_grid(self, resolution: int = 4) -> dict[str, list]:
        """Compile the axes to an :func:`~repro.sim.sweeps.expand_grid`
        field mapping — the exhaustive-enumeration substrate."""
        return {axis.name: axis.grid(resolution) for axis in self.axes}

    def with_(self, **changes: Any) -> "StudySpec":
        """A modified copy (dataclasses.replace convenience)."""
        import dataclasses

        return dataclasses.replace(self, **changes)

    def to_payload(self) -> dict:
        """The JSON shape of this spec (journals, spec files)."""
        return {
            "name": self.name,
            "axes": [axis.to_payload() for axis in self.axes],
            "apps": list(self.apps),
            "objectives": list(self.objectives),
            "budget": self.budget,
            "init_fraction": self.init_fraction,
            "max_rounds": self.max_rounds,
            "epsilon": self.epsilon,
            "sample_blocks": self.sample_blocks,
            "seed": self.seed,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "StudySpec":
        """Build a spec from its JSON shape (strict keys)."""
        known = {
            "name", "axes", "apps", "objectives", "budget", "init_fraction",
            "max_rounds", "epsilon", "sample_blocks", "seed",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown study field(s) {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known))}"
            )
        for required in ("name", "axes"):
            if required not in payload:
                raise ValueError(
                    f"study is missing the required {required!r} field"
                )
        axes = tuple(
            Axis.from_payload(item) for item in payload["axes"]
        )
        spec = cls(
            name=payload["name"],
            axes=axes,
            apps=tuple(payload.get("apps", ("Ocean", "FFT"))),
            objectives=tuple(payload.get("objectives", OBJECTIVES)),
            budget=int(payload.get("budget", 64)),
            init_fraction=float(payload.get("init_fraction", 0.5)),
            max_rounds=int(payload.get("max_rounds", 4)),
            epsilon=float(payload.get("epsilon", 0.02)),
            sample_blocks=int(payload.get("sample_blocks", 1200)),
            seed=int(payload.get("seed", 0)),
        )
        return spec


def _frontier_axes() -> tuple[Axis, ...]:
    """The headline axes: everything the ISSUE/ROADMAP names."""
    return (
        Axis("scheme", "categorical", values=SCHEME_CHOICES),
        Axis("chunk_bits", "categorical", values=(2, 4, 8)),
        Axis("data_wires", "categorical", values=(32, 64, 128, 256)),
        Axis("num_banks", "categorical", values=(2, 4, 8, 16, 32)),
        Axis("resync_interval", "int", low=4, high=4096, log=True),
        Axis("fault_rate", "float", low=1e-9, high=1e-4, log=True),
    )


#: Built-in study specifications, by name.
PRESETS: dict[str, StudySpec] = {
    "quick": StudySpec(
        name="quick",
        axes=(
            Axis("scheme", "categorical",
                 values=("binary", "desc", "desc-zero")),
            Axis("data_wires", "categorical", values=(64, 128)),
            Axis("num_banks", "categorical", values=(4, 8, 16)),
            Axis("resync_interval", "int", low=8, high=512, log=True),
            Axis("fault_rate", "float", low=1e-8, high=1e-5, log=True),
        ),
        apps=("Ocean", "FFT"),
        budget=24,
        max_rounds=3,
        sample_blocks=300,
        seed=0,
    ),
    "frontier": StudySpec(
        name="frontier",
        axes=_frontier_axes(),
        apps=("Ocean", "CG", "FFT", "LU"),
        budget=256,
        max_rounds=6,
        sample_blocks=2000,
        seed=0,
    ),
}


def preset_spec(name: str) -> StudySpec:
    """The named built-in spec (``quick``, ``frontier``)."""
    try:
        return PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown preset {name!r}; choose from {', '.join(sorted(PRESETS))}"
        ) from None


def load_spec(path: str | Path) -> StudySpec:
    """Read a :class:`StudySpec` from a JSON file.

    The file holds the shape :meth:`StudySpec.to_payload` emits; see
    ``docs/explore.md`` for the format reference.
    """
    text = Path(path).read_text(encoding="utf-8")
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(payload, Mapping):
        raise ValueError(
            f"{path}: a study spec must be a JSON object, "
            f"got {type(payload).__name__}"
        )
    return StudySpec.from_payload(payload)


# Routing helpers used by the evaluator -------------------------------


def split_params(params: Mapping[str, Any]) -> tuple[dict, dict, dict]:
    """Split resolved axis values into (scheme, system, link) groups.

    ``scheme`` collects the scheme choice and SchemeConfig fields,
    ``system`` everything destined for SystemConfig, and ``link`` the
    virtual axes the analytic resilience model consumes.
    """
    scheme: dict[str, Any] = {}
    system: dict[str, Any] = {}
    link: dict[str, Any] = {}
    for name, value in params.items():
        if name == "scheme" or name in _SCHEME_FIELDS:
            scheme[name] = value
        elif name in _LINK_FIELDS:
            link[name] = value
        else:
            system[name] = value
    return scheme, system, link
