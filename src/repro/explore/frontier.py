"""Epsilon-dominance Pareto archive with byte-stable snapshots.

All objectives are minimized.  The archive keeps the classic
epsilon-Pareto invariants:

* no archived point epsilon-dominates another archived point;
* every point ever offered is epsilon-dominated by (or is) some
  archived point.

Epsilon-dominance uses a *relative* margin: ``a`` epsilon-dominates
``b`` when ``a_i <= b_i * (1 + epsilon)`` on every objective and
``a_i < b_i`` strictly on at least one.  Relative margins suit this
domain — energies and cycle counts live on wildly different scales —
and degenerate zero objectives (a zero fault-rate risk) are compared
exactly.

Determinism: epsilon-ties (two points that each epsilon-dominate the
other) are broken by canonical key, so the archive does not depend on
which of the two arrived first.  Snapshots sort by key and encode
through :func:`repro.service.codec.encode_json`, so "the same
frontier" is byte-comparable across runs, resumes, and backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Sequence

from repro.service import codec

__all__ = [
    "FrontierPoint",
    "ParetoFrontier",
    "coverage",
    "dominates",
    "point_key",
]


@dataclass(frozen=True)
class FrontierPoint:
    """One archived design point.

    Attributes:
        key: Canonical identity of the design point (the canonical JSON
            of its resolved parameters).
        params: The resolved axis values.
        objectives: Objective values, in the study's objective order
            (all minimized).
    """

    key: str
    params: dict[str, Any]
    objectives: tuple[float, ...]

    def to_payload(self) -> dict:
        """The JSON shape of this point (snapshots, reports)."""
        return {
            "key": self.key,
            "params": dict(self.params),
            "objectives": list(self.objectives),
        }


def point_key(params: Mapping[str, Any]) -> str:
    """The canonical identity of a design point: sorted-key JSON."""
    return codec.encode_json(dict(params)).decode("utf-8")


def dominates(
    a: Sequence[float], b: Sequence[float], epsilon: float = 0.0
) -> bool:
    """Whether ``a`` (epsilon-)dominates ``b``, minimizing everywhere.

    With ``epsilon`` zero this is plain Pareto dominance.  Positive
    epsilon widens every comparison by a relative margin, collapsing
    near-duplicates onto one representative.
    """
    no_worse = all(
        ai <= bi * (1.0 + epsilon) if bi > 0 else ai <= bi
        for ai, bi in zip(a, b, strict=True)
    )
    strictly_better = any(ai < bi for ai, bi in zip(a, b, strict=True))
    return no_worse and strictly_better


class ParetoFrontier:
    """An epsilon-dominance archive of minimized objective vectors."""

    def __init__(self, epsilon: float = 0.0) -> None:
        if epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {epsilon}")
        self.epsilon = epsilon
        self._points: dict[str, FrontierPoint] = {}

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[FrontierPoint]:
        """Archived points in canonical (key-sorted) order."""
        for key in sorted(self._points):
            yield self._points[key]

    def add(
        self,
        params: Mapping[str, Any],
        objectives: Sequence[float],
        key: str | None = None,
    ) -> bool:
        """Offer a point; returns True when it enters the archive.

        A point enters unless an archived point epsilon-dominates it;
        on entry, every archived point it epsilon-dominates is evicted.
        An epsilon-tie — candidate and incumbent each epsilon-dominate
        the other — keeps whichever key sorts first, so insertion order
        never decides the archive.  NaN objectives never enter.
        """
        objectives = tuple(float(v) for v in objectives)
        if any(v != v for v in objectives):
            return False
        if key is None:
            key = point_key(params)
        if key in self._points:
            return False
        for incumbent in self._points.values():
            if dominates(incumbent.objectives, objectives, self.epsilon):
                tie = dominates(objectives, incumbent.objectives, self.epsilon)
                if not tie or incumbent.key < key:
                    return False
        evicted = [
            incumbent_key
            for incumbent_key, incumbent in self._points.items()
            if dominates(objectives, incumbent.objectives, self.epsilon)
        ]
        for incumbent_key in evicted:
            del self._points[incumbent_key]
        self._points[key] = FrontierPoint(
            key=key, params=dict(params), objectives=objectives
        )
        return True

    def points(self) -> list[FrontierPoint]:
        """The archived points, in canonical order."""
        return list(self)

    def snapshot(self) -> list[dict]:
        """The archive as JSON-able payloads, in canonical order."""
        return [point.to_payload() for point in self]

    def snapshot_bytes(self) -> bytes:
        """Canonical bytes of the archive — the byte-identity contract.

        Two studies reached the same frontier iff these bytes match.
        """
        return codec.encode_json(self.snapshot())


def coverage(
    a: Sequence[FrontierPoint],
    b: Sequence[FrontierPoint],
    epsilon: float = 0.0,
) -> float:
    """Fraction of ``b``'s points matched-or-beaten by ``a``.

    Zitzler's C-metric: ``coverage(A, B) = 1.0`` means every point of
    ``B`` is equalled or (epsilon-)dominated by some point of ``A``.
    The self-check uses it to assert the adaptive frontier dominates
    the equal-budget random baseline.  Empty ``b`` is covered
    trivially (returns 1.0).
    """
    if not b:
        return 1.0
    covered = 0
    for point in b:
        for candidate in a:
            if candidate.objectives == point.objectives or dominates(
                candidate.objectives, point.objectives, epsilon
            ):
                covered += 1
                break
    return covered / len(b)
