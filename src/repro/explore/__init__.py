"""Autonomous Pareto design-space exploration over the simulator.

The DESC paper evaluates a handful of hand-picked configurations; this
package searches the *frontier*: where does the energy x latency x
resilience trade-off dominate as chunk size, wire count, resync
interval, fault rate, and engine geometry co-vary?

The pieces, bottom up:

* :mod:`repro.explore.spec` — :class:`StudySpec`: typed axes
  (categorical, integer, float; linear or log) that compile down to the
  :func:`repro.sim.sweeps.expand_grid` substrate but also support
  continuous sampling;
* :mod:`repro.explore.sampling` — seeded low-discrepancy (Halton) and
  stratified sampling in the unit cube, plus the bisection neighbours
  the refinement rounds use;
* :mod:`repro.explore.frontier` — epsilon-dominance Pareto archive with
  canonical (byte-stable) snapshots;
* :mod:`repro.explore.backends` — the submission protocol with two
  implementations: in-process :func:`repro.sim.engine.simulate_many`
  and a :class:`repro.service.client.ServiceClient` backend that rides
  the sharded service (coalescing, cache, warehouse) and honours its
  429/503/deadline semantics;
* :mod:`repro.explore.study` — the adaptive driver: coarse seeded pass,
  frontier maintenance, refinement rounds that bisect axes around
  frontier points, a fixed evaluation budget, and a crash-safe
  append-only journal so an interrupted study resumes byte-identically;
* :mod:`repro.explore.report` — per-study ``summarize``/JSON + Markdown
  report emission (via :mod:`repro.reporting`);
* :mod:`repro.explore.check` — the self-check harness behind
  ``repro explore --check``.

Everything is seeded: the same (spec, seed, budget) triple reproduces
the same journal and the same frontier, byte for byte, on any backend.
"""

from repro.explore.backends import (
    EvaluationError,
    LocalBackend,
    ServiceBackend,
    SubmissionBackend,
)
from repro.explore.frontier import FrontierPoint, ParetoFrontier
from repro.explore.report import study_report, summarize
from repro.explore.spec import Axis, StudySpec, load_spec, preset_spec
from repro.explore.study import StudyResult, resume_study, run_study

__all__ = [
    "Axis",
    "EvaluationError",
    "FrontierPoint",
    "LocalBackend",
    "ParetoFrontier",
    "ServiceBackend",
    "StudyResult",
    "StudySpec",
    "SubmissionBackend",
    "load_spec",
    "preset_spec",
    "resume_study",
    "run_study",
    "study_report",
    "summarize",
]
