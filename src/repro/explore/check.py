"""End-to-end self-check: ``repro explore --check``.

Runs a real (small) study three ways and asserts the subsystem's three
headline contracts:

* **crash consistency** — a study resumed from a truncated journal
  (half the evaluations kept, plus a deliberately torn trailing record,
  the on-disk shape a SIGKILL mid-append leaves) finishes with a
  frontier **byte-identical** to the uninterrupted run's, replaying
  exactly the journaled evaluations instead of recomputing them;
* **backend parity** — the same spec driven through a live sharded
  service (:class:`~repro.explore.backends.ServiceBackend` riding
  coalescing, the result store, and optionally a warehouse tier)
  produces the same frontier bytes as the in-process
  :class:`~repro.explore.backends.LocalBackend`;
* **adaptivity pays** — at equal budget, the adaptive frontier covers
  (equals-or-dominates) at least as much of the seeded random
  baseline's frontier as vice versa, and strictly more budget goes to
  the frontier neighbourhood than blind sampling would spend.

Returns ``(exit_code, summary)`` like the other ``run_check``
entry points; the Markdown study report is emitted alongside.
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

from repro.explore.backends import LocalBackend, ServiceBackend
from repro.explore.frontier import coverage
from repro.explore.report import study_report, summarize
from repro.explore.spec import StudySpec, preset_spec
from repro.explore.study import random_frontier, resume_study, run_study
from repro.service.check import ServerHarness
from repro.service.pipeline import ServiceConfig
from repro.sim.engine import StagedEngine
from repro.sim.store import ResultStore

__all__ = ["run_check"]


def _truncated_copy(source: Path, target: Path, keep_evals: int) -> int:
    """Copy a journal keeping meta + the first ``keep_evals`` evals.

    Appends a torn partial record (no newline) after the cut — the
    exact on-disk state a SIGKILL mid-append leaves behind — so the
    resume path also proves its torn-tail tolerance.  Returns how many
    eval records were kept.
    """
    target.mkdir(parents=True, exist_ok=True)
    lines = (source / "journal.jsonl").read_bytes().splitlines(keepends=True)
    kept: list[bytes] = []
    evals = 0
    for line in lines:
        if b'"type":"eval"' in line:
            if evals >= keep_evals:
                break
            evals += 1
        kept.append(line)
    torn = b'{"type":"eval","key":"torn-by-sigkill'
    (target / "journal.jsonl").write_bytes(b"".join(kept) + torn)
    return evals


def run_check(
    spec: StudySpec | None = None,
    quick: bool = False,
    shards: int = 2,
    warehouse: str | None = None,
    out_dir: str | None = None,
    report_out: str | None = None,
    workers: int = 1,
) -> tuple[int, dict]:
    """Run the explore self-check; returns ``(exit code, summary)``.

    Args:
        spec: Study to check with (default: the ``quick`` preset).
        quick: Shrink the per-application value sample further (CI's
            smoke shape) — halves ``sample_blocks`` and the budget.
        shards: Shard count of the live service the parity leg runs
            against.
        warehouse: Optional warehouse directory for the service's
            store (the smoke job points this at a scratch dir).
        out_dir: Where journals and the report land (default: a
            temporary directory, cleaned up afterwards).
        report_out: Explicit path for the Markdown study report
            (default: ``<out_dir>/report.md``).
        workers: Engine pool width for the local backend.
    """
    if spec is None:
        spec = preset_spec("quick")
    if quick:
        spec = spec.with_(
            sample_blocks=max(50, spec.sample_blocks // 2),
            budget=max(8, spec.budget // 2),
        )
    cleanup: tempfile.TemporaryDirectory | None = None
    if out_dir is None:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-explore-check-")
        base = Path(cleanup.name)
    else:
        base = Path(out_dir)
        base.mkdir(parents=True, exist_ok=True)
    problems: list[str] = []
    try:
        # One shared local engine: repeat studies hit its store, so the
        # three legs cost barely more simulations than one study.
        local = LocalBackend(
            engine=StagedEngine(ResultStore()),
            max_workers=workers if workers > 1 else None,
        )

        # Leg 1: the uninterrupted reference run, journaled.
        full = run_study(spec, local, base / "full")
        full_bytes = full.frontier.snapshot_bytes()
        if full.spent != spec.budget:
            problems.append(
                f"study spent {full.spent} of budget {spec.budget}"
            )
        if not len(full.frontier):
            problems.append("uninterrupted study produced an empty frontier")

        # Leg 2: crash consistency — resume from a truncated journal
        # with a torn tail and demand byte-identical convergence.
        kept = _truncated_copy(
            base / "full", base / "resume", max(1, full.spent // 2)
        )
        resumed = resume_study(base / "resume", local)
        resumed_bytes = resumed.frontier.snapshot_bytes()
        if resumed_bytes != full_bytes:
            problems.append(
                "resumed frontier differs from the uninterrupted run "
                f"({len(resumed.frontier)} vs {len(full.frontier)} points)"
            )
        if resumed.reused != kept:
            problems.append(
                f"resume replayed {resumed.reused} journaled point(s), "
                f"expected {kept}"
            )

        # Leg 3: backend parity — the same spec through a live sharded
        # service must land on the same frontier bytes.
        service_config = ServiceConfig(
            max_workers=workers if workers > 1 else None, shards=shards
        )
        service_engine = StagedEngine(ResultStore(warehouse=warehouse))
        with ServerHarness(
            service_config=service_config, engine=service_engine
        ) as harness:
            remote = ServiceBackend(
                client=harness.client(timeout=300.0, max_attempts=10),
                max_in_flight=4,
            )
            try:
                served = run_study(spec, remote, base / "service")
            finally:
                remote.close()
        if served.frontier.snapshot_bytes() != full_bytes:
            problems.append(
                "service-backend frontier differs from the local backend's"
            )

        # Leg 4: adaptivity pays — equal-budget random baseline.
        baseline = random_frontier(spec, local, budget=full.spent)
        adaptive_cov = coverage(
            full.frontier.points(), baseline.frontier.points(), spec.epsilon
        )
        random_cov = coverage(
            baseline.frontier.points(), full.frontier.points(), spec.epsilon
        )
        if adaptive_cov < random_cov:
            problems.append(
                f"adaptive frontier covers {adaptive_cov:.1%} of the random "
                f"baseline but is covered {random_cov:.1%} — adaptivity "
                "did not pay"
            )

        report_path = (
            Path(report_out) if report_out else base / "report.md"
        )
        report_path.parent.mkdir(parents=True, exist_ok=True)
        report_path.write_text(study_report(full), encoding="utf-8")

        summary = {
            "spec": spec.name,
            "budget": full.spent,
            "frontier_points": len(full.frontier),
            "failed_points": len(full.failed_points),
            "resume_byte_identical": resumed_bytes == full_bytes,
            "resume_replayed": resumed.reused,
            "backend_parity": served.frontier.snapshot_bytes() == full_bytes,
            "shards": shards,
            "warehouse": warehouse,
            "adaptive_coverage": adaptive_cov,
            "random_coverage": random_cov,
            "report": str(report_path),
            "summary": summarize(full),
            "problems": problems,
        }
    finally:
        if cleanup is not None:
            cleanup.cleanup()
    print(json.dumps({k: v for k, v in summary.items() if k != "summary"},
                     indent=2), file=sys.stderr)
    return (1 if problems else 0), summary
