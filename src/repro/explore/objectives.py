"""Design-point resolution and the energy/latency/risk objectives.

A resolved axis assignment maps to concrete simulator configs
(:func:`resolve_design`) and, once the per-application results are in,
to the study's objective vector (:func:`objectives_from_payloads`):

* ``energy_j`` — suite-geomean L2 energy, multiplied by the resync
  protocol's energy overhead (periodic resyncs every
  ``resync_interval`` blocks cost
  :data:`~repro.core.link.RESYNC_STROBE_FLIPS` strobe flips each, a
  fraction of the per-block wire activity — the same cost the
  cycle-accurate link charges in :meth:`repro.core.link.DescLink.resync`);
* ``latency_cycles`` — suite-geomean execution time;
* ``risk`` — the analytic fault-exposure model: with a per-wire-cycle
  toggle-fault probability ``fault_rate``, a block transfer occupying
  ``wires x transfer_cycles`` wire-cycles is disturbed with probability
  ``1 - (1 - p)^exposure``.  On a DESC link a disturbance desynchronizes
  the counters and corrupts every following block until the next
  periodic resync (``resync_interval / 2`` blocks in expectation, the
  behaviour the fault campaigns of :mod:`repro.faults` measure); the
  fixed-beat baselines corrupt only the disturbed block.

The model deliberately trades campaign fidelity for purity: it is an
exact function of the design point and the simulator's transfer
statistics, so both submission backends compute byte-identical
objectives, and the trade-off it encodes (short resync intervals buy
resilience with energy; DESC buys energy with fault exposure) is the
one the link-level fault campaigns quantify in full.

All functions here are pure; nothing draws randomness or reads clocks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.core.link import RESYNC_STROBE_FLIPS
from repro.sim.config import SchemeConfig, SystemConfig, baseline_scheme, desc_scheme
from repro.sim.engine import SimJob
from repro.util.stats import geomean

__all__ = [
    "Design",
    "canonical_params",
    "objectives_from_payloads",
    "resolve_design",
]

#: Scheme-choice spellings (the CLI's) to constructor calls.
_DESC_SKIPS = {"desc": "none", "desc-zero": "zero",
               "desc-last-value": "last-value"}

#: SchemeConfig fields an axis may drive.
_SCHEME_FIELDS = ("chunk_bits", "data_wires", "segment_bits")

#: Virtual link axes consumed by the risk model.
_LINK_FIELDS = ("fault_rate", "resync_interval")

#: Link-axis defaults when a spec does not sweep them.
_DEFAULT_FAULT_RATE = 0.0
_DEFAULT_RESYNC_INTERVAL = 64


@dataclass(frozen=True)
class Design:
    """One concrete design point, ready to simulate.

    Attributes:
        params: The canonical axis values (see :func:`canonical_params`).
        scheme: The transfer scheme configuration.
        system_fields: SystemConfig overrides applied on the study base.
        fault_rate: Per-wire-cycle fault probability of the risk model.
        resync_interval: Blocks between periodic resyncs (DESC only).
    """

    params: dict[str, Any]
    scheme: SchemeConfig
    system_fields: dict[str, Any]
    fault_rate: float
    resync_interval: int

    def jobs(
        self, apps: Sequence[str], sample_blocks: int
    ) -> list[SimJob]:
        """The per-application simulation jobs of this design point."""
        system = SystemConfig(sample_blocks=sample_blocks).with_(
            **self.system_fields
        )
        return [SimJob.of(app, self.scheme, system) for app in apps]


def canonical_params(params: Mapping[str, Any]) -> dict[str, Any]:
    """Canonicalize axis values: drop fields the scheme cannot feel.

    Two assignments that mean the same simulation must share one key,
    or the explorer wastes budget re-evaluating aliases: the fixed-beat
    baselines have no chunks to size and no counters to resync, so
    ``chunk_bits`` and ``resync_interval`` are dropped for them (and a
    zero fault rate makes ``resync_interval`` irrelevant for everyone).
    """
    canonical = dict(params)
    scheme_name = canonical.get("scheme", "desc-zero")
    if scheme_name not in _DESC_SKIPS:
        canonical.pop("chunk_bits", None)
        canonical.pop("resync_interval", None)
    elif float(canonical.get("fault_rate", _DEFAULT_FAULT_RATE)) == 0.0:
        canonical.pop("resync_interval", None)
    return canonical


def resolve_design(params: Mapping[str, Any]) -> Design:
    """Resolve axis values into a concrete :class:`Design`.

    Axis routing: ``scheme`` and the SchemeConfig fields build the
    scheme; ``fault_rate``/``resync_interval`` feed the risk model;
    everything else must name a SystemConfig field (unknown names
    surface as ``TypeError`` from the config layer when jobs are
    built, exactly like :func:`repro.sim.sweeps.sweep`).
    """
    canonical = canonical_params(params)
    scheme_name = canonical.get("scheme", "desc-zero")
    scheme_fields = {
        name: canonical[name] for name in _SCHEME_FIELDS if name in canonical
    }
    if scheme_name in _DESC_SKIPS:
        scheme_fields.pop("segment_bits", None)
        scheme = desc_scheme(_DESC_SKIPS[scheme_name], **scheme_fields)
    elif scheme_name == "binary":
        scheme = baseline_scheme(**scheme_fields)
    else:
        raise ValueError(
            f"unknown scheme choice {scheme_name!r}; known: "
            f"binary, {', '.join(sorted(_DESC_SKIPS))}"
        )
    system_fields = {
        name: value
        for name, value in canonical.items()
        if name != "scheme"
        and name not in _SCHEME_FIELDS
        and name not in _LINK_FIELDS
    }
    return Design(
        params=canonical,
        scheme=scheme,
        system_fields=system_fields,
        fault_rate=float(canonical.get("fault_rate", _DEFAULT_FAULT_RATE)),
        resync_interval=int(
            canonical.get("resync_interval", _DEFAULT_RESYNC_INTERVAL)
        ),
    )


def _l2_energy(payload: Mapping[str, Any]) -> float:
    l2 = payload["l2"]
    return l2["static_j"] + l2["htree_dynamic_j"] + l2["array_dynamic_j"]


def objectives_from_payloads(
    design: Design,
    payloads: Sequence[Mapping[str, Any]],
    objective_names: Sequence[str],
) -> tuple[dict[str, float], dict[str, float]]:
    """Fold per-application result payloads into objective values.

    Returns ``(objectives, metrics)``: the selected objectives (in the
    given order) and the full metric set (for reports).  Payloads are
    the JSON shapes of :class:`~repro.sim.metrics.RunResult` — the
    service's ``/simulate`` response and the local backend's
    :func:`~repro.service.codec.result_to_payload` are the same shape,
    which is what makes the two backends byte-comparable.
    """
    if not payloads:
        raise ValueError("a design point needs at least one result payload")
    energy = geomean(_l2_energy(p) for p in payloads)
    latency = geomean(p["cycles"] for p in payloads)
    stats = [p["transfer_stats"] for p in payloads]
    wires = geomean(
        s["data_wires"] + s["overhead_wires"] for s in stats
    )
    transfer_cycles = geomean(s["transfer_cycles"] for s in stats)
    flips_per_block = geomean(
        max(s["data_flips"] + s["overhead_flips"] + s["sync_flips"], 1e-12)
        for s in stats
    )
    is_desc = design.scheme.is_desc
    exposure = wires * transfer_cycles
    p_disturb = (
        -math.expm1(exposure * math.log1p(-design.fault_rate))
        if 0.0 < design.fault_rate < 1.0
        else (1.0 if design.fault_rate >= 1.0 else 0.0)
    )
    if is_desc and design.fault_rate > 0.0:
        # A desynchronized counter corrupts until the next periodic
        # resync: resync_interval/2 extra blocks in expectation.
        risk = min(1.0, p_disturb * (1.0 + design.resync_interval / 2.0))
        resync_overhead = RESYNC_STROBE_FLIPS / (
            design.resync_interval * flips_per_block
        )
    else:
        risk = p_disturb
        resync_overhead = 0.0
    metrics = {
        "energy_j": energy * (1.0 + resync_overhead),
        "latency_cycles": latency,
        "risk": risk,
        "l2_energy_j": energy,
        "resync_overhead": resync_overhead,
        "p_disturb": p_disturb,
        "flips_per_block": flips_per_block,
    }
    objectives = {name: metrics[name] for name in objective_names}
    return objectives, metrics
