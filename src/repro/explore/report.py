"""Per-study report emission: JSON summaries and Markdown reports.

Two views of a finished :class:`~repro.explore.study.StudyResult`:

* :func:`summarize` — the machine view: a JSON-ready dict with the
  spec, the frontier snapshot, budget accounting, and the failure
  list (the CLI's ``--json`` output and the smoke job's artifact);
* :func:`study_report` — the human view: a Markdown document with the
  frontier table (via :mod:`repro.reporting`), the budget ledger, and
  a failure section when any design point failed.

Both are pure functions of the result; writing files is the CLI's job.
"""

from __future__ import annotations

from repro.explore.study import StudyResult
from repro.reporting import frontier_rows, markdown_table

__all__ = ["study_report", "summarize"]


def summarize(result: StudyResult) -> dict:
    """The JSON-ready summary of a study result.

    Extends :meth:`StudyResult.to_payload` with the failure records
    (config + reason each, mirroring ``sweep``'s ``failed_points``)
    so a report consumer never has to re-derive them.
    """
    payload = result.to_payload()
    payload["failed_points"] = [
        {"params": record["params"], "reason": record["reason"]}
        for record in result.failed_points
    ]
    return payload


def study_report(result: StudyResult) -> str:
    """The Markdown report of a study result.

    Sections: a header with the budget ledger, the Pareto frontier
    table in canonical order, and (when present) the failed design
    points with their reasons.
    """
    spec = result.spec
    lines = [
        f"# Study report: {spec.name}",
        "",
        f"- applications: {', '.join(spec.apps)}",
        f"- objectives: {', '.join(spec.objectives)} (all minimized)",
        f"- axes: {', '.join(axis.name for axis in spec.axes)}",
        f"- budget spent: {result.spent} design point(s)"
        + (f" ({result.reused} replayed from journal)" if result.reused else ""),
        f"- refinement rounds: {result.rounds}",
        f"- epsilon: {spec.epsilon:g}",
        f"- seed: {spec.seed}",
        "",
        f"## Pareto frontier ({len(result.frontier)} point(s))",
        "",
    ]
    snapshot = result.frontier.snapshot()
    if snapshot:
        headers, rows = frontier_rows(snapshot, spec.objectives)
        lines.append(markdown_table(headers, rows))
    else:
        lines.append("*(empty frontier — every design point failed)*")
    failed = result.failed_points
    if failed:
        lines.extend(["", f"## Failed design points ({len(failed)})", ""])
        lines.append(
            markdown_table(
                ["params", "reason"],
                [[str(r["params"]), r["reason"]] for r in failed],
            )
        )
    lines.append("")
    return "\n".join(lines)
