"""Submission backends: how a study turns jobs into result payloads.

The driver speaks one protocol (:class:`SubmissionBackend`): give it a
batch of :class:`~repro.sim.engine.SimJob` configurations, get back one
result payload per job, in order.  Two implementations:

* :class:`LocalBackend` — in-process
  :func:`repro.sim.engine.simulate_many`: zero moving parts, pool
  fan-out via ``max_workers``, the store deduplicates repeated stages;
* :class:`ServiceBackend` — rides a running ``repro serve`` instance
  through :meth:`repro.service.client.ServiceClient.submit_many`:
  bounded in-flight concurrency, and the service's coalescing, result
  store, and warehouse make revisited design points nearly free.  The
  client's retry discipline honours the service's 429/503/deadline
  semantics, so a study breathes with the service's backpressure
  instead of fighting it.

Both backends normalize results through the canonical JSON codec, so a
payload is byte-identical no matter which backend produced it — the
property the self-check's backend-parity assertion pins.

A job that cannot produce a result raises :class:`EvaluationError`;
the driver records the design point as failed and explores on.
"""

from __future__ import annotations

import json
from typing import Protocol, Sequence

from repro.service import codec
from repro.service.client import ServiceClient, ServiceClientError
from repro.sim.engine import FailedJob, SimJob, StagedEngine, simulate_many
from repro.sim.store import ResultStore

__all__ = [
    "EvaluationError",
    "LocalBackend",
    "ServiceBackend",
    "SubmissionBackend",
]


class EvaluationError(RuntimeError):
    """A design point's jobs could not all produce results."""


def _normalize(payload: dict) -> dict:
    """Round-trip a payload through canonical JSON.

    Forces both backends onto the same float/keys representation so
    ``encode_json`` of any two equal results is byte-identical.
    """
    return json.loads(codec.encode_json(payload))


class SubmissionBackend(Protocol):
    """The submission protocol the study driver drives."""

    def submit(self, jobs: Sequence[SimJob]) -> list[dict]:
        """Result payloads for ``jobs``, in job order.

        Raises :class:`EvaluationError` when any job cannot produce a
        result.
        """
        ...

    def close(self) -> None:
        """Release any held resources (idempotent)."""
        ...


class LocalBackend:
    """In-process evaluation through :func:`simulate_many`.

    Args:
        engine: Engine to run on (default: fresh engine + private
            store, so studies never leak into the process-wide store).
        max_workers: Process-pool width per batch (``None`` = module
            default, 1 = serial).
    """

    def __init__(
        self,
        engine: StagedEngine | None = None,
        max_workers: int | None = None,
    ) -> None:
        self.engine = (
            engine if engine is not None else StagedEngine(ResultStore())
        )
        self.max_workers = max_workers

    def submit(self, jobs: Sequence[SimJob]) -> list[dict]:
        """Simulate the batch in-process; payloads in job order."""
        results = simulate_many(
            jobs, max_workers=self.max_workers, store=self.engine.store
        )
        payloads = []
        for job, result in zip(jobs, results, strict=True):
            if isinstance(result, FailedJob):
                raise EvaluationError(
                    f"job {job.app.name}/{job.scheme.name} failed "
                    f"({result.reason}) after {result.attempts} attempt(s)"
                )
            payloads.append(_normalize(codec.result_to_payload(result)))
        return payloads

    def close(self) -> None:
        """Nothing to release; present for protocol symmetry."""


class ServiceBackend:
    """Evaluation through a running simulation service.

    Args:
        host / port: Where the service listens.
        max_in_flight: Concurrent requests kept in flight per batch
            (see :meth:`ServiceClient.submit_many`).
        client: A ready client to use instead of building one (the
            check harness injects clients pointed at its harness).
        **client_kwargs: Forwarded to :class:`ServiceClient` when no
            client is given (timeouts, deadlines, jitter seed, ...).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        max_in_flight: int = 8,
        client: ServiceClient | None = None,
        **client_kwargs,
    ) -> None:
        if max_in_flight < 1:
            raise ValueError(
                f"max_in_flight must be >= 1, got {max_in_flight}"
            )
        self.max_in_flight = max_in_flight
        self._client = (
            client
            if client is not None
            else ServiceClient(host=host, port=port, **client_kwargs)
        )

    def submit(self, jobs: Sequence[SimJob]) -> list[dict]:
        """Submit the batch over HTTP; payloads in job order."""
        import dataclasses

        payloads = [
            {
                "app": job.app.name,
                "scheme": dataclasses.asdict(job.scheme),
                "system": dataclasses.asdict(job.system),
            }
            for job in jobs
        ]
        try:
            replies = self._client.submit_many(
                payloads, max_in_flight=self.max_in_flight
            )
        except ServiceClientError as exc:
            raise EvaluationError(f"service submission failed: {exc}") from exc
        return [_normalize(reply) for reply in replies]

    def close(self) -> None:
        """Drop the client's keep-alive connection."""
        self._client.close()
