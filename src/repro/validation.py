"""Programmatic paper-vs-measured validation (the EXPERIMENTS.md table).

Each :class:`Check` names a published quantity, measures it through the
experiment modules, and judges it against an acceptance band.  The
bands encode the *shape* expectations of DESIGN.md §6 — orderings and
approximate magnitudes, not exact joules.  ``python -m repro validate``
runs the whole list and prints a pass/fail table.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.sim.config import SystemConfig

__all__ = ["Check", "CheckResult", "build_checks", "run_validation"]


@dataclass(frozen=True)
class Check:
    """One published quantity and its acceptance band.

    Attributes:
        name: Short identifier (figure + quantity).
        paper: The value the paper reports.
        low / high: Acceptance band for the measured value.
        measure: Callable producing the measured value.
    """

    name: str
    paper: float
    low: float
    high: float
    measure: Callable[[], float]


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one check."""

    name: str
    paper: float
    measured: float
    low: float
    high: float

    @property
    def passed(self) -> bool:
        """Whether the measured value falls inside the band."""
        return self.low <= self.measured <= self.high


def build_checks(sample_blocks: int = 2500) -> list[Check]:
    """The validation suite over the paper's headline quantities."""
    import repro.experiments as ex

    system = SystemConfig(sample_blocks=sample_blocks)

    def fig01() -> float:
        return ex.fig01_l2_fraction.run(system)["l2_fraction"]["Geomean"]

    def fig02() -> float:
        return ex.fig02_l2_breakdown.run(system)["average"]["htree_dynamic"]

    def fig12() -> float:
        return ex.fig12_chunk_values.run(sample_blocks)["zero_fraction"]

    def fig13() -> float:
        return ex.fig13_last_value.run(sample_blocks)[
            "last_value_fraction"]["Geomean"]

    def fig16() -> float:
        table = ex.fig16_l2_energy.run(system)["l2_energy_normalized"]
        return 1.0 / table["Zero Skipped DESC"]["Geomean"]

    def fig17_area() -> float:
        return ex.fig17_synthesis.run()["pair_area_um2"]

    def fig19() -> float:
        return ex.fig19_processor_energy.run(system)[
            "processor_energy_normalized"]["Geomean"]["total"]

    def fig20() -> float:
        return ex.fig20_exec_time.run(system)[
            "execution_time_normalized"]["Zero Skipped DESC"]

    def fig24() -> float:
        return 1.0 / ex.fig24_snuca_energy.run(system)[
            "l2_energy_normalized"]["Geomean"]

    def fig26() -> float:
        best = ex.fig26_chunk_size.run(system)["best_edp_point"]
        return float(best["chunk_bits"] * 1000 + best["wires"])

    def fig30() -> float:
        return ex.fig30_single_thread.run(system)[
            "execution_time_normalized"]["Geomean"]

    return [
        Check("fig01 L2 share of processor energy", 0.15, 0.10, 0.20, fig01),
        Check("fig02 H-tree share of L2 energy", 0.80, 0.70, 0.92, fig02),
        Check("fig12 zero-chunk fraction", 0.31, 0.27, 0.35, fig12),
        Check("fig13 last-value fraction", 0.39, 0.33, 0.45, fig13),
        Check("fig16 DESC+ZS L2 energy reduction (x)", 1.81, 1.60, 2.00, fig16),
        Check("fig17 TX+RX pair area (um2)", 2120, 1900, 2400, fig17_area),
        Check("fig19 processor energy w/ DESC", 0.93, 0.90, 0.97, fig19),
        Check("fig20 DESC execution-time overhead", 1.02, 1.00, 1.04, fig20),
        Check("fig24 S-NUCA-1 energy reduction (x)", 1.62, 1.40, 1.90, fig24),
        Check("fig26 best (chunk*1000+wires)", 4128, 4128, 4128, fig26),
        Check("fig30 OoO execution-time overhead", 1.06, 1.02, 1.10, fig30),
    ]


def run_validation(sample_blocks: int = 2500) -> list[CheckResult]:
    """Run every check; returns the results in order."""
    results = []
    for check in build_checks(sample_blocks):
        measured = float(check.measure())
        results.append(
            CheckResult(
                name=check.name,
                paper=check.paper,
                measured=measured,
                low=check.low,
                high=check.high,
            )
        )
    return results
