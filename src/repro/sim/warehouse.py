"""Append-only segment-file warehouse: the disk tier under the store.

The in-memory :class:`~repro.sim.store.ResultStore` LRU dies with the
process; the warehouse is the durable tier beneath it.  Entries the
store writes (or evicts past) land in append-only **segment files**, so
a restarted service warm-starts its cache by reading results back from
disk instead of recomputing them.

Design, in the same spirit as the store's persistence semantics:

* **append-only records** — each ``put`` appends one length-prefixed,
  CRC-guarded record (pickled key + pickled value) to the active
  segment; nothing is ever rewritten in place, so a crash can only
  damage the tail of one file;
* **torn-tail recovery** — on open, each segment is scanned record by
  record; a truncated or CRC-failing tail (the signature of a crash
  mid-append) is cut back to the last good record with a warning, and
  appending resumes from there;
* **quarantine** — a segment whose *header* is unreadable (wrong magic,
  short file) is renamed to ``<name>.corrupt`` so the broken bytes
  survive for inspection, mirroring
  :meth:`~repro.sim.store.ResultStore.load`;
* **versioning** — segment headers carry
  :data:`PAYLOAD_FORMAT_VERSION`, kept in lock-step with the store's
  ``STORE_FORMAT_VERSION`` (a unit test asserts the pairing); a
  segment written under another version is set aside as ``<name>.stale``
  rather than misread;
* **write-behind** — ``put`` buffers records in memory and ``flush``
  appends them in one pass (the service flushes on shutdown and the
  store flushes on :meth:`~repro.sim.store.ResultStore.save`), so the
  request path never waits on disk; the flush ends with an ``fsync``
  of both the segment file *and* its directory, so an acknowledged
  flush survives a machine crash, not just a killed process;
* **fork safety** — only the process that opened the warehouse appends
  to it; engine pool workers inherit a read-only view, so parent and
  children can never interleave writes into one segment.

The index (key → segment/offset/CRC) lives in memory; ``get`` seeks,
reads, and **re-verifies the record's CRC** on demand — a byte flipped
on disk after the open scan is detected at read time and served as a
miss (never as wrong bytes), and warm-starting a large warehouse still
costs a key scan, not a full load.

Two maintenance passes keep a long-lived warehouse honest:

* :meth:`SegmentWarehouse.scrub` re-verifies every indexed record's
  CRC against the bytes on disk, drops corrupt ones from the index,
  and — given a repair source (the store's memory LRU) — rewrites
  recoverable values into fresh records;
* :meth:`SegmentWarehouse.compact` rewrites the live records into
  fresh segments with a crash-consistent protocol (write ``.tmp``,
  fsync, ``os.replace``, fsync the directory, then delete the old
  segments), reclaiming dead bytes from corrupt or superseded records.
"""

from __future__ import annotations

import io
import os
import pickle
import struct
import warnings
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Hashable, Iterator, Mapping

__all__ = ["PAYLOAD_FORMAT_VERSION", "SegmentWarehouse", "WarehouseStats"]

WarehouseKey = tuple[Hashable, ...]

#: Format of the stored payloads.  Kept in lock-step with the store's
#: ``STORE_FORMAT_VERSION`` (the two tiers persist the same pickled
#: values); bumped together whenever the payload layout changes
#: incompatibly.
PAYLOAD_FORMAT_VERSION = 2

#: Eight magic bytes opening every segment file.
_MAGIC = b"RPROWHSE"

#: Segment header: magic + little-endian u32 format version.
_HEADER = struct.Struct("<8sI")

#: Record preamble: key length, value length, CRC32 of key+value bytes.
_RECORD = struct.Struct("<III")


@dataclass(frozen=True)
class WarehouseStats:
    """Counters describing a :class:`SegmentWarehouse`.

    Attributes:
        entries: Keys currently indexed.
        disk_hits: ``get`` calls served by reading a segment.
        appends: Records written to segments since open.
        segment_count: Segment files on disk.
        segment_bytes: Total bytes across segment files.
        pending: Buffered write-behind records not yet flushed.
        corrupt_records: Records whose CRC failed at read, scan, or
            scrub time since open (each is dropped from the index, not
            served).
        scrub_repairs: Corrupt records rewritten from a repair source.
        compactions: Completed :meth:`SegmentWarehouse.compact` passes.
    """

    entries: int
    disk_hits: int
    appends: int
    segment_count: int
    segment_bytes: int
    pending: int
    corrupt_records: int = 0
    scrub_repairs: int = 0
    compactions: int = 0


class SegmentWarehouse:
    """The append-only disk tier beneath a ResultStore.

    Args:
        root: Directory holding the segment files (created on demand).
        segment_max_bytes: Soft size bound per segment; the active
            segment rolls over to a new file once it grows past this.
        flush_every: Auto-flush the write-behind buffer once this many
            records are pending (the request path still never waits on
            disk for an individual ``put``).
    """

    def __init__(
        self,
        root: str | Path,
        segment_max_bytes: int = 8 << 20,
        flush_every: int = 32,
    ) -> None:
        if segment_max_bytes < 1:
            raise ValueError(
                f"segment_max_bytes must be >= 1, got {segment_max_bytes}"
            )
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.root = Path(root)
        self.segment_max_bytes = segment_max_bytes
        self.flush_every = flush_every
        #: key -> (segment path, record offset, key_len, val_len, crc);
        #: enough to re-read *and re-verify* the record without trust.
        self._index: dict[WarehouseKey, tuple[Path, int, int, int, int]] = {}
        self._pending: dict[WarehouseKey, Any] = {}
        self._disk_hits = 0
        self._appends = 0
        self._corrupt_records = 0
        self._scrub_repairs = 0
        self._compactions = 0
        self._owner_pid = os.getpid()
        self.root.mkdir(parents=True, exist_ok=True)
        self._segments = sorted(self.root.glob("segment-*.seg"))
        for segment in list(self._segments):
            self._scan(segment)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def __contains__(self, key: WarehouseKey) -> bool:
        return key in self._pending or key in self._index

    def __len__(self) -> int:
        return len(self._index.keys() | self._pending.keys())

    def __iter__(self) -> Iterator[WarehouseKey]:
        return iter(self._index.keys() | self._pending.keys())

    def get(self, key: WarehouseKey, default: Any = None) -> Any:
        """Read one value (from the buffer, or by seeking its segment).

        The record's CRC is re-verified against the bytes actually
        read: a byte flipped on disk *after* the open-time scan is
        detected here and served as a miss (the entry leaves the index
        so the store recomputes), never as silently wrong bytes.
        """
        if key in self._pending:
            self._disk_hits += 1
            return self._pending[key]
        try:
            path, offset, key_len, val_len, crc = self._index[key]
        except KeyError:
            return default
        val_blob = self._read_verified(path, offset, key_len, val_len, crc)
        if val_blob is None:
            self._corrupt_records += 1
            warnings.warn(
                f"warehouse record for {key!r} in {path} failed its CRC "
                "or shrank; dropping entry",
                RuntimeWarning,
                stacklevel=2,
            )
            self._index.pop(key, None)
            return default
        self._disk_hits += 1
        return pickle.loads(val_blob)

    @staticmethod
    def _read_verified(
        path: Path, offset: int, key_len: int, val_len: int, crc: int
    ) -> bytes | None:
        """The record's value bytes iff the on-disk CRC still checks."""
        try:
            with open(path, "rb") as handle:
                handle.seek(offset + _RECORD.size)
                blob = handle.read(key_len + val_len)
        except OSError:
            return None
        if len(blob) != key_len + val_len:
            return None
        if zlib.crc32(blob) != crc:
            return None
        return blob[key_len:]

    def put(self, key: WarehouseKey, value: Any) -> None:
        """Buffer one record for the next :meth:`flush`.

        Append-once: a key already on disk is not rewritten (results
        are deterministic, so the first copy is as good as any).
        """
        if key in self._index or key in self._pending:
            return
        self._pending[key] = value
        if len(self._pending) >= self.flush_every:
            self.flush()

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def flush(self) -> int:
        """Append every buffered record to the active segment, durably.

        Returns the number of records written.  The pass ends with an
        ``fsync`` of the segment file and of the warehouse directory,
        so an acknowledged flush survives a machine crash — not just a
        killed process (the torn-tail scan covers the in-between).

        A no-op in forked children: only the opening process may
        append, so pool workers inheriting this warehouse can never
        interleave writes with the parent (their buffered puts simply
        stay in-memory for their short lives).
        """
        if not self._pending:
            return 0
        if os.getpid() != self._owner_pid:
            return 0
        written = 0
        segment = self._active_segment()
        with open(segment, "ab") as handle:
            handle.seek(0, os.SEEK_END)  # tell() is pinned to EOF
            for key, value in self._pending.items():
                offset = handle.tell()
                key_blob = pickle.dumps(key, protocol=pickle.HIGHEST_PROTOCOL)
                val_blob = pickle.dumps(
                    value, protocol=pickle.HIGHEST_PROTOCOL
                )
                crc = zlib.crc32(key_blob + val_blob)
                handle.write(
                    _RECORD.pack(len(key_blob), len(val_blob), crc)
                )
                handle.write(key_blob)
                handle.write(val_blob)
                self._index[key] = (
                    segment, offset, len(key_blob), len(val_blob), crc
                )
                written += 1
                self._appends += 1
                if handle.tell() >= self.segment_max_bytes:
                    segment = self._roll_over()
                    break
            handle.flush()
            os.fsync(handle.fileno())
        self._fsync_dir()
        self._pending = {
            key: value
            for key, value in self._pending.items()
            if key not in self._index
        }
        if self._pending:
            # A roll-over interrupted the pass; finish into the new
            # segment (recurses at most once per extra segment).
            written += self.flush()
        return written

    def _fsync_dir(self) -> None:
        """Durably record directory-level changes (new or renamed
        segment files); best effort where directories can't be fsynced."""
        try:
            fd = os.open(self.root, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-specific
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform-specific
            pass
        finally:
            os.close(fd)

    def _active_segment(self) -> Path:
        if not self._segments:
            self._segments.append(self.root / "segment-000000.seg")
            self._write_header(self._segments[-1])
        active = self._segments[-1]
        if active.stat().st_size >= self.segment_max_bytes:
            active = self._roll_over()
        return active

    def _roll_over(self) -> Path:
        number = len(self._segments)
        while True:
            candidate = self.root / f"segment-{number:06d}.seg"
            if not candidate.exists():
                break
            number += 1
        self._write_header(candidate)
        self._segments.append(candidate)
        return candidate

    @staticmethod
    def _write_header(path: Path) -> None:
        with open(path, "xb") as handle:
            handle.write(_HEADER.pack(_MAGIC, PAYLOAD_FORMAT_VERSION))

    # ------------------------------------------------------------------
    # Recovery scan
    # ------------------------------------------------------------------

    def _scan(self, segment: Path) -> None:
        """Index one segment, recovering or quarantining as needed."""
        try:
            handle = open(segment, "rb")
        except OSError as exc:
            warnings.warn(
                f"warehouse segment {segment} unreadable ({exc!r}); "
                "skipping it",
                RuntimeWarning,
                stacklevel=3,
            )
            self._segments.remove(segment)
            return
        with handle:
            header = handle.read(_HEADER.size)
            if len(header) < _HEADER.size or header[:8] != _MAGIC:
                self._set_aside(segment, "corrupt", "bad or short header")
                return
            (_, version) = _HEADER.unpack(header)
            if version != PAYLOAD_FORMAT_VERSION:
                self._set_aside(
                    segment, "stale",
                    f"format version {version}, "
                    f"expected {PAYLOAD_FORMAT_VERSION}",
                )
                return
            good_end = self._index_records(segment, handle)
        size = segment.stat().st_size
        if good_end < size:
            # Torn tail from a crash mid-append: cut back to the last
            # good record so appending can resume cleanly.
            warnings.warn(
                f"warehouse segment {segment} has a torn tail "
                f"({size - good_end} byte(s)); truncating to last good "
                "record",
                RuntimeWarning,
                stacklevel=3,
            )
            if os.getpid() == self._owner_pid:
                with open(segment, "r+b") as repair:
                    repair.truncate(good_end)

    def _index_records(self, segment: Path, handle: io.BufferedReader) -> int:
        """Index ``segment``'s records; returns the last good offset.

        A *complete* record whose CRC (or key pickle) fails is skipped
        — a mid-file byte flip costs one record, not the rest of the
        segment — while an *incomplete* tail (short preamble or short
        blobs: the signature of a crash mid-append, or a corrupted
        length field that makes the framing unrecoverable) ends the
        scan so the caller can truncate back to the last good record.
        """
        offset = _HEADER.size
        good_end = _HEADER.size
        while True:
            preamble = handle.read(_RECORD.size)
            if len(preamble) < _RECORD.size:
                break
            key_len, val_len, crc = _RECORD.unpack(preamble)
            key_blob = handle.read(key_len)
            val_blob = handle.read(val_len)
            if len(key_blob) < key_len or len(val_blob) < val_len:
                break
            next_offset = offset + _RECORD.size + key_len + val_len
            if zlib.crc32(key_blob + val_blob) != crc:
                self._corrupt_records += 1
                warnings.warn(
                    f"warehouse segment {segment} has a corrupt record "
                    f"at offset {offset}; skipping it",
                    RuntimeWarning,
                    stacklevel=4,
                )
                offset = next_offset
                good_end = next_offset
                continue
            try:
                key = pickle.loads(key_blob)
            except Exception:
                self._corrupt_records += 1
                offset = next_offset
                good_end = next_offset
                continue
            self._index[key] = (segment, offset, key_len, val_len, crc)
            offset = next_offset
            good_end = next_offset
        return good_end

    def _set_aside(self, segment: Path, suffix: str, why: str) -> None:
        """Rename a bad segment out of the way; best effort."""
        target = segment.with_name(segment.name + f".{suffix}")
        where = ""
        try:
            os.replace(segment, target)
            where = f" (set aside as {target.name})"
        except OSError:
            pass
        warnings.warn(
            f"warehouse segment {segment} ignored: {why}{where}",
            RuntimeWarning,
            stacklevel=4,
        )
        self._segments.remove(segment)

    # ------------------------------------------------------------------
    # Scrubbing and compaction
    # ------------------------------------------------------------------

    def scrub(self, repair: Mapping | None = None) -> dict:
        """Re-verify every indexed record's CRC against the disk.

        Background disk corruption (bit rot, a chaos harness flipping
        bytes) is caught lazily by :meth:`get`; the scrub catches it
        proactively, over *cold* records nobody has read.  A corrupt
        record leaves the index (it will never be served); when
        ``repair`` — typically the store's in-memory LRU — still holds
        the key, the value is rewritten as a fresh record, otherwise
        the entry is lost (and recomputed on next demand).

        Returns a JSON-ready report: ``scanned`` / ``corrupt`` /
        ``repaired`` / ``lost`` counts.
        """
        scanned = 0
        corrupt: list[WarehouseKey] = []
        for key, (path, offset, key_len, val_len, crc) in list(
            self._index.items()
        ):
            scanned += 1
            blob = self._read_verified(path, offset, key_len, val_len, crc)
            if blob is None:
                corrupt.append(key)
        repaired = 0
        for key in corrupt:
            self._corrupt_records += 1
            self._index.pop(key, None)
            if repair is not None and key in repair:
                self.put(key, repair[key])
                repaired += 1
        if repaired and os.getpid() == self._owner_pid:
            self.flush()
        self._scrub_repairs += repaired
        return {
            "scanned": scanned,
            "corrupt": len(corrupt),
            "repaired": repaired,
            "lost": len(corrupt) - repaired,
        }

    def compact(self) -> dict:
        """Rewrite the live records into fresh segments, reclaiming
        dead bytes (corrupt records, torn tails, quarantine leftovers).

        Crash-consistent rename protocol: the new segment is written as
        a ``.tmp`` (invisible to the open-time glob), fsynced, then
        ``os.replace``d to its final name and the directory fsynced —
        only *then* are the old segments deleted.  A crash at any point
        leaves either the old segments intact or old and new
        coexisting (append-once indexing makes the duplicates
        harmless), never a half-written warehouse.

        Returns a JSON-ready report: ``records`` rewritten,
        ``segments_before`` / ``segments_after``, and ``reclaimed``
        bytes.  A no-op (-ish) in forked children, like :meth:`flush`.
        """
        if os.getpid() != self._owner_pid:
            return {"records": 0, "segments_before": len(self._segments),
                    "segments_after": len(self._segments), "reclaimed": 0}
        self.flush()
        old_segments = list(self._segments)
        bytes_before = sum(
            self._safe_size(segment) for segment in old_segments
        )
        # Survivors, re-verified on the way out: a record that fails
        # its CRC here is dropped, not copied.
        live: list[tuple[WarehouseKey, bytes, bytes, int]] = []
        for key, (path, offset, key_len, val_len, crc) in list(
            self._index.items()
        ):
            blob = self._read_verified(path, offset, key_len, val_len, crc)
            if blob is None:
                self._corrupt_records += 1
                self._index.pop(key, None)
                continue
            key_blob = pickle.dumps(key, protocol=pickle.HIGHEST_PROTOCOL)
            live.append((key, key_blob, blob, crc))
        # Number fresh segments past every existing file so nothing
        # collides with a segment a crashed previous compaction left.
        number = self._next_segment_number()
        new_segments: list[Path] = []
        new_index: dict[WarehouseKey, tuple[Path, int, int, int, int]] = {}
        cursor = 0
        while cursor < len(live) or not new_segments:
            final = self.root / f"segment-{number:06d}.seg"
            tmp = final.with_name(final.name + ".tmp")
            number += 1
            with open(tmp, "wb") as handle:
                handle.write(_HEADER.pack(_MAGIC, PAYLOAD_FORMAT_VERSION))
                while cursor < len(live):
                    key, key_blob, val_blob, crc = live[cursor]
                    offset = handle.tell()
                    handle.write(
                        _RECORD.pack(len(key_blob), len(val_blob), crc)
                    )
                    handle.write(key_blob)
                    handle.write(val_blob)
                    new_index[key] = (
                        final, offset, len(key_blob), len(val_blob), crc
                    )
                    cursor += 1
                    if handle.tell() >= self.segment_max_bytes:
                        break
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, final)
            new_segments.append(final)
        self._fsync_dir()
        # The new generation is durable; retire the old one.
        for segment in old_segments:
            try:
                os.unlink(segment)
            except OSError:  # pragma: no cover - already gone
                pass
        self._fsync_dir()
        self._segments = new_segments
        self._index = new_index
        self._compactions += 1
        bytes_after = sum(
            self._safe_size(segment) for segment in new_segments
        )
        return {
            "records": len(live),
            "segments_before": len(old_segments),
            "segments_after": len(new_segments),
            "reclaimed": max(0, bytes_before - bytes_after),
        }

    def _next_segment_number(self) -> int:
        """One past the highest segment number present on disk."""
        highest = -1
        for path in self.root.glob("segment-*.seg"):
            try:
                highest = max(highest, int(path.stem.split("-")[1]))
            except (IndexError, ValueError):  # pragma: no cover
                continue
        return highest + 1

    @staticmethod
    def _safe_size(path: Path) -> int:
        try:
            return path.stat().st_size
        except OSError:
            return 0

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    @property
    def disk_hits(self) -> int:
        """``get`` calls served by the warehouse."""
        return self._disk_hits

    def stats(self) -> WarehouseStats:
        """A snapshot of the warehouse's counters and footprint."""
        segment_bytes = 0
        segment_count = 0
        for segment in self._segments:
            try:
                segment_bytes += segment.stat().st_size
                segment_count += 1
            except OSError:
                continue
        return WarehouseStats(
            entries=len(self),
            disk_hits=self._disk_hits,
            appends=self._appends,
            segment_count=segment_count,
            segment_bytes=segment_bytes,
            pending=len(self._pending),
            corrupt_records=self._corrupt_records,
            scrub_repairs=self._scrub_repairs,
            compactions=self._compactions,
        )
