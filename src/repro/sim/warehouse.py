"""Append-only segment-file warehouse: the disk tier under the store.

The in-memory :class:`~repro.sim.store.ResultStore` LRU dies with the
process; the warehouse is the durable tier beneath it.  Entries the
store writes (or evicts past) land in append-only **segment files**, so
a restarted service warm-starts its cache by reading results back from
disk instead of recomputing them.

Design, in the same spirit as the store's persistence semantics:

* **append-only records** — each ``put`` appends one length-prefixed,
  CRC-guarded record (pickled key + pickled value) to the active
  segment; nothing is ever rewritten in place, so a crash can only
  damage the tail of one file;
* **torn-tail recovery** — on open, each segment is scanned record by
  record; a truncated or CRC-failing tail (the signature of a crash
  mid-append) is cut back to the last good record with a warning, and
  appending resumes from there;
* **quarantine** — a segment whose *header* is unreadable (wrong magic,
  short file) is renamed to ``<name>.corrupt`` so the broken bytes
  survive for inspection, mirroring
  :meth:`~repro.sim.store.ResultStore.load`;
* **versioning** — segment headers carry
  :data:`PAYLOAD_FORMAT_VERSION`, kept in lock-step with the store's
  ``STORE_FORMAT_VERSION`` (a unit test asserts the pairing); a
  segment written under another version is set aside as ``<name>.stale``
  rather than misread;
* **write-behind** — ``put`` buffers records in memory and ``flush``
  appends them in one pass (the service flushes on shutdown and the
  store flushes on :meth:`~repro.sim.store.ResultStore.save`), so the
  request path never waits on disk;
* **fork safety** — only the process that opened the warehouse appends
  to it; engine pool workers inherit a read-only view, so parent and
  children can never interleave writes into one segment.

The index (key → segment/offset) lives in memory; ``get`` seeks and
reads one value on demand, so warm-starting a large warehouse costs a
key scan, not a full load.
"""

from __future__ import annotations

import io
import os
import pickle
import struct
import warnings
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Hashable, Iterator

__all__ = ["PAYLOAD_FORMAT_VERSION", "SegmentWarehouse", "WarehouseStats"]

WarehouseKey = tuple[Hashable, ...]

#: Format of the stored payloads.  Kept in lock-step with the store's
#: ``STORE_FORMAT_VERSION`` (the two tiers persist the same pickled
#: values); bumped together whenever the payload layout changes
#: incompatibly.
PAYLOAD_FORMAT_VERSION = 2

#: Eight magic bytes opening every segment file.
_MAGIC = b"RPROWHSE"

#: Segment header: magic + little-endian u32 format version.
_HEADER = struct.Struct("<8sI")

#: Record preamble: key length, value length, CRC32 of key+value bytes.
_RECORD = struct.Struct("<III")


@dataclass(frozen=True)
class WarehouseStats:
    """Counters describing a :class:`SegmentWarehouse`.

    Attributes:
        entries: Keys currently indexed.
        disk_hits: ``get`` calls served by reading a segment.
        appends: Records written to segments since open.
        segment_count: Segment files on disk.
        segment_bytes: Total bytes across segment files.
        pending: Buffered write-behind records not yet flushed.
    """

    entries: int
    disk_hits: int
    appends: int
    segment_count: int
    segment_bytes: int
    pending: int


class SegmentWarehouse:
    """The append-only disk tier beneath a ResultStore.

    Args:
        root: Directory holding the segment files (created on demand).
        segment_max_bytes: Soft size bound per segment; the active
            segment rolls over to a new file once it grows past this.
        flush_every: Auto-flush the write-behind buffer once this many
            records are pending (the request path still never waits on
            disk for an individual ``put``).
    """

    def __init__(
        self,
        root: str | Path,
        segment_max_bytes: int = 8 << 20,
        flush_every: int = 32,
    ) -> None:
        if segment_max_bytes < 1:
            raise ValueError(
                f"segment_max_bytes must be >= 1, got {segment_max_bytes}"
            )
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.root = Path(root)
        self.segment_max_bytes = segment_max_bytes
        self.flush_every = flush_every
        self._index: dict[WarehouseKey, tuple[Path, int, int]] = {}
        self._pending: dict[WarehouseKey, Any] = {}
        self._disk_hits = 0
        self._appends = 0
        self._owner_pid = os.getpid()
        self.root.mkdir(parents=True, exist_ok=True)
        self._segments = sorted(self.root.glob("segment-*.seg"))
        for segment in list(self._segments):
            self._scan(segment)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def __contains__(self, key: WarehouseKey) -> bool:
        return key in self._pending or key in self._index

    def __len__(self) -> int:
        return len(self._index.keys() | self._pending.keys())

    def __iter__(self) -> Iterator[WarehouseKey]:
        return iter(self._index.keys() | self._pending.keys())

    def get(self, key: WarehouseKey, default: Any = None) -> Any:
        """Read one value (from the buffer, or by seeking its segment)."""
        if key in self._pending:
            self._disk_hits += 1
            return self._pending[key]
        try:
            path, offset, length = self._index[key]
        except KeyError:
            return default
        with open(path, "rb") as handle:
            handle.seek(offset)
            blob = handle.read(length)
        if len(blob) != length:
            # The segment shrank underneath the index (external
            # truncation); treat as a miss rather than misread.
            warnings.warn(
                f"warehouse segment {path} shorter than indexed; "
                f"dropping entry",
                RuntimeWarning,
                stacklevel=2,
            )
            self._index.pop(key, None)
            return default
        self._disk_hits += 1
        return pickle.loads(blob)

    def put(self, key: WarehouseKey, value: Any) -> None:
        """Buffer one record for the next :meth:`flush`.

        Append-once: a key already on disk is not rewritten (results
        are deterministic, so the first copy is as good as any).
        """
        if key in self._index or key in self._pending:
            return
        self._pending[key] = value
        if len(self._pending) >= self.flush_every:
            self.flush()

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def flush(self) -> int:
        """Append every buffered record to the active segment.

        Returns the number of records written.  A no-op in forked
        children: only the opening process may append, so pool workers
        inheriting this warehouse can never interleave writes with the
        parent (their buffered puts simply stay in-memory for their
        short lives).
        """
        if not self._pending:
            return 0
        if os.getpid() != self._owner_pid:
            return 0
        written = 0
        segment = self._active_segment()
        with open(segment, "ab") as handle:
            handle.seek(0, os.SEEK_END)  # tell() is pinned to EOF
            for key, value in self._pending.items():
                offset = handle.tell()
                key_blob = pickle.dumps(key, protocol=pickle.HIGHEST_PROTOCOL)
                val_blob = pickle.dumps(
                    value, protocol=pickle.HIGHEST_PROTOCOL
                )
                crc = zlib.crc32(key_blob + val_blob)
                handle.write(
                    _RECORD.pack(len(key_blob), len(val_blob), crc)
                )
                handle.write(key_blob)
                handle.write(val_blob)
                value_offset = offset + _RECORD.size + len(key_blob)
                self._index[key] = (segment, value_offset, len(val_blob))
                written += 1
                self._appends += 1
                if handle.tell() >= self.segment_max_bytes:
                    handle.flush()
                    segment = self._roll_over()
                    break
        self._pending = {
            key: value
            for key, value in self._pending.items()
            if key not in self._index
        }
        if self._pending:
            # A roll-over interrupted the pass; finish into the new
            # segment (recurses at most once per extra segment).
            written += self.flush()
        return written

    def _active_segment(self) -> Path:
        if not self._segments:
            self._segments.append(self.root / "segment-000000.seg")
            self._write_header(self._segments[-1])
        active = self._segments[-1]
        if active.stat().st_size >= self.segment_max_bytes:
            active = self._roll_over()
        return active

    def _roll_over(self) -> Path:
        number = len(self._segments)
        while True:
            candidate = self.root / f"segment-{number:06d}.seg"
            if not candidate.exists():
                break
            number += 1
        self._write_header(candidate)
        self._segments.append(candidate)
        return candidate

    @staticmethod
    def _write_header(path: Path) -> None:
        with open(path, "xb") as handle:
            handle.write(_HEADER.pack(_MAGIC, PAYLOAD_FORMAT_VERSION))

    # ------------------------------------------------------------------
    # Recovery scan
    # ------------------------------------------------------------------

    def _scan(self, segment: Path) -> None:
        """Index one segment, recovering or quarantining as needed."""
        try:
            handle = open(segment, "rb")
        except OSError as exc:
            warnings.warn(
                f"warehouse segment {segment} unreadable ({exc!r}); "
                "skipping it",
                RuntimeWarning,
                stacklevel=3,
            )
            self._segments.remove(segment)
            return
        with handle:
            header = handle.read(_HEADER.size)
            if len(header) < _HEADER.size or header[:8] != _MAGIC:
                self._set_aside(segment, "corrupt", "bad or short header")
                return
            (_, version) = _HEADER.unpack(header)
            if version != PAYLOAD_FORMAT_VERSION:
                self._set_aside(
                    segment, "stale",
                    f"format version {version}, "
                    f"expected {PAYLOAD_FORMAT_VERSION}",
                )
                return
            good_end = self._index_records(segment, handle)
        size = segment.stat().st_size
        if good_end < size:
            # Torn tail from a crash mid-append: cut back to the last
            # good record so appending can resume cleanly.
            warnings.warn(
                f"warehouse segment {segment} has a torn tail "
                f"({size - good_end} byte(s)); truncating to last good "
                "record",
                RuntimeWarning,
                stacklevel=3,
            )
            if os.getpid() == self._owner_pid:
                with open(segment, "r+b") as repair:
                    repair.truncate(good_end)

    def _index_records(self, segment: Path, handle: io.BufferedReader) -> int:
        """Index ``segment``'s records; returns the last good offset."""
        good_end = _HEADER.size
        while True:
            preamble = handle.read(_RECORD.size)
            if len(preamble) < _RECORD.size:
                break
            key_len, val_len, crc = _RECORD.unpack(preamble)
            key_blob = handle.read(key_len)
            val_blob = handle.read(val_len)
            if len(key_blob) < key_len or len(val_blob) < val_len:
                break
            if zlib.crc32(key_blob + val_blob) != crc:
                break
            try:
                key = pickle.loads(key_blob)
            except Exception:
                break
            value_offset = good_end + _RECORD.size + key_len
            self._index[key] = (segment, value_offset, val_len)
            good_end = value_offset + val_len
        return good_end

    def _set_aside(self, segment: Path, suffix: str, why: str) -> None:
        """Rename a bad segment out of the way; best effort."""
        target = segment.with_name(segment.name + f".{suffix}")
        where = ""
        try:
            os.replace(segment, target)
            where = f" (set aside as {target.name})"
        except OSError:
            pass
        warnings.warn(
            f"warehouse segment {segment} ignored: {why}{where}",
            RuntimeWarning,
            stacklevel=4,
        )
        self._segments.remove(segment)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    @property
    def disk_hits(self) -> int:
        """``get`` calls served by the warehouse."""
        return self._disk_hits

    def stats(self) -> WarehouseStats:
        """A snapshot of the warehouse's counters and footprint."""
        segment_bytes = 0
        segment_count = 0
        for segment in self._segments:
            try:
                segment_bytes += segment.stat().st_size
                segment_count += 1
            except OSError:
                continue
        return WarehouseStats(
            entries=len(self),
            disk_hits=self._disk_hits,
            appends=self._appends,
            segment_count=segment_count,
            segment_bytes=segment_bytes,
            pending=len(self._pending),
        )
