"""The staged simulation engine and the batch/parallel front-end.

:class:`StagedEngine` wires the pure stages of :mod:`repro.sim.stages`
together, memoizing every stage in a unified
:class:`~repro.sim.store.ResultStore` under the stage's declared key.
:func:`repro.sim.system.simulate` is a thin wrapper over
:meth:`StagedEngine.run`; :func:`simulate_many` fans a batch of
:class:`SimJob` configurations out over a ``ProcessPoolExecutor``, and
:meth:`StagedEngine.fault_campaigns` does the same for link-level
fault-injection campaigns (:mod:`repro.faults`).

Scheme dispatch happens once per run through
:func:`repro.encoding.registry.make_transfer_model` — the engine never
branches on what kind of scheme (DESC, baseline, ECC-wrapped) it is
driving.

Parallel determinism: every stage is pure and every job is simulated
independently, so ``simulate_many`` returns bit-for-bit identical
results for any worker count, in the order the jobs were given.

Failure isolation: a job that raises — in a pool worker or in the
serial path — produces a :class:`FailedJob` in its output slot instead
of aborting the batch.  Jobs are retried with exponential backoff
before giving up, a per-job timeout turns a stuck worker into a typed
failure, and a worker killed hard (``BrokenProcessPool``) triggers a
serial recompute of the affected jobs.
"""

from __future__ import annotations

import logging
import time
import traceback
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.encoding.registry import make_transfer_model
from repro.sim import stages
from repro.sim.config import SchemeConfig, SystemConfig
from repro.sim.metrics import RunResult, TransferStats
from repro.sim.stages import CacheDesign, WorkloadSample
from repro.sim.store import RESULT_STORE, ResultStore, StoreKey
from repro.util.profiling import timed
from repro.workloads.profiles import AppProfile, profile

__all__ = [
    "FailedJob",
    "SimJob",
    "StagedEngine",
    "simulate_many",
    "set_default_max_workers",
    "get_default_max_workers",
    "get_pool_fallback_count",
    "fork_available",
]

_log = logging.getLogger("repro.sim.engine")

#: Times a batch degraded from the process pool to in-process execution
#: (fork unavailable, broken pool, refused fork).  Monotonic over the
#: process lifetime; surfaced by the service's ``/metrics`` endpoint.
_pool_fallbacks = 0


def _record_pool_fallback() -> None:
    global _pool_fallbacks
    _pool_fallbacks += 1


def get_pool_fallback_count() -> int:
    """How many batches fell back from the pool to in-process runs."""
    return _pool_fallbacks

#: Worker count ``simulate_many`` uses when none is given; 1 = serial.
_default_max_workers = 1

#: First retry delay; doubles per attempt.  Deliberately tiny — the
#: backoff exists to ride out transient resource pressure, not to wait
#: for an operator.
_RETRY_BASE_DELAY_S = 0.05


@dataclass(frozen=True)
class FailedJob:
    """A job that could not produce a result; holds its slot in a batch.

    Attributes:
        job: The failed configuration (a :class:`SimJob`, a fault
            campaign config, …).
        reason: ``"error"`` (the job raised on every attempt) or
            ``"timeout"`` (the per-job deadline elapsed).
        error: Traceback text of the final attempt (empty for timeouts).
        attempts: How many times the job was tried.
    """

    job: object
    reason: str
    error: str = field(default="", repr=False)
    attempts: int = 1


def fork_available() -> bool:
    """Whether this platform can fork pool workers.

    Without ``fork`` (Windows, some sandboxes) spawn-based workers
    re-import the package cold, which forfeits the store-affinity wins
    the pool exists for — the batch APIs then run serially instead.
    """
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


def set_default_max_workers(count: int) -> None:
    """Set the process-pool width batch APIs default to (1 = serial)."""
    global _default_max_workers
    if count < 1:
        raise ValueError(f"max_workers must be >= 1, got {count}")
    _default_max_workers = count


def get_default_max_workers() -> int:
    """The current default process-pool width."""
    return _default_max_workers


@dataclass(frozen=True)
class SimJob:
    """One (application, scheme, system) configuration to simulate.

    Frozen and picklable, so batches of jobs ship to pool workers
    unchanged.
    """

    app: AppProfile
    scheme: SchemeConfig
    system: SystemConfig

    @classmethod
    def of(
        cls,
        app: AppProfile | str,
        scheme: SchemeConfig,
        system: SystemConfig | None = None,
    ) -> "SimJob":
        """Normalise name/None conveniences into a concrete job."""
        if isinstance(app, str):
            app = profile(app)
        return cls(app=app, scheme=scheme,
                   system=system if system is not None else SystemConfig())


class StagedEngine:
    """Runs the five-stage pipeline, memoizing stages in one store."""

    def __init__(self, store: ResultStore | None = None) -> None:
        self.store = store if store is not None else RESULT_STORE

    # -- individual stages, store-backed -------------------------------

    def workload(
        self, app: AppProfile, num_blocks: int, seed: int
    ) -> WorkloadSample:
        """Stage 1: the application's cached block-value sample."""

        def compute() -> WorkloadSample:
            with timed("stage.workload"):
                return stages.sample_workload(app, num_blocks, seed)

        return self.store.get_or_compute(
            stages.workload_key(app, num_blocks, seed), compute
        )

    def transfer_stats(
        self,
        scheme: SchemeConfig,
        app: AppProfile,
        num_blocks: int,
        seed: int,
        exclude_null: bool = False,
    ) -> TransferStats:
        """Stage 2: a scheme's mean per-block wire activity."""

        def compute() -> TransferStats:
            model = make_transfer_model(scheme)
            sample = self.workload(app, num_blocks, seed)
            with timed("stage.transfer"):
                return model.transfer_stats(sample, exclude_null)

        return self.store.get_or_compute(
            stages.transfer_key(scheme, app, num_blocks, seed, exclude_null),
            compute,
        )

    def cache_design(
        self, system: SystemConfig, data_wires: int, overhead_wires: int
    ) -> CacheDesign:
        """Stage 3: the CACTI-class design scalars for a geometry."""

        def compute() -> CacheDesign:
            with timed("stage.cache_design"):
                return stages.design_cache(system, data_wires, overhead_wires)

        return self.store.get_or_compute(
            stages.cache_design_key(system, data_wires, overhead_wires),
            compute,
        )

    # -- the full pipeline ---------------------------------------------

    def run(
        self,
        app: AppProfile | str,
        scheme: SchemeConfig,
        system: SystemConfig | None = None,
    ) -> RunResult:
        """Run one (application, scheme, system) simulation."""
        if isinstance(app, str):
            app = profile(app)
        if system is None:
            system = SystemConfig()
        return self.store.get_or_compute(
            stages.run_key(app, scheme, system),
            lambda: self._run_uncached(app, scheme, system),
        )

    def _run_uncached(
        self, app: AppProfile, scheme: SchemeConfig, system: SystemConfig
    ) -> RunResult:
        model = make_transfer_model(scheme)
        stats = self.transfer_stats(
            scheme, app, system.sample_blocks, system.seed,
            exclude_null=system.null_directory,
        )
        design = self.cache_design(
            system, stats.data_wires, stats.overhead_wires
        )
        # Null-block directory (see repro.cache.null_directory): all-zero
        # blocks are served at the controller.  The analytic path assumes a
        # directory large enough to capture them (an optimistic bound; the
        # event-driven substrate models finite capacity).
        null_fraction = (
            self.workload(app, system.sample_blocks, system.seed).null_fraction
            if system.null_directory
            else 0.0
        )
        with timed("stage.timing"):
            timing = stages.solve_timing(
                app, system, stats, design,
                scheme_delay=model.scheme_delay_cycles(stats, system),
                null_fraction=null_fraction,
            )
        with timed("stage.energy"):
            l2, processor = stages.account_energy(
                app, system, stats, design, timing,
                controller_write_flips=model.controller_write_flips(system),
                null_fraction=null_fraction,
            )
        return RunResult(
            app=app.name,
            scheme=scheme.label(),
            cycles=timing.cycles,
            hit_latency=timing.hit_latency,
            miss_latency=timing.miss_latency,
            bank_wait=timing.bank_wait,
            transfers=app.l2_accesses * timing.transfers_per_access,
            transfer_stats=stats,
            l2=l2,
            processor=processor,
        )

    def run_many(
        self,
        jobs: Iterable[SimJob],
        max_workers: int | None = None,
        chunksize: int | None = None,
        job_timeout: float | None = None,
        retries: int = 1,
    ) -> list[RunResult | FailedJob]:
        """Simulate a batch of jobs, optionally across processes.

        Args:
            jobs: Configurations to run, in output order.
            max_workers: Process count; ``None`` uses the module default
                (see :func:`set_default_max_workers`), 1 runs serially
                in-process.
            chunksize: Jobs handed to a worker at a time; defaults to a
                round-robin split that keeps workers busy while letting
                each worker's store reuse samples across its jobs.
            job_timeout: Seconds each job may take before its slot is
                declared a :class:`FailedJob` (pool runs only; the
                serial path cannot preempt a job).
            retries: Extra attempts per job, with exponential backoff,
                before the job fails.

        Results are identical for any ``max_workers`` — only wall-clock
        changes.  Worker results are merged back into this engine's
        store, so later serial calls hit.  A job that fails every
        attempt yields a :class:`FailedJob` in its slot; the rest of
        the batch is unaffected.
        """
        jobs = list(jobs)
        return self._batch(
            jobs,
            keys=[stages.run_key(j.app, j.scheme, j.system) for j in jobs],
            worker=_run_job_safe,
            local=lambda job: self.run(job.app, job.scheme, job.system),
            max_workers=max_workers,
            chunksize=chunksize,
            job_timeout=job_timeout,
            retries=retries,
            affinity=lambda job: (
                job.app.name, job.system.sample_blocks, job.system.seed
            ),
        )

    def fault_campaign(self, config: object) -> object:
        """Run one fault-injection campaign, memoized in the store."""
        from repro.faults.campaign import run_campaign

        return self.store.get_or_compute(
            ("fault-campaign", config.key()), lambda: run_campaign(config)
        )

    def fault_campaigns(
        self,
        configs: Iterable[object],
        max_workers: int | None = None,
        job_timeout: float | None = None,
        retries: int = 1,
    ) -> list[object]:
        """Run a batch of fault campaigns with the same machinery as
        :meth:`run_many`: store hits served first, misses fanned out
        over the pool, failures isolated as :class:`FailedJob` slots.

        Campaigns are pure functions of their config (all randomness is
        seeded), so serial and parallel execution return identical
        results.
        """
        configs = list(configs)
        return self._batch(
            configs,
            keys=[("fault-campaign", c.key()) for c in configs],
            worker=_run_campaign_safe,
            local=self.fault_campaign,
            max_workers=max_workers,
            chunksize=None,
            job_timeout=job_timeout,
            retries=retries,
            affinity=None,
        )

    # -- shared batch machinery ----------------------------------------

    def _batch(
        self,
        jobs: Sequence[object],
        keys: Sequence[StoreKey],
        worker: Callable[[tuple[object, int]], tuple],
        local: Callable[[object], object],
        max_workers: int | None,
        chunksize: int | None,
        job_timeout: float | None,
        retries: int,
        affinity: Callable[[object], tuple] | None,
    ) -> list[object]:
        """Store-aware, failure-isolating fan-out shared by the batch APIs.

        ``worker`` is the picklable pool entry point; ``local`` computes
        one job in-process against *this* engine's store — used for the
        serial path and as the recompute route when the pool itself
        fails, so custom stores see their stage entries either way.
        """
        if max_workers is None:
            max_workers = _default_max_workers
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if max_workers > 1 and not fork_available():
            max_workers = 1  # clean serial fallback (see fork_available)
            _record_pool_fallback()
        # Serve whatever is already stored; only ship the misses.
        results: list[object | None] = []
        pending: list[tuple[int, object]] = []
        for index, (job, key) in enumerate(zip(jobs, keys, strict=True)):
            if key in self.store:
                results.append(self.store.get(key))
            else:
                results.append(None)
                pending.append((index, job))
        if not pending:
            return results
        if affinity is not None:
            # Workload affinity: group jobs that share a block-value
            # sample (the most expensive stage) so each worker draws a
            # sample once and amortizes it across its whole chunk,
            # instead of every worker re-sampling every application.
            pending.sort(key=lambda item: affinity(item[1]))
        payloads = [(job, retries) for _, job in pending]

        def run_local(payload: tuple[object, int]) -> tuple:
            job, attempts = payload
            return _attempt(lambda: local(job), attempts)

        if max_workers == 1 or len(pending) <= 1:
            outcomes = [run_local(payload) for payload in payloads]
        else:
            if chunksize is None:
                # Two chunks per worker: near-maximal sample reuse (a
                # sample is re-drawn only where a chunk boundary splits
                # an app's group) with some slack for load balancing.
                chunksize = max(1, -(-len(pending) // (2 * max_workers)))
            outcomes = _pool_outcomes(
                worker, run_local, payloads, max_workers, chunksize, job_timeout
            )
        for (index, job), outcome in zip(pending, outcomes, strict=True):
            if outcome[0] == "ok":
                self.store.put(keys[index], outcome[1])
                results[index] = outcome[1]
            else:
                _, reason, error, attempts = outcome
                _log.warning(
                    "job %r failed (%s) after %d attempt(s)",
                    job, reason, attempts,
                )
                results[index] = FailedJob(
                    job=job, reason=reason, error=error, attempts=attempts
                )
        return results


def _pool_outcomes(
    worker: Callable[[tuple[object, int]], tuple],
    run_local: Callable[[tuple[object, int]], tuple],
    payloads: Sequence[tuple[object, int]],
    max_workers: int,
    chunksize: int,
    job_timeout: float | None,
) -> list[tuple]:
    """Run payloads through a process pool, absorbing pool-level failures.

    ``worker`` never raises (it returns tagged outcomes), so anything
    escaping the pool is infrastructure: a refused fork (sandboxes), a
    worker killed hard enough to break the pool, or a per-job timeout.
    The first two degrade to an in-process recompute of the affected
    payloads; a timeout fails only its own slot.  Note a timed-out
    worker is not killed — it occupies its pool slot until it finishes,
    which bounds how useful very short timeouts can be.
    """
    try:
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            if job_timeout is None:
                return list(pool.map(worker, payloads, chunksize=chunksize))
            outcomes: list[tuple] = []
            futures = [pool.submit(worker, payload) for payload in payloads]
            for future in futures:
                try:
                    outcomes.append(future.result(timeout=job_timeout))
                except FutureTimeoutError:
                    future.cancel()
                    outcomes.append(("err", "timeout", "", 1))
                except BrokenProcessPool:
                    raise
                except Exception:
                    # Unpicklable result or similar transport failure.
                    outcomes.append(("err", "error", traceback.format_exc(), 1))
            return outcomes
    except BrokenProcessPool:
        _log.warning(
            "process pool broke (worker died); recomputing %d job(s) serially",
            len(payloads),
        )
        _record_pool_fallback()
        return [run_local(payload) for payload in payloads]
    except (OSError, PermissionError):
        # Sandboxes can advertise fork yet refuse new processes;
        # results are pool-independent, so just run in-process.
        _record_pool_fallback()
        return [run_local(payload) for payload in payloads]


def _attempt(compute: Callable[[], object], retries: int) -> tuple:
    """Try a computation ``retries + 1`` times with exponential backoff."""
    delay = _RETRY_BASE_DELAY_S
    error = ""
    for attempt in range(retries + 1):
        try:
            return ("ok", compute())
        except Exception:
            error = traceback.format_exc()
            if attempt < retries:
                time.sleep(delay)
                delay *= 2
    return ("err", "error", error, retries + 1)


def _run_job_safe(payload: tuple[SimJob, int]) -> tuple:
    """Pool-worker entry point: run one sim job against the worker's store."""
    job, retries = payload
    return _attempt(
        lambda: StagedEngine().run(job.app, job.scheme, job.system), retries
    )


def _run_campaign_safe(payload: tuple[object, int]) -> tuple:
    """Pool-worker entry point: run one fault campaign."""
    from repro.faults.campaign import run_campaign

    config, retries = payload
    return _attempt(lambda: run_campaign(config), retries)


def simulate_many(
    jobs: Iterable[SimJob | tuple],
    max_workers: int | None = None,
    store: ResultStore | None = None,
    job_timeout: float | None = None,
    retries: int = 1,
) -> list[RunResult | FailedJob]:
    """Simulate many (application, scheme, system) configurations.

    The batch front-end of the staged engine: accepts :class:`SimJob`
    instances or plain ``(app, scheme[, system])`` tuples, fans them out
    over a process pool when ``max_workers`` (or the module default)
    exceeds 1, and returns results in job order — bit-for-bit identical
    to the serial path.

    A job that raises (after ``retries`` backed-off re-attempts) or
    overruns ``job_timeout`` yields a :class:`FailedJob` in its slot
    instead of aborting the batch.

    Example::

        from repro.sim import SimJob, simulate_many, desc_scheme

        jobs = [SimJob.of(app, desc_scheme("zero")) for app in suite]
        results = simulate_many(jobs, max_workers=4)
    """
    normalised = [
        job if isinstance(job, SimJob) else SimJob.of(*job) for job in jobs
    ]
    return StagedEngine(store).run_many(
        normalised,
        max_workers=max_workers,
        job_timeout=job_timeout,
        retries=retries,
    )
