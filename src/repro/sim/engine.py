"""The staged simulation engine and the batch/parallel front-end.

:class:`StagedEngine` wires the pure stages of :mod:`repro.sim.stages`
together, memoizing every stage in a unified
:class:`~repro.sim.store.ResultStore` under the stage's declared key.
:func:`repro.sim.system.simulate` is a thin wrapper over
:meth:`StagedEngine.run`; :func:`simulate_many` fans a batch of
:class:`SimJob` configurations out over a ``ProcessPoolExecutor``.

Scheme dispatch happens once per run through
:func:`repro.encoding.registry.make_transfer_model` — the engine never
branches on what kind of scheme (DESC, baseline, ECC-wrapped) it is
driving.

Parallel determinism: every stage is pure and every job is simulated
independently, so ``simulate_many`` returns bit-for-bit identical
results for any worker count, in the order the jobs were given.
"""

from __future__ import annotations

from collections.abc import Iterable
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.encoding.registry import make_transfer_model
from repro.sim import stages
from repro.sim.config import SchemeConfig, SystemConfig
from repro.sim.metrics import RunResult, TransferStats
from repro.sim.stages import CacheDesign, WorkloadSample
from repro.sim.store import RESULT_STORE, ResultStore
from repro.util.profiling import timed
from repro.workloads.profiles import AppProfile, profile

__all__ = [
    "SimJob",
    "StagedEngine",
    "simulate_many",
    "set_default_max_workers",
    "get_default_max_workers",
    "fork_available",
]

#: Worker count ``simulate_many`` uses when none is given; 1 = serial.
_default_max_workers = 1


def fork_available() -> bool:
    """Whether this platform can fork pool workers.

    Without ``fork`` (Windows, some sandboxes) spawn-based workers
    re-import the package cold, which forfeits the store-affinity wins
    the pool exists for — the batch APIs then run serially instead.
    """
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


def set_default_max_workers(count: int) -> None:
    """Set the process-pool width batch APIs default to (1 = serial)."""
    global _default_max_workers
    if count < 1:
        raise ValueError(f"max_workers must be >= 1, got {count}")
    _default_max_workers = count


def get_default_max_workers() -> int:
    """The current default process-pool width."""
    return _default_max_workers


@dataclass(frozen=True)
class SimJob:
    """One (application, scheme, system) configuration to simulate.

    Frozen and picklable, so batches of jobs ship to pool workers
    unchanged.
    """

    app: AppProfile
    scheme: SchemeConfig
    system: SystemConfig

    @classmethod
    def of(
        cls,
        app: AppProfile | str,
        scheme: SchemeConfig,
        system: SystemConfig | None = None,
    ) -> "SimJob":
        """Normalise name/None conveniences into a concrete job."""
        if isinstance(app, str):
            app = profile(app)
        return cls(app=app, scheme=scheme,
                   system=system if system is not None else SystemConfig())


class StagedEngine:
    """Runs the five-stage pipeline, memoizing stages in one store."""

    def __init__(self, store: ResultStore | None = None) -> None:
        self.store = store if store is not None else RESULT_STORE

    # -- individual stages, store-backed -------------------------------

    def workload(
        self, app: AppProfile, num_blocks: int, seed: int
    ) -> WorkloadSample:
        """Stage 1: the application's cached block-value sample."""

        def compute() -> WorkloadSample:
            with timed("stage.workload"):
                return stages.sample_workload(app, num_blocks, seed)

        return self.store.get_or_compute(
            stages.workload_key(app, num_blocks, seed), compute
        )

    def transfer_stats(
        self,
        scheme: SchemeConfig,
        app: AppProfile,
        num_blocks: int,
        seed: int,
        exclude_null: bool = False,
    ) -> TransferStats:
        """Stage 2: a scheme's mean per-block wire activity."""

        def compute() -> TransferStats:
            model = make_transfer_model(scheme)
            sample = self.workload(app, num_blocks, seed)
            with timed("stage.transfer"):
                return model.transfer_stats(sample, exclude_null)

        return self.store.get_or_compute(
            stages.transfer_key(scheme, app, num_blocks, seed, exclude_null),
            compute,
        )

    def cache_design(
        self, system: SystemConfig, data_wires: int, overhead_wires: int
    ) -> CacheDesign:
        """Stage 3: the CACTI-class design scalars for a geometry."""

        def compute() -> CacheDesign:
            with timed("stage.cache_design"):
                return stages.design_cache(system, data_wires, overhead_wires)

        return self.store.get_or_compute(
            stages.cache_design_key(system, data_wires, overhead_wires),
            compute,
        )

    # -- the full pipeline ---------------------------------------------

    def run(
        self,
        app: AppProfile | str,
        scheme: SchemeConfig,
        system: SystemConfig | None = None,
    ) -> RunResult:
        """Run one (application, scheme, system) simulation."""
        if isinstance(app, str):
            app = profile(app)
        if system is None:
            system = SystemConfig()
        return self.store.get_or_compute(
            stages.run_key(app, scheme, system),
            lambda: self._run_uncached(app, scheme, system),
        )

    def _run_uncached(
        self, app: AppProfile, scheme: SchemeConfig, system: SystemConfig
    ) -> RunResult:
        model = make_transfer_model(scheme)
        stats = self.transfer_stats(
            scheme, app, system.sample_blocks, system.seed,
            exclude_null=system.null_directory,
        )
        design = self.cache_design(
            system, stats.data_wires, stats.overhead_wires
        )
        # Null-block directory (see repro.cache.null_directory): all-zero
        # blocks are served at the controller.  The analytic path assumes a
        # directory large enough to capture them (an optimistic bound; the
        # event-driven substrate models finite capacity).
        null_fraction = (
            self.workload(app, system.sample_blocks, system.seed).null_fraction
            if system.null_directory
            else 0.0
        )
        with timed("stage.timing"):
            timing = stages.solve_timing(
                app, system, stats, design,
                scheme_delay=model.scheme_delay_cycles(stats, system),
                null_fraction=null_fraction,
            )
        with timed("stage.energy"):
            l2, processor = stages.account_energy(
                app, system, stats, design, timing,
                controller_write_flips=model.controller_write_flips(system),
                null_fraction=null_fraction,
            )
        return RunResult(
            app=app.name,
            scheme=scheme.label(),
            cycles=timing.cycles,
            hit_latency=timing.hit_latency,
            miss_latency=timing.miss_latency,
            bank_wait=timing.bank_wait,
            transfers=app.l2_accesses * timing.transfers_per_access,
            transfer_stats=stats,
            l2=l2,
            processor=processor,
        )

    def run_many(
        self,
        jobs: Iterable[SimJob],
        max_workers: int | None = None,
        chunksize: int | None = None,
    ) -> list[RunResult]:
        """Simulate a batch of jobs, optionally across processes.

        Args:
            jobs: Configurations to run, in output order.
            max_workers: Process count; ``None`` uses the module default
                (see :func:`set_default_max_workers`), 1 runs serially
                in-process.
            chunksize: Jobs handed to a worker at a time; defaults to a
                round-robin split that keeps workers busy while letting
                each worker's store reuse samples across its jobs.

        Results are identical for any ``max_workers`` — only wall-clock
        changes.  Worker results are merged back into this engine's
        store, so later serial calls hit.
        """
        jobs = list(jobs)
        if max_workers is None:
            max_workers = _default_max_workers
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if max_workers > 1 and not fork_available():
            max_workers = 1  # clean serial fallback (see fork_available)
        if max_workers == 1 or len(jobs) <= 1:
            return [self.run(job.app, job.scheme, job.system) for job in jobs]
        # Serve whatever is already stored; only ship the misses.
        results: list[RunResult | None] = []
        pending: list[tuple[int, SimJob]] = []
        for index, job in enumerate(jobs):
            key = stages.run_key(job.app, job.scheme, job.system)
            if key in self.store:
                results.append(self.store.get(key))
            else:
                results.append(None)
                pending.append((index, job))
        if pending:
            # Workload affinity: group jobs that share a block-value
            # sample (the most expensive stage) so each worker draws a
            # sample once and amortizes it across its whole chunk,
            # instead of every worker re-sampling every application.
            pending.sort(
                key=lambda item: (
                    item[1].app.name,
                    item[1].system.sample_blocks,
                    item[1].system.seed,
                )
            )
            if chunksize is None:
                # Two chunks per worker: near-maximal sample reuse (a
                # sample is re-drawn only where a chunk boundary splits
                # an app's group) with some slack for load balancing.
                chunksize = max(1, -(-len(pending) // (2 * max_workers)))
            try:
                with ProcessPoolExecutor(max_workers=max_workers) as pool:
                    computed = list(pool.map(
                        _run_job, [job for _, job in pending],
                        chunksize=chunksize,
                    ))
            except (OSError, PermissionError):
                # Sandboxes can advertise fork yet refuse new processes;
                # results are pool-independent, so just run in-process.
                computed = [_run_job(job) for _, job in pending]
            for (index, job), result in zip(pending, computed):
                self.store.put(
                    stages.run_key(job.app, job.scheme, job.system), result
                )
                results[index] = result
        return results  # type: ignore[return-value]  # every slot is filled


def _run_job(job: SimJob) -> RunResult:
    """Pool-worker entry point: run one job against the worker's store."""
    return StagedEngine().run(job.app, job.scheme, job.system)


def simulate_many(
    jobs: Iterable[SimJob | tuple],
    max_workers: int | None = None,
    store: ResultStore | None = None,
) -> list[RunResult]:
    """Simulate many (application, scheme, system) configurations.

    The batch front-end of the staged engine: accepts :class:`SimJob`
    instances or plain ``(app, scheme[, system])`` tuples, fans them out
    over a process pool when ``max_workers`` (or the module default)
    exceeds 1, and returns results in job order — bit-for-bit identical
    to the serial path.

    Example::

        from repro.sim import SimJob, simulate_many, desc_scheme

        jobs = [SimJob.of(app, desc_scheme("zero")) for app in suite]
        results = simulate_many(jobs, max_workers=4)
    """
    normalised = [
        job if isinstance(job, SimJob) else SimJob.of(*job) for job in jobs
    ]
    return StagedEngine(store).run_many(normalised, max_workers=max_workers)
