"""Stock :class:`~repro.encoding.registry.TransferModel` implementations.

Two families cover the paper's whole scheme zoo:

* :class:`DescTransferModel` — the DESC variants (basic, zero-skipped,
  last-value-skipped), optionally wrapped in the chunk-interleaved
  SECDED layout of Figure 9.  Uses the closed-form
  :class:`~repro.core.analysis.DescCostModel`, charges the synthesized
  TX/RX round-trip delay (Figure 17) on every hit, and — under
  last-value skipping — the controller's write-data broadcast
  (Section 5.2).
* :class:`BaselineTransferModel` — every
  :class:`~repro.encoding.base.BusEncoder` baseline (binary, serial,
  bus-invert variants, dynamic zero compression), optionally widened
  per-beat by SECDED parity (the paper's W-S configurations).

Importing this module registers both families with
:func:`repro.encoding.registry.register_transfer_model`; the engine
only ever calls :func:`~repro.encoding.registry.make_transfer_model`.
"""

from __future__ import annotations

import numpy as np

from repro.core.analysis import DescCostModel
from repro.core.chunking import ChunkLayout
from repro.ecc.layout import DescEccLayout, secded_extend_stream
from repro.encoding.registry import make_encoder, register_transfer_model
from repro.energy.synthesis import DescSynthesisModel
from repro.sim.config import SchemeConfig, SystemConfig
from repro.sim.metrics import TransferStats
from repro.sim.stages import WorkloadSample
from repro.util.bitops import bit_matrix_to_chunks

__all__ = [
    "BaselineTransferModel",
    "DescTransferModel",
    "DESC_SCHEME_NAMES",
    "BASELINE_SCHEME_NAMES",
]

DESC_SCHEME_NAMES = ("desc", "desc+zero-skip", "desc+last-value-skip")
BASELINE_SCHEME_NAMES = (
    "binary",
    "serial",
    "zero-compression",
    "bus-invert",
    "bus-invert+zero-skip",
    "bus-invert+encoded-zero-skip",
)

# Effective switching activity of the write-data broadcast that
# last-value tracking requires at the cache controller (Section 5.2).
_LAST_VALUE_BROADCAST_ACTIVITY = 0.16


def _sample_bits(sample: WorkloadSample) -> np.ndarray:
    """The sample's unpacked bit matrix, whichever field carries it."""
    if sample.bits is not None:
        return sample.bits
    return sample.packed.bits


def _drop_null_rows(blocks: np.ndarray) -> np.ndarray:
    """Remove all-zero rows (blocks served by the null directory)."""
    keep = blocks.any(axis=1)
    filtered = blocks[keep]
    if len(filtered) == 0:
        # Degenerate stream of pure null blocks: keep one so the
        # downstream statistics stay well-defined.
        return blocks[:1]
    return filtered


class DescTransferModel:
    """System-level behaviour of the DESC variants."""

    def __init__(self, scheme: SchemeConfig) -> None:
        self.scheme = scheme

    def transfer_stats(
        self, sample: WorkloadSample, exclude_null: bool = False
    ) -> TransferStats:
        """Closed-form DESC costs, with the Figure 9 layout under ECC."""
        scheme = self.scheme
        if scheme.ecc_segment_bits:
            bits = _sample_bits(sample)
            if exclude_null:
                bits = _drop_null_rows(bits)
            ecc = DescEccLayout(
                block_bits=bits.shape[1],
                segment_bits=scheme.ecc_segment_bits,
                chunk_bits=scheme.chunk_bits,
            )
            chunks = ecc.encode_stream(bits)
            layout = ChunkLayout(
                block_bits=ecc.codeword_bits_total,
                chunk_bits=scheme.chunk_bits,
                num_wires=ecc.num_chunks,
            )
        elif scheme.chunk_bits == 4 and scheme.data_wires in (128, 64, 32):
            chunks = sample.chunks
            if exclude_null:
                chunks = _drop_null_rows(chunks)
            layout = ChunkLayout(
                block_bits=512, chunk_bits=4, num_wires=scheme.data_wires
            )
        else:
            bits = _sample_bits(sample)
            if exclude_null:
                bits = _drop_null_rows(bits)
            chunks = bit_matrix_to_chunks(bits, scheme.chunk_bits)
            layout = ChunkLayout(
                block_bits=bits.shape[1],
                chunk_bits=scheme.chunk_bits,
                num_wires=scheme.data_wires,
            )
        model = DescCostModel(layout, skip_policy=scheme.skip_policy)
        stream = model.stream_cost(chunks)
        n = stream.num_blocks
        return TransferStats(
            data_flips=float(stream.data_flips.sum()) / n,
            overhead_flips=float(stream.overhead_flips.sum()) / n,
            sync_flips=float(stream.sync_flips.sum()) / n,
            transfer_cycles=float(stream.cycles.sum()) / n,
            latency_cycles=float(stream.delivery_latency.sum()) / n,
            data_wires=layout.num_wires,
            overhead_wires=2,
        )

    def scheme_delay_cycles(
        self, stats: TransferStats, system: SystemConfig
    ) -> float:
        """Synthesized TX/RX logic delay on the round trip (Figure 17)."""
        synthesis = DescSynthesisModel(
            num_chunks=stats.data_wires,
            chunk_bits=self.scheme.chunk_bits,
            clock_hz=system.clock_hz,
        )
        return synthesis.round_trip_delay_cycles()

    def controller_write_flips(self, system: SystemConfig) -> float:
        """Write-data broadcast switching under last-value skipping.

        Last-value skipping makes the cache controller track the last
        value exchanged with every mat and broadcast write data across
        the subbank H-trees (Section 5.2); other skip policies charge
        nothing.
        """
        if self.scheme.skip_policy != "last-value":
            return 0.0
        return _LAST_VALUE_BROADCAST_ACTIVITY * system.block_bytes * 8


class BaselineTransferModel:
    """System-level behaviour of the binary-style baseline encoders."""

    def __init__(self, scheme: SchemeConfig) -> None:
        self.scheme = scheme

    def transfer_stats(
        self, sample: WorkloadSample, exclude_null: bool = False
    ) -> TransferStats:
        """Stream the sample through the configured ``BusEncoder``."""
        scheme = self.scheme
        if not exclude_null and not scheme.ecc_segment_bits and (
            sample.packed is not None
        ):
            # Fast path: the unmodified full sample streams as its
            # pre-packed word form — the encoder kernels then skip
            # re-validating and re-packing the bit matrix per scheme,
            # and the unpacked matrix never materializes.
            encoder = make_encoder(
                scheme.name,
                block_bits=sample.packed.block_bits,
                data_wires=scheme.data_wires,
                segment_bits=scheme.segment_bits,
            )
            return self._stats_from_stream(
                encoder, encoder.stream_cost(sample.packed)
            )
        bits = _sample_bits(sample)
        if exclude_null:
            bits = _drop_null_rows(bits)
        if scheme.ecc_segment_bits:
            if scheme.ecc_segment_bits != scheme.data_wires:
                raise ValueError(
                    "binary-style ECC configurations require the Hamming "
                    "segment to equal the bus width (the paper's W-S configs "
                    f"have W == S); got {scheme.data_wires}-{scheme.ecc_segment_bits}"
                )
            beats = bits.shape[1] // scheme.data_wires  # before extension: 512/W
            bits = secded_extend_stream(bits, scheme.ecc_segment_bits)
            # Each beat now carries one segment codeword: W data + p parity.
            widened_bus = bits.shape[1] // beats
            encoder = make_encoder(
                scheme.name,
                block_bits=bits.shape[1],
                data_wires=widened_bus,
                segment_bits=scheme.segment_bits,
            )
        else:
            encoder = make_encoder(
                scheme.name,
                block_bits=bits.shape[1],
                data_wires=scheme.data_wires,
                segment_bits=scheme.segment_bits,
            )
        return self._stats_from_stream(encoder, encoder.stream_cost(bits))

    @staticmethod
    def _stats_from_stream(encoder, stream) -> TransferStats:
        n = stream.num_blocks
        return TransferStats(
            data_flips=float(stream.data_flips.sum()) / n,
            overhead_flips=float(stream.overhead_flips.sum()) / n,
            sync_flips=0.0,
            transfer_cycles=float(stream.cycles.sum()) / n,
            latency_cycles=float(stream.cycles.sum()) / n,
            data_wires=encoder.data_wires,
            overhead_wires=encoder.overhead_wires,
        )

    def scheme_delay_cycles(
        self, stats: TransferStats, system: SystemConfig
    ) -> float:
        """One encode/decode pipeline stage for schemes that add
        control wires; raw binary adds nothing."""
        return 1 if stats.overhead_wires else 0

    def controller_write_flips(self, system: SystemConfig) -> float:
        """Baselines charge no controller-side switching."""
        return 0.0


register_transfer_model(DESC_SCHEME_NAMES, DescTransferModel)
register_transfer_model(BASELINE_SCHEME_NAMES, BaselineTransferModel)
