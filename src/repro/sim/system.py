"""The system simulator: workload + scheme + architecture → RunResult.

This is the pipeline every figure harness drives (DESIGN.md §4):

1. generate (and cache) the application's block-value sample;
2. run the configured transfer scheme's cost model over it —
   the closed-form DESC model or a baseline encoder, optionally wrapped
   in SECDED ECC — yielding mean flips and transfer cycles per block;
3. build the CACTI-class cache model for the configured geometry and
   devices, and assemble the end-to-end hit/miss latencies;
4. solve the execution-time fixed point: bank and DRAM queueing depend
   on the access rate, which depends on execution time;
5. account L2 energy (leakage × time, H-tree flips, array accesses)
   and wrap it in the McPAT-class processor breakdown.

All block-sample and transfer-cost computations are memoized, so
sweeping schemes or cache geometries re-uses the expensive parts.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.core.analysis import DescCostModel
from repro.core.chunking import ChunkLayout
from repro.cpu.dram import DramModel
from repro.cpu.inorder import SmtCoreModel
from repro.cpu.ooo import OooCoreModel
from repro.cpu.queueing import md1_wait
from repro.ecc.layout import DescEccLayout, secded_extend_stream
from repro.encoding.registry import make_encoder
from repro.energy.cacti import CacheEnergyModel, CacheGeometry
from repro.interconnect.wires import WireModel
from repro.energy.mcpat import ProcessorPowerModel
from repro.energy.synthesis import DescSynthesisModel
from repro.sim.config import SchemeConfig, SystemConfig
from repro.sim.metrics import L2Energy, RunResult, TransferStats
from repro.workloads.generator import block_stream
from repro.workloads.profiles import AppProfile, profile

__all__ = ["simulate", "transfer_stats", "clear_caches"]

# Mean extra L1 accesses per instruction (I-cache + D-cache), used for
# the McPAT L1 term.
_L1_ACCESSES_PER_INSTRUCTION = 1.3
# S-NUCA-1 bank access latencies range over 3..13 core cycles
# (Section 5.5); statically routed ports replace the shared H-tree.
_NUCA_MEAN_BANK_LATENCY = 8.0
_FIXED_POINT_ITERATIONS = 30
# Effective switching activity of the write-data broadcast that
# last-value tracking requires at the cache controller (Section 5.2).
_LAST_VALUE_BROADCAST_ACTIVITY = 0.16
# S-NUCA-1 routes each bank's 128-bit port statically instead of over
# the recursive H-tree; the average electrical route is shorter.
_NUCA_ROUTE_SCALE = 0.40


@lru_cache(maxsize=256)
def _chunk_blocks(app: AppProfile, num_blocks: int, seed: int) -> np.ndarray:
    """Cached 4-bit chunk sample for an application profile.

    Keyed by the (frozen, hashable) profile itself, so custom profiles
    — not just the registered Table 2 applications — get their own
    value streams.
    """
    return block_stream(app, num_blocks, seed)


@lru_cache(maxsize=256)
def _bit_blocks(app: AppProfile, num_blocks: int, seed: int) -> np.ndarray:
    """Cached bit-matrix view of the same sample."""
    chunks = _chunk_blocks(app, num_blocks, seed)
    shifts = np.arange(4, dtype=np.int64)
    bits = ((chunks[:, :, None] >> shifts) & 1).astype(np.uint8)
    return bits.reshape(chunks.shape[0], -1)


def clear_caches() -> None:
    """Drop all memoized workload samples and transfer statistics."""
    _chunk_blocks.cache_clear()
    _bit_blocks.cache_clear()
    _transfer_stats_cached.cache_clear()


def _rechunk(bits: np.ndarray, chunk_bits: int) -> np.ndarray:
    """Bit matrix → chunk matrix at an arbitrary chunk width."""
    n, width = bits.shape
    shifts = np.arange(chunk_bits, dtype=np.int64)
    grouped = bits.astype(np.int64).reshape(n, width // chunk_bits, chunk_bits)
    return grouped @ (1 << shifts)


@lru_cache(maxsize=256)
def _null_fraction(app: AppProfile, num_blocks: int, seed: int) -> float:
    """Fraction of transferred blocks that are entirely zero."""
    chunks = _chunk_blocks(app, num_blocks, seed)
    return float((chunks == 0).all(axis=1).mean())


@lru_cache(maxsize=1024)
def _transfer_stats_cached(
    scheme: SchemeConfig,
    app: AppProfile,
    num_blocks: int,
    seed: int,
    exclude_null: bool = False,
) -> TransferStats:
    if scheme.is_desc:
        return _desc_stats(scheme, app, num_blocks, seed, exclude_null)
    return _baseline_stats(scheme, app, num_blocks, seed, exclude_null)


def transfer_stats(
    scheme: SchemeConfig,
    app: AppProfile | str,
    num_blocks: int,
    seed: int,
    exclude_null: bool = False,
) -> TransferStats:
    """Mean per-block wire activity of a scheme on an application.

    With ``exclude_null`` the statistics cover only non-null blocks —
    the traffic remaining when a null-block directory intercepts the
    all-zero transfers.
    """
    if isinstance(app, str):
        app = profile(app)
    return _transfer_stats_cached(scheme, app, num_blocks, seed, exclude_null)


def _drop_null_rows(blocks: np.ndarray) -> np.ndarray:
    """Remove all-zero rows (blocks served by the null directory)."""
    keep = blocks.any(axis=1)
    filtered = blocks[keep]
    if len(filtered) == 0:
        # Degenerate stream of pure null blocks: keep one so the
        # downstream statistics stay well-defined.
        return blocks[:1]
    return filtered


def _desc_stats(
    scheme: SchemeConfig,
    app: AppProfile,
    num_blocks: int,
    seed: int,
    exclude_null: bool = False,
) -> TransferStats:
    if scheme.ecc_segment_bits:
        bits = _bit_blocks(app, num_blocks, seed)
        if exclude_null:
            bits = _drop_null_rows(bits)
        ecc = DescEccLayout(
            block_bits=bits.shape[1],
            segment_bits=scheme.ecc_segment_bits,
            chunk_bits=scheme.chunk_bits,
        )
        chunks = ecc.encode_stream(bits)
        layout = ChunkLayout(
            block_bits=ecc.codeword_bits_total,
            chunk_bits=scheme.chunk_bits,
            num_wires=ecc.num_chunks,
        )
    elif scheme.chunk_bits == 4 and scheme.data_wires in (128, 64, 32):
        chunks = _chunk_blocks(app, num_blocks, seed)
        if exclude_null:
            chunks = _drop_null_rows(chunks)
        layout = ChunkLayout(
            block_bits=512, chunk_bits=4, num_wires=scheme.data_wires
        )
    else:
        bits = _bit_blocks(app, num_blocks, seed)
        if exclude_null:
            bits = _drop_null_rows(bits)
        chunks = _rechunk(bits, scheme.chunk_bits)
        layout = ChunkLayout(
            block_bits=bits.shape[1],
            chunk_bits=scheme.chunk_bits,
            num_wires=scheme.data_wires,
        )
    model = DescCostModel(layout, skip_policy=scheme.skip_policy)
    stream = model.stream_cost(chunks)
    n = stream.num_blocks
    return TransferStats(
        data_flips=float(stream.data_flips.sum()) / n,
        overhead_flips=float(stream.overhead_flips.sum()) / n,
        sync_flips=float(stream.sync_flips.sum()) / n,
        transfer_cycles=float(stream.cycles.sum()) / n,
        latency_cycles=float(stream.delivery_latency.sum()) / n,
        data_wires=layout.num_wires,
        overhead_wires=2,
    )


def _baseline_stats(
    scheme: SchemeConfig,
    app: AppProfile,
    num_blocks: int,
    seed: int,
    exclude_null: bool = False,
) -> TransferStats:
    bits = _bit_blocks(app, num_blocks, seed)
    if exclude_null:
        bits = _drop_null_rows(bits)
    if scheme.ecc_segment_bits:
        if scheme.ecc_segment_bits != scheme.data_wires:
            raise ValueError(
                "binary-style ECC configurations require the Hamming "
                "segment to equal the bus width (the paper's W-S configs "
                f"have W == S); got {scheme.data_wires}-{scheme.ecc_segment_bits}"
            )
        beats = bits.shape[1] // scheme.data_wires  # before extension: 512/W
        bits = secded_extend_stream(bits, scheme.ecc_segment_bits)
        # Each beat now carries one segment codeword: W data + p parity.
        widened_bus = bits.shape[1] // beats
        encoder = make_encoder(
            scheme.name,
            block_bits=bits.shape[1],
            data_wires=widened_bus,
            segment_bits=scheme.segment_bits,
        )
    else:
        encoder = make_encoder(
            scheme.name,
            block_bits=bits.shape[1],
            data_wires=scheme.data_wires,
            segment_bits=scheme.segment_bits,
        )
    stream = encoder.stream_cost(bits)
    n = stream.num_blocks
    return TransferStats(
        data_flips=float(stream.data_flips.sum()) / n,
        overhead_flips=float(stream.overhead_flips.sum()) / n,
        sync_flips=0.0,
        transfer_cycles=float(stream.cycles.sum()) / n,
        latency_cycles=float(stream.cycles.sum()) / n,
        data_wires=encoder.data_wires,
        overhead_wires=encoder.overhead_wires,
    )


def _cache_model(
    scheme: SchemeConfig, system: SystemConfig, stats: TransferStats
) -> CacheEnergyModel:
    geometry = CacheGeometry(
        size_bytes=system.l2_size_bytes,
        block_bytes=system.block_bytes,
        associativity=system.l2_associativity,
        num_banks=128 if system.nuca else system.num_banks,
        subbanks_per_bank=system.subbanks_per_bank,
        mats_per_subbank=system.mats_per_subbank,
        data_wires=stats.data_wires,
        overhead_wires=stats.overhead_wires,
    )
    return CacheEnergyModel(
        geometry=geometry,
        cell_device=system.cell_device,
        periph_device=system.periph_device,
        clock_hz=system.clock_hz,
        wire_model=WireModel.low_swing() if system.low_swing else None,
        route_scale=_NUCA_ROUTE_SCALE if system.nuca else 1.0,
    )


def simulate(
    app: AppProfile | str, scheme: SchemeConfig, system: SystemConfig | None = None
) -> RunResult:
    """Run one (application, scheme, system) simulation."""
    if isinstance(app, str):
        app = profile(app)
    if system is None:
        system = SystemConfig()
    stats = transfer_stats(
        scheme, app, system.sample_blocks, system.seed,
        exclude_null=system.null_directory,
    )
    cache = _cache_model(scheme, system, stats)
    # Null-block directory (see repro.cache.null_directory): all-zero
    # blocks are served at the controller.  The analytic path assumes a
    # directory large enough to capture them (an optimistic bound; the
    # event-driven substrate models finite capacity).
    null_fraction = (
        _null_fraction(app, system.sample_blocks, system.seed)
        if system.null_directory
        else 0.0
    )

    # --- latency assembly -------------------------------------------------
    if system.nuca:
        access_path = system.controller_overhead_cycles + _NUCA_MEAN_BANK_LATENCY
        access_path += cache.array_delay_cycles
    else:
        access_path = system.controller_overhead_cycles + cache.base_hit_cycles
    if scheme.is_desc:
        # Synthesized TX/RX logic delay on the round trip (Figure 17).
        synthesis = DescSynthesisModel(
            num_chunks=stats.data_wires,
            chunk_bits=scheme.chunk_bits,
            clock_hz=system.clock_hz,
        )
        scheme_delay = synthesis.round_trip_delay_cycles()
    elif stats.overhead_wires:
        scheme_delay = 1  # encode/decode pipeline stage of the baselines
    else:
        scheme_delay = 0
    # Delivery latency: the SMT multicore sees the average-value
    # latency (critical chunks stream in; Section 5.3), while the
    # latency-sensitive OoO core waits for the full window — DESC
    # delivers chunks in value order, so there is no critical-word-first
    # forwarding for a blocked dependent load (Section 5.8).
    if system.core == "ooo":
        delivery = stats.transfer_cycles
    else:
        delivery = stats.latency_cycles
    hit_no_wait = access_path + scheme_delay + delivery
    if null_fraction:
        # Directory hits skip the array and the transfer entirely.
        null_hit_latency = system.controller_overhead_cycles + 1.0
        hit_no_wait = (
            (1.0 - null_fraction) * hit_no_wait
            + null_fraction * null_hit_latency
        )

    dram = DramModel()
    # The miss penalty is independent of the data scheme (Section 5.3):
    # the address travels in binary and the line returns from DRAM.
    miss_base = (
        system.controller_overhead_cycles + cache.htree_delay_cycles
        + dram.base_latency_cycles + dram.service_cycles
    )

    smt = SmtCoreModel()
    ooo = OooCoreModel()
    core = smt if system.core == "smt" else ooo

    # Each L2 access occupies a bank for the array access plus the
    # transfer window; misses additionally move the fill (and dirty
    # victims) over the H-tree.
    bank_service = cache.array_delay_cycles + stats.transfer_cycles
    transfers_per_access = (1.0 - null_fraction) * (
        1.0 + app.l2_miss_rate * (1.0 + app.write_fraction)
    )
    num_banks = 128 if system.nuca else system.num_banks

    # --- execution-time fixed point ---------------------------------------
    cycles = core.execution_cycles(app, hit_no_wait, miss_base)
    bank_wait = 0.0
    miss_latency = miss_base
    for _ in range(_FIXED_POINT_ITERATIONS):
        rate = app.l2_accesses * transfers_per_access / cycles
        bank_wait = md1_wait(rate, bank_service, num_banks)
        miss_rate_per_cycle = app.l2_accesses * app.l2_miss_rate / cycles
        miss_latency = miss_base + md1_wait(
            miss_rate_per_cycle, dram.service_cycles, dram.channels
        )
        hit_latency = hit_no_wait + bank_wait
        new_cycles = core.execution_cycles(app, hit_latency, miss_latency + bank_wait)
        cycles = 0.5 * (cycles + new_cycles)

    hit_latency = hit_no_wait + bank_wait
    seconds = cycles / system.clock_hz

    # --- energy accounting -------------------------------------------------
    transfers = app.l2_accesses * transfers_per_access
    htree_dynamic = (
        transfers * stats.total_flips * cache.energy_per_flip_j
        + app.l2_accesses * cache.address_energy_j
    )
    if null_fraction:
        # Null hits still flag the requester: one control-wire toggle.
        htree_dynamic += (
            app.l2_accesses * null_fraction * cache.energy_per_flip_j
        )
    if scheme.is_desc and scheme.skip_policy == "last-value":
        # Last-value skipping makes the cache controller track the last
        # value exchanged with every mat and broadcast write data across
        # the subbank H-trees (Section 5.2) — extra switching on top of
        # the strobe traffic, charged per written block.
        broadcast_flips = (
            _LAST_VALUE_BROADCAST_ACTIVITY * system.block_bytes * 8
        )
        htree_dynamic += (
            app.l2_accesses * app.write_fraction
            * broadcast_flips * cache.energy_per_flip_j
        )
    array_dynamic = transfers * cache.array_access_energy_j
    l2 = L2Energy(
        static_j=cache.leakage_w * seconds,
        htree_dynamic_j=htree_dynamic,
        array_dynamic_j=array_dynamic,
    )

    power_model = ProcessorPowerModel(
        num_cores=8 if system.core == "smt" else 1, clock_hz=system.clock_hz
    )
    processor = power_model.breakdown(
        instructions=app.instructions,
        cycles=cycles,
        l1_accesses=app.instructions * _L1_ACCESSES_PER_INSTRUCTION,
        memory_accesses=app.l2_accesses * app.l2_miss_rate,
        l2_energy_j=l2.total_j,
    )
    return RunResult(
        app=app.name,
        scheme=scheme.label(),
        cycles=cycles,
        hit_latency=hit_latency,
        miss_latency=miss_latency,
        bank_wait=bank_wait,
        transfers=transfers,
        transfer_stats=stats,
        l2=l2,
        processor=processor,
    )
