"""The system simulator: workload + scheme + architecture → RunResult.

This module is the stable front door of the pipeline every figure
harness drives (DESIGN.md §4); the machinery lives one layer down:

* :mod:`repro.sim.stages` — the five pure pipeline stages (workload
  sampling, transfer-cost modeling, cache-geometry/energy construction,
  the execution-time fixed point, energy accounting);
* :mod:`repro.sim.transfer` + :mod:`repro.encoding.registry` — the
  :class:`~repro.encoding.registry.TransferModel` dispatch that gives
  DESC, every baseline encoder, and the ECC-wrapped variants one
  interface;
* :mod:`repro.sim.engine` — the :class:`~repro.sim.engine.StagedEngine`
  orchestrator and the ``simulate_many`` batch/parallel front-end;
* :mod:`repro.sim.store` — the unified result store that memoizes each
  stage, so sweeping schemes or cache geometries re-uses the expensive
  parts.

:func:`simulate` and :func:`transfer_stats` here are thin wrappers over
a process-wide :class:`~repro.sim.engine.StagedEngine`.
"""

from __future__ import annotations

from repro.sim.config import SchemeConfig, SystemConfig
from repro.sim.engine import StagedEngine
from repro.sim.metrics import RunResult, TransferStats
from repro.sim.store import StoreStats
from repro.workloads.profiles import AppProfile, profile

__all__ = ["simulate", "transfer_stats", "clear_caches", "cache_stats"]

#: The process-wide engine the convenience wrappers drive.
ENGINE = StagedEngine()


def simulate(
    app: AppProfile | str, scheme: SchemeConfig, system: SystemConfig | None = None
) -> RunResult:
    """Run one (application, scheme, system) simulation."""
    return ENGINE.run(app, scheme, system)


def transfer_stats(
    scheme: SchemeConfig,
    app: AppProfile | str,
    num_blocks: int,
    seed: int,
    exclude_null: bool = False,
) -> TransferStats:
    """Mean per-block wire activity of a scheme on an application.

    With ``exclude_null`` the statistics cover only non-null blocks —
    the traffic remaining when a null-block directory intercepts the
    all-zero transfers.
    """
    if isinstance(app, str):
        app = profile(app)
    return ENGINE.transfer_stats(scheme, app, num_blocks, seed, exclude_null)


def clear_caches() -> None:
    """Drop every memoized stage result (and the run cache) from the
    unified result store."""
    ENGINE.store.clear()


def cache_stats() -> StoreStats:
    """Hit/miss/size statistics of the unified result store."""
    return ENGINE.store.stats()
