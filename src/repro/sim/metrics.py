"""Result containers for system simulations.

:class:`RunResult` is what one (application, scheme, system) simulation
produces; every figure harness consumes these.  All energies are in
joules and all times in core clock cycles, but the figures only ever
report ratios, per the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.mcpat import ProcessorEnergyBreakdown

__all__ = ["TransferStats", "L2Energy", "RunResult"]


@dataclass(frozen=True)
class TransferStats:
    """Mean per-block wire activity of the configured scheme.

    Attributes:
        data_flips: Data-wire transitions per block transfer.
        overhead_flips: Overhead-wire transitions per block transfer.
        sync_flips: Synchronization-strobe transitions (DESC only).
        transfer_cycles: Bus occupancy per block transfer, cycles (for
            DESC, the full time window).
        latency_cycles: Critical-path delivery latency per block (for
            DESC, the paper's average-value latency; equals
            ``transfer_cycles`` for the fixed-beat schemes).
        data_wires / overhead_wires: Wire counts of the scheme.
    """

    data_flips: float
    overhead_flips: float
    sync_flips: float
    transfer_cycles: float
    latency_cycles: float
    data_wires: int
    overhead_wires: int

    @property
    def total_flips(self) -> float:
        """All wire transitions per block transfer."""
        return self.data_flips + self.overhead_flips + self.sync_flips


@dataclass(frozen=True)
class L2Energy:
    """L2 energy split (Figures 2 and 18).

    Attributes:
        static_j: Leakage over the run.
        htree_dynamic_j: Data + overhead + address wire switching.
        array_dynamic_j: SRAM array and decoder switching.
    """

    static_j: float
    htree_dynamic_j: float
    array_dynamic_j: float

    @property
    def dynamic_j(self) -> float:
        """All dynamic L2 energy."""
        return self.htree_dynamic_j + self.array_dynamic_j

    @property
    def total_j(self) -> float:
        """Total L2 energy."""
        return self.static_j + self.dynamic_j


@dataclass(frozen=True)
class RunResult:
    """Everything one simulation reports.

    Attributes:
        app: Application name.
        scheme: Scheme label.
        cycles: Execution time in core cycles.
        hit_latency: Mean end-to-end L2 hit latency, cycles.
        miss_latency: Mean L2 miss latency, cycles.
        bank_wait: Mean bank queueing delay, cycles.
        transfers: Block transfers on the H-tree over the run.
        transfer_stats: Mean per-block wire activity.
        l2: L2 energy breakdown.
        processor: Whole-processor energy breakdown.
    """

    app: str
    scheme: str
    cycles: float
    hit_latency: float
    miss_latency: float
    bank_wait: float
    transfers: float
    transfer_stats: TransferStats
    l2: L2Energy
    processor: ProcessorEnergyBreakdown

    @property
    def l2_energy_j(self) -> float:
        """Total L2 energy of the run."""
        return self.l2.total_j

    @property
    def processor_energy_j(self) -> float:
        """Total processor energy of the run."""
        return self.processor.total_j
