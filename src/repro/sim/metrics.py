"""Result containers for system simulations.

:class:`RunResult` is what one (application, scheme, system) simulation
produces; every figure harness consumes these.  All energies are in
joules and all times in core clock cycles, but the figures only ever
report ratios, per the paper.

:class:`FaultStats` is the robustness counterpart: what one link-level
fault-injection campaign (:func:`repro.faults.run_campaign`) reports.
It lives here, beside the other result containers, so the staged engine
and the result store can treat fault campaigns like any other batch job.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.mcpat import ProcessorEnergyBreakdown

__all__ = ["TransferStats", "L2Energy", "RunResult", "FaultStats"]


@dataclass(frozen=True)
class TransferStats:
    """Mean per-block wire activity of the configured scheme.

    Attributes:
        data_flips: Data-wire transitions per block transfer.
        overhead_flips: Overhead-wire transitions per block transfer.
        sync_flips: Synchronization-strobe transitions (DESC only).
        transfer_cycles: Bus occupancy per block transfer, cycles (for
            DESC, the full time window).
        latency_cycles: Critical-path delivery latency per block (for
            DESC, the paper's average-value latency; equals
            ``transfer_cycles`` for the fixed-beat schemes).
        data_wires / overhead_wires: Wire counts of the scheme.
    """

    data_flips: float
    overhead_flips: float
    sync_flips: float
    transfer_cycles: float
    latency_cycles: float
    data_wires: int
    overhead_wires: int

    @property
    def total_flips(self) -> float:
        """All wire transitions per block transfer."""
        return self.data_flips + self.overhead_flips + self.sync_flips


@dataclass(frozen=True)
class FaultStats:
    """Outcome of one link-level fault-injection campaign.

    Block outcomes partition ``blocks_sent``:

    * **clean** — delivered and bit-exact;
    * **corrected** — delivered with errors the ECC repaired;
    * **detected** — the receiver or the ECC *knows* the block is bad
      (watchdog sentinels, uncorrectable syndrome) — a retry candidate;
    * **silent** — accepted as good but wrong: the failure mode that
      actually matters;
    * **lost** — the block watchdog abandoned the transfer and forced a
      resync.

    Attributes:
        blocks_sent: Blocks pushed into the faulty link.
        blocks_delivered: Blocks the receiver assembled (any quality).
        blocks_lost: Transfers abandoned by the block watchdog.
        clean_blocks: Delivered bit-exact with no correction needed.
        corrected_blocks: Delivered bit-exact after ECC correction.
        detected_blocks: Delivered but flagged bad (sentinel chunks or
            an uncorrectable ECC syndrome).
        silent_blocks: Delivered, accepted, and wrong.
        chunk_errors_pre_ecc: Delivered chunk values differing from the
            transmitted ones, before any correction.
        chunks_total: Chunk count over all delivered blocks.
        bit_errors_post_ecc: Residual wrong data bits in *accepted*
            blocks (after ECC correction when enabled).
        bits_total: Data bits over all accepted blocks.
        resyncs: Resync strobes driven (periodic + forced).
        mean_recovery_latency: Mean cycles from a detected
            desynchronization to the resync that cleared it.
        resync_flips: Wire transitions spent on resync strobes.
        resync_cycles: Stall cycles spent on resync strobes.
        total_flips: All wire transitions on the faulty link.
        total_cycles: Busy + resync cycles on the faulty link.
        baseline_flips: Wire transitions of the fault-free reference
            link carrying the same data.
        baseline_cycles: Busy cycles of the reference link.
        dropped_toggles / spurious_toggles / strobe_glitches /
            desync_events: Fault events the injector produced.
        watchdog_aborts: Rounds abandoned by the receiver's watchdog.
    """

    blocks_sent: int
    blocks_delivered: int
    blocks_lost: int
    clean_blocks: int
    corrected_blocks: int
    detected_blocks: int
    silent_blocks: int
    chunk_errors_pre_ecc: int
    chunks_total: int
    bit_errors_post_ecc: int
    bits_total: int
    resyncs: int
    mean_recovery_latency: float
    resync_flips: int
    resync_cycles: int
    total_flips: int
    total_cycles: int
    baseline_flips: int
    baseline_cycles: int
    dropped_toggles: int
    spurious_toggles: int
    strobe_glitches: int
    desync_events: int
    watchdog_aborts: int

    @property
    def chunk_error_rate(self) -> float:
        """Corrupted delivered chunks per chunk, before correction."""
        return self.chunk_errors_pre_ecc / self.chunks_total if self.chunks_total else 0.0

    @property
    def residual_bit_error_rate(self) -> float:
        """Silently wrong data bits per accepted bit, after correction."""
        return self.bit_errors_post_ecc / self.bits_total if self.bits_total else 0.0

    @property
    def silent_block_rate(self) -> float:
        """Fraction of sent blocks accepted as good but wrong."""
        return self.silent_blocks / self.blocks_sent if self.blocks_sent else 0.0

    @property
    def detected_block_rate(self) -> float:
        """Fraction of sent blocks known bad (detected or lost)."""
        if not self.blocks_sent:
            return 0.0
        return (self.detected_blocks + self.blocks_lost) / self.blocks_sent

    @property
    def resync_energy_overhead(self) -> float:
        """Resync wire activity relative to the fault-free transfer cost."""
        return self.resync_flips / self.baseline_flips if self.baseline_flips else 0.0

    @property
    def cycle_overhead(self) -> float:
        """Extra cycles (recovery stalls included) over the fault-free run."""
        if not self.baseline_cycles:
            return 0.0
        return (self.total_cycles - self.baseline_cycles) / self.baseline_cycles


@dataclass(frozen=True)
class L2Energy:
    """L2 energy split (Figures 2 and 18).

    Attributes:
        static_j: Leakage over the run.
        htree_dynamic_j: Data + overhead + address wire switching.
        array_dynamic_j: SRAM array and decoder switching.
    """

    static_j: float
    htree_dynamic_j: float
    array_dynamic_j: float

    @property
    def dynamic_j(self) -> float:
        """All dynamic L2 energy."""
        return self.htree_dynamic_j + self.array_dynamic_j

    @property
    def total_j(self) -> float:
        """Total L2 energy."""
        return self.static_j + self.dynamic_j


@dataclass(frozen=True)
class RunResult:
    """Everything one simulation reports.

    Attributes:
        app: Application name.
        scheme: Scheme label.
        cycles: Execution time in core cycles.
        hit_latency: Mean end-to-end L2 hit latency, cycles.
        miss_latency: Mean L2 miss latency, cycles.
        bank_wait: Mean bank queueing delay, cycles.
        transfers: Block transfers on the H-tree over the run.
        transfer_stats: Mean per-block wire activity.
        l2: L2 energy breakdown.
        processor: Whole-processor energy breakdown.
    """

    app: str
    scheme: str
    cycles: float
    hit_latency: float
    miss_latency: float
    bank_wait: float
    transfers: float
    transfer_stats: TransferStats
    l2: L2Energy
    processor: ProcessorEnergyBreakdown

    @property
    def l2_energy_j(self) -> float:
        """Total L2 energy of the run."""
        return self.l2.total_j

    @property
    def processor_energy_j(self) -> float:
        """Total processor energy of the run."""
        return self.processor.total_j
