"""Keyed result store shared by every simulation stage.

The staged engine (:mod:`repro.sim.engine`) memoizes each stage —
workload samples, transfer statistics, cache designs — in one
:class:`ResultStore` instead of scattered per-function ``lru_cache``s.
Centralizing the cache buys three things the function caches could not
provide:

* **observability** — hit/miss/size counters, surfaced by
  ``python -m repro cache-stats``;
* **control** — one ``clear()`` drops every stage's entries (wired into
  :func:`repro.sim.system.clear_caches`);
* **persistence** — an optional pickle file lets separate processes
  (CLI invocations, pool workers) share expensive stage outputs.

Keys are plain tuples of hashables, built by each stage's ``*_key``
function in :mod:`repro.sim.stages`; the leading element names the
stage so one store can hold every stage's results without collisions.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Hashable, Iterator

from repro.sim.warehouse import SegmentWarehouse

__all__ = ["ResultStore", "StoreStats", "RESULT_STORE", "default_store"]

#: Environment variable naming a pickle file the global store persists to.
STORE_PATH_ENV = "REPRO_RESULT_STORE"

#: Environment variable capping the global store's entry count (LRU).
STORE_MAX_ENV = "REPRO_RESULT_STORE_MAX"

#: Environment variable naming the warehouse directory for the global
#: store's disk tier (unset = memory-only).
WAREHOUSE_ENV = "REPRO_WAREHOUSE"

#: Format of the persisted payload.  Bumped whenever the pickle layout
#: (or the meaning of stored entries) changes incompatibly; a store
#: written under any other version is discarded with a warning instead
#: of being misread.
STORE_FORMAT_VERSION = 2

StoreKey = tuple[Hashable, ...]

#: Internal "no value" marker (``None`` is a legitimate stored value).
_ABSENT = object()


@dataclass(frozen=True)
class StoreStats:
    """Counters describing a :class:`ResultStore`'s effectiveness.

    Attributes:
        hits: Lookups served from the store since construction/load.
        misses: Lookups that had to compute their value.
        size: Entries currently resident.
        evictions: Entries dropped by the LRU cap since
            construction/load (always 0 for an uncapped store).
        max_entries: The LRU cap, or ``None`` when unbounded.
        disk_hits: Lookups served by the warehouse tier (0 when the
            store has no warehouse).
        promotions: Warehouse reads promoted into the memory LRU.
        warehouse_segments: Segment files in the warehouse tier.
        warehouse_bytes: Total bytes across warehouse segments.
    """

    hits: int
    misses: int
    size: int
    evictions: int = 0
    max_entries: int | None = None
    disk_hits: int = 0
    promotions: int = 0
    warehouse_segments: int = 0
    warehouse_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the store (0 when idle)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResultStore:
    """A keyed cache with hit/miss counters and optional persistence.

    Args:
        path: When given, the store loads any existing pickle at that
            path on construction and :meth:`save` writes back to it.
            Counters persist alongside the entries, so a sequence of CLI
            invocations accumulates meaningful statistics.
        max_entries: When given, cap the store at this many entries,
            evicting least-recently-used ones (every hit refreshes its
            key's recency).  ``None`` (the default) keeps the historic
            unbounded behaviour; the global store reads the cap from
            the ``REPRO_RESULT_STORE_MAX`` environment variable.  Every
            eviction is counted (see :class:`StoreStats`), so an
            undersized cap is visible in ``repro cache-stats`` and the
            service's ``/metrics`` instead of silently thrashing.
        warehouse: The durable disk tier beneath the memory LRU: a
            :class:`~repro.sim.warehouse.SegmentWarehouse`, or a
            directory path to open one at.  Lookups read through to it
            (a warehouse hit is **promoted** into memory), writes go
            write-behind into its append-only segments, and a restarted
            process pointed at the same directory warm-starts its
            cache.  ``None`` (the default) keeps the store memory-only.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        max_entries: int | None = None,
        warehouse: SegmentWarehouse | str | Path | None = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(
                f"max_entries must be >= 1 or None, got {max_entries}"
            )
        self._entries: dict[StoreKey, Any] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._promotions = 0
        self.max_entries = max_entries
        if warehouse is None or isinstance(warehouse, SegmentWarehouse):
            self.warehouse = warehouse
        else:
            self.warehouse = SegmentWarehouse(warehouse)
        self.path = Path(path) if path is not None else None
        if self.path is not None and self.path.exists():
            self.load(self.path)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get_or_compute(self, key: StoreKey, compute: Callable[[], Any]) -> Any:
        """Return the stored value for ``key``, computing it on a miss.

        Lookup order: the memory LRU, then the warehouse tier (a disk
        hit counts as a store hit and the entry is promoted into
        memory), then ``compute``.
        """
        try:
            value = self._entries[key]
        except KeyError:
            promoted = self._promote(key)
            if promoted is not _ABSENT:
                return promoted
            self._misses += 1
            value = compute()
            self.put(key, value)
            return value
        self._hits += 1
        self._touch(key)
        return value

    def get(self, key: StoreKey, default: Any = None) -> Any:
        """Peek at a key without counting a miss on absence."""
        if key in self._entries:
            self._hits += 1
            self._touch(key)
            return self._entries[key]
        promoted = self._promote(key)
        if promoted is not _ABSENT:
            return promoted
        return default

    def put(self, key: StoreKey, value: Any) -> None:
        """Insert (or overwrite) an entry, evicting LRU ones over the cap.

        With a warehouse attached, the entry also lands (write-behind,
        append-once) in the disk tier, so it survives both LRU eviction
        and process restart.
        """
        self._entries.pop(key, None)  # re-insert at the recent end
        self._entries[key] = value
        if self.warehouse is not None:
            self.warehouse.put(key, value)
        self._evict_over_cap()

    def _promote(self, key: StoreKey) -> Any:
        """Read ``key`` through to the warehouse, promoting a hit into
        the memory LRU; returns ``_ABSENT`` on a true miss."""
        if self.warehouse is None or key not in self.warehouse:
            return _ABSENT
        value = self.warehouse.get(key, _ABSENT)
        if value is _ABSENT:
            return _ABSENT
        self._hits += 1
        self._promotions += 1
        self.put(key, value)
        return value

    def _touch(self, key: StoreKey) -> None:
        """Mark ``key`` most-recently-used (dicts preserve insert order)."""
        if self.max_entries is not None:
            self._entries[key] = self._entries.pop(key)

    def _evict_over_cap(self) -> None:
        if self.max_entries is None:
            return
        while len(self._entries) > self.max_entries:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
            self._evictions += 1

    def __contains__(self, key: StoreKey) -> bool:
        if key in self._entries:
            return True
        return self.warehouse is not None and key in self.warehouse

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[StoreKey]:
        return iter(self._entries)

    # ------------------------------------------------------------------
    # Statistics and lifecycle
    # ------------------------------------------------------------------

    @property
    def hits(self) -> int:
        """Lookups served from the store."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookups that computed a fresh value."""
        return self._misses

    @property
    def evictions(self) -> int:
        """Entries the LRU cap has dropped."""
        return self._evictions

    def stats(self) -> StoreStats:
        """A snapshot of the store's counters (and the warehouse's)."""
        disk_hits = 0
        warehouse_segments = 0
        warehouse_bytes = 0
        if self.warehouse is not None:
            wh = self.warehouse.stats()
            disk_hits = wh.disk_hits
            warehouse_segments = wh.segment_count
            warehouse_bytes = wh.segment_bytes
        return StoreStats(
            hits=self._hits,
            misses=self._misses,
            size=len(self),
            evictions=self._evictions,
            max_entries=self.max_entries,
            disk_hits=disk_hits,
            promotions=self._promotions,
            warehouse_segments=warehouse_segments,
            warehouse_bytes=warehouse_bytes,
        )

    def clear(self) -> None:
        """Drop every memory entry and reset the counters.

        The warehouse tier is durable by design and is *not* cleared —
        it is the thing that survives restarts.
        """
        self._entries.clear()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._promotions = 0

    def flush(self) -> None:
        """Flush the warehouse tier's write-behind buffer (if any)."""
        if self.warehouse is not None:
            self.warehouse.flush()

    def scrub(self) -> dict:
        """Re-verify the warehouse tier's records, repairing corrupt
        ones from the memory LRU where it still holds the value.

        Returns the warehouse's scrub report (all-zero counts for a
        memory-only store); see
        :meth:`~repro.sim.warehouse.SegmentWarehouse.scrub`.
        """
        if self.warehouse is None:
            return {"scanned": 0, "corrupt": 0, "repaired": 0, "lost": 0}
        return self.warehouse.scrub(repair=self._entries)

    def compact(self) -> dict:
        """Compact the warehouse tier's segments (no-op when
        memory-only); see
        :meth:`~repro.sim.warehouse.SegmentWarehouse.compact`."""
        if self.warehouse is None:
            return {"records": 0, "segments_before": 0,
                    "segments_after": 0, "reclaimed": 0}
        return self.warehouse.compact()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: str | Path | None = None) -> Path:
        """Pickle the entries and counters to ``path`` (or ``self.path``).

        The write is atomic (temp file + rename) so a crashed run never
        leaves a truncated store behind.
        """
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ValueError("no path given and the store has no default path")
        payload = {
            "version": STORE_FORMAT_VERSION,
            "entries": self._entries,
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
        }
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=target.parent, prefix=target.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, target)
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise
        self.flush()
        return target

    def load(self, path: str | Path) -> None:
        """Replace the store's contents with a previously saved pickle.

        A persisted store is a cache, never the only copy of anything —
        so nothing that goes wrong here is fatal.  A missing file or a
        stale format version empties the store with a warning; a
        corrupt or truncated pickle is additionally **quarantined**
        (renamed to ``<name>.corrupt``) so the broken bytes survive for
        inspection while the next :meth:`save` starts clean.
        """
        path = Path(path)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            if not isinstance(payload, dict):
                raise TypeError(f"payload is {type(payload).__name__}, not dict")
            entries = payload["entries"]
            hits = payload["hits"]
            misses = payload["misses"]
        except FileNotFoundError:
            warnings.warn(
                f"result store {path} does not exist; starting empty",
                RuntimeWarning,
                stacklevel=2,
            )
            self.clear()
            return
        except Exception as exc:  # truncated/garbled pickle, wrong shape
            quarantine = self._quarantine(path)
            where = f" (quarantined as {quarantine})" if quarantine else ""
            warnings.warn(
                f"result store {path} is corrupt ({exc!r}); "
                f"starting empty{where}",
                RuntimeWarning,
                stacklevel=2,
            )
            self.clear()
            return
        version = payload.get("version")
        if version != STORE_FORMAT_VERSION:
            warnings.warn(
                f"result store {path} has format version {version!r}, "
                f"expected {STORE_FORMAT_VERSION}; discarding it",
                RuntimeWarning,
                stacklevel=2,
            )
            self.clear()
            return
        self._entries = entries
        self._hits = hits
        self._misses = misses
        # Older stores predate the eviction counter; start it at 0.
        self._evictions = payload.get("evictions", 0)
        # A persisted store larger than this instance's cap trims down
        # immediately (oldest-persisted first) instead of exceeding it.
        self._evict_over_cap()

    @staticmethod
    def _quarantine(path: Path) -> Path | None:
        """Move a corrupt store aside; best effort, never raises."""
        target = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, target)
        except OSError:
            return None
        return target


def _env_max_entries() -> int | None:
    """Parse ``REPRO_RESULT_STORE_MAX`` (unset/empty = unbounded)."""
    raw = os.environ.get(STORE_MAX_ENV, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
        if value < 1:
            raise ValueError(value)
    except ValueError:
        warnings.warn(
            f"ignoring {STORE_MAX_ENV}={raw!r}: expected a positive "
            "integer entry cap",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    return value


def default_store() -> ResultStore:
    """Build the process-wide store, honouring ``REPRO_RESULT_STORE``
    (persistence path), ``REPRO_RESULT_STORE_MAX`` (LRU entry cap), and
    ``REPRO_WAREHOUSE`` (disk-tier directory)."""
    return ResultStore(
        path=os.environ.get(STORE_PATH_ENV),
        max_entries=_env_max_entries(),
        warehouse=os.environ.get(WAREHOUSE_ENV) or None,
    )


#: The process-wide store every stage uses unless handed another one.
#: Constructed — and its ``REPRO_RESULT_STORE`` pickle loaded — on first
#: attribute access (PEP 562), never at import time: this module is
#: imported by :mod:`repro.sim.stages` before the stage dataclasses
#: exist, so an import-time load would unpickle ``WorkloadSample`` from
#: a partially initialized module and quarantine a perfectly good store
#: on every warm restart.
RESULT_STORE: ResultStore


def __getattr__(name: str) -> Any:
    if name == "RESULT_STORE":
        store = default_store()
        globals()["RESULT_STORE"] = store
        return store
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
