"""The five pure stages of the simulation pipeline (DESIGN.md §4).

One (application, scheme, system) simulation is a straight-line graph:

    sample_workload ──► transfer model ──► design_cache ──►
        solve_timing ──► account_energy ──► RunResult

Each stage is a pure function from typed inputs to a typed, picklable
dataclass, and each declares its own result-store key (``*_key``), so
the engine (:mod:`repro.sim.engine`) can memoize any stage in the
unified :class:`~repro.sim.store.ResultStore` and recompute it
identically inside process-pool workers.  Stage 2 — the transfer-cost
model — is not a function here but a :class:`~repro.encoding.registry.
TransferModel` resolved through the encoding registry, which is how
DESC variants, the binary-style baselines, and ECC-wrapped schemes all
flow through the same engine without any scheme-kind branching.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cpu.dram import DramModel
from repro.cpu.inorder import SmtCoreModel
from repro.cpu.ooo import OooCoreModel
from repro.cpu.queueing import _MAX_UTILIZATION
from repro.energy.cacti import CacheEnergyModel, CacheGeometry
from repro.energy.mcpat import ProcessorEnergyBreakdown, ProcessorPowerModel
from repro.interconnect.wires import WireModel
from repro.sim.config import SchemeConfig, SystemConfig
from repro.sim.metrics import L2Energy, TransferStats
from repro.sim.store import StoreKey
from repro.workloads.generator import block_sample
from repro.workloads.profiles import AppProfile

__all__ = [
    "WorkloadSample",
    "CacheDesign",
    "TimingSolution",
    "sample_workload",
    "workload_key",
    "transfer_key",
    "design_cache",
    "cache_design_key",
    "solve_timing",
    "account_energy",
    "run_key",
]

# Mean extra L1 accesses per instruction (I-cache + D-cache), used for
# the McPAT L1 term.
_L1_ACCESSES_PER_INSTRUCTION = 1.3
# S-NUCA-1 bank access latencies range over 3..13 core cycles
# (Section 5.5); statically routed ports replace the shared H-tree.
_NUCA_MEAN_BANK_LATENCY = 8.0
_FIXED_POINT_ITERATIONS = 30
# S-NUCA-1 routes each bank's 128-bit port statically instead of over
# the recursive H-tree; the average electrical route is shorter.
_NUCA_ROUTE_SCALE = 0.40


# ----------------------------------------------------------------------
# Stage 1 — workload sampling
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class WorkloadSample:
    """One application's cached block-value sample, in both views.

    Attributes:
        app: The profile the sample was drawn from.
        num_blocks: Sample size (blocks).
        seed: Generator seed.
        chunks: ``(num_blocks, 128)`` matrix of 4-bit chunk values.
        bits: ``(num_blocks, 512)`` 0/1 matrix of the same sample, or
            ``None`` when ``packed`` carries the stream (the matrix is
            then available lazily via ``packed.bits``).
        null_fraction: Fraction of blocks that are entirely zero.
        packed: The same bits as little-endian packed uint64 words
            (``pipeline.PackedBits``), so encoder kernels can consume
            the sample without re-packing per scheme.  ``None`` on
            samples deserialized from older stores.
    """

    app: AppProfile
    num_blocks: int
    seed: int
    chunks: np.ndarray
    bits: np.ndarray | None
    null_fraction: float
    packed: object | None = None


def workload_key(app: AppProfile, num_blocks: int, seed: int) -> StoreKey:
    """Store key of a workload sample.

    Keyed by the (frozen, hashable) profile itself, so custom profiles
    — not just the registered Table 2 applications — get their own
    value streams.
    """
    return ("workload", app, num_blocks, seed)


def sample_workload(app: AppProfile, num_blocks: int, seed: int) -> WorkloadSample:
    """Draw an application's block-value sample (pure in the seed).

    Both views come out of one ``pipeline.block_assemble`` call (mask
    compares + chunk fills + word packing), so the epoch's workload
    stage crosses the Python↔C boundary once when the native library is
    loaded and the bit stream is packed once for every scheme that
    consumes it.  The unpacked matrix materializes lazily (and is then
    cached on the sample's ``packed``) only for the paths that walk
    individual bits — ECC layouts and null-excluded streams.
    """
    chunks, packed = block_sample(app, num_blocks, seed)
    null_fraction = float((chunks == 0).all(axis=1).mean())
    return WorkloadSample(
        app=app,
        num_blocks=num_blocks,
        seed=seed,
        chunks=chunks,
        bits=None,
        null_fraction=null_fraction,
        packed=packed,
    )


# ----------------------------------------------------------------------
# Stage 2 — transfer-cost modeling (dispatched via the registry)
# ----------------------------------------------------------------------


def transfer_key(
    scheme: SchemeConfig,
    app: AppProfile,
    num_blocks: int,
    seed: int,
    exclude_null: bool,
) -> StoreKey:
    """Store key of a scheme's transfer statistics on a sample."""
    return ("transfer", scheme, app, num_blocks, seed, exclude_null)


# ----------------------------------------------------------------------
# Stage 3 — cache geometry / energy construction
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CacheDesign:
    """The scalar outputs of the CACTI-class model that timing and
    energy accounting consume.

    Extracting scalars (instead of passing the model object along)
    keeps the stage output a small, picklable value — cheap to store
    and to ship between pool workers.
    """

    array_delay_cycles: int
    base_hit_cycles: int
    htree_delay_cycles: int
    energy_per_flip_j: float
    address_energy_j: float
    array_access_energy_j: float
    leakage_w: float


def cache_design_key(
    system: SystemConfig, data_wires: int, overhead_wires: int
) -> StoreKey:
    """Store key of a cache design.

    Only the fields the construction actually reads participate, so
    e.g. a sweep over ``sample_blocks`` or ``core`` reuses the design.
    """
    return (
        "cache-design",
        system.l2_size_bytes,
        system.block_bytes,
        system.l2_associativity,
        system.num_banks,
        system.subbanks_per_bank,
        system.mats_per_subbank,
        system.cell_device,
        system.periph_device,
        system.clock_hz,
        system.nuca,
        system.low_swing,
        data_wires,
        overhead_wires,
    )


def cache_energy_model(
    system: SystemConfig, data_wires: int, overhead_wires: int
) -> CacheEnergyModel:
    """The full CACTI-class model for a system/bus combination."""
    geometry = CacheGeometry(
        size_bytes=system.l2_size_bytes,
        block_bytes=system.block_bytes,
        associativity=system.l2_associativity,
        num_banks=128 if system.nuca else system.num_banks,
        subbanks_per_bank=system.subbanks_per_bank,
        mats_per_subbank=system.mats_per_subbank,
        data_wires=data_wires,
        overhead_wires=overhead_wires,
    )
    return CacheEnergyModel(
        geometry=geometry,
        cell_device=system.cell_device,
        periph_device=system.periph_device,
        clock_hz=system.clock_hz,
        wire_model=WireModel.low_swing() if system.low_swing else None,
        route_scale=_NUCA_ROUTE_SCALE if system.nuca else 1.0,
    )


def design_cache(
    system: SystemConfig, data_wires: int, overhead_wires: int
) -> CacheDesign:
    """Build the cache model and extract its downstream scalars."""
    cache = cache_energy_model(system, data_wires, overhead_wires)
    return CacheDesign(
        array_delay_cycles=cache.array_delay_cycles,
        base_hit_cycles=cache.base_hit_cycles,
        htree_delay_cycles=cache.htree_delay_cycles,
        energy_per_flip_j=cache.energy_per_flip_j,
        address_energy_j=cache.address_energy_j,
        array_access_energy_j=cache.array_access_energy_j,
        leakage_w=cache.leakage_w,
    )


# ----------------------------------------------------------------------
# Stage 4 — the execution-time fixed point
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TimingSolution:
    """Converged system timing for one run.

    Attributes:
        cycles: Execution time in core cycles.
        hit_latency: Mean end-to-end L2 hit latency, cycles.
        miss_latency: Mean L2 miss latency, cycles.
        bank_wait: Mean bank queueing delay, cycles.
        transfers_per_access: H-tree block transfers per L2 access.
        seconds: Wall-clock execution time.
    """

    cycles: float
    hit_latency: float
    miss_latency: float
    bank_wait: float
    transfers_per_access: float
    seconds: float


def solve_timing(
    app: AppProfile,
    system: SystemConfig,
    stats: TransferStats,
    design: CacheDesign,
    scheme_delay: float,
    null_fraction: float,
) -> TimingSolution:
    """Solve the execution-time fixed point.

    Bank and DRAM queueing depend on the access rate, which depends on
    execution time; damped iteration converges in a few tens of steps.
    """
    if system.nuca:
        access_path = system.controller_overhead_cycles + _NUCA_MEAN_BANK_LATENCY
        access_path += design.array_delay_cycles
    else:
        access_path = system.controller_overhead_cycles + design.base_hit_cycles
    # Delivery latency: the SMT multicore sees the average-value
    # latency (critical chunks stream in; Section 5.3), while the
    # latency-sensitive OoO core waits for the full window — DESC
    # delivers chunks in value order, so there is no critical-word-first
    # forwarding for a blocked dependent load (Section 5.8).
    if system.core == "ooo":
        delivery = stats.transfer_cycles
    else:
        delivery = stats.latency_cycles
    hit_no_wait = access_path + scheme_delay + delivery
    if null_fraction:
        # Directory hits skip the array and the transfer entirely.
        null_hit_latency = system.controller_overhead_cycles + 1.0
        hit_no_wait = (
            (1.0 - null_fraction) * hit_no_wait
            + null_fraction * null_hit_latency
        )

    dram = DramModel()
    # The miss penalty is independent of the data scheme (Section 5.3):
    # the address travels in binary and the line returns from DRAM.
    miss_base = (
        system.controller_overhead_cycles + design.htree_delay_cycles
        + dram.base_latency_cycles + dram.service_cycles
    )

    core = SmtCoreModel() if system.core == "smt" else OooCoreModel()

    # Each L2 access occupies a bank for the array access plus the
    # transfer window; misses additionally move the fill (and dirty
    # victims) over the H-tree.
    bank_service = design.array_delay_cycles + stats.transfer_cycles
    transfers_per_access = (1.0 - null_fraction) * (
        1.0 + app.l2_miss_rate * (1.0 + app.write_fraction)
    )
    num_banks = 128 if system.nuca else system.num_banks

    cycles = core.execution_cycles(app, hit_no_wait, miss_base)
    bank_wait = 0.0
    miss_latency = miss_base
    # ``md1_wait`` inlined (same expressions, so the floats are
    # bit-identical): the two queueing terms run 2 * 30 iterations per
    # (scheme, app) job and the call/validation overhead is measurable
    # across a whole figure sweep.
    dram_service = dram.service_cycles
    dram_channels = dram.channels
    miss_transfers = app.l2_accesses * app.l2_miss_rate
    access_transfers = app.l2_accesses * transfers_per_access
    for _ in range(_FIXED_POINT_ITERATIONS):
        rho = min(
            access_transfers / cycles * bank_service / num_banks,
            _MAX_UTILIZATION,
        )
        bank_wait = (
            0.0
            if bank_service <= 0.0
            else rho * bank_service / (2.0 * (1.0 - rho))
        )
        rho = min(
            miss_transfers / cycles * dram_service / dram_channels,
            _MAX_UTILIZATION,
        )
        miss_latency = miss_base + rho * dram_service / (2.0 * (1.0 - rho))
        hit_latency = hit_no_wait + bank_wait
        new_cycles = core.execution_cycles(app, hit_latency, miss_latency + bank_wait)
        cycles = 0.5 * (cycles + new_cycles)

    return TimingSolution(
        cycles=cycles,
        hit_latency=hit_no_wait + bank_wait,
        miss_latency=miss_latency,
        bank_wait=bank_wait,
        transfers_per_access=transfers_per_access,
        seconds=cycles / system.clock_hz,
    )


# ----------------------------------------------------------------------
# Stage 5 — energy accounting
# ----------------------------------------------------------------------


def account_energy(
    app: AppProfile,
    system: SystemConfig,
    stats: TransferStats,
    design: CacheDesign,
    timing: TimingSolution,
    controller_write_flips: float,
    null_fraction: float,
) -> tuple[L2Energy, ProcessorEnergyBreakdown]:
    """Charge L2 energy and wrap it in the processor breakdown."""
    transfers = app.l2_accesses * timing.transfers_per_access
    htree_dynamic = (
        transfers * stats.total_flips * design.energy_per_flip_j
        + app.l2_accesses * design.address_energy_j
    )
    if null_fraction:
        # Null hits still flag the requester: one control-wire toggle.
        htree_dynamic += (
            app.l2_accesses * null_fraction * design.energy_per_flip_j
        )
    if controller_write_flips:
        # Controller-side switching the scheme charges per written
        # block (e.g. DESC last-value tracking's write-data broadcast,
        # Section 5.2), on top of the strobe traffic.
        htree_dynamic += (
            app.l2_accesses * app.write_fraction
            * controller_write_flips * design.energy_per_flip_j
        )
    array_dynamic = transfers * design.array_access_energy_j
    l2 = L2Energy(
        static_j=design.leakage_w * timing.seconds,
        htree_dynamic_j=htree_dynamic,
        array_dynamic_j=array_dynamic,
    )

    power_model = ProcessorPowerModel(
        num_cores=8 if system.core == "smt" else 1, clock_hz=system.clock_hz
    )
    processor = power_model.breakdown(
        instructions=app.instructions,
        cycles=timing.cycles,
        l1_accesses=app.instructions * _L1_ACCESSES_PER_INSTRUCTION,
        memory_accesses=app.l2_accesses * app.l2_miss_rate,
        l2_energy_j=l2.total_j,
    )
    return l2, processor


# ----------------------------------------------------------------------
# Whole-run key
# ----------------------------------------------------------------------


def run_key(
    app: AppProfile, scheme: SchemeConfig, system: SystemConfig
) -> StoreKey:
    """Store key of a complete (application, scheme, system) run."""
    return ("run", app, scheme, system)
