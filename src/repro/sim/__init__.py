"""System simulation: configuration, metrics, and the simulate() driver."""

from repro.sim.config import (
    DEFAULT_SYSTEM,
    SchemeConfig,
    SystemConfig,
    baseline_scheme,
    desc_scheme,
)
from repro.sim.metrics import L2Energy, RunResult, TransferStats
from repro.sim.sweeps import SweepPoint, sweep
from repro.sim.system import clear_caches, simulate, transfer_stats

__all__ = [
    "DEFAULT_SYSTEM",
    "L2Energy",
    "RunResult",
    "SchemeConfig",
    "SweepPoint",
    "SystemConfig",
    "TransferStats",
    "baseline_scheme",
    "clear_caches",
    "desc_scheme",
    "simulate",
    "sweep",
    "transfer_stats",
]
