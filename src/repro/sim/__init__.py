"""System simulation: configuration, the staged engine, and sweeps.

The package splits into layers (see DESIGN.md §4):

* :mod:`repro.sim.config` / :mod:`repro.sim.metrics` — typed inputs
  and outputs;
* :mod:`repro.sim.stages` — the five pure pipeline stages;
* :mod:`repro.sim.store` — the unified, keyed result store;
* :mod:`repro.sim.engine` — the :class:`StagedEngine` orchestrator,
  :func:`simulate_many` batch API, and process-pool fan-out;
* :mod:`repro.sim.system` — the stable ``simulate()`` front door;
* :mod:`repro.sim.sweeps` — grid sweeps on top of the batch API.
"""

from repro.sim.config import (
    DEFAULT_SYSTEM,
    SchemeConfig,
    SystemConfig,
    baseline_scheme,
    desc_scheme,
)
from repro.sim.engine import (
    FailedJob,
    SimJob,
    StagedEngine,
    get_default_max_workers,
    set_default_max_workers,
    simulate_many,
)
from repro.sim.metrics import FaultStats, L2Energy, RunResult, TransferStats
from repro.sim.store import RESULT_STORE, ResultStore, StoreStats
from repro.sim.sweeps import SweepPoint, sweep
from repro.sim.system import cache_stats, clear_caches, simulate, transfer_stats

__all__ = [
    "DEFAULT_SYSTEM",
    "FailedJob",
    "FaultStats",
    "L2Energy",
    "RESULT_STORE",
    "ResultStore",
    "RunResult",
    "SchemeConfig",
    "SimJob",
    "StagedEngine",
    "StoreStats",
    "SweepPoint",
    "SystemConfig",
    "TransferStats",
    "baseline_scheme",
    "cache_stats",
    "clear_caches",
    "desc_scheme",
    "get_default_max_workers",
    "set_default_max_workers",
    "simulate",
    "simulate_many",
    "sweep",
    "transfer_stats",
]
