"""Simulation configuration (Table 1) and scheme descriptions.

:class:`SystemConfig` carries the architecture of Table 1;
:class:`SchemeConfig` describes one data-transfer scheme instance —
which encoder, its bus width and segment/chunk parameters, and the
optional SECDED ECC configuration of Section 5.7 (named ``W-S`` in
Figures 28/29: ``W`` data wires, Hamming code applied per ``S``-bit
segment).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util.validation import require_positive

__all__ = ["SchemeConfig", "SystemConfig", "DEFAULT_SYSTEM", "desc_scheme", "baseline_scheme"]

_DESC_SCHEMES = frozenset({"desc", "desc+zero-skip", "desc+last-value-skip"})


@dataclass(frozen=True)
class SchemeConfig:
    """One configured data-transfer scheme.

    Attributes:
        name: Registry name (see :mod:`repro.encoding.registry`).
        data_wires: Bus width — 64 for the baseline binary H-tree, 128
            for DESC (the paper's best configurations).
        segment_bits: Segment size for the segmented baselines
            (``None`` = the Figure 15 best configuration).
        chunk_bits: DESC chunk width.
        ecc_segment_bits: When set, protect the block with SECDED over
            segments of this many bits (Figures 28/29).
    """

    name: str = "binary"
    data_wires: int = 64
    segment_bits: int | None = None
    chunk_bits: int = 4
    ecc_segment_bits: int | None = None

    def __post_init__(self) -> None:
        require_positive("data_wires", self.data_wires)
        require_positive("chunk_bits", self.chunk_bits)

    @property
    def is_desc(self) -> bool:
        """Whether this scheme is a DESC variant."""
        return self.name in _DESC_SCHEMES

    @property
    def skip_policy(self) -> str:
        """DESC skip-policy name implied by the scheme name."""
        if not self.is_desc:
            raise ValueError(f"{self.name!r} is not a DESC scheme")
        return {
            "desc": "none",
            "desc+zero-skip": "zero",
            "desc+last-value-skip": "last-value",
        }[self.name]

    def label(self) -> str:
        """Human-readable label for figures."""
        if self.ecc_segment_bits:
            return f"{self.name} ({self.data_wires}-{self.ecc_segment_bits})"
        return self.name


def desc_scheme(
    skip: str = "zero",
    data_wires: int = 128,
    chunk_bits: int = 4,
    ecc_segment_bits: int | None = None,
) -> SchemeConfig:
    """Convenience constructor for DESC variants."""
    name = {"none": "desc", "zero": "desc+zero-skip", "last-value": "desc+last-value-skip"}
    if skip not in name:
        raise ValueError(f"skip must be one of {tuple(name)}, got {skip!r}")
    return SchemeConfig(
        name=name[skip],
        data_wires=data_wires,
        chunk_bits=chunk_bits,
        ecc_segment_bits=ecc_segment_bits,
    )


def baseline_scheme(
    name: str = "binary",
    data_wires: int = 64,
    segment_bits: int | None = None,
    ecc_segment_bits: int | None = None,
) -> SchemeConfig:
    """Convenience constructor for the binary-style baselines."""
    return SchemeConfig(
        name=name,
        data_wires=data_wires,
        segment_bits=segment_bits,
        ecc_segment_bits=ecc_segment_bits,
    )


@dataclass(frozen=True)
class SystemConfig:
    """The simulated system (Table 1).

    Attributes:
        l2_size_bytes: Shared L2 capacity (8 MB).
        l2_associativity: L2 ways (16).
        block_bytes: Cache block size (64 B).
        num_banks: L2 banks (8 in the baseline; Figure 25 sweeps this).
        subbanks_per_bank: Subbanks per bank (4, Figure 7).
        mats_per_subbank: Mats per subbank (4, Figure 7).
        cell_device / periph_device: ITRS device types (LSTP-LSTP best).
        clock_hz: Core and cache clock (3.2 GHz).
        core: ``"smt"`` (Niagara-like multicore) or ``"ooo"``.
        nuca: Model the 128-bank S-NUCA-1 organisation of Section 5.5.
        low_swing: Use low-swing H-tree wires instead of full-swing
            repeated wires (an orthogonal technique the paper cites
            [2, 7]; exercised by the low-swing ablation benchmark).
        null_directory: Serve all-zero blocks from a controller-side
            null-block directory, skipping the array access and the
            data transfer entirely (the storage-level optimization of
            Section 2's compression-related work; exercised by the
            null-directory ablation benchmark).
        controller_overhead_cycles: Tag/queue/controller latency added
            to every access.
        sample_blocks: Block-value sample size per application.
        seed: Master seed for the workload generators.
    """

    l2_size_bytes: int = 8 * 1024 * 1024
    l2_associativity: int = 16
    block_bytes: int = 64
    num_banks: int = 8
    subbanks_per_bank: int = 4
    mats_per_subbank: int = 4
    cell_device: str = "LSTP"
    periph_device: str = "LSTP"
    clock_hz: float = 3.2e9
    core: str = "smt"
    nuca: bool = False
    low_swing: bool = False
    null_directory: bool = False
    controller_overhead_cycles: int = 4
    sample_blocks: int = 6000
    seed: int = 1

    def __post_init__(self) -> None:
        require_positive("l2_size_bytes", self.l2_size_bytes)
        require_positive("block_bytes", self.block_bytes)
        require_positive("sample_blocks", self.sample_blocks)
        if self.core not in ("smt", "ooo"):
            raise ValueError(f"core must be 'smt' or 'ooo', got {self.core!r}")

    def with_(self, **changes) -> "SystemConfig":
        """A modified copy (dataclasses.replace convenience)."""
        return replace(self, **changes)


#: The paper's baseline system.
DEFAULT_SYSTEM = SystemConfig()
