"""Generic parameter sweeps over the system simulator.

The per-figure experiments hard-code their sweeps; this module offers
the same machinery to downstream users: take a base
:class:`~repro.sim.config.SystemConfig`, a scheme, a set of
applications, and any number of config fields with value lists, and get
back one :class:`SweepPoint` per combination with suite-geomean
metrics.

Example::

    from repro.sim import SystemConfig, desc_scheme
    from repro.sim.sweeps import sweep

    points = sweep(
        desc_scheme("zero"),
        base=SystemConfig(sample_blocks=2000),
        num_banks=[2, 8, 32],
        l2_size_bytes=[2**21, 2**23],
    )
    for p in points:
        print(p.params, p.l2_energy_j, p.cycles)

Sweeps run through :func:`repro.sim.engine.simulate_many`, so passing
``max_workers=4`` fans the (combination × application) grid out over a
process pool with bit-for-bit identical results.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence
from dataclasses import dataclass

from repro.util.stats import geomean
from repro.sim.config import SchemeConfig, SystemConfig
from repro.sim.engine import SimJob, simulate_many
from repro.workloads.profiles import AppProfile
from repro.workloads.suites import PARALLEL_SUITE

__all__ = ["SweepPoint", "sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """Suite-geomean metrics at one parameter combination.

    Attributes:
        params: The swept field values of this point.
        cycles: Geomean execution time (cycles).
        l2_energy_j: Geomean L2 energy.
        processor_energy_j: Geomean processor energy.
        hit_latency: Mean L2 hit latency across the suite.
    """

    params: dict[str, object]
    cycles: float
    l2_energy_j: float
    processor_energy_j: float
    hit_latency: float

    @property
    def edp(self) -> float:
        """L2 energy-delay product (the paper's Figure 24/26 metric)."""
        return self.l2_energy_j * self.cycles


def sweep(
    scheme: SchemeConfig,
    base: SystemConfig | None = None,
    apps: Sequence[AppProfile] = PARALLEL_SUITE,
    max_workers: int | None = None,
    **field_values: Sequence,
) -> list[SweepPoint]:
    """Simulate every combination of the given SystemConfig fields.

    ``max_workers`` > 1 distributes the whole grid over a process pool
    (``None`` keeps the engine's default); the returned points are
    identical to a serial run.
    """
    if not field_values:
        raise ValueError("provide at least one field to sweep")
    base = base if base is not None else SystemConfig()
    names = list(field_values)
    combos = [
        dict(zip(names, combo))
        for combo in itertools.product(*field_values.values())
    ]
    jobs = [
        SimJob.of(app, scheme, base.with_(**params))
        for params in combos
        for app in apps
    ]
    results = simulate_many(jobs, max_workers=max_workers)
    points = []
    for index, params in enumerate(combos):
        group = results[index * len(apps):(index + 1) * len(apps)]
        points.append(
            SweepPoint(
                params=params,
                cycles=geomean(r.cycles for r in group),
                l2_energy_j=geomean(r.l2_energy_j for r in group),
                processor_energy_j=geomean(
                    r.processor_energy_j for r in group
                ),
                hit_latency=sum(r.hit_latency for r in group) / len(group),
            )
        )
    return points
