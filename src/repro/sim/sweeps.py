"""Generic parameter sweeps over the system simulator.

The per-figure experiments hard-code their sweeps; this module offers
the same machinery to downstream users: take a base
:class:`~repro.sim.config.SystemConfig`, a scheme, a set of
applications, and any number of config fields with value lists, and get
back one :class:`SweepPoint` per combination with suite-geomean
metrics.

Example::

    from repro.sim import SystemConfig, desc_scheme
    from repro.sim.sweeps import sweep

    points = sweep(
        desc_scheme("zero"),
        base=SystemConfig(sample_blocks=2000),
        num_banks=[2, 8, 32],
        l2_size_bytes=[2**21, 2**23],
    )
    for p in points:
        print(p.params, p.l2_energy_j, p.cycles)

Sweeps run through :func:`repro.sim.engine.simulate_many`, so passing
``max_workers=4`` fans the (combination × application) grid out over a
process pool with bit-for-bit identical results.
"""

from __future__ import annotations

import itertools
import math
import warnings
from collections.abc import Sequence
from dataclasses import dataclass

from repro.util.stats import geomean
from repro.sim.config import SchemeConfig, SystemConfig
from repro.sim.engine import FailedJob, SimJob, simulate_many
from repro.workloads.profiles import AppProfile
from repro.workloads.suites import PARALLEL_SUITE

__all__ = [
    "FailedPoint",
    "SweepPoint",
    "SweepResult",
    "aggregate_points",
    "expand_grid",
    "sweep",
]


@dataclass(frozen=True)
class SweepPoint:
    """Suite-geomean metrics at one parameter combination.

    Attributes:
        params: The swept field values of this point.
        cycles: Geomean execution time (cycles).
        l2_energy_j: Geomean L2 energy.
        processor_energy_j: Geomean processor energy.
        hit_latency: Mean L2 hit latency across the suite.
    """

    params: dict[str, object]
    cycles: float
    l2_energy_j: float
    processor_energy_j: float
    hit_latency: float

    @property
    def edp(self) -> float:
        """L2 energy-delay product (the paper's Figure 24/26 metric)."""
        return self.l2_energy_j * self.cycles


@dataclass(frozen=True)
class FailedPoint:
    """One failed (combination, application) simulation of a sweep.

    Attributes:
        params: The swept field values of the degraded combination.
        app: Application whose simulation failed.
        reason: The engine's failure reason (timeout, crash, ...).
        attempts: How many times the engine tried the job.
    """

    params: dict[str, object]
    app: str
    reason: str
    attempts: int


class SweepResult(list):
    """The sweep points, plus what failed along the way.

    A plain ``list`` of :class:`SweepPoint` (fully backward compatible
    with callers that index or iterate), with the degradations that
    were previously only visible as warnings attached as data:
    ``failed_points`` holds one :class:`FailedPoint` per failed
    (combination, application) simulation, in job order, so callers —
    the CLI, the explorer, services — can report *which* configs
    degraded and why without scraping warning text.
    """

    def __init__(
        self,
        points: Sequence[SweepPoint] = (),
        failed_points: Sequence[FailedPoint] = (),
    ) -> None:
        super().__init__(points)
        self.failed_points: list[FailedPoint] = list(failed_points)


def expand_grid(field_values: dict[str, Sequence]) -> list[dict[str, object]]:
    """Every combination of the given field/value lists, in grid order.

    The order is the cartesian product with the *first* field slowest —
    stable for a given input, so sweep outputs (and the service's sweep
    responses) are reproducible.
    """
    if not field_values:
        raise ValueError("provide at least one field to sweep")
    names = list(field_values)
    return [
        dict(zip(names, combo, strict=True))
        for combo in itertools.product(*field_values.values())
    ]


def aggregate_points(
    combos: Sequence[dict[str, object]],
    apps: Sequence[AppProfile],
    results: Sequence,
) -> SweepResult:
    """Fold per-(combo, app) results into suite-geomean sweep points.

    ``results`` is job-ordered — every app of combo 0, then every app
    of combo 1, ... exactly as the job list of :func:`sweep` (and the
    service's sweep endpoint) is built.  A :class:`FailedJob` slot
    degrades its point instead of sinking the sweep: warn (naming the
    failing config and every per-application reason), record a
    :class:`FailedPoint` on the returned :class:`SweepResult`, and
    aggregate over the survivors — NaNs when no application of the
    combination completed.
    """
    if len(results) != len(combos) * len(apps):
        raise ValueError(
            f"{len(results)} results do not cover {len(combos)} combos x "
            f"{len(apps)} apps"
        )
    points = SweepResult()
    for index, params in enumerate(combos):
        group = results[index * len(apps):(index + 1) * len(apps)]
        failed = [
            FailedPoint(
                params=dict(params),
                app=app.name,
                reason=r.reason,
                attempts=r.attempts,
            )
            for app, r in zip(apps, group, strict=True)
            if isinstance(r, FailedJob)
        ]
        if failed:
            points.failed_points.extend(failed)
            details = "; ".join(f"{f.app}: {f.reason}" for f in failed)
            warnings.warn(
                f"{len(failed)} of {len(group)} simulations failed at "
                f"config {params} ({details}); point computed from the "
                f"remaining {len(group) - len(failed)}",
                RuntimeWarning,
                stacklevel=2,
            )
        ok = [r for r in group if not isinstance(r, FailedJob)]
        if not ok:
            points.append(
                SweepPoint(
                    params=params,
                    cycles=math.nan,
                    l2_energy_j=math.nan,
                    processor_energy_j=math.nan,
                    hit_latency=math.nan,
                )
            )
            continue
        points.append(
            SweepPoint(
                params=params,
                cycles=geomean(r.cycles for r in ok),
                l2_energy_j=geomean(r.l2_energy_j for r in ok),
                processor_energy_j=geomean(
                    r.processor_energy_j for r in ok
                ),
                hit_latency=sum(r.hit_latency for r in ok) / len(ok),
            )
        )
    return points


def sweep(
    scheme: SchemeConfig,
    base: SystemConfig | None = None,
    apps: Sequence[AppProfile] = PARALLEL_SUITE,
    max_workers: int | None = None,
    **field_values: Sequence,
) -> SweepResult:
    """Simulate every combination of the given SystemConfig fields.

    ``max_workers`` > 1 distributes the whole grid over a process pool
    (``None`` keeps the engine's default); the returned points are
    identical to a serial run.  The result is a :class:`SweepResult`:
    a list of :class:`SweepPoint`, with any per-application failures
    surfaced on ``result.failed_points``.
    """
    base = base if base is not None else SystemConfig()
    combos = expand_grid(field_values)
    jobs = [
        SimJob.of(app, scheme, base.with_(**params))
        for params in combos
        for app in apps
    ]
    results = simulate_many(jobs, max_workers=max_workers)
    return aggregate_points(combos, apps, results)
