"""The DESC wire protocol: exact timing and flip-count rules.

This module is the single place where the cycle-level rules of Section 3
are pinned down.  Both the cycle-accurate link (`repro.core.transmitter`
/ `repro.core.receiver`) and the closed-form cost model
(`repro.core.analysis`) implement these rules, and property tests assert
they agree.

Terminology
-----------
A 512-bit block is sent as ``num_rounds`` *rounds*; each round moves one
chunk per data wire (Figure 4).  A round is a *time window* (Figure 10)
bounded by toggles of the shared reset/skip wire.

Timing rules
------------
Let ``s`` be the wire's skip value for the round (``None`` for basic
DESC) and ``v`` the chunk value.  Cycle 0 of a round is the cycle on
which the reset/skip wire toggles; the synchronized counters read 0 on
that cycle and increment every cycle.

* **Basic DESC** — every chunk fires: wire toggles on cycle ``v``
  (so value 2 occupies cycles 0..2, "three cycles", Figure 5).  The
  round lasts ``max(v) + 1`` cycles and the next round's reset toggle
  follows on the next cycle.
* **Value skipping** — a chunk with ``v == s`` stays silent.  The count
  list excludes the skip value, so an unskipped chunk fires on cycle
  ``fire(v, s) = v + 1 if v < s else v`` (for zero skipping this is
  simply cycle ``v``, ``v >= 1``).  If any chunk was skipped the round is
  closed by a second toggle of the reset/skip wire one cycle after the
  last data toggle (cycle 1 if everything was skipped); silent wires
  then take the skip value.  If nothing was skipped no closing toggle is
  needed — the receiver saw all chunks arrive.

Flip counts per block
---------------------
* data wires: one per unskipped chunk;
* reset/skip wire: one per round, plus one per round that skipped
  anything;
* synchronization strobe: toggles at half the clock frequency while the
  transfer is in flight, i.e. ``ceil(total_cycles / 2)`` flips.

Receiver interpretation of a reset/skip toggle (Section 3.3): a counter
reset (new round) if no chunk is pending, otherwise a skip command.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["fire_cycle", "decode_cycle", "round_duration", "TransferCost"]


def fire_cycle(value: int, skip_value: int | None) -> int | None:
    """Cycle (within the round) on which a chunk toggles its wire.

    Returns ``None`` when the chunk is skipped (``value == skip_value``).
    """
    if skip_value is None:
        return value
    if value == skip_value:
        return None
    return value + 1 if value < skip_value else value


def decode_cycle(cycle: int, skip_value: int | None) -> int:
    """Chunk value recovered from a data toggle seen on ``cycle``.

    Inverse of :func:`fire_cycle` for unskipped chunks.
    """
    if skip_value is None:
        return cycle
    if cycle < 1:
        raise ValueError(
            f"a skipping round cannot carry a data toggle on cycle {cycle}"
        )
    value = cycle - 1 if cycle - 1 < skip_value else cycle
    return value


def round_duration(last_fire_cycle: int | None, any_skipped: bool) -> int:
    """Number of cycles a round occupies, including its reset cycle.

    ``last_fire_cycle`` is the latest data-toggle cycle in the round, or
    ``None`` if every chunk was skipped.
    """
    if last_fire_cycle is None:
        if not any_skipped:
            raise ValueError("a round with no fires must have skipped chunks")
        return 2  # reset toggle on cycle 0, closing skip toggle on cycle 1
    if any_skipped:
        return last_fire_cycle + 2  # closing toggle follows the last fire
    return last_fire_cycle + 1


@dataclass(frozen=True)
class TransferCost:
    """Wire activity and latency of one or more block transfers.

    Attributes:
        data_flips: Transitions on the data wires.
        overhead_flips: Transitions on the shared reset/skip wire.
        sync_flips: Transitions on the synchronization strobe.
        cycles: Total transfer latency in clock cycles.
    """

    data_flips: int
    overhead_flips: int
    sync_flips: int
    cycles: int

    @classmethod
    def zero(cls) -> "TransferCost":
        """The additive identity: no flips, no cycles.

        The canonical starting value for cost accumulators (cache
        controllers, data paths) — use this instead of spelling out
        ``TransferCost(0, 0, 0, 0)``.
        """
        return cls(data_flips=0, overhead_flips=0, sync_flips=0, cycles=0)

    @property
    def total_flips(self) -> int:
        """All wire transitions charged to the transfer."""
        return self.data_flips + self.overhead_flips + self.sync_flips

    def __add__(self, other: "TransferCost") -> "TransferCost":
        return TransferCost(
            data_flips=self.data_flips + other.data_flips,
            overhead_flips=self.overhead_flips + other.overhead_flips,
            sync_flips=self.sync_flips + other.sync_flips,
            cycles=self.cycles + other.cycles,
        )
