"""Partitioning of cache blocks into chunks and assignment to wires.

This implements Figure 4 of the paper: a cache block is cut into
fixed-size contiguous chunks, and each chunk is assigned to a specific
data wire.  When there are more chunks than wires, wire ``w`` carries
chunks ``w``, ``w + num_wires``, ``w + 2 * num_wires`` … transmitted
successively in FIFO order (Figure 4-b).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.util import bits_to_chunks, chunks_to_bits, chunks_to_int, int_to_chunks
from repro.util.validation import require_multiple, require_positive


@dataclass(frozen=True)
class ChunkLayout:
    """Geometry of a DESC transfer: block size, chunk size, wire count.

    Parameters mirror the paper's defaults: a 512-bit cache block, 4-bit
    chunks (128 chunks total) and 128 data wires, so each wire carries a
    single chunk per block.  Narrower buses assign several chunks per
    wire and transfer them in successive *rounds*.

    Attributes:
        block_bits: Size of a transferred block in bits (512 for the L2).
        chunk_bits: Width of each chunk in bits (paper default 4).
        num_wires: Number of physical data wires.
    """

    block_bits: int = 512
    chunk_bits: int = 4
    num_wires: int = 128

    def __post_init__(self) -> None:
        require_positive("block_bits", self.block_bits)
        require_positive("chunk_bits", self.chunk_bits)
        require_positive("num_wires", self.num_wires)
        require_multiple("block_bits", self.block_bits, self.chunk_bits)
        num_chunks = self.block_bits // self.chunk_bits
        if num_chunks % self.num_wires:
            raise ValueError(
                f"{num_chunks} chunks cannot be spread evenly over "
                f"{self.num_wires} wires"
            )

    @property
    def num_chunks(self) -> int:
        """Total chunks per block (128 in the paper's default layout)."""
        return self.block_bits // self.chunk_bits

    @property
    def chunks_per_wire(self) -> int:
        """Chunks transmitted successively on each wire (rounds per block)."""
        return self.num_chunks // self.num_wires

    @property
    def num_rounds(self) -> int:
        """Alias for :attr:`chunks_per_wire`; each round moves one chunk per wire."""
        return self.chunks_per_wire

    @property
    def max_chunk_value(self) -> int:
        """Largest value a chunk can hold (15 for 4-bit chunks)."""
        return (1 << self.chunk_bits) - 1

    @cached_property
    def wire_of_chunk(self) -> np.ndarray:
        """Wire index carrying each chunk: chunk ``c`` rides wire ``c % num_wires``."""
        return np.arange(self.num_chunks, dtype=np.int64) % self.num_wires

    @cached_property
    def round_of_chunk(self) -> np.ndarray:
        """Round in which each chunk is sent: chunk ``c`` goes in round ``c // num_wires``."""
        return np.arange(self.num_chunks, dtype=np.int64) // self.num_wires

    def split(self, block: int) -> np.ndarray:
        """Split a block integer into its chunk-value array (chunk 0 = LSBs)."""
        return int_to_chunks(block, self.chunk_bits, self.num_chunks)

    def join(self, chunks: np.ndarray) -> int:
        """Reassemble a block integer from its chunk values."""
        if len(chunks) != self.num_chunks:
            raise ValueError(
                f"expected {self.num_chunks} chunks, got {len(chunks)}"
            )
        return chunks_to_int(chunks, self.chunk_bits)

    def split_bits(self, bits: np.ndarray) -> np.ndarray:
        """Split a little-endian bit array into chunk values."""
        if len(bits) != self.block_bits:
            raise ValueError(f"expected {self.block_bits} bits, got {len(bits)}")
        return bits_to_chunks(bits, self.chunk_bits)

    def join_bits(self, chunks: np.ndarray) -> np.ndarray:
        """Reassemble the little-endian bit array from chunk values."""
        return chunks_to_bits(chunks, self.chunk_bits)

    def schedule(self, chunks: np.ndarray) -> np.ndarray:
        """Arrange chunk values into a ``(num_rounds, num_wires)`` schedule.

        Entry ``[r, w]`` is the value sent on wire ``w`` during round ``r``.
        This is the FIFO order of Figure 4-b: wire ``w``'s queue holds
        chunks ``w, w + num_wires, …`` front to back.
        """
        if len(chunks) != self.num_chunks:
            raise ValueError(
                f"expected {self.num_chunks} chunks, got {len(chunks)}"
            )
        return np.asarray(chunks, dtype=np.int64).reshape(
            self.num_rounds, self.num_wires
        )

    def unschedule(self, schedule: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`schedule`: flatten rounds back to chunk order."""
        expected = (self.num_rounds, self.num_wires)
        if schedule.shape != expected:
            raise ValueError(
                f"expected schedule of shape {expected}, got {schedule.shape}"
            )
        return np.asarray(schedule, dtype=np.int64).reshape(-1)
