"""DESC itself: chunking, signaling circuits, protocol, link, cost model.

Public surface for the paper's primary contribution (Section 3):

* :class:`ChunkLayout` — block/chunk/wire geometry (Figure 4).
* :class:`DescTransmitter` / :class:`DescReceiver` — cycle-accurate
  endpoints (Figures 5, 6, 11).
* :class:`DescLink` — a full channel with wire delay and sync strobe.
* :class:`DescCostModel` / :class:`StreamCost` — closed-form, vectorized
  costs used by the system simulator.
* Skip policies (Section 3.3) and the toggle circuits of Figure 8.
* :class:`AdaptiveSkipping` / :class:`AdaptiveDescCostModel` — the
  runtime frequency-elected skipping the paper considered and dismissed
  (checked quantitatively by the ablation benchmarks).
"""

from repro.core.adaptive import AdaptiveDescCostModel, AdaptiveSkipping
from repro.core.analysis import DescCostModel, StreamCost
from repro.core.chunking import ChunkLayout
from repro.core.link import DescLink, LinkFaultReport
from repro.core.protocol import TransferCost, decode_cycle, fire_cycle, round_duration
from repro.core.receiver import CORRUPT_CHUNK, DescReceiver, ReceiverFaultEvents
from repro.core.skipping import (
    LastValueSkipping,
    NoSkipping,
    SkipPolicy,
    ZeroSkipping,
    make_policy,
)
from repro.core.toggles import ToggleDetector, ToggleGenerator, ToggleRegenerator
from repro.core.transmitter import DescTransmitter

__all__ = [
    "AdaptiveDescCostModel",
    "AdaptiveSkipping",
    "CORRUPT_CHUNK",
    "ChunkLayout",
    "DescCostModel",
    "DescLink",
    "DescReceiver",
    "DescTransmitter",
    "LastValueSkipping",
    "LinkFaultReport",
    "ReceiverFaultEvents",
    "NoSkipping",
    "SkipPolicy",
    "StreamCost",
    "ToggleDetector",
    "ToggleGenerator",
    "ToggleRegenerator",
    "TransferCost",
    "ZeroSkipping",
    "decode_cycle",
    "fire_cycle",
    "make_policy",
    "round_duration",
]
