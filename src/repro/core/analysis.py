"""Closed-form DESC transfer costs, vectorized over block streams.

This is "layer 2" of the fidelity stack (see DESIGN.md §4): given the
chunk values of whole streams of cache blocks as numpy arrays, compute
*exactly* the flips and cycles the cycle-accurate link of
:mod:`repro.core.link` would produce — including the parity-sensitive
synchronization-strobe accounting and the cross-block wire history of
last-value skipping.  Property tests in ``tests/core/test_agreement.py``
assert bit-for-bit agreement with the link on random streams.

The system simulator calls this model once per application with the full
block-value stream, which is what makes whole-paper sweeps tractable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.chunking import ChunkLayout
from repro.core.protocol import TransferCost
from repro.kernels import pipeline
from repro.kernels.batched import shifted_prev, strobe_flips

__all__ = ["StreamCost", "DescCostModel"]

_POLICIES = ("none", "zero", "last-value")


@dataclass(frozen=True)
class StreamCost:
    """Per-block transfer costs for a stream of blocks.

    Each attribute is an array with one entry per block.
    ``latency_cycles`` is the *critical-path* delivery latency of the
    block: for the fixed-beat encoders it equals ``cycles``; for DESC it
    is the average-value-based latency the paper uses for hit time and
    bank throughput (Section 5.3 — "the average value transferred by
    the zero skipped DESC is approximately five.  This value determines
    the throughput of each bank"), while ``cycles`` is the full time
    window that bounds the synchronization strobe and wire occupancy.
    """

    data_flips: np.ndarray
    overhead_flips: np.ndarray
    sync_flips: np.ndarray
    cycles: np.ndarray
    latency_cycles: np.ndarray | None = None

    @property
    def delivery_latency(self) -> np.ndarray:
        """Critical-path latency per block (defaults to ``cycles``)."""
        return self.latency_cycles if self.latency_cycles is not None else self.cycles

    @property
    def num_blocks(self) -> int:
        """Number of blocks in the stream."""
        return len(self.cycles)

    @property
    def total_flips_per_block(self) -> np.ndarray:
        """All wire transitions charged to each block."""
        return self.data_flips + self.overhead_flips + self.sync_flips

    def total(self) -> TransferCost:
        """Aggregate cost over the whole stream."""
        return TransferCost(
            data_flips=int(self.data_flips.sum()),
            overhead_flips=int(self.overhead_flips.sum()),
            sync_flips=int(self.sync_flips.sum()),
            cycles=int(self.cycles.sum()),
        )

    def block(self, index: int) -> TransferCost:
        """Cost of a single block in the stream."""
        return TransferCost(
            data_flips=int(self.data_flips[index]),
            overhead_flips=int(self.overhead_flips[index]),
            sync_flips=int(self.sync_flips[index]),
            cycles=int(self.cycles[index]),
        )


class DescCostModel:
    """Computes DESC wire activity without simulating individual cycles.

    The model is stateful in exactly the ways the hardware is: the
    last-value history of every wire and the busy-cycle parity of the
    synchronization strobe persist across calls, so feeding a stream in
    one call or block-by-block yields identical results.
    """

    #: Skip-policy names this class accepts; subclasses may extend.
    POLICY_NAMES: tuple[str, ...] = _POLICIES

    def __init__(self, layout: ChunkLayout | None = None, skip_policy: str = "zero") -> None:
        if skip_policy not in self.POLICY_NAMES:
            raise ValueError(
                f"unknown skip policy {skip_policy!r}; "
                f"expected one of {self.POLICY_NAMES}"
            )
        self._layout = layout if layout is not None else ChunkLayout()
        self._skip_policy = skip_policy
        self._last = np.zeros(self._layout.num_wires, dtype=np.int64)
        self._busy_cycles = 0

    @property
    def layout(self) -> ChunkLayout:
        """Chunk/wire geometry assumed by the model."""
        return self._layout

    @property
    def skip_policy(self) -> str:
        """Name of the value-skipping policy ("none", "zero", "last-value")."""
        return self._skip_policy

    def reset(self) -> None:
        """Clear wire history and strobe parity (fresh link)."""
        self._last[:] = 0
        self._busy_cycles = 0

    def block_cost(self, chunks: np.ndarray) -> TransferCost:
        """Cost of transferring one block (advances internal history)."""
        stream = self.stream_cost(np.asarray(chunks, dtype=np.int64)[None, :])
        return stream.block(0)

    def stream_cost(self, blocks: np.ndarray) -> StreamCost:
        """Costs for a ``(num_blocks, num_chunks)`` stream of blocks."""
        blocks = np.asarray(blocks, dtype=np.int64)
        if blocks.ndim != 2 or blocks.shape[1] != self._layout.num_chunks:
            raise ValueError(
                f"expected blocks of shape (n, {self._layout.num_chunks}), "
                f"got {blocks.shape}"
            )
        num_blocks = blocks.shape[0]
        rounds = self._layout.num_rounds
        wires = self._layout.num_wires
        if num_blocks == 0:
            empty = np.zeros(0, dtype=np.int64)
            return StreamCost(empty, empty, empty, empty)

        # values[t, w]: chunk sent on wire w in global round t (time order).
        values = blocks.reshape(num_blocks * rounds, wires)
        if type(self) is DescCostModel:
            # Stock fire schedules go through the pipeline kernels (one
            # C call over the whole stream when native is loaded, the
            # shared NumPy twin otherwise — byte-identical either way).
            arrays = pipeline.desc_stream_arrays(
                values, num_blocks, rounds, wires, self._skip_policy, self._last
            )
        else:
            # Subclasses may override _fire_schedule; honour it.
            skipped, fire = self._fire_schedule(values)
            arrays = pipeline.schedule_arrays(skipped, fire, num_blocks, rounds)
        data_flips, overhead_flips, cycles, fire_sum, per_round_data = arrays

        # Critical-path latency: the mean fire cycle of the round's
        # transmitted chunks (the paper's average-value latency model)
        # plus the strobe overhead — one cycle for basic DESC's final
        # toggle, two when a closing skip toggle is needed.  Float math
        # stays here, in one formulation, so every tier agrees exactly.
        counts = np.maximum(per_round_data, 1)
        mean_fire = fire_sum.astype(np.float64) / counts
        extra = 1.0 + (self._skip_policy != "none")
        round_latency = np.where(per_round_data > 0, mean_fire + extra, 2.0)
        latency = round_latency.reshape(num_blocks, rounds).sum(axis=1)

        # Sync strobe: one flip per two busy cycles, with parity carried
        # across blocks (and across calls) exactly as the link does.
        sync_flips, self._busy_cycles = strobe_flips(cycles, self._busy_cycles)

        # Wire history after the stream: the last round's delivered values.
        self._last = values[-1].copy()
        return StreamCost(
            data_flips=data_flips.astype(np.int64),
            overhead_flips=overhead_flips.astype(np.int64),
            sync_flips=sync_flips.astype(np.int64),
            cycles=cycles.astype(np.int64),
            latency_cycles=latency,
        )

    def _fire_schedule(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-round skip mask and fire cycles (protocol.fire_cycle, vectorized)."""
        if self._skip_policy == "none":
            skipped = np.zeros(values.shape, dtype=bool)
            return skipped, values
        if self._skip_policy == "zero":
            skipped = values == 0
            return skipped, values
        # Last-value skipping: the skip value of wire w in round t is the
        # value delivered on w in round t-1 (the policy observes skipped
        # chunks too, and they deliver the skip value itself).
        prev = shifted_prev(values, self._last)
        skipped = values == prev
        fire = values + (values < prev).astype(np.int64)
        return skipped, fire
