"""Cycle-accurate DESC transmitter (Section 3.2.1, Figures 5/6/11).

The transmitter owns one FIFO queue per data wire (filled by
:meth:`DescTransmitter.load_block`), a free-running counter, a toggle
generator per wire, and the shared reset/skip wire.  Calling
:meth:`DescTransmitter.step` advances one clock cycle and returns the
levels currently driven on the wires.

The implementation matches ``repro.core.protocol`` exactly; the
receiver (`repro.core.receiver`) decodes using only the observed wire
levels and its own copy of the skip policy.
"""

from __future__ import annotations

import numpy as np

from repro.core.chunking import ChunkLayout
from repro.core.protocol import fire_cycle
from repro.core.skipping import NoSkipping, SkipPolicy
from repro.core.toggles import ToggleGenerator

__all__ = ["DescTransmitter"]


class DescTransmitter:
    """Drives a block onto the DESC wires, one round at a time."""

    def __init__(self, layout: ChunkLayout, policy: SkipPolicy | None = None) -> None:
        self._layout = layout
        self._policy = policy if policy is not None else NoSkipping()
        self._reset_wire = ToggleGenerator()
        self._data_wires = [ToggleGenerator() for _ in range(layout.num_wires)]
        self._pending_rounds: list[np.ndarray] = []
        self._fire_cycles: np.ndarray | None = None
        self._any_skipped = False
        self._cycle_in_round = -1
        self._close_cycle: int | None = None
        self._round_values = np.zeros(layout.num_wires, dtype=np.int64)

    @property
    def layout(self) -> ChunkLayout:
        """Chunk/wire geometry this transmitter drives."""
        return self._layout

    @property
    def policy(self) -> SkipPolicy:
        """The transmitter-side skip policy instance."""
        return self._policy

    @property
    def busy(self) -> bool:
        """Whether a block transfer is still in flight."""
        return bool(self._pending_rounds) or self._fire_cycles is not None

    @property
    def data_flips(self) -> int:
        """Total transitions driven on the data wires so far."""
        return sum(wire.transitions for wire in self._data_wires)

    @property
    def overhead_flips(self) -> int:
        """Total transitions driven on the reset/skip wire so far."""
        return self._reset_wire.transitions

    def wire_levels(self) -> np.ndarray:
        """Current levels: index 0 is the reset/skip wire, then data wires."""
        levels = np.empty(1 + self._layout.num_wires, dtype=np.uint8)
        levels[0] = self._reset_wire.level
        for i, wire in enumerate(self._data_wires):
            levels[1 + i] = wire.level
        return levels

    def load_block(self, chunks: np.ndarray) -> None:
        """Queue a block (chunk-value array) for transmission.

        Raises ``RuntimeError`` if a transfer is already in flight — the
        cache controller must wait for the ready signal (``not busy``).
        """
        if self.busy:
            raise RuntimeError("transmitter is busy; wait for the ready signal")
        schedule = self._layout.schedule(np.asarray(chunks, dtype=np.int64))
        self._pending_rounds = [schedule[r] for r in range(schedule.shape[0])]

    def step(self) -> np.ndarray:
        """Advance one clock cycle; return the driven wire levels.

        An idle transmitter holds its levels (no transitions).
        """
        if self._fire_cycles is None:
            if not self._pending_rounds:
                return self.wire_levels()
            self._begin_round(self._pending_rounds.pop(0))
            return self.wire_levels()

        self._cycle_in_round += 1
        assert self._fire_cycles is not None
        for wire, cycle in enumerate(self._fire_cycles):
            if cycle == self._cycle_in_round:
                self._data_wires[wire].pulse()
        if self._close_cycle is not None and self._cycle_in_round >= self._close_cycle:
            if self._any_skipped:
                self._reset_wire.pulse()  # closing skip toggle
            self._finish_round()
        return self.wire_levels()

    def _begin_round(self, values: np.ndarray) -> None:
        """Cycle 0 of a round: toggle reset/skip, compute fire cycles."""
        self._reset_wire.pulse()
        self._cycle_in_round = 0
        fire = np.full(self._layout.num_wires, -1, dtype=np.int64)
        self._any_skipped = False
        for wire, value in enumerate(values):
            cycle = fire_cycle(int(value), self._policy.skip_value(wire))
            if cycle is None:
                self._any_skipped = True
            else:
                fire[wire] = cycle
        self._round_values = values
        unskipped = fire[fire >= 0]
        last_fire = int(unskipped.max()) if unskipped.size else None
        if self._any_skipped:
            self._close_cycle = 1 if last_fire is None else last_fire + 1
        else:
            self._close_cycle = last_fire  # round ends with the final data toggle
        self._fire_cycles = fire
        # A chunk may fire on cycle 0 itself (value 0 under basic DESC).
        for wire, cycle in enumerate(fire):
            if cycle == 0:
                self._data_wires[wire].pulse()
        if self._close_cycle == 0:
            self._finish_round()

    def _finish_round(self) -> None:
        """Commit per-wire history and arm the next round (next cycle)."""
        for wire, value in enumerate(self._round_values):
            self._policy.observe(wire, int(value))
        self._fire_cycles = None
        self._close_cycle = None
        self._cycle_in_round = -1
