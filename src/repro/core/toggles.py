"""Toggle generator, detector, and regenerator circuits (Figure 8).

DESC signals by *toggling* wires rather than driving levels, so the
endpoints need three small circuits:

* :class:`ToggleGenerator` — flips its output wire each time it is pulsed
  (transmitter side).
* :class:`ToggleDetector` — compares the wire against a delayed copy and
  emits a pulse on every edge (receiver side).
* :class:`ToggleRegenerator` — forwards toggles from one of two H-tree
  branches upstream, remembering the previous state of each segment so a
  branch switch does not create spurious edges (used where the vertical
  H-tree is shared between subbanks, Figure 7).

Each circuit counts the transitions it drives so energy accounting can
audit flip counts end to end.
"""

from __future__ import annotations

__all__ = ["ToggleGenerator", "ToggleDetector", "ToggleRegenerator"]


class ToggleGenerator:
    """Drives a wire by flipping its level once per ``pulse()`` call."""

    def __init__(self, initial_level: int = 0) -> None:
        if initial_level not in (0, 1):
            raise ValueError(f"initial_level must be 0 or 1, got {initial_level}")
        self._level = initial_level
        self._transitions = 0

    @property
    def level(self) -> int:
        """Current logic level on the driven wire."""
        return self._level

    @property
    def transitions(self) -> int:
        """Total transitions driven since construction."""
        return self._transitions

    def pulse(self) -> int:
        """Flip the output and return the new level."""
        self._level ^= 1
        self._transitions += 1
        return self._level


class ToggleDetector:
    """Emits a pulse whenever the observed wire changes level.

    Models the XOR-against-delayed-input circuit of Figure 8-b: the
    detector holds the last observed level and reports an edge when the
    new sample differs.
    """

    def __init__(self, initial_level: int = 0) -> None:
        if initial_level not in (0, 1):
            raise ValueError(f"initial_level must be 0 or 1, got {initial_level}")
        self._last = initial_level
        self._edges = 0

    @property
    def edges(self) -> int:
        """Total edges detected since construction."""
        return self._edges

    def sample(self, level: int) -> bool:
        """Observe the wire; return ``True`` if an edge occurred."""
        if level not in (0, 1):
            raise ValueError(f"level must be 0 or 1, got {level}")
        edge = level != self._last
        self._last = level
        if edge:
            self._edges += 1
        return edge

    def resync(self, level: int) -> None:
        """Re-arm on a wire without reporting an edge.

        Models re-enabling a clock-gated detector: the delayed-input
        comparator of Figure 8-b sees the current level on both inputs,
        so missed transitions never appear as stale edges.
        """
        if level not in (0, 1):
            raise ValueError(f"level must be 0 or 1, got {level}")
        self._last = level


class ToggleRegenerator:
    """Merges toggles from two downstream branches onto one upstream wire.

    The select input (driven by address bits) picks the active branch.
    The regenerator keeps an independent :class:`ToggleDetector` per
    branch, so stale levels on the inactive branch never propagate, and a
    :class:`ToggleGenerator` for the upstream segment.
    """

    def __init__(self) -> None:
        self._detectors = (ToggleDetector(), ToggleDetector())
        self._output = ToggleGenerator()

    @property
    def output_level(self) -> int:
        """Current level of the upstream wire segment."""
        return self._output.level

    @property
    def upstream_transitions(self) -> int:
        """Transitions driven on the upstream segment."""
        return self._output.transitions

    def sample(self, branch0_level: int, branch1_level: int, select: int) -> bool:
        """Observe both branches; forward an edge from the selected one.

        Both detectors always sample (so their state tracks the physical
        wires), but only an edge on the selected branch is regenerated
        upstream.  Returns ``True`` if the upstream wire toggled.
        """
        if select not in (0, 1):
            raise ValueError(f"select must be 0 or 1, got {select}")
        edge0 = self._detectors[0].sample(branch0_level)
        edge1 = self._detectors[1].sample(branch1_level)
        edge = edge1 if select else edge0
        if edge:
            self._output.pulse()
        return edge
