"""Cycle-accurate DESC receiver (Section 3.2.2).

The receiver mirrors the transmitter: an internal counter restarted by
each reset toggle, one toggle detector per wire, and a copy of the skip
policy.  It reconstructs chunk values *purely* from the observed wire
levels — it never peeks at the transmitter's queues — which is what the
round-trip property tests rely on.

A toggle on the shared reset/skip wire is interpreted as the paper
specifies: a counter reset (start of a round) when no chunk is pending,
or a skip command (assign the skip value to all silent wires) when some
chunk receivers are still waiting.
"""

from __future__ import annotations

import numpy as np

from repro.core.chunking import ChunkLayout
from repro.core.protocol import decode_cycle
from repro.core.skipping import NoSkipping, SkipPolicy
from repro.core.toggles import ToggleDetector

__all__ = ["DescReceiver"]


class DescReceiver:
    """Recovers blocks from DESC wire activity, one round at a time."""

    def __init__(self, layout: ChunkLayout, policy: SkipPolicy | None = None) -> None:
        self._layout = layout
        self._policy = policy if policy is not None else NoSkipping()
        self._reset_detector = ToggleDetector()
        self._data_detectors = [ToggleDetector() for _ in range(layout.num_wires)]
        self._in_round = False
        self._cycle_in_round = -1
        self._pending: np.ndarray = np.zeros(layout.num_wires, dtype=bool)
        self._round_values = np.zeros(layout.num_wires, dtype=np.int64)
        self._completed_rounds: list[np.ndarray] = []
        #: Blocks fully received, in arrival order (chunk-value arrays).
        self.received_blocks: list[np.ndarray] = []

    @property
    def layout(self) -> ChunkLayout:
        """Chunk/wire geometry this receiver expects."""
        return self._layout

    @property
    def policy(self) -> SkipPolicy:
        """The receiver-side skip policy instance."""
        return self._policy

    @property
    def in_round(self) -> bool:
        """Whether a round is currently being decoded."""
        return self._in_round

    def resync(self, levels: np.ndarray) -> None:
        """Re-arm all toggle detectors on the current wire levels.

        Used when a clock-gated receiver (an unselected subbank,
        Figure 7) is re-enabled: transitions that happened while it was
        gated must not surface as edges (Figure 8-b's delayed-input
        detector guarantees this in hardware).
        """
        if len(levels) != 1 + self._layout.num_wires:
            raise ValueError(
                f"expected {1 + self._layout.num_wires} wire levels, "
                f"got {len(levels)}"
            )
        self._reset_detector.resync(int(levels[0]))
        for wire, detector in enumerate(self._data_detectors):
            detector.resync(int(levels[1 + wire]))

    def step(self, levels: np.ndarray) -> None:
        """Consume one cycle of wire levels (reset/skip first, then data)."""
        if len(levels) != 1 + self._layout.num_wires:
            raise ValueError(
                f"expected {1 + self._layout.num_wires} wire levels, "
                f"got {len(levels)}"
            )
        if self._in_round:
            self._cycle_in_round += 1

        reset_edge = self._reset_detector.sample(int(levels[0]))
        if reset_edge:
            if self._in_round and self._pending.any():
                self._apply_skip_command()
            else:
                self._begin_round()

        for wire, detector in enumerate(self._data_detectors):
            edge = detector.sample(int(levels[1 + wire]))
            if not edge:
                continue
            if not self._in_round or not self._pending[wire]:
                raise RuntimeError(
                    f"unexpected data toggle on wire {wire}: no chunk pending"
                )
            skip = self._policy.skip_value(wire)
            self._round_values[wire] = decode_cycle(self._cycle_in_round, skip)
            self._pending[wire] = False

        if self._in_round and not self._pending.any():
            self._finish_round()

    def _begin_round(self) -> None:
        """Reset toggle with nothing pending: a new round starts this cycle."""
        self._in_round = True
        self._cycle_in_round = 0
        self._pending[:] = True
        self._round_values[:] = -1

    def _apply_skip_command(self) -> None:
        """Reset/skip toggle with chunks pending: silent wires take the skip value."""
        for wire in np.flatnonzero(self._pending):
            skip = self._policy.skip_value(int(wire))
            if skip is None:
                raise RuntimeError(
                    "skip command received but the policy does not skip"
                )
            self._round_values[wire] = skip
        self._pending[:] = False
        # _finish_round runs from step() since pending is now empty — but
        # step() already passed the completion check when it called us, so
        # finish explicitly here.
        self._finish_round()

    def _finish_round(self) -> None:
        """Commit the round; assemble the block once all rounds arrived."""
        if not self._in_round:
            return
        for wire, value in enumerate(self._round_values):
            self._policy.observe(wire, int(value))
        self._completed_rounds.append(self._round_values.copy())
        self._in_round = False
        self._cycle_in_round = -1
        if len(self._completed_rounds) == self._layout.num_rounds:
            schedule = np.stack(self._completed_rounds)
            self.received_blocks.append(self._layout.unschedule(schedule))
            self._completed_rounds = []
