"""Cycle-accurate DESC receiver (Section 3.2.2).

The receiver mirrors the transmitter: an internal counter restarted by
each reset toggle, one toggle detector per wire, and a copy of the skip
policy.  It reconstructs chunk values *purely* from the observed wire
levels — it never peeks at the transmitter's queues — which is what the
round-trip property tests rely on.

A toggle on the shared reset/skip wire is interpreted as the paper
specifies: a counter reset (start of a round) when no chunk is pending,
or a skip command (assign the skip value to all silent wires) when some
chunk receivers are still waiting.

Fault tolerance
---------------
In the default **strict** mode any protocol violation raises — the
right behavior for a fault-free link, where a violation is a bug.  A
link carrying a fault injector constructs the receiver with
``strict=False``, which turns violations into *detected corruption
events* instead:

* an unexpected data toggle (no round open, or the chunk already
  latched) is counted and ignored;
* a data toggle that decodes outside the chunk-value range (a drifted
  counter) marks the chunk corrupt;
* a **round-boundary watchdog** abandons any round that runs past the
  longest legal window, commits sentinel values for the still-pending
  chunks (keeping block framing intact), and flags the receiver as
  *desynchronized* until the link drives a resync strobe.

Sentinel value: a chunk the receiver knows it lost is committed as
``-1``, so downstream consumers can separate detected losses from
silently wrong values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.chunking import ChunkLayout
from repro.core.protocol import decode_cycle
from repro.core.skipping import NoSkipping, SkipPolicy
from repro.core.toggles import ToggleDetector

__all__ = ["DescReceiver", "ReceiverFaultEvents", "CORRUPT_CHUNK"]

#: Sentinel chunk value for a detected (not silent) loss.
CORRUPT_CHUNK = -1


@dataclass
class ReceiverFaultEvents:
    """Counters of the anomalies a non-strict receiver has absorbed.

    Attributes:
        spurious_toggles: Data toggles with no chunk pending.
        out_of_range_decodes: Toggles decoding past the chunk range.
        watchdog_aborts: Rounds abandoned by the round-boundary watchdog.
        resyncs: Resync strobes consumed.
    """

    spurious_toggles: int = 0
    out_of_range_decodes: int = 0
    watchdog_aborts: int = 0
    resyncs: int = 0

    @property
    def detected(self) -> int:
        """All anomalies the receiver itself noticed."""
        return (
            self.spurious_toggles + self.out_of_range_decodes
            + self.watchdog_aborts
        )


class DescReceiver:
    """Recovers blocks from DESC wire activity, one round at a time."""

    def __init__(
        self,
        layout: ChunkLayout,
        policy: SkipPolicy | None = None,
        strict: bool = True,
    ) -> None:
        self._layout = layout
        self._policy = policy if policy is not None else NoSkipping()
        self._strict = strict
        self._reset_detector = ToggleDetector()
        self._data_detectors = [ToggleDetector() for _ in range(layout.num_wires)]
        self._in_round = False
        self._cycle_in_round = -1
        self._pending: np.ndarray = np.zeros(layout.num_wires, dtype=bool)
        self._round_values = np.zeros(layout.num_wires, dtype=np.int64)
        self._completed_rounds: list[np.ndarray] = []
        self._desynced = False
        # A legal round's last event is the closing toggle one cycle
        # after a fire on max_chunk_value + 1 (skipping shifts fires up
        # by one); anything longer means the counters disagree.
        self._watchdog_limit = layout.max_chunk_value + 2
        #: Anomaly counters (only advance when ``strict=False``).
        self.fault_events = ReceiverFaultEvents()
        #: Blocks fully received, in arrival order (chunk-value arrays).
        self.received_blocks: list[np.ndarray] = []

    @property
    def layout(self) -> ChunkLayout:
        """Chunk/wire geometry this receiver expects."""
        return self._layout

    @property
    def policy(self) -> SkipPolicy:
        """The receiver-side skip policy instance."""
        return self._policy

    @property
    def in_round(self) -> bool:
        """Whether a round is currently being decoded."""
        return self._in_round

    @property
    def strict(self) -> bool:
        """Whether protocol violations raise (fault-free link) or count."""
        return self._strict

    @property
    def desynced(self) -> bool:
        """Whether the watchdog has declared the counters out of sync.

        Set by a watchdog abort; cleared by :meth:`resync` with
        ``abandon_partial=True`` (the link's recovery strobe).
        """
        return self._desynced

    def perturb_counter(self, delta: int) -> None:
        """Mislatch the round counter by ``delta`` (fault injection only).

        Models a single-event upset in the receiver's synchronized
        counter: every later toggle in the round decodes shifted.
        Outside a round the upset is harmless — the next reset toggle
        reloads the counter.
        """
        if self._in_round:
            self._cycle_in_round += delta

    def resync(self, levels: np.ndarray, abandon_partial: bool = False) -> None:
        """Re-arm all toggle detectors on the current wire levels.

        Used when a clock-gated receiver (an unselected subbank,
        Figure 7) is re-enabled: transitions that happened while it was
        gated must not surface as edges (Figure 8-b's delayed-input
        detector guarantees this in hardware).

        With ``abandon_partial=True`` this is the receiving half of the
        link's **recovery strobe**: in addition to re-arming the
        detectors, any partially decoded round *and* any completed
        rounds of a partially received block are discarded, and the
        desynchronized flag is cleared — the endpoints restart from a
        known-clean state.
        """
        if len(levels) != 1 + self._layout.num_wires:
            raise ValueError(
                f"expected {1 + self._layout.num_wires} wire levels, "
                f"got {len(levels)}"
            )
        self._reset_detector.resync(int(levels[0]))
        for wire, detector in enumerate(self._data_detectors):
            detector.resync(int(levels[1 + wire]))
        if abandon_partial:
            self._in_round = False
            self._cycle_in_round = -1
            self._pending[:] = False
            self._completed_rounds.clear()
            self._desynced = False
            self.fault_events.resyncs += 1

    def step(self, levels: np.ndarray) -> None:
        """Consume one cycle of wire levels (reset/skip first, then data)."""
        if len(levels) != 1 + self._layout.num_wires:
            raise ValueError(
                f"expected {1 + self._layout.num_wires} wire levels, "
                f"got {len(levels)}"
            )
        if self._in_round:
            self._cycle_in_round += 1
            if not self._strict and self._cycle_in_round > self._watchdog_limit:
                self._watchdog_abort()

        reset_edge = self._reset_detector.sample(int(levels[0]))
        if reset_edge:
            if self._in_round and self._pending.any():
                self._apply_skip_command()
            else:
                self._begin_round()

        for wire, detector in enumerate(self._data_detectors):
            edge = detector.sample(int(levels[1 + wire]))
            if not edge:
                continue
            if not self._in_round or not self._pending[wire]:
                if self._strict:
                    raise RuntimeError(
                        f"unexpected data toggle on wire {wire}: no chunk pending"
                    )
                self.fault_events.spurious_toggles += 1
                continue
            skip = self._policy.skip_value(wire)
            value = self._decode(wire, skip)
            self._round_values[wire] = value
            self._pending[wire] = False

        if self._in_round and not self._pending.any():
            self._finish_round()

    def _decode(self, wire: int, skip: int | None) -> int:
        """Decode one data toggle, absorbing fault-mode violations."""
        if self._strict:
            return decode_cycle(self._cycle_in_round, skip)
        try:
            value = decode_cycle(self._cycle_in_round, skip)
        except ValueError:
            # A toggle on cycle 0 of a skipping round: physically a
            # spurious edge racing the reset toggle.
            self.fault_events.spurious_toggles += 1
            return CORRUPT_CHUNK
        if value > self._layout.max_chunk_value or value < 0:
            # A drifted counter latched an impossible count.
            self.fault_events.out_of_range_decodes += 1
            return CORRUPT_CHUNK
        return value

    def _watchdog_abort(self) -> None:
        """The round overran every legal window: the counters disagree.

        Commits the round with sentinel values for the pending chunks —
        keeping the rounds-per-block framing intact — and marks the
        receiver desynchronized until the link resyncs it.
        """
        self.fault_events.watchdog_aborts += 1
        self._desynced = True
        self._round_values[self._pending] = CORRUPT_CHUNK
        self._pending[:] = False
        self._finish_round()

    def _begin_round(self) -> None:
        """Reset toggle with nothing pending: a new round starts this cycle."""
        self._in_round = True
        self._cycle_in_round = 0
        self._pending[:] = True
        self._round_values[:] = -1

    def _apply_skip_command(self) -> None:
        """Reset/skip toggle with chunks pending: silent wires take the skip value."""
        for wire in np.flatnonzero(self._pending):
            skip = self._policy.skip_value(int(wire))
            if skip is None:
                if self._strict:
                    raise RuntimeError(
                        "skip command received but the policy does not skip"
                    )
                # A glitched strobe closed a basic-DESC round early: the
                # still-pending chunks are lost, but we saw it happen.
                self.fault_events.spurious_toggles += 1
                skip = CORRUPT_CHUNK
            self._round_values[wire] = skip
        self._pending[:] = False
        # _finish_round runs from step() since pending is now empty — but
        # step() already passed the completion check when it called us, so
        # finish explicitly here.
        self._finish_round()

    def _finish_round(self) -> None:
        """Commit the round; assemble the block once all rounds arrived."""
        if not self._in_round:
            return
        for wire, value in enumerate(self._round_values):
            if value != CORRUPT_CHUNK:
                self._policy.observe(wire, int(value))
        self._completed_rounds.append(self._round_values.copy())
        self._in_round = False
        self._cycle_in_round = -1
        if len(self._completed_rounds) == self._layout.num_rounds:
            schedule = np.stack(self._completed_rounds)
            self.received_blocks.append(self._layout.unschedule(schedule))
            self._completed_rounds = []
