"""A complete DESC link: transmitter, delayed wires, receiver, sync strobe.

:class:`DescLink` wires a :class:`~repro.core.transmitter.DescTransmitter`
to a :class:`~repro.core.receiver.DescReceiver` through a fixed-delay
pipe that models the equalized propagation delay of the cache H-tree
(Section 3.2.2: "Because of the equalized transmission delay of the
wires … the content of the DESC receiver counter at the time the strobe
is received is always the same as the content of the transmitter counter
at the time the strobe is transmitted").

The link also drives the synchronization strobe — a wire that toggles at
half the clock frequency while a transfer is in flight (Section 3.1) —
and accounts for its transitions, as the paper does.

This is the reference ("layer 1") implementation; the closed-form model
in :mod:`repro.core.analysis` is property-tested against it.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.core.chunking import ChunkLayout
from repro.core.protocol import TransferCost
from repro.core.receiver import DescReceiver
from repro.core.skipping import SkipPolicy, make_policy
from repro.core.transmitter import DescTransmitter

__all__ = ["DescLink"]


class DescLink:
    """Synchronous point-to-point DESC channel with a wire delay."""

    def __init__(
        self,
        layout: ChunkLayout | None = None,
        skip_policy: str | SkipPolicy = "none",
        wire_delay: int = 0,
    ) -> None:
        if wire_delay < 0:
            raise ValueError(f"wire_delay must be non-negative, got {wire_delay}")
        self._layout = layout if layout is not None else ChunkLayout()
        if isinstance(skip_policy, SkipPolicy):
            # Each endpoint gets its own fresh copy; the protocol keeps
            # them coherent by observing the same delivered values.
            self._tx_policy: SkipPolicy = skip_policy.clone()
            self._rx_policy: SkipPolicy = skip_policy.clone()
        else:
            self._tx_policy = make_policy(skip_policy, self._layout.num_wires)
            self._rx_policy = make_policy(skip_policy, self._layout.num_wires)
        self.transmitter = DescTransmitter(self._layout, self._tx_policy)
        self.receiver = DescReceiver(self._layout, self._rx_policy)
        self._wire_delay = wire_delay
        idle_levels = self.transmitter.wire_levels()
        self._pipe: deque[np.ndarray] = deque(
            [idle_levels.copy() for _ in range(wire_delay)]
        )
        self._sync_level = 0
        self._sync_flips = 0
        self._cycles = 0
        self._busy_cycles = 0

    @property
    def layout(self) -> ChunkLayout:
        """Chunk/wire geometry of the link."""
        return self._layout

    @property
    def wire_delay(self) -> int:
        """Propagation delay, in cycles, applied equally to every wire."""
        return self._wire_delay

    @property
    def cycles(self) -> int:
        """Total cycles stepped since construction."""
        return self._cycles

    @property
    def busy_cycles(self) -> int:
        """Cycles during which a transfer was in flight at the transmitter."""
        return self._busy_cycles

    @property
    def sync_flips(self) -> int:
        """Transitions driven on the synchronization strobe."""
        return self._sync_flips

    def cost_so_far(self) -> TransferCost:
        """Aggregate wire activity since construction."""
        return TransferCost(
            data_flips=self.transmitter.data_flips,
            overhead_flips=self.transmitter.overhead_flips,
            sync_flips=self._sync_flips,
            cycles=self._busy_cycles,
        )

    def step(self) -> None:
        """Advance the whole link by one clock cycle."""
        busy_before = self.transmitter.busy
        levels = self.transmitter.step()
        if busy_before:
            self._busy_cycles += 1
            # The sync strobe toggles at half the clock rate while a
            # transfer is in flight (one flip per two busy cycles).
            if self._busy_cycles % 2 == 1:
                self._sync_level ^= 1
                self._sync_flips += 1
        self._pipe.append(levels)
        delayed = self._pipe.popleft()
        self.receiver.step(delayed)
        self._cycles += 1

    def send_block(self, chunks: np.ndarray, max_cycles: int | None = None) -> TransferCost:
        """Transfer one block and return its wire activity and latency.

        Runs the clock until the receiver has assembled the block; the
        returned ``cycles`` is the transmitter-side occupancy (excluding
        the fixed wire delay, which is the same for every scheme).
        """
        before = self.cost_so_far()
        blocks_before = len(self.receiver.received_blocks)
        self.transmitter.load_block(chunks)
        limit = max_cycles if max_cycles is not None else self._transfer_bound()
        for _ in range(limit):
            self.step()
            if len(self.receiver.received_blocks) > blocks_before:
                break
        else:
            raise RuntimeError(
                f"block transfer did not complete within {limit} cycles"
            )
        after = self.cost_so_far()
        return TransferCost(
            data_flips=after.data_flips - before.data_flips,
            overhead_flips=after.overhead_flips - before.overhead_flips,
            sync_flips=after.sync_flips - before.sync_flips,
            cycles=after.cycles - before.cycles,
        )

    def _transfer_bound(self) -> int:
        """A safe upper bound on one block's transfer time."""
        worst_round = self._layout.max_chunk_value + 3
        return self._layout.num_rounds * worst_round + self._wire_delay + 4
