"""A complete DESC link: transmitter, delayed wires, receiver, sync strobe.

:class:`DescLink` wires a :class:`~repro.core.transmitter.DescTransmitter`
to a :class:`~repro.core.receiver.DescReceiver` through a fixed-delay
pipe that models the equalized propagation delay of the cache H-tree
(Section 3.2.2: "Because of the equalized transmission delay of the
wires … the content of the DESC receiver counter at the time the strobe
is received is always the same as the content of the transmitter counter
at the time the strobe is transmitted").

The link also drives the synchronization strobe — a wire that toggles at
half the clock frequency while a transfer is in flight (Section 3.1) —
and accounts for its transitions, as the paper does.

Fault injection and recovery
----------------------------
A link built with a fault ``injector`` (see :mod:`repro.faults`)
perturbs the *delivered* wire levels every cycle and runs its receiver
in non-strict mode: protocol violations become detected-corruption
events instead of exceptions.  Two recovery mechanisms then keep the
endpoints usable:

* a **periodic resync strobe** (``resync_interval`` blocks): the link
  stalls, flushes the wire pipe, re-arms every receiver toggle detector
  on the delivered levels, discards partial receive state, and resets
  both endpoints' skip-policy history to the power-up state.  The
  strobe's wire activity and stall cycles are charged to the link's
  :class:`~repro.core.protocol.TransferCost` (``resync_flips`` /
  ``resync_cycles``), so fault campaigns can price recovery in energy.
* a **block watchdog** in :meth:`send_block`: when a transfer fails to
  assemble within the protocol bound (lost toggles leave chunks pending
  forever), the block is declared lost — a *detected* failure — and a
  forced resync restores synchronization before the next block.

With no injector and no resync interval the link is byte-identical to
the fault-free implementation: the strict receiver raises on any
violation and every new accounting field stays zero.

This is the reference ("layer 1") implementation; the closed-form model
in :mod:`repro.core.analysis` is property-tested against it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.chunking import ChunkLayout
from repro.core.protocol import TransferCost
from repro.core.receiver import DescReceiver, ReceiverFaultEvents
from repro.core.skipping import SkipPolicy, make_policy
from repro.core.transmitter import DescTransmitter

if TYPE_CHECKING:  # pragma: no cover - types only (core must not need faults)
    from repro.faults.injector import LinkFaultInjector

__all__ = ["DescLink", "LinkFaultReport"]

#: Wire activity of one resync strobe: the dedicated strobe pulses once
#: (up and back down) so a re-enabled receiver sees a clean edge pair.
RESYNC_STROBE_FLIPS = 2
#: Stall cycles of the strobe itself (the pipe flush adds wire_delay).
RESYNC_PULSE_CYCLES = 2


@dataclass(frozen=True)
class LinkFaultReport:
    """Fault/recovery accounting of one link's lifetime.

    Attributes:
        blocks_sent: Blocks loaded into the transmitter.
        blocks_delivered: Blocks the receiver fully assembled.
        blocks_lost: Transfers abandoned by the block watchdog.
        resyncs: Resync strobes driven (periodic + forced).
        resync_flips: Wire transitions charged to resync strobes.
        resync_cycles: Stall cycles charged to resync strobes.
        recovery_latencies: Cycles from each detected desynchronization
            to the resync that cleared it.
        receiver_events: The receiver's anomaly counters.
    """

    blocks_sent: int
    blocks_delivered: int
    blocks_lost: int
    resyncs: int
    resync_flips: int
    resync_cycles: int
    recovery_latencies: tuple[int, ...] = ()
    receiver_events: ReceiverFaultEvents = field(
        default_factory=ReceiverFaultEvents
    )

    @property
    def mean_recovery_latency(self) -> float:
        """Mean detection-to-resync latency in cycles (0 when none)."""
        if not self.recovery_latencies:
            return 0.0
        return sum(self.recovery_latencies) / len(self.recovery_latencies)


class DescLink:
    """Synchronous point-to-point DESC channel with a wire delay."""

    def __init__(
        self,
        layout: ChunkLayout | None = None,
        skip_policy: str | SkipPolicy = "none",
        wire_delay: int = 0,
        injector: "LinkFaultInjector | None" = None,
        resync_interval: int | None = None,
    ) -> None:
        if wire_delay < 0:
            raise ValueError(f"wire_delay must be non-negative, got {wire_delay}")
        if resync_interval is not None and resync_interval < 1:
            raise ValueError(
                f"resync_interval must be >= 1, got {resync_interval}"
            )
        self._layout = layout if layout is not None else ChunkLayout()
        if isinstance(skip_policy, SkipPolicy):
            # Each endpoint gets its own fresh copy; the protocol keeps
            # them coherent by observing the same delivered values.
            self._tx_policy: SkipPolicy = skip_policy.clone()
            self._rx_policy: SkipPolicy = skip_policy.clone()
        else:
            self._tx_policy = make_policy(skip_policy, self._layout.num_wires)
            self._rx_policy = make_policy(skip_policy, self._layout.num_wires)
        self._injector = injector
        self._resync_interval = resync_interval
        self.transmitter = DescTransmitter(self._layout, self._tx_policy)
        self.receiver = DescReceiver(
            self._layout, self._rx_policy, strict=injector is None
        )
        self._wire_delay = wire_delay
        idle_levels = self.transmitter.wire_levels()
        self._pipe: deque[np.ndarray] = deque(
            [idle_levels.copy() for _ in range(wire_delay)]
        )
        self._sync_level = 0
        self._sync_flips = 0
        self._cycles = 0
        self._busy_cycles = 0
        self._blocks_sent = 0
        self._blocks_lost = 0
        self._resyncs = 0
        self._resync_flips = 0
        self._resync_cycles = 0
        self._desync_seen_at: int | None = None
        self._recovery_latencies: list[int] = []

    @property
    def layout(self) -> ChunkLayout:
        """Chunk/wire geometry of the link."""
        return self._layout

    @property
    def wire_delay(self) -> int:
        """Propagation delay, in cycles, applied equally to every wire."""
        return self._wire_delay

    @property
    def cycles(self) -> int:
        """Total cycles stepped since construction."""
        return self._cycles

    @property
    def busy_cycles(self) -> int:
        """Cycles during which a transfer was in flight at the transmitter."""
        return self._busy_cycles

    @property
    def sync_flips(self) -> int:
        """Transitions driven on the synchronization strobe."""
        return self._sync_flips

    @property
    def injector(self) -> "LinkFaultInjector | None":
        """The attached fault injector, if any."""
        return self._injector

    @property
    def resync_interval(self) -> int | None:
        """Blocks between periodic resync strobes (``None`` = never)."""
        return self._resync_interval

    @property
    def resyncs(self) -> int:
        """Resync strobes driven so far (periodic + forced)."""
        return self._resyncs

    def cost_so_far(self) -> TransferCost:
        """Aggregate wire activity since construction.

        Resync strobes are charged here too: their pulse flips ride the
        synchronization strobe and their stall cycles extend the busy
        time, exactly how a controller would account them.
        """
        return TransferCost(
            data_flips=self.transmitter.data_flips,
            overhead_flips=self.transmitter.overhead_flips,
            sync_flips=self._sync_flips + self._resync_flips,
            cycles=self._busy_cycles + self._resync_cycles,
        )

    def fault_report(self) -> LinkFaultReport:
        """Fault and recovery accounting for the link's lifetime."""
        return LinkFaultReport(
            blocks_sent=self._blocks_sent,
            blocks_delivered=len(self.receiver.received_blocks),
            blocks_lost=self._blocks_lost,
            resyncs=self._resyncs,
            resync_flips=self._resync_flips,
            resync_cycles=self._resync_cycles,
            recovery_latencies=tuple(self._recovery_latencies),
            receiver_events=self.receiver.fault_events,
        )

    def step(self) -> None:
        """Advance the whole link by one clock cycle."""
        busy_before = self.transmitter.busy
        levels = self.transmitter.step()
        if busy_before:
            self._busy_cycles += 1
            # The sync strobe toggles at half the clock rate while a
            # transfer is in flight (one flip per two busy cycles).
            if self._busy_cycles % 2 == 1:
                self._sync_level ^= 1
                self._sync_flips += 1
        self._pipe.append(levels)
        delayed = self._pipe.popleft()
        if self._injector is not None:
            delayed = self._injector.perturb(delayed)
            drift = self._injector.take_desync()
            if drift:
                self.receiver.perturb_counter(drift)
        self.receiver.step(delayed)
        if (
            self._injector is not None
            and self.receiver.desynced
            and self._desync_seen_at is None
        ):
            self._desync_seen_at = self._cycles
        self._cycles += 1

    def resync(self) -> None:
        """Drive a resynchronization strobe through the idle link.

        The recovery protocol's atom: (1) the link stalls and flushes
        the wire pipe so in-flight transitions land, (2) every receiver
        toggle detector is re-armed on the levels actually delivered
        (missed or phantom transitions stop mattering), partial receive
        state is discarded, and the desynchronized flag clears, (3) both
        endpoints reset their skip-policy history to the power-up state,
        restoring value agreement for every subsequent round.

        Cost: ``RESYNC_STROBE_FLIPS`` strobe transitions plus
        ``wire_delay + RESYNC_PULSE_CYCLES`` stall cycles, charged to
        :meth:`cost_so_far`.
        """
        if self.transmitter.busy:
            raise RuntimeError("cannot resync while a transfer is in flight")
        # Flush the pipe: the transmitter idles (levels hold, no flips),
        # so after wire_delay cycles the receiver has seen every
        # transition that was still in flight.
        for _ in range(self._wire_delay):
            self.step()
        levels = self.transmitter.wire_levels()
        delivered = (
            self._injector.deliver(levels)
            if self._injector is not None
            else levels
        )
        self.receiver.resync(delivered, abandon_partial=True)
        self._tx_policy.reset()
        self._rx_policy.reset()
        self._resyncs += 1
        self._resync_flips += RESYNC_STROBE_FLIPS
        self._resync_cycles += self._wire_delay + RESYNC_PULSE_CYCLES
        if self._desync_seen_at is not None:
            self._recovery_latencies.append(self._cycles - self._desync_seen_at)
            self._desync_seen_at = None

    def send_block(self, chunks: np.ndarray, max_cycles: int | None = None) -> TransferCost:
        """Transfer one block and return its wire activity and latency.

        Runs the clock until the receiver has assembled the block; the
        returned ``cycles`` is the transmitter-side occupancy (excluding
        the fixed wire delay, which is the same for every scheme).

        On a fault-free link an incomplete transfer raises.  With a
        fault injector attached the block watchdog fires instead: the
        block counts as *lost* (a detected failure), a forced resync
        restores synchronization, and the cost of both is returned.
        """
        if (
            self._resync_interval is not None
            and self._blocks_sent
            and self._blocks_sent % self._resync_interval == 0
        ):
            self.resync()
        before = self.cost_so_far()
        blocks_before = len(self.receiver.received_blocks)
        self.transmitter.load_block(chunks)
        self._blocks_sent += 1
        limit = max_cycles if max_cycles is not None else self._transfer_bound()
        delivered = False
        for _ in range(limit):
            self.step()
            if len(self.receiver.received_blocks) > blocks_before:
                delivered = True
                break
        # A glitched strobe can close the receiver's framing before the
        # transmitter finishes driving; drain it so the link is ready
        # for the next block (a no-op on a fault-free link).
        while self.transmitter.busy:
            self.step()
        if not delivered:
            if self._injector is None:
                raise RuntimeError(
                    f"block transfer did not complete within {limit} cycles"
                )
            # Block watchdog: the block never assembled — count the
            # loss and force a resync.
            self._blocks_lost += 1
            if self._desync_seen_at is None:
                self._desync_seen_at = self._cycles
            self.resync()
        after = self.cost_so_far()
        return TransferCost(
            data_flips=after.data_flips - before.data_flips,
            overhead_flips=after.overhead_flips - before.overhead_flips,
            sync_flips=after.sync_flips - before.sync_flips,
            cycles=after.cycles - before.cycles,
        )

    def _transfer_bound(self) -> int:
        """A safe upper bound on one block's transfer time."""
        worst_round = self._layout.max_chunk_value + 3
        return self._layout.num_rounds * worst_round + self._wire_delay + 4
