"""Value-skipping policies for DESC (Section 3.3).

By default every chunk costs one wire transition.  *Value skipping*
removes the transition for chunks equal to a predictable "skip value":
wires that stay silent for a whole time window are assigned the skip
value when the window closes (second toggle of the shared reset/skip
wire).  The paper evaluates three policies:

* :class:`NoSkipping` — basic DESC, every chunk toggles its wire.
* :class:`ZeroSkipping` — skip value is the constant 0, exploiting the
  ~31 % of zero chunks (Figure 12).
* :class:`LastValueSkipping` — the skip value of each wire is the last
  value transmitted on that wire, exploiting the ~39 % of repeated
  chunks (Figure 13).  This requires per-wire history at both endpoints.

A policy instance is *stateful* (last-value tracking) and must be shared
logically between the transmitter and receiver models; each side owns its
own copy and the protocol keeps them coherent.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = [
    "SkipPolicy",
    "NoSkipping",
    "ZeroSkipping",
    "LastValueSkipping",
    "make_policy",
]


class SkipPolicy(ABC):
    """Decides, per wire, which chunk value is transmitted implicitly."""

    #: Short identifier used in configs, figures, and registries.
    name: str = "abstract"

    #: Whether the policy skips at all (False only for basic DESC).
    enables_skipping: bool = True

    @abstractmethod
    def skip_value(self, wire: int) -> int | None:
        """Value wire ``wire`` would take if silent, or ``None`` if no skipping."""

    @abstractmethod
    def observe(self, wire: int, value: int) -> None:
        """Record that ``value`` was delivered on ``wire`` (sent or skipped)."""

    @abstractmethod
    def reset(self) -> None:
        """Forget accumulated history (new simulation, not new block)."""

    @abstractmethod
    def clone(self) -> "SkipPolicy":
        """Fresh policy with the same configuration but cleared history."""


class NoSkipping(SkipPolicy):
    """Basic DESC: every chunk is transmitted with an explicit toggle."""

    name = "none"
    enables_skipping = False

    def skip_value(self, wire: int) -> int | None:
        return None

    def observe(self, wire: int, value: int) -> None:
        pass

    def reset(self) -> None:
        pass

    def clone(self) -> "NoSkipping":
        return NoSkipping()


class ZeroSkipping(SkipPolicy):
    """Skip the constant value zero (the paper's best-performing variant)."""

    name = "zero"

    def skip_value(self, wire: int) -> int | None:
        return 0

    def observe(self, wire: int, value: int) -> None:
        pass

    def reset(self) -> None:
        pass

    def clone(self) -> "ZeroSkipping":
        return ZeroSkipping()


class LastValueSkipping(SkipPolicy):
    """Skip a repeat of the previous chunk sent on the same wire.

    Wires start with an assumed history of zero, matching hardware that
    resets its last-value registers at power-up.
    """

    name = "last-value"

    def __init__(self, num_wires: int) -> None:
        if num_wires <= 0:
            raise ValueError(f"num_wires must be positive, got {num_wires}")
        self._num_wires = num_wires
        self._last = np.zeros(num_wires, dtype=np.int64)

    @property
    def num_wires(self) -> int:
        """Number of wires whose history is tracked."""
        return self._num_wires

    def skip_value(self, wire: int) -> int | None:
        return int(self._last[wire])

    def observe(self, wire: int, value: int) -> None:
        self._last[wire] = value

    def reset(self) -> None:
        self._last[:] = 0

    def clone(self) -> "LastValueSkipping":
        return LastValueSkipping(self._num_wires)


def make_policy(name: str, num_wires: int) -> SkipPolicy:
    """Build a skip policy from its config name.

    Accepted names: ``"none"`` (basic DESC), ``"zero"``, ``"last-value"``.
    """
    if name == NoSkipping.name:
        return NoSkipping()
    if name == ZeroSkipping.name:
        return ZeroSkipping()
    if name == LastValueSkipping.name:
        return LastValueSkipping(num_wires)
    raise ValueError(f"unknown skip policy {name!r}")
