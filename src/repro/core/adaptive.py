"""Adaptive (frequency-elected) value skipping — the paper's §3.3 aside.

Section 3.3: *"We also considered adaptive techniques for detecting and
encoding frequent non-zero chunks at runtime; however, the attainable
delay and energy improvements are not appreciable.  This is because of
the relatively uniform distribution of chunk values other than zero."*

This module implements the technique the authors dismissed, so the
claim can be checked quantitatively (see
``benchmarks/test_ablation_adaptive.py``): each wire counts the values
it delivers; every ``window`` delivered chunks it re-elects its skip
value as the most frequent one seen in that window (ties resolve to the
smallest value).  Both endpoints observe the same delivered values, so
transmitter and receiver re-elect identically with no side channel —
the same property last-value skipping relies on.

Two implementations, property-tested to agree:

* :class:`AdaptiveSkipping` — a :class:`~repro.core.skipping.SkipPolicy`
  for the cycle-accurate link;
* :class:`AdaptiveDescCostModel` — the closed-form model, a
  :class:`~repro.core.analysis.DescCostModel` whose fire schedule is
  computed window by window.
"""

from __future__ import annotations

import numpy as np

from repro.core.analysis import DescCostModel
from repro.core.chunking import ChunkLayout
from repro.core.skipping import SkipPolicy
from repro.util.validation import require_positive

__all__ = ["AdaptiveSkipping", "AdaptiveDescCostModel"]


class AdaptiveSkipping(SkipPolicy):
    """Per-wire skip value re-elected from delivered-value frequencies."""

    name = "adaptive"

    def __init__(self, num_wires: int, chunk_bits: int = 4, window: int = 16) -> None:
        require_positive("num_wires", num_wires)
        require_positive("chunk_bits", chunk_bits)
        require_positive("window", window)
        self._num_wires = num_wires
        self._num_values = 1 << chunk_bits
        self._window = window
        self._skip = np.zeros(num_wires, dtype=np.int64)
        self._counts = np.zeros((num_wires, self._num_values), dtype=np.int64)
        self._observed = np.zeros(num_wires, dtype=np.int64)

    @property
    def window(self) -> int:
        """Delivered chunks per wire between elections."""
        return self._window

    def skip_value(self, wire: int) -> int | None:
        return int(self._skip[wire])

    def observe(self, wire: int, value: int) -> None:
        self._counts[wire, value] += 1
        self._observed[wire] += 1
        if self._observed[wire] == self._window:
            # Most frequent value of the window; argmax breaks ties low.
            self._skip[wire] = int(np.argmax(self._counts[wire]))
            self._counts[wire] = 0
            self._observed[wire] = 0

    def reset(self) -> None:
        self._skip[:] = 0
        self._counts[:] = 0
        self._observed[:] = 0

    def clone(self) -> "AdaptiveSkipping":
        bits = int(np.log2(self._num_values))
        return AdaptiveSkipping(self._num_wires, bits, self._window)


class AdaptiveDescCostModel(DescCostModel):
    """Closed-form costs under adaptive skipping.

    The fire schedule is computed in windows of ``window`` global
    rounds: within a window every wire's skip value is fixed (elected
    from the previous window's value histogram), so each window
    vectorizes; only the election loop is sequential, at one iteration
    per window.
    """

    POLICY_NAMES = ("adaptive",)

    def __init__(self, layout: ChunkLayout | None = None, window: int = 16) -> None:
        super().__init__(layout, skip_policy="adaptive")
        require_positive("window", window)
        self._window = window
        num_values = 1 << self.layout.chunk_bits
        self._skip = np.zeros(self.layout.num_wires, dtype=np.int64)
        self._counts = np.zeros((self.layout.num_wires, num_values), dtype=np.int64)
        self._observed = 0  # rounds into the current window (uniform per wire)

    @property
    def window(self) -> int:
        """Delivered chunks per wire between elections."""
        return self._window

    def reset(self) -> None:
        super().reset()
        self._skip[:] = 0
        self._counts[:] = 0
        self._observed = 0

    def _fire_schedule(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        num_rounds, wires = values.shape
        skipped = np.empty(values.shape, dtype=bool)
        fire = np.empty(values.shape, dtype=np.int64)
        start = 0
        while start < num_rounds:
            take = min(self._window - self._observed, num_rounds - start)
            part = values[start:start + take]
            skip = self._skip[None, :]
            skipped[start:start + take] = part == skip
            fire[start:start + take] = part + (part < skip)
            # Histogram the delivered values (every chunk is delivered,
            # transmitted or skipped) for the running election window.
            np.add.at(
                self._counts,
                (np.tile(np.arange(wires), take), part.reshape(-1)),
                1,
            )
            self._observed += take
            if self._observed == self._window:
                self._skip = np.argmax(self._counts, axis=1).astype(np.int64)
                self._counts[:] = 0
                self._observed = 0
            start += take
        return skipped, fire
