"""True-LRU replacement state for set-associative caches (Table 1)."""

from __future__ import annotations

from repro.util.validation import require_positive

__all__ = ["LruState"]


class LruState:
    """Tracks recency order of the ways in every set.

    Way indices are kept per set in most-recent-first order; ways never
    touched yet are implicitly least recent (and are victimized first,
    which doubles as invalid-way-first allocation).
    """

    def __init__(self, num_sets: int, num_ways: int) -> None:
        require_positive("num_sets", num_sets)
        require_positive("num_ways", num_ways)
        self.num_sets = num_sets
        self.num_ways = num_ways
        self._order: list[list[int]] = [[] for _ in range(num_sets)]

    def touch(self, set_index: int, way: int) -> None:
        """Mark ``way`` most recently used in ``set_index``."""
        if not 0 <= way < self.num_ways:
            raise ValueError(f"way {way} out of range 0..{self.num_ways - 1}")
        order = self._order[set_index]
        if way in order:
            order.remove(way)
        order.insert(0, way)

    def victim(self, set_index: int) -> int:
        """Way to replace: an untouched way if any, else the LRU way."""
        order = self._order[set_index]
        if len(order) < self.num_ways:
            used = set(order)
            for way in range(self.num_ways):
                if way not in used:
                    return way
        return order[-1]

    def forget(self, set_index: int, way: int) -> None:
        """Drop a way from the recency order (invalidation)."""
        order = self._order[set_index]
        if way in order:
            order.remove(way)

    def recency(self, set_index: int) -> tuple[int, ...]:
        """Ways of a set, most recent first (touched ways only)."""
        return tuple(self._order[set_index])
