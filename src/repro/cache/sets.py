"""A generic set-associative cache structure (tags + LRU + dirty bits).

Used for both the private L1s (16 KB, Table 1) and the shared L2 (8 MB,
16-way) of the event-driven substrate.  Purely functional/structural:
timing and energy live in the models that drive it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.lru import LruState
from repro.util.validation import require_positive, require_power_of_two

__all__ = ["AccessOutcome", "SetAssociativeCache"]


@dataclass(frozen=True)
class AccessOutcome:
    """Result of one cache access.

    Attributes:
        hit: Whether the block was present.
        victim_addr: Block-aligned address evicted to make room (misses
            only), or ``None``.
        victim_dirty: Whether the evicted block needed a writeback.
    """

    hit: bool
    victim_addr: int | None = None
    victim_dirty: bool = False


class SetAssociativeCache:
    """Tags, LRU state, and dirty bits for one cache level."""

    def __init__(
        self, size_bytes: int, block_bytes: int, associativity: int
    ) -> None:
        require_positive("size_bytes", size_bytes)
        require_power_of_two("block_bytes", block_bytes)
        require_positive("associativity", associativity)
        num_blocks = size_bytes // block_bytes
        if num_blocks % associativity:
            raise ValueError(
                f"{num_blocks} blocks do not divide into {associativity} ways"
            )
        self.size_bytes = size_bytes
        self.block_bytes = block_bytes
        self.associativity = associativity
        self.num_sets = num_blocks // associativity
        self._tags: list[list[int | None]] = [
            [None] * associativity for _ in range(self.num_sets)
        ]
        self._dirty: list[list[bool]] = [
            [False] * associativity for _ in range(self.num_sets)
        ]
        self._lru = LruState(self.num_sets, associativity)
        self.hits = 0
        self.misses = 0

    def block_address(self, addr: int) -> int:
        """Block-aligned address containing ``addr``."""
        return addr & ~(self.block_bytes - 1)

    def set_index(self, addr: int) -> int:
        """Set the address maps to."""
        return (addr // self.block_bytes) % self.num_sets

    def _find(self, addr: int) -> int | None:
        block = self.block_address(addr)
        row = self._tags[self.set_index(addr)]
        for way, tag in enumerate(row):
            if tag == block:
                return way
        return None

    def contains(self, addr: int) -> bool:
        """Whether the block holding ``addr`` is resident."""
        return self._find(addr) is not None

    def access(self, addr: int, is_write: bool) -> AccessOutcome:
        """Look up an address; on a miss, allocate and report the victim."""
        block = self.block_address(addr)
        set_index = self.set_index(addr)
        way = self._find(addr)
        if way is not None:
            self.hits += 1
            self._lru.touch(set_index, way)
            if is_write:
                self._dirty[set_index][way] = True
            return AccessOutcome(hit=True)

        self.misses += 1
        way = self._lru.victim(set_index)
        victim = self._tags[set_index][way]
        victim_dirty = self._dirty[set_index][way]
        self._tags[set_index][way] = block
        self._dirty[set_index][way] = is_write
        self._lru.touch(set_index, way)
        return AccessOutcome(
            hit=False, victim_addr=victim, victim_dirty=victim_dirty
        )

    def invalidate(self, addr: int) -> bool:
        """Remove a block (coherence); returns whether it was present."""
        set_index = self.set_index(addr)
        way = self._find(addr)
        if way is None:
            return False
        self._tags[set_index][way] = None
        self._dirty[set_index][way] = False
        self._lru.forget(set_index, way)
        return True

    def mark_clean(self, addr: int) -> None:
        """Clear the dirty bit after a writeback."""
        way = self._find(addr)
        if way is not None:
            self._dirty[self.set_index(addr)][way] = False

    @property
    def miss_rate(self) -> float:
        """Misses over all accesses so far."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
