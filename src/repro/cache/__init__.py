"""Cache substrate: set-associative arrays, MESI, banked L2, NUCA, controller."""

from repro.cache.controller import DescCacheController
from repro.cache.datapath import DescL2DataPath
from repro.cache.l2 import BankedL2Cache, L2AccessResult
from repro.cache.lru import LruState
from repro.cache.mat_interface import DescMatInterface, MatTransaction
from repro.cache.mesi import CoherenceOutcome, MesiDirectory, MesiState
from repro.cache.nuca import SNuca1Mapping
from repro.cache.null_directory import NullBlockDirectory
from repro.cache.sets import AccessOutcome, SetAssociativeCache

__all__ = [
    "AccessOutcome",
    "BankedL2Cache",
    "CoherenceOutcome",
    "DescCacheController",
    "DescL2DataPath",
    "DescMatInterface",
    "MatTransaction",
    "L2AccessResult",
    "LruState",
    "MesiDirectory",
    "MesiState",
    "NullBlockDirectory",
    "SNuca1Mapping",
    "SetAssociativeCache",
]
