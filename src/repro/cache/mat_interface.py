"""Transaction-level DESC mat interface (the full Figure 6 structure).

Figure 6 shows the complete interface between the cache controller and
a mat controller: *write-data* strobes driven by a controller-side
transmitter into a mat-side receiver, *read-data* strobes driven the
other way, a binary address/control channel, and ready signalling.
:class:`DescMatInterface` packages that as transactions:

* ``write(addr, chunks)`` — address in binary, data over the downstream
  DESC link, stored at the mat;
* ``read(addr)`` — address in binary, data returned over the upstream
  DESC link;

with per-transaction cost accounting that includes the binary address
flips (Section 3.2.1 keeps address/control in conventional binary).
"""

from __future__ import annotations

import numpy as np

from repro.core.chunking import ChunkLayout
from repro.core.link import DescLink
from repro.core.protocol import TransferCost
from repro.util.bitops import popcount_array
from repro.util.validation import require_positive

__all__ = ["MatTransaction", "DescMatInterface"]


class MatTransaction:
    """Outcome of one mat access.

    Attributes:
        data: The chunk values read (reads only; ``None`` for writes).
        data_cost: Wire activity of the DESC data transfer.
        address_flips: Binary flips on the address/control channel.
        latency_cycles: Data-transfer occupancy plus the interface's
            fixed address/decode cycles.
    """

    def __init__(
        self,
        data: np.ndarray | None,
        data_cost: TransferCost,
        address_flips: int,
        address_cycles: int,
    ) -> None:
        self.data = data
        self.data_cost = data_cost
        self.address_flips = address_flips
        self.latency_cycles = data_cost.cycles + address_cycles

    @property
    def total_flips(self) -> int:
        """Data, strobe, and address transitions of the transaction."""
        return self.data_cost.total_flips + self.address_flips


class DescMatInterface:
    """A controller↔mat pair with duplex DESC data and binary address."""

    def __init__(
        self,
        layout: ChunkLayout | None = None,
        skip_policy: str = "zero",
        address_bits: int = 14,
        wire_delay: int = 2,
        address_cycles: int = 1,
    ) -> None:
        require_positive("address_bits", address_bits)
        require_positive("address_cycles", address_cycles)
        self.layout = layout if layout is not None else ChunkLayout()
        self.address_bits = address_bits
        self.address_cycles = address_cycles
        # Figure 6: separate write-data and read-data strobe sets.
        self.write_link = DescLink(self.layout, skip_policy, wire_delay)
        self.read_link = DescLink(self.layout, skip_policy, wire_delay)
        self._address_lines = 0  # current binary levels
        self._storage: dict[int, np.ndarray] = {}
        self.transactions = 0

    def _drive_address(self, addr: int) -> int:
        """Drive the binary address lines; returns the flips."""
        index = (addr // (self.layout.block_bits // 8)) % (1 << self.address_bits)
        flips = int(popcount_array(np.array([self._address_lines ^ index]))[0])
        self._address_lines = index
        return flips

    def write(self, addr: int, chunks: np.ndarray) -> MatTransaction:
        """Send a block to the mat (write-data strobes, Figure 6)."""
        chunks = np.asarray(chunks, dtype=np.int64)
        if chunks.shape != (self.layout.num_chunks,):
            raise ValueError(
                f"expected {self.layout.num_chunks} chunks, got {chunks.shape}"
            )
        address_flips = self._drive_address(addr)
        cost = self.write_link.send_block(chunks)
        stored = self.write_link.receiver.received_blocks[-1]
        self._storage[addr] = stored.copy()
        self.transactions += 1
        return MatTransaction(None, cost, address_flips, self.address_cycles)

    def read(self, addr: int) -> MatTransaction:
        """Fetch a block from the mat (read-data strobes, Figure 6)."""
        if addr not in self._storage:
            raise KeyError(f"no block stored at {addr:#x}")
        address_flips = self._drive_address(addr)
        cost = self.read_link.send_block(self._storage[addr])
        data = self.read_link.receiver.received_blocks[-1]
        self.transactions += 1
        return MatTransaction(data, cost, address_flips, self.address_cycles)

    @property
    def total_cost(self) -> TransferCost:
        """Aggregate DESC wire activity, both directions."""
        return self.write_link.cost_so_far() + self.read_link.cost_so_far()
