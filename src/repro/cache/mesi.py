"""MESI coherence directory for the private L1 data caches (Table 1).

A directory-style implementation: for every block cached anywhere it
tracks each core's state (Modified / Exclusive / Shared / Invalid) and
serializes the protocol actions the multicore substrate needs — who to
invalidate on a write, when a dirty owner must write back before a read,
and whether the requester receives E or S.

Invariants (asserted by the property tests):

* at most one core holds M or E for a block;
* if any core holds M or E, no other core holds S;
* every transition leaves the directory consistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["MesiState", "CoherenceOutcome", "MesiDirectory"]


class MesiState(Enum):
    """Per-core cache-line state."""

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


@dataclass(frozen=True)
class CoherenceOutcome:
    """Bus/interconnect activity one access caused.

    Attributes:
        invalidations: Sharer copies invalidated.
        writeback: A dirty owner flushed the block to the L2.
        granted: State granted to the requester.
    """

    invalidations: int
    writeback: bool
    granted: MesiState


class MesiDirectory:
    """Directory tracking every block's sharers across the L1s."""

    def __init__(self, num_cores: int) -> None:
        if num_cores <= 0:
            raise ValueError(f"num_cores must be positive, got {num_cores}")
        self.num_cores = num_cores
        self._sharers: dict[int, dict[int, MesiState]] = {}
        self.invalidations = 0
        self.writebacks = 0

    def state(self, core: int, addr: int) -> MesiState:
        """Current state of ``addr`` in ``core``'s cache."""
        return self._sharers.get(addr, {}).get(core, MesiState.INVALID)

    def sharers(self, addr: int) -> dict[int, MesiState]:
        """Non-invalid holders of a block."""
        return dict(self._sharers.get(addr, {}))

    def _entry(self, addr: int) -> dict[int, MesiState]:
        return self._sharers.setdefault(addr, {})

    def _check_core(self, core: int) -> None:
        if not 0 <= core < self.num_cores:
            raise ValueError(f"core {core} out of range 0..{self.num_cores - 1}")

    def read(self, core: int, addr: int) -> CoherenceOutcome:
        """Core reads a block: downgrade any dirty owner, join sharers."""
        self._check_core(core)
        entry = self._entry(addr)
        current = entry.get(core, MesiState.INVALID)
        if current is not MesiState.INVALID:
            return CoherenceOutcome(0, False, current)

        writeback = False
        for other, state in list(entry.items()):
            if state is MesiState.MODIFIED:
                writeback = True
                self.writebacks += 1
                entry[other] = MesiState.SHARED
            elif state is MesiState.EXCLUSIVE:
                entry[other] = MesiState.SHARED
        granted = MesiState.EXCLUSIVE if not entry else MesiState.SHARED
        entry[core] = granted
        return CoherenceOutcome(0, writeback, granted)

    def write(self, core: int, addr: int) -> CoherenceOutcome:
        """Core writes a block: invalidate all other copies, take M."""
        self._check_core(core)
        entry = self._entry(addr)
        current = entry.get(core, MesiState.INVALID)
        if current is MesiState.MODIFIED:
            return CoherenceOutcome(0, False, MesiState.MODIFIED)

        invalidations = 0
        writeback = False
        for other, state in list(entry.items()):
            if other == core:
                continue
            if state is MesiState.MODIFIED:
                writeback = True
                self.writebacks += 1
            invalidations += 1
            self.invalidations += 1
            del entry[other]
        entry[core] = MesiState.MODIFIED
        return CoherenceOutcome(invalidations, writeback, MesiState.MODIFIED)

    def evict(self, core: int, addr: int) -> bool:
        """Core drops a block (capacity); returns whether it was dirty."""
        self._check_core(core)
        entry = self._sharers.get(addr)
        if not entry or core not in entry:
            return False
        dirty = entry[core] is MesiState.MODIFIED
        if dirty:
            self.writebacks += 1
        del entry[core]
        if not entry:
            del self._sharers[addr]
        return dirty

    def check_invariants(self) -> None:
        """Raise ``AssertionError`` if any MESI invariant is violated."""
        for addr, entry in self._sharers.items():
            owners = [s for s in entry.values() if s in (MesiState.MODIFIED, MesiState.EXCLUSIVE)]
            assert len(owners) <= 1, f"block {addr:#x} has {len(owners)} owners"
            if owners:
                assert len(entry) == 1, (
                    f"block {addr:#x} owned ({owners[0]}) but has "
                    f"{len(entry)} holders"
                )
            assert MesiState.INVALID not in entry.values()
