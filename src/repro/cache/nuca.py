"""S-NUCA-1 bank mapping (Kim, Burger & Keckler; paper Section 5.5).

The static NUCA organisation the paper evaluates: an 8 MB array of 128
banks with 128-bit ports, statically routed to the cache controller
without switches.  Bank access latency grows linearly with the bank's
physical distance from the controller, spanning 3–13 core cycles.
Blocks map to banks by address interleaving, so latency is fixed per
address (the "static" in S-NUCA).
"""

from __future__ import annotations

from repro.util.validation import require_positive

__all__ = ["SNuca1Mapping"]


class SNuca1Mapping:
    """Address → (bank, latency) mapping for the S-NUCA-1 cache."""

    def __init__(
        self,
        num_banks: int = 128,
        block_bytes: int = 64,
        min_latency: int = 3,
        max_latency: int = 13,
    ) -> None:
        require_positive("num_banks", num_banks)
        require_positive("block_bytes", block_bytes)
        require_positive("min_latency", min_latency)
        if max_latency < min_latency:
            raise ValueError(
                f"max_latency {max_latency} < min_latency {min_latency}"
            )
        self.num_banks = num_banks
        self.block_bytes = block_bytes
        self.min_latency = min_latency
        self.max_latency = max_latency

    def bank(self, addr: int) -> int:
        """Bank holding the block (block-address interleaving)."""
        return (addr // self.block_bytes) % self.num_banks

    def latency(self, bank: int) -> int:
        """Access latency of a bank, linear in its distance rank."""
        if not 0 <= bank < self.num_banks:
            raise ValueError(f"bank {bank} out of range 0..{self.num_banks - 1}")
        span = self.max_latency - self.min_latency
        if self.num_banks == 1:
            return self.min_latency
        return self.min_latency + (bank * span) // (self.num_banks - 1)

    def access_latency(self, addr: int) -> int:
        """Latency of the bank an address maps to."""
        return self.latency(self.bank(addr))

    @property
    def mean_latency(self) -> float:
        """Average bank latency over a uniform address stream."""
        total = sum(self.latency(b) for b in range(self.num_banks))
        return total / self.num_banks
