"""The shared, banked L2 cache of the event-driven substrate (Table 1).

Wraps :class:`~repro.cache.sets.SetAssociativeCache` with bank
interleaving and per-bank occupancy tracking, so the multicore
simulator sees bank conflicts: a bank is busy for the array access plus
the block-transfer window of the configured transfer scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.sets import AccessOutcome, SetAssociativeCache
from repro.util.validation import require_positive, require_power_of_two

__all__ = ["L2AccessResult", "BankedL2Cache"]


@dataclass(frozen=True)
class L2AccessResult:
    """Outcome of one L2 access in the event-driven substrate.

    Attributes:
        hit: Tag hit in the L2 array.
        bank: Bank the block maps to.
        ready_time: Cycle at which the data is available, including any
            wait for the bank to free up.
        victim_addr / victim_dirty: Replacement bookkeeping on misses.
    """

    hit: bool
    bank: int
    ready_time: int
    victim_addr: int | None
    victim_dirty: bool


class BankedL2Cache:
    """Set-associative L2 with address-interleaved banks."""

    def __init__(
        self,
        size_bytes: int = 8 * 1024 * 1024,
        block_bytes: int = 64,
        associativity: int = 16,
        num_banks: int = 8,
        array_latency: int = 3,
        service_cycles: int = 11,
    ) -> None:
        require_power_of_two("num_banks", num_banks)
        require_positive("array_latency", array_latency)
        require_positive("service_cycles", service_cycles)
        self.array = SetAssociativeCache(size_bytes, block_bytes, associativity)
        self.num_banks = num_banks
        self.block_bytes = block_bytes
        self.array_latency = array_latency
        #: Cycles a bank stays busy per access (array + transfer window).
        self.service_cycles = service_cycles
        self._bank_free: list[int] = [0] * num_banks
        self.bank_conflicts = 0
        self.accesses = 0

    def bank(self, addr: int) -> int:
        """Bank an address interleaves to."""
        return (addr // self.block_bytes) % self.num_banks

    def access(
        self,
        addr: int,
        is_write: bool,
        now: int,
        service_cycles: int | None = None,
    ) -> L2AccessResult:
        """Access the L2 at cycle ``now``; models bank occupancy.

        ``service_cycles`` overrides the default bank occupancy for this
        access — the value-aware mode, where DESC's transfer window
        depends on the block being moved.
        """
        self.accesses += 1
        bank = self.bank(addr)
        start = max(now, self._bank_free[bank])
        if start > now:
            self.bank_conflicts += 1
        outcome: AccessOutcome = self.array.access(addr, is_write)
        occupancy = (
            service_cycles if service_cycles is not None else self.service_cycles
        )
        self._bank_free[bank] = start + occupancy
        ready = start + self.array_latency
        return L2AccessResult(
            hit=outcome.hit,
            bank=bank,
            ready_time=ready,
            victim_addr=outcome.victim_addr,
            victim_dirty=outcome.victim_dirty,
        )

    @property
    def hits(self) -> int:
        """Tag hits so far."""
        return self.array.hits

    @property
    def misses(self) -> int:
        """Tag misses so far."""
        return self.array.misses

    @property
    def miss_rate(self) -> float:
        """Miss rate so far."""
        return self.array.miss_rate
