"""Cache controller: moves actual block data through a DESC link.

The figure pipeline uses the closed-form cost models; this controller
is the *functional* data path of Figure 6 — it drives real 512-bit
blocks through a cycle-accurate :class:`~repro.core.link.DescLink`
between the cache-controller side and the mat side, storing the data in
a backing store and verifying round trips.  Integration tests use it to
demonstrate end-to-end correctness (write through the link, read back
through the link, byte-exact), including under the value-skipping
policies, and to cross-check flip counts against the analytical model.
"""

from __future__ import annotations

import numpy as np

from repro.core.chunking import ChunkLayout
from repro.core.link import DescLink
from repro.core.protocol import TransferCost

__all__ = ["DescCacheController"]


class DescCacheController:
    """A functional L2 data path with DESC transmit/receive on both ends.

    Writes travel over the *downstream* link (controller → mat) and
    reads over the *upstream* link (mat → controller), matching the
    paired transmitter/receiver placement of Figure 6.
    """

    def __init__(
        self,
        layout: ChunkLayout | None = None,
        skip_policy: str = "zero",
        wire_delay: int = 2,
    ) -> None:
        self.layout = layout if layout is not None else ChunkLayout()
        self.downstream = DescLink(self.layout, skip_policy, wire_delay)
        self.upstream = DescLink(self.layout, skip_policy, wire_delay)
        self._store: dict[int, np.ndarray] = {}
        self.write_cost = TransferCost.zero()
        self.read_cost = TransferCost.zero()

    def reset_costs(self) -> None:
        """Zero the accumulated read/write cost counters.

        Stored blocks and link wire state are untouched — this only
        restarts the accounting, so a test (or a phased experiment) can
        attribute costs to one batch of traffic at a time.
        """
        self.write_cost = TransferCost.zero()
        self.read_cost = TransferCost.zero()

    def write_block(self, addr: int, chunks: np.ndarray) -> TransferCost:
        """Send a block to the mat over the downstream link and store it."""
        chunks = np.asarray(chunks, dtype=np.int64)
        if chunks.shape != (self.layout.num_chunks,):
            raise ValueError(
                f"expected {self.layout.num_chunks} chunks, got {chunks.shape}"
            )
        cost = self.downstream.send_block(chunks)
        received = self.downstream.receiver.received_blocks[-1]
        self._store[addr] = received.copy()
        self.write_cost = self.write_cost + cost
        return cost

    def read_block(self, addr: int) -> tuple[np.ndarray, TransferCost]:
        """Fetch a block from the mat over the upstream link."""
        if addr not in self._store:
            raise KeyError(f"no block stored at address {addr:#x}")
        cost = self.upstream.send_block(self._store[addr])
        data = self.upstream.receiver.received_blocks[-1]
        self.read_cost = self.read_cost + cost
        return data, cost

    def stored_addresses(self) -> tuple[int, ...]:
        """Addresses with resident data."""
        return tuple(sorted(self._store))

    @property
    def total_cost(self) -> TransferCost:
        """All wire activity since construction, both directions."""
        return self.write_cost + self.read_cost
