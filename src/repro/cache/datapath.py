"""The full Figure 7 data path, functionally: banks, subbanks, shared trees.

:class:`DescL2DataPath` realizes the paper's cache organisation end to
end with real signal-level machinery:

* the L2 is split into address-interleaved **banks**;
* each bank holds ``2**subbank_depth`` **subbanks**, each storing whole
  blocks and owning a DESC transmitter (its mats' chunk transmitters
  aggregate into one 128-wire bundle sharing a reset strobe, Figure 6);
* subbank read bundles merge onto the bank's shared vertical H-tree
  through a :class:`~repro.interconnect.regenerator_tree.RegeneratorTree`
  of Figure 8-c toggle regenerators, and the cache controller's DESC
  receiver decodes the regenerated stream;
* writes travel a controller-side transmitter down to the addressed
  subbank's receiver (inactive subbanks are clock-gated and do not
  sample).

Zero skipping (the paper's best variant) is stateless per transfer, so
interleaving transfers from different subbanks over the shared wires is
safe — exactly the property the regenerators exist to provide, and the
property the integration tests drive hard.
"""

from __future__ import annotations

import numpy as np

from repro.core.chunking import ChunkLayout
from repro.core.protocol import TransferCost
from repro.core.receiver import DescReceiver
from repro.core.skipping import make_policy
from repro.core.transmitter import DescTransmitter
from repro.interconnect.regenerator_tree import RegeneratorTree
from repro.util.validation import require_positive

__all__ = ["DescL2DataPath"]

_SAFE_POLICIES = ("none", "zero")


class _Subbank:
    """Block storage plus the subbank-side DESC endpoints."""

    def __init__(self, layout: ChunkLayout, skip_policy: str) -> None:
        self.storage: dict[int, np.ndarray] = {}
        self.transmitter = DescTransmitter(
            layout, make_policy(skip_policy, layout.num_wires)
        )
        self.receiver = DescReceiver(
            layout, make_policy(skip_policy, layout.num_wires)
        )


class _Bank:
    """Subbanks sharing one vertical H-tree via toggle regenerators."""

    def __init__(
        self, layout: ChunkLayout, subbank_depth: int, skip_policy: str
    ) -> None:
        self.subbanks = [
            _Subbank(layout, skip_policy) for _ in range(2**subbank_depth)
        ]
        # +1 wire for the shared reset/skip strobe.
        self.read_tree = RegeneratorTree(layout.num_wires + 1, subbank_depth)
        self.controller_rx = DescReceiver(
            layout, make_policy(skip_policy, layout.num_wires)
        )
        self.controller_tx = DescTransmitter(
            layout, make_policy(skip_policy, layout.num_wires)
        )


class DescL2DataPath:
    """Functional banked L2 data path with DESC everywhere (Figure 7)."""

    def __init__(
        self,
        num_banks: int = 8,
        subbank_depth: int = 2,
        block_bits: int = 512,
        chunk_bits: int = 4,
        skip_policy: str = "zero",
        block_bytes: int = 64,
    ) -> None:
        require_positive("num_banks", num_banks)
        if skip_policy not in _SAFE_POLICIES:
            raise ValueError(
                "shared subbank wires require a stateless skip policy "
                f"({_SAFE_POLICIES}); last-value tracking needs per-mat "
                "state at the controller (Section 5.2)"
            )
        self.layout = ChunkLayout(
            block_bits=block_bits,
            chunk_bits=chunk_bits,
            num_wires=block_bits // chunk_bits,
        )
        self.num_banks = num_banks
        self.block_bytes = block_bytes
        self.skip_policy = skip_policy
        self._banks = [
            _Bank(self.layout, subbank_depth, skip_policy)
            for _ in range(num_banks)
        ]
        self.read_cost = TransferCost.zero()
        self.write_cost = TransferCost.zero()

    def reset_costs(self) -> None:
        """Zero the accumulated read/write cost counters (data stays)."""
        self.read_cost = TransferCost.zero()
        self.write_cost = TransferCost.zero()

    # ------------------------------------------------------------------
    # Address mapping
    # ------------------------------------------------------------------

    def route(self, addr: int) -> tuple[int, int]:
        """(bank, subbank) an address maps to."""
        block = addr // self.block_bytes
        bank = block % self.num_banks
        subbank = (block // self.num_banks) % len(self._banks[0].subbanks)
        return bank, subbank

    # ------------------------------------------------------------------
    # Transfers
    # ------------------------------------------------------------------

    def write_block(self, addr: int, chunks: np.ndarray) -> TransferCost:
        """Send a block from the controller down to its subbank."""
        chunks = np.asarray(chunks, dtype=np.int64)
        bank_index, subbank_index = self.route(addr)
        bank = self._banks[bank_index]
        subbank = bank.subbanks[subbank_index]

        data_before = bank.controller_tx.data_flips
        overhead_before = bank.controller_tx.overhead_flips
        # The subbank was clock-gated while others were written; its
        # detectors re-arm on the current wire levels (Figure 8-b).
        subbank.receiver.resync(bank.controller_tx.wire_levels())
        bank.controller_tx.load_block(chunks)
        cycles = 0
        received_before = len(subbank.receiver.received_blocks)
        while len(subbank.receiver.received_blocks) == received_before:
            levels = bank.controller_tx.step()
            # Only the addressed subbank's receiver is clocked.
            subbank.receiver.step(levels)
            cycles += 1
            if cycles > 10_000:
                raise RuntimeError("write did not complete")
        block = subbank.receiver.received_blocks[-1]
        subbank.storage[addr] = block.copy()
        cost = TransferCost(
            data_flips=bank.controller_tx.data_flips - data_before,
            overhead_flips=bank.controller_tx.overhead_flips - overhead_before,
            sync_flips=(cycles + 1) // 2,
            cycles=cycles,
        )
        self.write_cost = self.write_cost + cost
        return cost

    def read_block(self, addr: int) -> tuple[np.ndarray, TransferCost]:
        """Fetch a block from its subbank over the shared read tree."""
        bank_index, subbank_index = self.route(addr)
        bank = self._banks[bank_index]
        subbank = bank.subbanks[subbank_index]
        if addr not in subbank.storage:
            raise KeyError(f"no block stored at {addr:#x}")

        per_wire_before = bank.read_tree.upstream_transitions_per_wire()
        subbank.transmitter.load_block(subbank.storage[addr])
        cycles = 0
        received_before = len(bank.controller_rx.received_blocks)
        while len(bank.controller_rx.received_blocks) == received_before:
            subbank.transmitter.step()
            branch_levels = np.stack(
                [sb.transmitter.wire_levels() for sb in bank.subbanks]
            )
            upstream = bank.read_tree.sample(branch_levels, subbank_index)
            bank.controller_rx.step(upstream)
            cycles += 1
            if cycles > 10_000:
                raise RuntimeError("read did not complete")
        block = bank.controller_rx.received_blocks[-1]
        per_wire = bank.read_tree.upstream_transitions_per_wire()
        deltas = [after - before for after, before in zip(per_wire, per_wire_before, strict=True)]
        cost = TransferCost(
            data_flips=sum(deltas[1:]),  # wire 0 is the reset/skip strobe
            overhead_flips=deltas[0],
            sync_flips=(cycles + 1) // 2,
            cycles=cycles,
        )
        self.read_cost = self.read_cost + cost
        return block, cost

    @property
    def total_cost(self) -> TransferCost:
        """Aggregate activity since construction, both directions."""
        return self.read_cost + self.write_cost
