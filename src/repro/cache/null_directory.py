"""Null-block directory: serving all-zero blocks without data movement.

The paper notes (Section 2) that DESC "has mechanisms that exploit null
and redundant blocks" and that cache-compression work (e.g.
Zero-Content Augmented caches, Dusser et al.) attacks the same
opportunity at the *storage* level.  This module implements that
orthogonal optimization as a substrate: a small directory of block
addresses known to be all-zero.  A read that hits the directory is
served at the controller — no SRAM array access, no H-tree data
transfer — and a write of a null block only updates the directory.

The ablation benchmark (``benchmarks/test_ablation_null_directory.py``)
uses it to ask how much of zero-skipped DESC's benefit a null directory
alone would capture, and whether the two compose.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.util.validation import require_positive

__all__ = ["NullBlockDirectory"]


class NullBlockDirectory:
    """LRU directory of known-all-zero block addresses."""

    def __init__(self, capacity_blocks: int = 4096) -> None:
        require_positive("capacity_blocks", capacity_blocks)
        self.capacity_blocks = capacity_blocks
        self._entries: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, addr: int) -> bool:
        """Whether ``addr`` is a known null block (counts hit/miss)."""
        if addr in self._entries:
            self._entries.move_to_end(addr)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def record_null(self, addr: int) -> None:
        """Mark a block as all-zero (a null write or a null fill)."""
        if addr in self._entries:
            self._entries.move_to_end(addr)
            return
        if len(self._entries) >= self.capacity_blocks:
            self._entries.popitem(last=False)
        self._entries[addr] = None

    def record_data(self, addr: int) -> None:
        """A non-zero write makes the block ordinary again."""
        self._entries.pop(addr, None)

    @property
    def hit_rate(self) -> float:
        """Directory hits over all lookups."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
