"""Toggle-regenerator trees: sharing H-tree wires between subbanks.

Figure 7 shares the vertical H-tree between subbanks: toggles from the
*active* subbank must travel upstream without the *inactive* branches'
stale levels creating spurious edges.  Figure 8-c's toggle regenerator
solves this per merge point; this module composes regenerators into a
binary tree so ``2**depth`` subbank branches share one upstream bundle.

The tree is *per wire bundle*: each level holds one
:class:`~repro.core.toggles.ToggleRegenerator` per wire per merge
point.  ``sample(branch_levels, select)`` consumes the current levels
of every leaf branch plus the selected leaf index, and returns the
upstream levels — with the guarantee (tested in
``tests/interconnect/test_regenerator_tree.py``) that switching the
selection between transfers never toggles the upstream wires.
"""

from __future__ import annotations

import numpy as np

from repro.core.toggles import ToggleRegenerator
from repro.util.validation import require_positive

__all__ = ["RegeneratorTree"]


class RegeneratorTree:
    """A binary merge tree of toggle regenerators over a wire bundle."""

    def __init__(self, num_wires: int, depth: int) -> None:
        require_positive("num_wires", num_wires)
        if depth < 1:
            raise ValueError(f"depth must be at least 1, got {depth}")
        self.num_wires = num_wires
        self.depth = depth
        # Level 0 merges pairs of leaves; the last level feeds upstream.
        self._levels: list[list[list[ToggleRegenerator]]] = [
            [
                [ToggleRegenerator() for _ in range(num_wires)]
                for _ in range(2 ** (depth - 1 - level))
            ]
            for level in range(depth)
        ]

    @property
    def num_branches(self) -> int:
        """Leaf branches the tree merges."""
        return 2**self.depth

    def sample(self, branch_levels: np.ndarray, select: int) -> np.ndarray:
        """Advance one cycle; return the upstream wire levels.

        Args:
            branch_levels: ``(num_branches, num_wires)`` current levels
                of every leaf branch (inactive branches hold levels).
            select: Index of the active leaf branch.
        """
        branch_levels = np.asarray(branch_levels)
        if branch_levels.shape != (self.num_branches, self.num_wires):
            raise ValueError(
                f"expected levels of shape {(self.num_branches, self.num_wires)}, "
                f"got {branch_levels.shape}"
            )
        if not 0 <= select < self.num_branches:
            raise ValueError(f"select {select} out of range")

        levels = branch_levels
        path = select
        for level_nodes in self._levels:
            merged = np.empty((len(level_nodes), self.num_wires), dtype=np.uint8)
            active_node, active_side = divmod(path, 2)
            for node, regenerators in enumerate(level_nodes):
                # Only the node on the active path can see edges; the
                # select of idle nodes is immaterial (their branches
                # hold their levels).
                side = active_side if node == active_node else 0
                for wire, regen in enumerate(regenerators):
                    regen.sample(
                        int(levels[2 * node, wire]),
                        int(levels[2 * node + 1, wire]),
                        select=side,
                    )
                    merged[node, wire] = regen.output_level
            levels = merged
            path = active_node
        return levels[0]

    def upstream_transitions(self) -> int:
        """Total transitions driven on the final upstream bundle."""
        return sum(self.upstream_transitions_per_wire())

    def upstream_transitions_per_wire(self) -> list[int]:
        """Transitions driven on each upstream wire."""
        return [
            regen.upstream_transitions for regen in self._levels[-1][0]
        ]
