"""Electrical model of repeated global wires.

The H-tree of a large cache is built from repeated global wires; their
dynamic energy per transition is ``0.5 * C * V^2`` per unit length for
the wire itself plus the repeater input/output capacitance, and their
delay is linear in length thanks to the repeaters (Section 1 of the
paper: repeaters "linearize wire delay" at significant energy cost).

Default constants are representative of 22 nm global wires (CACTI-class
values): ~0.25 pF/mm wire capacitance, repeaters adding ~60 % switched
capacitance, ~150 ps/mm repeated-wire delay.  Absolute joules are not
meant to match the authors' CACTI 6.5 runs — DESIGN.md §6 explains the
calibration policy — but ratios between schemes depend only on flip
counts and wire lengths, which this model carries faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import require_positive

__all__ = ["WireModel"]


@dataclass(frozen=True)
class WireModel:
    """Per-millimetre electrical figures for a repeated global wire.

    Attributes:
        capacitance_f_per_mm: Wire capacitance in farads per millimetre.
        repeater_overhead: Multiplier on switched capacitance added by
            the repeaters (1.6 means repeaters add 60 %).
        voltage_v: Supply voltage of the drivers.
        swing_v: Voltage swing on the wire.  Equal to ``voltage_v`` for
            conventional full-swing repeated wires; *low-swing*
            signaling (Zhang & Rabaey [7], Udipi et al. [2] in the
            paper) drives a reduced swing — energy per transition is
            ``C * V_swing * V_dd`` — at the price of receiver
            amplifiers (``receiver_energy_j`` per transition) and a
            somewhat slower wire.
        delay_s_per_mm: Signal propagation delay of the repeated wire.
        repeater_leakage_w_per_mm: Leakage of the repeater chain per
            wire millimetre (device-type scaling is applied on top by
            the cache model).
        receiver_energy_j: Sense-amplifier energy per transition at the
            receiving end (zero for full-swing wires).
    """

    capacitance_f_per_mm: float = 0.25e-12
    repeater_overhead: float = 1.6
    voltage_v: float = 0.83
    swing_v: float | None = None
    delay_s_per_mm: float = 150e-12
    repeater_leakage_w_per_mm: float = 2.0e-6
    receiver_energy_j: float = 0.0

    def __post_init__(self) -> None:
        require_positive("capacitance_f_per_mm", self.capacitance_f_per_mm)
        require_positive("repeater_overhead", self.repeater_overhead)
        require_positive("voltage_v", self.voltage_v)
        if self.swing_v is not None:
            require_positive("swing_v", self.swing_v)
            if self.swing_v > self.voltage_v:
                raise ValueError(
                    f"swing_v {self.swing_v} exceeds voltage_v {self.voltage_v}"
                )
        require_positive("delay_s_per_mm", self.delay_s_per_mm)
        require_positive("repeater_leakage_w_per_mm", self.repeater_leakage_w_per_mm)
        if self.receiver_energy_j < 0:
            raise ValueError("receiver_energy_j must be non-negative")

    @property
    def effective_swing_v(self) -> float:
        """Wire swing: ``swing_v`` if set, else the full supply."""
        return self.swing_v if self.swing_v is not None else self.voltage_v

    def energy_per_flip_j(self, length_mm: float) -> float:
        """Dynamic energy of one transition over ``length_mm``."""
        switched = self.capacitance_f_per_mm * self.repeater_overhead * length_mm
        return 0.5 * switched * self.effective_swing_v * self.voltage_v + (
            self.receiver_energy_j
        )

    def delay_s(self, length_mm: float) -> float:
        """End-to-end propagation delay over ``length_mm``."""
        return self.delay_s_per_mm * length_mm

    def leakage_w(self, length_mm: float, num_wires: int) -> float:
        """Repeater leakage of a bundle of ``num_wires`` over ``length_mm``."""
        return self.repeater_leakage_w_per_mm * length_mm * num_wires

    def scaled(self, voltage_v: float | None = None) -> "WireModel":
        """A copy with a different supply voltage (technology scaling)."""
        return WireModel(
            capacitance_f_per_mm=self.capacitance_f_per_mm,
            repeater_overhead=self.repeater_overhead,
            voltage_v=voltage_v if voltage_v is not None else self.voltage_v,
            swing_v=self.swing_v,
            delay_s_per_mm=self.delay_s_per_mm,
            repeater_leakage_w_per_mm=self.repeater_leakage_w_per_mm,
            receiver_energy_j=self.receiver_energy_j,
        )

    @staticmethod
    def low_swing(
        voltage_v: float = 0.83, swing_v: float = 0.2
    ) -> "WireModel":
        """A low-swing variant (reduced swing + sense-amp energy, slower)."""
        return WireModel(
            voltage_v=voltage_v,
            swing_v=swing_v,
            delay_s_per_mm=220e-12,  # differential low-swing is slower
            receiver_energy_j=8e-15,  # sense amplifier per transition
        )
