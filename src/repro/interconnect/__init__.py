"""Cache interconnect: repeated-wire electrical model and H-tree geometry."""

from repro.interconnect.htree import HTreeModel, htree_route_length_mm
from repro.interconnect.regenerator_tree import RegeneratorTree
from repro.interconnect.wires import WireModel

__all__ = ["HTreeModel", "RegeneratorTree", "WireModel", "htree_route_length_mm"]
