"""H-tree geometry of a banked last-level cache (Figure 7).

The cache is a square of banks; a *main* H-tree routes from the central
cache controller to the active bank, and *horizontal*/*vertical* trees
continue inside the bank to the subbanks and mats.  Every data-wire
transition switches the full controller-to-mat route once (the toggle
regenerators re-drive shared vertical segments but each segment still
swings exactly once per toggle), so the energy of one flip is the
route length times the wire model's per-millimetre energy.

Route lengths follow the classic H-tree recursion: from the centre of a
square of side ``L``, the level-``i`` segment is ``L / 2**((i - 1)//2 + 2)``
(alternating horizontal/vertical, halving every two levels); the route
to a leaf at depth ``d`` is the sum of the first ``d`` segments and
approaches ``L`` (centre-to-corner Manhattan distance) as ``d`` grows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.interconnect.wires import WireModel
from repro.util.validation import require_positive, require_power_of_two

__all__ = ["htree_route_length_mm", "HTreeModel"]


def htree_route_length_mm(side_mm: float, depth: int) -> float:
    """Root-to-leaf route of an H-tree with ``2**depth`` leaves."""
    if depth < 0:
        raise ValueError(f"depth must be non-negative, got {depth}")
    return sum(side_mm / 2 ** ((i - 1) // 2 + 2) for i in range(1, depth + 1))


@dataclass(frozen=True)
class HTreeModel:
    """Controller-to-mat interconnect of a banked cache.

    Attributes:
        area_mm2: Total cache footprint (cells + periphery + wiring).
        num_banks: Leaves of the main H-tree.
        internal_leaves: Subbanks * mats inside each bank (leaves of
            the horizontal+vertical trees).
        wires: Electrical model of the repeated global wires.
        num_wires: Wires routed through the tree (data + overhead +
            address/control).
    """

    area_mm2: float
    num_banks: int
    internal_leaves: int
    wires: WireModel
    num_wires: int

    def __post_init__(self) -> None:
        require_positive("area_mm2", self.area_mm2)
        require_power_of_two("num_banks", self.num_banks)
        require_power_of_two("internal_leaves", self.internal_leaves)
        require_positive("num_wires", self.num_wires)

    @property
    def side_mm(self) -> float:
        """Side of the (square) cache footprint."""
        return math.sqrt(self.area_mm2)

    @property
    def main_route_mm(self) -> float:
        """Controller-to-bank route over the main H-tree."""
        return htree_route_length_mm(self.side_mm, int(math.log2(self.num_banks)))

    @property
    def bank_side_mm(self) -> float:
        """Side of one bank's footprint."""
        return math.sqrt(self.area_mm2 / self.num_banks)

    @property
    def internal_route_mm(self) -> float:
        """Bank-entry-to-mat route over the horizontal/vertical trees."""
        return htree_route_length_mm(
            self.bank_side_mm, int(math.log2(self.internal_leaves))
        )

    @property
    def route_mm(self) -> float:
        """Full controller-to-mat route switched by one wire flip."""
        return self.main_route_mm + self.internal_route_mm

    @property
    def energy_per_flip_j(self) -> float:
        """Dynamic energy of one data-wire transition."""
        return self.wires.energy_per_flip_j(self.route_mm)

    @property
    def traversal_delay_s(self) -> float:
        """One-way signal propagation delay along the route."""
        return self.wires.delay_s(self.route_mm)

    @property
    def repeater_leakage_w(self) -> float:
        """Leakage of all repeaters in the tree (before device scaling).

        The main tree carries the full bundle; inside a bank the bundle
        fans out but only one path is repeated per level, so charging
        the bundle over one full route per bank is a close account of
        the repeater population.
        """
        per_bank_route = self.internal_route_mm
        main = self.wires.leakage_w(self.main_route_mm * self.num_banks, self.num_wires)
        internal = self.wires.leakage_w(per_bank_route * self.num_banks, self.num_wires)
        return main + internal
