"""Tabulating Pareto-frontier payloads for study reports.

The explorer's frontier snapshots are lists of point payloads
(``{"key", "params", "objectives"}`` — see
:meth:`repro.explore.frontier.FrontierPoint.to_payload`).  This module
flattens them into the ``(headers, rows)`` shape the table formatters
in :mod:`repro.reporting.tables` consume, keeping the explore package
free of formatting concerns and the reporting package free of explore
imports (it works on the plain JSON payloads).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["frontier_rows"]


def frontier_rows(
    points: Sequence[Mapping],
    objective_names: Sequence[str],
) -> tuple[list[str], list[list]]:
    """Flatten frontier point payloads into ``(headers, rows)``.

    Parameter columns are the union of parameter names across points
    (sorted, so tables are stable); objective columns follow in the
    study's objective order.  Points are row-ordered as given — the
    frontier's canonical (key-sorted) order when the caller passes a
    snapshot straight through.
    """
    param_names: set[str] = set()
    for point in points:
        param_names.update(point["params"])
    params = sorted(param_names)
    headers = [*params, *objective_names]
    rows = []
    for point in points:
        row = [point["params"].get(name, "") for name in params]
        row.extend(
            value
            for value, _ in zip(
                point["objectives"], objective_names, strict=True
            )
        )
        rows.append(row)
    return headers, rows
