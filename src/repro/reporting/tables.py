"""Plain-data table formatting: text, Markdown, TSV.

The experiment modules return nested dicts; these helpers turn them
into aligned text tables (for the CLI and benchmarks), Markdown (for
EXPERIMENTS.md-style reports) and TSV (for external plotting), with no
third-party dependencies.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["text_table", "markdown_table", "tsv_table", "series_to_rows"]


def _format_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _normalize(headers: Sequence[str], rows: Sequence[Sequence]) -> list[list[str]]:
    width = len(headers)
    normalized = []
    for row in rows:
        cells = [_format_cell(cell) for cell in row]
        if len(cells) != width:
            raise ValueError(
                f"row {cells!r} has {len(cells)} cells; expected {width}"
            )
        normalized.append(cells)
    return normalized


def text_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Fixed-width aligned table (first column left, rest right)."""
    cells = _normalize(headers, rows)
    columns = [list(col) for col in zip(*([list(headers)] + cells), strict=True)] if cells else [
        [h] for h in headers
    ]
    widths = [max(len(v) for v in col) for col in columns]
    def fmt(row: Sequence[str]) -> str:
        first = row[0].ljust(widths[0])
        rest = [cell.rjust(width) for cell, width in zip(row[1:], widths[1:], strict=True)]
        return "  ".join([first, *rest]).rstrip()
    lines = [fmt(list(headers))]
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in cells)
    return "\n".join(lines)


def markdown_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """GitHub-flavoured Markdown table."""
    cells = _normalize(headers, rows)
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    lines.extend("| " + " | ".join(row) + " |" for row in cells)
    return "\n".join(lines)


def tsv_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Tab-separated values, header first."""
    cells = _normalize(headers, rows)
    lines = ["\t".join(headers)]
    lines.extend("\t".join(row) for row in cells)
    return "\n".join(lines)


def series_to_rows(
    series: Mapping[str, object], key_header: str = "key"
) -> tuple[list[str], list[list]]:
    """Flatten an experiment series dict into (headers, rows).

    Handles the two shapes the experiment modules produce:

    * flat — ``{label: number}`` → two columns;
    * nested — ``{label: {metric: number}}`` → one column per metric
      (the union of metric names, in first-seen order).
    """
    if not series:
        raise ValueError("cannot tabulate an empty series")
    if all(isinstance(v, Mapping) for v in series.values()):
        metrics: list[str] = []
        for inner in series.values():
            for metric in inner:
                if metric not in metrics:
                    metrics.append(metric)
        headers = [key_header, *metrics]
        rows = [
            [label, *[inner.get(metric, "") for metric in metrics]]
            for label, inner in series.items()
        ]
        return headers, rows
    headers = [key_header, "value"]
    rows = [[label, value] for label, value in series.items()]
    return headers, rows
