"""Dependency-free result formatting: text, Markdown, and TSV tables."""

from repro.reporting.frontier import frontier_rows
from repro.reporting.tables import (
    markdown_table,
    series_to_rows,
    text_table,
    tsv_table,
)

__all__ = [
    "frontier_rows",
    "markdown_table",
    "series_to_rows",
    "text_table",
    "tsv_table",
]
