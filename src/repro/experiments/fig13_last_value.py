"""Figure 13: fraction of chunks matching the previously sent chunk.

The paper measures 39 % on (geometric) average — the observation
motivating last-value skipping.
"""

from __future__ import annotations

from repro.experiments.common import geomean
from repro.workloads.generator import block_stream, chunk_statistics
from repro.workloads.suites import PARALLEL_SUITE

__all__ = ["run"]


def run(num_blocks: int = 6000, seed: int = 1) -> dict:
    """Per-application repeated-chunk fraction plus the geomean."""
    fractions = {}
    for app in PARALLEL_SUITE:
        stats = chunk_statistics(block_stream(app, num_blocks, seed))
        fractions[app.name] = stats["last_value_fraction"]
    fractions["Geomean"] = geomean(fractions.values())
    return {"last_value_fraction": fractions, "paper_geomean": 0.39}
