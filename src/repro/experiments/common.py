"""Shared helpers for the per-figure experiment modules.

Each ``figNN`` module exposes ``run(...) -> dict`` returning the
figure's series as plain data (app names, values, normalizations), so
the benchmark harnesses and any plotting front-end stay trivial.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.sim.config import SchemeConfig, SystemConfig
from repro.util.stats import geomean
from repro.sim.engine import SimJob, simulate_many
from repro.sim.metrics import RunResult
from repro.workloads.profiles import AppProfile
from repro.workloads.suites import PARALLEL_SUITE

__all__ = [
    "geomean",
    "run_suite",
    "ratio_by_app",
    "DEFAULT_SCHEMES",
    "SWEEP_SYSTEM",
]

#: Figure 16's scheme order, as (label, SchemeConfig) pairs.
DEFAULT_SCHEMES: tuple[tuple[str, SchemeConfig], ...] = (
    ("Conventional Binary", SchemeConfig(name="binary")),
    ("Dynamic Zero Compression", SchemeConfig(name="zero-compression")),
    ("Bus Invert Coding", SchemeConfig(name="bus-invert")),
    ("Zero Skipped Bus Invert", SchemeConfig(name="bus-invert+zero-skip")),
    ("Encoded Zero Skipped Bus Invert", SchemeConfig(name="bus-invert+encoded-zero-skip")),
    ("Basic DESC", SchemeConfig(name="desc", data_wires=128)),
    ("Zero Skipped DESC", SchemeConfig(name="desc+zero-skip", data_wires=128)),
    ("Last Value Skipped DESC", SchemeConfig(name="desc+last-value-skip", data_wires=128)),
)

#: Smaller sample for wide parameter sweeps (Figures 14/22/25/26/27).
SWEEP_SYSTEM = SystemConfig(sample_blocks=3000)


# Re-exported for the figure modules; the implementation lives in
# repro.util.stats so non-experiment code can use it without importing
# this package.


def run_suite(
    scheme: SchemeConfig,
    system: SystemConfig | None = None,
    apps: Sequence[AppProfile] = PARALLEL_SUITE,
    max_workers: int | None = None,
) -> list[RunResult]:
    """Simulate one scheme over a whole application suite.

    Runs through the staged engine's batch API, so ``max_workers`` (or
    the engine default set via ``repro.sim.set_default_max_workers`` /
    the CLI's ``--workers``) fans the suite out over a process pool
    with results identical to the serial path.
    """
    jobs = [SimJob.of(app, scheme, system) for app in apps]
    return simulate_many(jobs, max_workers=max_workers)


def ratio_by_app(
    results: Sequence[RunResult],
    baseline: Sequence[RunResult],
    metric,
) -> dict[str, float]:
    """Per-app ``metric(result) / metric(baseline)`` plus the geomean."""
    ratios = {
        r.app: metric(r) / metric(b) for r, b in zip(results, baseline, strict=True)
    }
    ratios["Geomean"] = geomean(ratios.values())
    return ratios
