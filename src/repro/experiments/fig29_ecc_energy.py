"""Figure 29: L2 energy under SECDED ECC configurations.

Paper results: zero-skipped DESC improves ECC-protected cache energy by
1.82× with (72, 64) segments and 1.92× with (137, 128) segments — the
wider code spends fewer wires on parity.
"""

from __future__ import annotations

from repro.experiments.common import geomean, run_suite
from repro.experiments.fig28_ecc_time import ECC_CONFIGS
from repro.sim.config import SystemConfig

__all__ = ["run"]


def run(system: SystemConfig | None = None) -> dict:
    """L2 energy of each ECC configuration vs 64-64 binary."""
    baseline = run_suite(ECC_CONFIGS[0][1], system)
    base = geomean(r.l2_energy_j for r in baseline)
    table = {}
    for label, scheme in ECC_CONFIGS:
        results = run_suite(scheme, system)
        table[label] = geomean(r.l2_energy_j for r in results) / base
    improvement_64 = table["64-64 Binary"] / table["128-64 DESC"]
    improvement_128 = table["128-128 Binary"] / table["128-128 DESC"]
    return {
        "l2_energy_normalized": table,
        "desc_improvement": {"(72,64)": improvement_64, "(137,128)": improvement_128},
        "paper_improvement": {"(72,64)": 1.82, "(137,128)": 1.92},
    }
