"""Figure 21: average L2 hit delay for binary and zero-skipped DESC.

The paper compares 64- and 128-wire buses: zero-skipped DESC adds 31.2
cycles on a 64-wire bus (two chunks per wire, two rounds) but only 8.45
cycles on the 128-wire bus used in the main configuration.
"""

from __future__ import annotations

from repro.experiments.common import run_suite
from repro.sim.config import SchemeConfig, SystemConfig, desc_scheme

__all__ = ["run", "CONFIGS"]

CONFIGS = (
    ("64-bit Binary", SchemeConfig(name="binary", data_wires=64)),
    ("128-bit Binary", SchemeConfig(name="binary", data_wires=128)),
    ("64-bit DESC", desc_scheme("zero", data_wires=64)),
    ("128-bit DESC", desc_scheme("zero", data_wires=128)),
)


def run(system: SystemConfig | None = None) -> dict:
    """Per-app average hit delay (cycles) for the four configurations."""
    table: dict[str, dict[str, float]] = {}
    for label, scheme in CONFIGS:
        results = run_suite(scheme, system)
        table[label] = {r.app: r.hit_latency for r in results}
        table[label]["Average"] = sum(r.hit_latency for r in results) / len(results)
    extra_128 = table["128-bit DESC"]["Average"] - table["128-bit Binary"]["Average"]
    extra_64 = table["64-bit DESC"]["Average"] - table["64-bit Binary"]["Average"]
    return {
        "hit_delay_cycles": table,
        "desc_extra_delay": {"64-wire": extra_64, "128-wire": extra_128},
        "paper_extra_delay": {"64-wire": 31.2, "128-wire": 8.45},
    }
