"""Figure 28: execution time under SECDED ECC configurations.

Configurations are named W-S (W data wires, Hamming segment S bits):
64-64 and 128-128 binary use the (72, 64) / (137, 128) codes on parity
wires; 128-64 and 128-128 DESC interleave the parity into extra chunks
(Figure 9).  The paper reports ~1 % execution-time penalty for
zero-skipped DESC over binary at equal protection.
"""

from __future__ import annotations

from repro.experiments.common import geomean, run_suite
from repro.sim.config import SchemeConfig, SystemConfig, desc_scheme

__all__ = ["run", "ECC_CONFIGS"]

ECC_CONFIGS = (
    ("64-64 Binary", SchemeConfig(name="binary", data_wires=64, ecc_segment_bits=64)),
    ("128-128 Binary", SchemeConfig(name="binary", data_wires=128, ecc_segment_bits=128)),
    ("128-64 DESC", desc_scheme("zero", data_wires=128, ecc_segment_bits=64)),
    ("128-128 DESC", desc_scheme("zero", data_wires=128, ecc_segment_bits=128)),
)


def run(system: SystemConfig | None = None) -> dict:
    """Execution time of each ECC configuration vs 64-64 binary."""
    baseline = run_suite(ECC_CONFIGS[0][1], system)
    base = geomean(r.cycles for r in baseline)
    table = {}
    per_app = {}
    for label, scheme in ECC_CONFIGS:
        results = run_suite(scheme, system)
        table[label] = geomean(r.cycles for r in results) / base
        per_app[label] = {
            r.app: r.cycles / b.cycles for r, b in zip(results, baseline, strict=True)
        }
    return {
        "execution_time_normalized": table,
        "per_app": per_app,
        "paper_desc_penalty": 1.01,
    }
