"""Figure 14: L2 design-space exploration over ITRS device types.

Sweeps the nine cells-periphery device pairings (and, for the energy
panel, bank count and bus width for the LSTP-LSTP design) reporting L2
energy, execution time, and total processor energy normalized to the
paper's chosen baseline: 8 banks, 64-bit bus, LSTP cells and periphery.
The published conclusion — LSTP-LSTP minimizes energy at a ≈2 %
execution-time cost versus HP devices — must emerge here.
"""

from __future__ import annotations

from repro.experiments.common import SWEEP_SYSTEM, geomean, run_suite
from repro.sim.config import SchemeConfig, SystemConfig

__all__ = ["run", "DEVICE_PAIRS"]

#: (cells, periphery) pairings in the paper's order.
DEVICE_PAIRS = (
    ("HP", "HP"), ("HP", "LOP"), ("HP", "LSTP"),
    ("LOP", "HP"), ("LOP", "LOP"), ("LOP", "LSTP"),
    ("LSTP", "HP"), ("LSTP", "LOP"), ("LSTP", "LSTP"),
)


def run(system: SystemConfig | None = None) -> dict:
    """Normalized L2 energy / execution time / processor energy per pair."""
    base_system = system if system is not None else SWEEP_SYSTEM
    scheme = SchemeConfig(name="binary")

    def suite_means(cfg: SystemConfig) -> tuple[float, float, float]:
        results = run_suite(scheme, cfg)
        return (
            geomean(r.l2_energy_j for r in results),
            geomean(r.cycles for r in results),
            geomean(r.processor_energy_j for r in results),
        )

    baseline = suite_means(
        base_system.with_(cell_device="LSTP", periph_device="LSTP")
    )
    table = {}
    for cells, periph in DEVICE_PAIRS:
        energy, cycles, processor = suite_means(
            base_system.with_(cell_device=cells, periph_device=periph)
        )
        table[f"{cells}-{periph}"] = {
            "l2_energy": energy / baseline[0],
            "execution_time": cycles / baseline[1],
            "processor_energy": processor / baseline[2],
        }

    # The paper also sweeps bank count and bus width for the chosen
    # LSTP-LSTP design ("a representative subset of the results",
    # footnote 2); the baseline 8-bank/64-bit point must win on energy.
    organisation = {}
    for banks in (2, 8, 32):
        for width in (8, 64, 512):
            results = run_suite(
                SchemeConfig(name="binary", data_wires=width),
                base_system.with_(num_banks=banks),
            )
            organisation[f"{banks}banks-{width}bit"] = {
                "l2_energy": geomean(r.l2_energy_j for r in results) / baseline[0],
                "execution_time": geomean(r.cycles for r in results) / baseline[1],
            }
    return {
        "by_device_pair": table,
        "by_organisation": organisation,
        "baseline": "8 banks, 64-bit bus, LSTP-LSTP",
    }
