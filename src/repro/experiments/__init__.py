"""One experiment module per paper figure; each exposes ``run() -> dict``.

The per-experiment index in DESIGN.md §5 maps figures to these modules;
the ``benchmarks/`` tree regenerates every figure through them.
"""

from repro.experiments import (
    ecc_error_rate,
    fault_sweep,
    fig01_l2_fraction,
    fig02_l2_breakdown,
    fig03_illustrative,
    fig12_chunk_values,
    fig13_last_value,
    fig14_design_space,
    fig15_segment_size,
    fig16_l2_energy,
    fig17_synthesis,
    fig18_energy_split,
    fig19_processor_energy,
    fig20_exec_time,
    fig21_hit_delay,
    fig22_design_scatter,
    fig23_snuca_time,
    fig24_snuca_energy,
    fig25_banks,
    fig26_chunk_size,
    fig27_cache_size,
    fig28_ecc_time,
    fig29_ecc_energy,
    fig30_single_thread,
)
from repro.experiments.common import DEFAULT_SCHEMES, geomean, run_suite

__all__ = [
    "DEFAULT_SCHEMES",
    "geomean",
    "run_suite",
    "ecc_error_rate",
    "fault_sweep",
    "fig01_l2_fraction",
    "fig02_l2_breakdown",
    "fig03_illustrative",
    "fig12_chunk_values",
    "fig13_last_value",
    "fig14_design_space",
    "fig15_segment_size",
    "fig16_l2_energy",
    "fig17_synthesis",
    "fig18_energy_split",
    "fig19_processor_energy",
    "fig20_exec_time",
    "fig21_hit_delay",
    "fig22_design_scatter",
    "fig23_snuca_time",
    "fig24_snuca_energy",
    "fig25_banks",
    "fig26_chunk_size",
    "fig27_cache_size",
    "fig28_ecc_time",
    "fig29_ecc_energy",
    "fig30_single_thread",
]
