"""Figure 1: L2 energy as a fraction of total processor energy.

The paper reports ~15 % on average for the 8 MB L2 of the Niagara-like
baseline (conventional binary encoding, LSTP devices).
"""

from __future__ import annotations

from repro.experiments.common import geomean, run_suite
from repro.sim.config import SchemeConfig, SystemConfig

__all__ = ["run"]


def run(system: SystemConfig | None = None) -> dict:
    """Per-application L2-energy fraction plus the geomean."""
    results = run_suite(SchemeConfig(name="binary"), system)
    fractions = {r.app: r.processor.l2_fraction for r in results}
    fractions["Geomean"] = geomean(fractions.values())
    return {"l2_fraction": fractions, "paper_average": 0.15}
