"""Figure 19: overall processor energy with zero-skipped DESC.

Applying zero-skipped DESC to the L2 saves ≈7 % of total processor
energy in the paper.  The figure splits each application's normalized
processor energy into the L2 share and everything else.
"""

from __future__ import annotations

from repro.experiments.common import geomean, run_suite
from repro.sim.config import SchemeConfig, SystemConfig, desc_scheme

__all__ = ["run"]


def run(system: SystemConfig | None = None) -> dict:
    """Per-app normalized processor energy, split L2 vs other units."""
    baseline = run_suite(SchemeConfig(name="binary"), system)
    desc = run_suite(desc_scheme("zero"), system)
    table = {}
    for b, d in zip(baseline, desc, strict=True):
        table[d.app] = {
            "l2": d.processor.l2_j / b.processor.total_j,
            "other": d.processor.non_l2_j / b.processor.total_j,
            "total": d.processor.total_j / b.processor.total_j,
        }
    totals = [row["total"] for row in table.values()]
    table["Geomean"] = {"total": geomean(totals)}
    return {"processor_energy_normalized": table, "paper_geomean": 0.93}
