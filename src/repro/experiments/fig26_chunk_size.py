"""Figure 26: sensitivity of zero-skipped DESC to the chunk size.

Chunk sizes of 1–8 bits with 32–256 data wires at fixed capacity:
larger chunks mean fewer transitions (lower dynamic energy) but longer
value-dependent windows (higher latency and leakage).  The paper finds
4-bit chunks with 128 wires give the best L2 energy-delay product.
"""

from __future__ import annotations

from repro.experiments.common import SWEEP_SYSTEM, geomean, run_suite
from repro.sim.config import SchemeConfig, SystemConfig, desc_scheme

__all__ = ["run", "CHUNK_SIZES", "WIRE_COUNTS"]

CHUNK_SIZES = (1, 2, 4, 8)
WIRE_COUNTS = (32, 64, 128, 256)


def run(system: SystemConfig | None = None) -> dict:
    """(energy, time) normalized to the binary baseline per design point."""
    base_system = system if system is not None else SWEEP_SYSTEM
    baseline = run_suite(SchemeConfig(name="binary"), base_system)
    base_energy = geomean(r.l2_energy_j for r in baseline)
    base_time = geomean(r.cycles for r in baseline)

    points: dict[str, dict[str, float]] = {}
    for chunk in CHUNK_SIZES:
        chunks_per_block = 512 // chunk
        for wires in WIRE_COUNTS:
            if chunks_per_block % wires:
                continue  # layout must spread chunks evenly (Figure 4)
            results = run_suite(
                desc_scheme("zero", data_wires=wires, chunk_bits=chunk),
                base_system,
            )
            points[f"c{chunk}-w{wires}"] = {
                "chunk_bits": chunk,
                "wires": wires,
                "l2_energy": geomean(r.l2_energy_j for r in results) / base_energy,
                "execution_time": geomean(r.cycles for r in results) / base_time,
            }
    best = min(points.values(), key=lambda p: p["l2_energy"] * p["execution_time"])
    return {
        "points": points,
        "best_edp_point": best,
        "paper_best": {"chunk_bits": 4, "wires": 128},
    }
