"""Figure 24: L2 energy of zero-skipped DESC on an S-NUCA-1 cache.

Paper results for the 128-bank S-NUCA-1: 1.62× cache energy reduction
(1.64× average power, 1.59× energy-delay product).
"""

from __future__ import annotations

from repro.experiments.common import geomean, run_suite
from repro.sim.config import SchemeConfig, SystemConfig, desc_scheme
from repro.experiments.fig23_snuca_time import snuca_system

__all__ = ["run"]


def run(system: SystemConfig | None = None) -> dict:
    """Per-app L2 energy of DESC+S-NUCA-1 normalized to S-NUCA-1."""
    cfg = snuca_system(system)
    binary = run_suite(SchemeConfig(name="binary", data_wires=128), cfg)
    desc = run_suite(desc_scheme("zero", data_wires=128), cfg)
    energy = {d.app: d.l2_energy_j / b.l2_energy_j for d, b in zip(desc, binary, strict=True)}
    energy["Geomean"] = geomean(energy.values())
    power = geomean(
        (d.l2_energy_j / d.cycles) / (b.l2_energy_j / b.cycles)
        for d, b in zip(desc, binary, strict=True)
    )
    edp = geomean(
        (d.l2_energy_j * d.cycles) / (b.l2_energy_j * b.cycles)
        for d, b in zip(desc, binary, strict=True)
    )
    return {
        "l2_energy_normalized": energy,
        "l2_power_normalized": power,
        "l2_edp_normalized": edp,
        "paper": {"energy_reduction": 1.62, "power_reduction": 1.64,
                  "edp_reduction": 1.59},
    }
