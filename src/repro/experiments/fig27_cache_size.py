"""Figure 27: impact of L2 capacity on cache energy.

512 KB – 64 MB at fixed organisation: energy grows with capacity for
both binary and DESC, and DESC's advantage narrows slightly — the paper
reports 1.87× at 512 KB down to 1.75× at 64 MB, because leakage (which
DESC cannot reduce) scales with capacity.
"""

from __future__ import annotations

from repro.experiments.common import SWEEP_SYSTEM, geomean, run_suite
from repro.sim.config import SchemeConfig, SystemConfig, desc_scheme

__all__ = ["run", "CACHE_SIZES_MB"]

CACHE_SIZES_MB = (0.5, 1, 2, 4, 8, 16, 32, 64)


def run(system: SystemConfig | None = None) -> dict:
    """Binary and DESC energy vs capacity, normalized to 8 MB binary."""
    base_system = system if system is not None else SWEEP_SYSTEM
    baseline = run_suite(SchemeConfig(name="binary"), base_system)
    base_energy = geomean(r.l2_energy_j for r in baseline)

    binary: dict[str, float] = {}
    desc: dict[str, float] = {}
    improvement: dict[str, float] = {}
    for size_mb in CACHE_SIZES_MB:
        cfg = base_system.with_(l2_size_bytes=int(size_mb * 1024 * 1024))
        b = geomean(
            r.l2_energy_j for r in run_suite(SchemeConfig(name="binary"), cfg)
        )
        d = geomean(r.l2_energy_j for r in run_suite(desc_scheme("zero"), cfg))
        label = f"{size_mb:g}MB"
        binary[label] = b / base_energy
        desc[label] = d / base_energy
        improvement[label] = b / d
    return {
        "binary": binary,
        "desc": desc,
        "desc_improvement": improvement,
        "paper_improvement": {"0.5MB": 1.87, "64MB": 1.75},
    }
