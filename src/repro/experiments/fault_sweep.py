"""Fault sweep: drop rate × resync interval × ECC layout.

The robustness companion to the paper's Section 3.2.3 ECC discussion:
DESC's level-encoded signaling turns a single dropped toggle into a
persistent counter desynchronization, so reliability is set by three
interacting knobs — the raw fault rate of the wires, how often the link
pays for a resynchronization strobe, and whether the Figure 9
interleaved SECDED layout protects the payload.  This experiment sweeps
all three and reports, per grid point, the residual error rates
(pre/post ECC), the detected-vs-silent corruption split, the recovery
latency, and the energy/cycle overhead of the recovery protocol.

Campaigns run through :meth:`repro.sim.engine.StagedEngine.
fault_campaigns`, so they are store-cached, pool-parallel, and
failure-isolated like every other batch job; a campaign that fails
reports a ``failed`` row instead of sinking the sweep.
"""

from __future__ import annotations

from dataclasses import replace

from repro.faults.campaign import FaultCampaignConfig, sweep_grid
from repro.faults.processes import FaultConfig
from repro.sim.engine import FailedJob, StagedEngine

__all__ = ["run", "DROP_RATES", "RESYNC_INTERVALS"]

#: Per-wire per-cycle toggle-drop probabilities swept by default.  The
#: top rate is deliberately brutal — every block sees multiple faults —
#: so the recovery protocol's behaviour under stress is visible.
DROP_RATES: tuple[float, ...] = (0.0, 5e-4, 2e-3, 8e-3)

#: Blocks between periodic resync strobes (None = watchdog-forced only).
RESYNC_INTERVALS: tuple[int | None, ...] = (None, 16, 4)

_QUICK_DROP_RATES: tuple[float, ...] = (0.0, 2e-3)
_QUICK_RESYNC_INTERVALS: tuple[int | None, ...] = (None, 4)


def _base_config(quick: bool, seed: int) -> FaultCampaignConfig:
    """The anchor campaign the grid varies around.

    Quick mode shrinks the geometry to a 64-bit block over four 16-bit
    SECDED segments — same interleaving structure, a fraction of the
    wires — so CI smoke runs finish in seconds.
    """
    fault = FaultConfig(glitch_rate=5e-4, seed=seed)
    if quick:
        return FaultCampaignConfig(
            fault=fault, num_blocks=24, block_bits=64, segment_bits=16,
            data_seed=seed + 1,
        )
    return FaultCampaignConfig(
        fault=fault, num_blocks=64, block_bits=512, segment_bits=128,
        data_seed=seed + 1,
    )


def run(
    quick: bool = False,
    seed: int = 0,
    max_workers: int | None = None,
) -> dict:
    """Sweep fault rate × resync interval × ECC; returns a result table.

    Pure in ``seed``: the same seed gives the same table for any
    ``max_workers`` (campaigns are seeded and the engine is
    deterministic under parallel execution).
    """
    base = _base_config(quick, seed)
    grid = sweep_grid(
        base,
        drop_rates=_QUICK_DROP_RATES if quick else DROP_RATES,
        resync_intervals=(
            _QUICK_RESYNC_INTERVALS if quick else RESYNC_INTERVALS
        ),
    )
    engine = StagedEngine()
    outcomes = engine.fault_campaigns(grid, max_workers=max_workers)

    rows = []
    failed = 0
    for config, outcome in zip(grid, outcomes, strict=True):
        if isinstance(outcome, FailedJob):
            failed += 1
            rows.append({
                "drop_rate": config.fault.drop_rate,
                "resync_interval": config.resync_interval,
                "ecc": config.use_ecc,
                "failed": outcome.reason,
            })
            continue
        s = outcome.stats
        rows.append({
            "drop_rate": config.fault.drop_rate,
            "resync_interval": config.resync_interval,
            "ecc": config.use_ecc,
            "blocks_sent": s.blocks_sent,
            "blocks_lost": s.blocks_lost,
            "clean": s.clean_blocks,
            "corrected": s.corrected_blocks,
            "detected": s.detected_blocks,
            "silent": s.silent_blocks,
            "chunk_error_rate": s.chunk_error_rate,
            "residual_bit_error_rate": s.residual_bit_error_rate,
            "resyncs": s.resyncs,
            "mean_recovery_latency": s.mean_recovery_latency,
            "resync_energy_overhead": s.resync_energy_overhead,
            "cycle_overhead": s.cycle_overhead,
        })
    return {
        "geometry": {
            "block_bits": base.block_bits,
            "segment_bits": base.segment_bits,
            "chunk_bits": base.chunk_bits,
            "num_blocks": base.num_blocks,
        },
        "seed": seed,
        "points": len(rows),
        "failed": failed,
        "rows": rows,
    }


def smoke_check(seed: int = 0) -> list[str]:
    """The CI fault-injection smoke assertions; returns found problems.

    With ECC on, a moderate fault rate must produce **zero silent
    corruption** (every corrupted chunk corrected or detected); with
    ECC off, the very same fault stream must corrupt data — otherwise
    the injector, the recovery protocol, or the ECC layout is broken.
    """
    fault = FaultConfig(drop_rate=2e-3, glitch_rate=1e-3, seed=seed + 3)
    base = FaultCampaignConfig(
        fault=fault, num_blocks=32, block_bits=64, segment_bits=16,
        resync_interval=4, data_seed=seed + 1,
    )
    engine = StagedEngine()
    with_ecc = engine.fault_campaign(base).stats
    without = engine.fault_campaign(replace(base, use_ecc=False)).stats
    problems = []
    if with_ecc.silent_blocks or with_ecc.bit_errors_post_ecc:
        problems.append(
            f"ECC on: expected zero silent corruption, got "
            f"{with_ecc.silent_blocks} silent blocks / "
            f"{with_ecc.bit_errors_post_ecc} residual bits"
        )
    if with_ecc.chunk_errors_pre_ecc == 0:
        problems.append(
            "ECC on: the fault injector produced no chunk errors at all"
        )
    if without.silent_blocks + without.detected_blocks + without.blocks_lost == 0:
        problems.append(
            "ECC off: expected corrupted blocks, everything came through clean"
        )
    return problems
