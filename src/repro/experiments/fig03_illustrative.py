"""Figure 3: parallel vs serial vs DESC transmission of one byte.

The paper's worked example sends 01010011 (MSB first) over wires that
all start at zero: parallel transfer flips four wires in one cycle,
serial transfer flips the single wire five times over eight cycles, and
DESC (two 4-bit chunks on two data wires plus the shared reset wire)
needs three bit-flips.
"""

from __future__ import annotations

import numpy as np

from repro.encoding.binary import BinaryEncoder
from repro.encoding.desc import DescEncoder
from repro.encoding.serial import SerialEncoder

__all__ = ["run", "EXAMPLE_BYTE"]

#: The byte of Figure 3, written MSB-first as in the paper: 01010011.
EXAMPLE_BYTE = 0b01010011


def run() -> dict:
    """Flip counts and cycles of the three schemes on the example byte."""
    # Little-endian bit array of the byte.
    bits = np.array([(EXAMPLE_BYTE >> i) & 1 for i in range(8)], dtype=np.uint8)
    # The paper's serial wire sends the byte as written (MSB first).
    msb_first = bits[::-1].copy()

    parallel = BinaryEncoder(block_bits=8, data_wires=8).transfer_block(bits)
    serial = SerialEncoder(block_bits=8).transfer_block(msb_first)
    desc = DescEncoder(
        block_bits=8, data_wires=2, chunk_bits=4, skip_policy="none"
    ).transfer_block(bits)

    return {
        "parallel": {"flips": parallel.total_flips, "cycles": parallel.cycles},
        "serial": {"flips": serial.total_flips, "cycles": serial.cycles},
        "desc": {
            "flips": desc.data_flips + desc.overhead_flips,
            "flips_with_sync": desc.total_flips,
            "cycles": desc.cycles,
        },
        "paper": {"parallel_flips": 4, "serial_flips": 5, "desc_flips": 3},
    }
