"""Figure 18: static vs dynamic L2 energy per transfer technique.

The paper shows zero-skipped DESC halving the dynamic component while
adding ~3 % static energy (the slightly longer run time), averaged over
the sixteen applications.
"""

from __future__ import annotations

from repro.experiments.common import DEFAULT_SCHEMES, run_suite
from repro.sim.config import SystemConfig

__all__ = ["run"]


def run(system: SystemConfig | None = None) -> dict:
    """Per-scheme (static, dynamic) energy, normalized to binary total."""
    baseline = run_suite(DEFAULT_SCHEMES[0][1], system)
    base_total = sum(r.l2.total_j for r in baseline)
    table = {}
    for label, scheme in DEFAULT_SCHEMES:
        results = run_suite(scheme, system)
        static = sum(r.l2.static_j for r in results)
        dynamic = sum(r.l2.dynamic_j for r in results)
        table[label] = {
            "static": static / base_total,
            "dynamic": dynamic / base_total,
            "total": (static + dynamic) / base_total,
        }
    return {"energy_split": table}
