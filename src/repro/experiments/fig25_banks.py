"""Figure 25: sensitivity of zero-skipped DESC to the bank count.

Sweeping 1–64 banks: going from one to two banks removes most bank
conflicts (large speedup), energy and time reach their best around
eight banks, and beyond that the fixed per-bank periphery and DESC
circuitry push the energy-delay product back up.
"""

from __future__ import annotations

from repro.experiments.common import SWEEP_SYSTEM, geomean, run_suite
from repro.sim.config import SchemeConfig, SystemConfig, desc_scheme

__all__ = ["run", "BANK_COUNTS"]

BANK_COUNTS = (1, 2, 4, 8, 16, 32, 64)


def run(system: SystemConfig | None = None) -> dict:
    """Energy and execution time vs banks, normalized to 8-bank binary."""
    base_system = system if system is not None else SWEEP_SYSTEM
    baseline = run_suite(SchemeConfig(name="binary"), base_system.with_(num_banks=8))
    base_energy = geomean(r.l2_energy_j for r in baseline)
    base_time = geomean(r.cycles for r in baseline)

    energy: dict[int, float] = {}
    time: dict[int, float] = {}
    for banks in BANK_COUNTS:
        results = run_suite(
            desc_scheme("zero"), base_system.with_(num_banks=banks)
        )
        energy[banks] = geomean(r.l2_energy_j for r in results) / base_energy
        time[banks] = geomean(r.cycles for r in results) / base_time
    return {
        "l2_energy_normalized": energy,
        "execution_time_normalized": time,
        "paper_best_banks": 8,
    }
