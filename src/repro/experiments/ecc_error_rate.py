"""ECC reliability sweep: outcome rates vs per-transfer chunk-error count.

Not a paper figure — Section 3.2.3 argues qualitatively that the
Figure 9 interleaving preserves conventional SECDED guarantees under
DESC's chunk-granularity errors.  This experiment quantifies it: for
each injected-error count, the fraction of transfers fully corrected,
flagged as detected (uncorrectable), or silently corrupted, for both
Hamming configurations.  The guarantees to observe: zero silent
corruption at one or two chunk errors, correction always at one.
"""

from __future__ import annotations

import numpy as np

from repro.ecc.injection import inject_chunk_errors
from repro.ecc.layout import DescEccLayout

__all__ = ["run"]


def run(
    trials: int = 300,
    max_errors: int = 4,
    segment_sizes: tuple[int, ...] = (64, 128),
    seed: int = 7,
) -> dict:
    """Outcome rates per (segment size, error count)."""
    rng = np.random.default_rng(seed)
    results: dict[str, dict[int, dict[str, float]]] = {}
    for segment_bits in segment_sizes:
        layout = DescEccLayout(512, segment_bits, 4)
        label = f"({layout.code.codeword_bits},{segment_bits})"
        results[label] = {}
        for errors in range(1, max_errors + 1):
            corrected = detected = silent = 0
            for _ in range(trials):
                data = rng.integers(0, 2, size=512).astype(np.uint8)
                chunks = layout.encode_block(data)
                corrupted, _ = inject_chunk_errors(chunks, errors, rng)
                outcome = layout.decode_block(corrupted)
                if not outcome.ok:
                    detected += 1
                elif np.array_equal(outcome.data_bits, data):
                    corrected += 1
                else:
                    silent += 1
            results[label][errors] = {
                "corrected": corrected / trials,
                "detected": detected / trials,
                "silent": silent / trials,
            }
    return {
        "outcome_rates": results,
        "guarantees": {
            "single_error_always_corrected": all(
                by_errors[1]["corrected"] == 1.0
                for by_errors in results.values()
            ),
            "double_error_never_silent": all(
                by_errors[2]["silent"] == 0.0
                for by_errors in results.values()
            ),
        },
    }
