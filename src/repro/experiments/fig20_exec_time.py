"""Figure 20: execution time of the data communication schemes.

The paper reports ≤2 % slowdown for the skipped DESC variants (the L2
hit grows by the transfer window, largely hidden by multithreading) and
~1 % for the zero-compression / bus-invert baselines (extra wires).
"""

from __future__ import annotations

from repro.experiments.common import DEFAULT_SCHEMES, geomean, run_suite
from repro.sim.config import SystemConfig

__all__ = ["run"]


def run(system: SystemConfig | None = None) -> dict:
    """Per-scheme execution time normalized to binary encoding."""
    baseline = run_suite(DEFAULT_SCHEMES[0][1], system)
    base = geomean(r.cycles for r in baseline)
    table = {}
    for label, scheme in DEFAULT_SCHEMES:
        results = run_suite(scheme, system)
        table[label] = geomean(r.cycles for r in results) / base
    return {
        "execution_time_normalized": table,
        "paper_max_desc_overhead": 1.02,
    }
