"""Figure 2: major components of the 8 MB L2 energy.

The paper shows the H-tree dominating (≈80 % on average) when the cache
uses low-standby-power devices, with the remainder split between static
energy and the other dynamic components.
"""

from __future__ import annotations

from repro.experiments.common import run_suite
from repro.sim.config import SchemeConfig, SystemConfig

__all__ = ["run"]


def run(system: SystemConfig | None = None) -> dict:
    """Per-application (static, other dynamic, H-tree dynamic) shares."""
    results = run_suite(SchemeConfig(name="binary"), system)
    breakdown = {}
    for r in results:
        total = r.l2.total_j
        breakdown[r.app] = {
            "static": r.l2.static_j / total,
            "other_dynamic": r.l2.array_dynamic_j / total,
            "htree_dynamic": r.l2.htree_dynamic_j / total,
        }
    avg = {
        key: sum(b[key] for b in breakdown.values()) / len(breakdown)
        for key in ("static", "other_dynamic", "htree_dynamic")
    }
    return {"breakdown": breakdown, "average": avg, "paper_htree_average": 0.80}
