"""Figure 23: execution time of zero-skipped DESC on an S-NUCA-1 cache.

The paper applies DESC to an 8 MB S-NUCA-1 with 128 banks and 128-bit
ports (bank latency 3–13 cycles, statically routed) and measures a ~1 %
execution-time penalty over binary on the same organisation.
"""

from __future__ import annotations

from repro.experiments.common import geomean, run_suite
from repro.sim.config import SchemeConfig, SystemConfig, desc_scheme

__all__ = ["run", "snuca_system"]


def snuca_system(system: SystemConfig | None = None) -> SystemConfig:
    """The Section 5.5 S-NUCA-1 organisation."""
    base = system if system is not None else SystemConfig()
    return base.with_(nuca=True, num_banks=128)


def run(system: SystemConfig | None = None) -> dict:
    """Per-app execution time of DESC+S-NUCA-1 normalized to S-NUCA-1."""
    cfg = snuca_system(system)
    binary = run_suite(SchemeConfig(name="binary", data_wires=128), cfg)
    desc = run_suite(desc_scheme("zero", data_wires=128), cfg)
    ratios = {d.app: d.cycles / b.cycles for d, b in zip(desc, binary, strict=True)}
    ratios["Geomean"] = geomean(ratios.values())
    return {"execution_time_normalized": ratios, "paper_geomean": 1.01}
