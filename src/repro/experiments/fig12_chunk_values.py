"""Figure 12: distribution of 4-bit chunk values on the L2 interface.

The paper measures ~31 % zero chunks with the non-zero values spread
relatively uniformly — the observation motivating zero skipping.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.generator import block_stream, chunk_statistics
from repro.workloads.suites import PARALLEL_SUITE

__all__ = ["run"]


def run(num_blocks: int = 6000, seed: int = 1) -> dict:
    """Suite-average chunk-value histogram and zero fraction."""
    histogram = np.zeros(16)
    zero_fractions = {}
    for app in PARALLEL_SUITE:
        stats = chunk_statistics(block_stream(app, num_blocks, seed))
        histogram += np.asarray(stats["value_histogram"])
        zero_fractions[app.name] = stats["zero_fraction"]
    histogram /= len(PARALLEL_SUITE)
    return {
        "value_histogram": histogram.tolist(),
        "zero_fraction": float(histogram[0]),
        "zero_fraction_by_app": zero_fractions,
        "paper_zero_fraction": 0.31,
    }
