"""Figure 16: L2 cache energy of the eight data-transfer techniques.

The paper's headline cache-level comparison: per application, L2 energy
normalized to conventional binary encoding.  Paper geomeans — DZC 0.90,
BIC 0.81, zero-skipped BIC 0.80, basic DESC 0.89, zero-skipped DESC
0.55 (1.81×), last-value-skipped DESC 0.56 (1.77×).
"""

from __future__ import annotations

from repro.experiments.common import DEFAULT_SCHEMES, ratio_by_app, run_suite
from repro.sim.config import SystemConfig

__all__ = ["run"]


def run(system: SystemConfig | None = None) -> dict:
    """Per-app, per-scheme L2 energy normalized to binary encoding."""
    baseline = run_suite(DEFAULT_SCHEMES[0][1], system)
    table = {}
    for label, scheme in DEFAULT_SCHEMES:
        results = run_suite(scheme, system)
        table[label] = ratio_by_app(
            results, baseline, lambda r: r.l2_energy_j
        )
    return {
        "l2_energy_normalized": table,
        "paper_geomeans": {
            "Dynamic Zero Compression": 0.90,
            "Bus Invert Coding": 0.81,
            "Zero Skipped Bus Invert": 0.80,
            "Basic DESC": 0.89,
            "Zero Skipped DESC": 0.55,
            "Last Value Skipped DESC": 0.56,
        },
    }
