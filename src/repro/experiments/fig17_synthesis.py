"""Figure 17: synthesis results for the DESC transmitter and receiver.

Paper (22 nm, 128 chunks): the interface pair occupies ≈2120 µm²
(<1 % of the 8 MB L2), peaks at ≈46 mW, and adds ≈625 ps of logic delay
to the round-trip access.
"""

from __future__ import annotations

from repro.energy.cacti import CacheEnergyModel
from repro.energy.synthesis import DescSynthesisModel

__all__ = ["run"]


def run(num_chunks: int = 128, chunk_bits: int = 4) -> dict:
    """Area/power/delay of TX and RX plus the L2 area-overhead check."""
    model = DescSynthesisModel(num_chunks=num_chunks, chunk_bits=chunk_bits)
    tx, rx = model.transmitter(), model.receiver()
    pair = model.interface_pair()

    cache = CacheEnergyModel()
    mats = (
        cache.geometry.num_banks
        * cache.geometry.subbanks_per_bank
        * cache.geometry.mats_per_subbank
    )
    # One interface pair at the controller side per mat path plus one at
    # every mat (Figure 7).
    total_interface_mm2 = pair.area_um2 * (mats + 1) * 1e-6
    area_overhead = total_interface_mm2 / cache.area_mm2

    return {
        "transmitter": {"area_um2": tx.area_um2, "peak_power_mw": tx.peak_power_w * 1e3,
                        "delay_ns": tx.delay_s * 1e9},
        "receiver": {"area_um2": rx.area_um2, "peak_power_mw": rx.peak_power_w * 1e3,
                     "delay_ns": rx.delay_s * 1e9},
        "pair_area_um2": pair.area_um2,
        "pair_peak_power_mw": pair.peak_power_w * 1e3,
        "round_trip_delay_ps": model.round_trip_delay_s() * 1e12,
        "l2_area_overhead": area_overhead,
        "paper": {"pair_area_um2": 2120, "pair_peak_power_mw": 46,
                  "round_trip_delay_ps": 625, "l2_area_overhead_max": 0.01},
    }
