"""Figure 30: latency sensitivity of single-threaded SPEC CPU2006 runs.

Unlike the throughput-oriented multicore, the 4-issue out-of-order core
cannot hide DESC's longer hit latency behind other threads: the paper
measures a ~6 % mean execution-time increase over the eight SPEC
applications.
"""

from __future__ import annotations

from repro.experiments.common import geomean
from repro.sim.config import SchemeConfig, SystemConfig, desc_scheme
from repro.sim.system import simulate
from repro.workloads.suites import SPEC_SUITE

__all__ = ["run"]


def run(system: SystemConfig | None = None) -> dict:
    """Per-app OoO execution time of DESC normalized to binary."""
    cfg = (system if system is not None else SystemConfig()).with_(core="ooo")
    ratios = {}
    for app in SPEC_SUITE:
        binary = simulate(app, SchemeConfig(name="binary"), cfg)
        desc = simulate(app, desc_scheme("zero"), cfg)
        ratios[app.name.upper()] = desc.cycles / binary.cycles
    ratios["Geomean"] = geomean(ratios.values())
    return {"execution_time_normalized": ratios, "paper_geomean": 1.06}
