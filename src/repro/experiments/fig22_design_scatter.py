"""Figure 22: cache design-space possibilities, binary vs skipped DESC.

Varies bank count and data-bus width (and chunk size for DESC) at fixed
8 MB capacity, plotting each design's (L2 energy, execution time)
normalized to the baseline (8 banks, 64-bit bus, binary).  The paper's
conclusion: DESC opens new design points with substantially lower
energy at similar latency.
"""

from __future__ import annotations

from repro.experiments.common import SWEEP_SYSTEM, geomean, run_suite
from repro.sim.config import SchemeConfig, SystemConfig, desc_scheme

__all__ = ["run", "BANK_SWEEP", "WIDTH_SWEEP"]

BANK_SWEEP = (2, 4, 8, 16, 32)
WIDTH_SWEEP = (32, 64, 128, 256)
_DESC_CHUNKS = (2, 4, 8)


def run(system: SystemConfig | None = None) -> dict:
    """Scatter points: label → (energy, time) normalized to baseline."""
    base_system = system if system is not None else SWEEP_SYSTEM
    baseline = run_suite(SchemeConfig(name="binary"), base_system)
    base_energy = geomean(r.l2_energy_j for r in baseline)
    base_time = geomean(r.cycles for r in baseline)

    def point(scheme: SchemeConfig, banks: int) -> tuple[float, float]:
        results = run_suite(scheme, base_system.with_(num_banks=banks))
        return (
            geomean(r.l2_energy_j for r in results) / base_energy,
            geomean(r.cycles for r in results) / base_time,
        )

    points: dict[str, dict[str, tuple[float, float]]] = {"binary": {}, "desc": {}}
    for banks in BANK_SWEEP:
        for width in WIDTH_SWEEP:
            points["binary"][f"b{banks}-w{width}"] = point(
                SchemeConfig(name="binary", data_wires=width), banks
            )
            for chunk in _DESC_CHUNKS:
                if (512 // chunk) % width:
                    continue  # chunks must spread evenly over the wires
                points["desc"][f"b{banks}-w{width}-c{chunk}"] = point(
                    desc_scheme("zero", data_wires=width, chunk_bits=chunk), banks
                )
    return {"points": points, "baseline": "8 banks, 64-bit bus, binary"}
