"""Figure 15: baseline L2 energy as a function of data segment size.

Dynamic zero compression and the bus-invert variants are sensitive to
the segment size; the paper sweeps 4..64-bit segments on the 64-bit
bus, picks each scheme's best configuration (starred in the figure),
and uses those as the baselines everywhere else.  Our registry defaults
(:data:`repro.encoding.registry.BEST_SEGMENT_BITS`) are re-derived by
this experiment.
"""

from __future__ import annotations

from repro.experiments.common import geomean, run_suite
from repro.sim.config import SchemeConfig, SystemConfig

__all__ = ["run", "SEGMENT_SIZES", "SEGMENTED_SCHEMES"]

SEGMENT_SIZES = (4, 8, 16, 32, 64)
SEGMENTED_SCHEMES = (
    "zero-compression",
    "bus-invert",
    "bus-invert+zero-skip",
    "bus-invert+encoded-zero-skip",
)


def run(system: SystemConfig | None = None) -> dict:
    """L2 energy vs segment size, normalized to binary, plus best picks."""
    baseline = run_suite(SchemeConfig(name="binary"), system)
    base_energy = geomean(r.l2_energy_j for r in baseline)
    table: dict[str, dict[int, float]] = {}
    best: dict[str, int] = {}
    for name in SEGMENTED_SCHEMES:
        table[name] = {}
        for bits in SEGMENT_SIZES:
            results = run_suite(
                SchemeConfig(name=name, segment_bits=bits), system
            )
            energy = geomean(r.l2_energy_j for r in results)
            table[name][bits] = energy / base_energy
        best[name] = min(table[name], key=table[name].get)
    return {"energy_by_segment": table, "best_segment_bits": best}
