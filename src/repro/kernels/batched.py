"""Shared batched array primitives for the hot stream/trace kernels.

Every transfer scheme, the workload generator, and the trace-execution
engine reduce to a handful of array patterns: shifting a time series
against its own history, forward-filling the last "real" value down an
axis, counting level transitions on a wire, popcounting packed words,
and ranking events within groups.  This module is the one home for
those patterns — the encoders (:mod:`repro.encoding`), the closed-form
DESC model (:mod:`repro.core.analysis`), and the workload generator
(:mod:`repro.workloads.generator`) all route through it, so a kernel
improvement (e.g. the hardware ``popcount`` below) lands everywhere at
once.

All kernels are pure and allocation-disciplined: no Python-level loops
over elements, output dtypes fixed, and exact (bit-identical) with
respect to the scalar formulations they replace — the property tests in
``tests/kernels/test_batched.py`` pin that down.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "popcount",
    "shifted_prev",
    "forward_fill_take",
    "level_transitions",
    "strobe_flips",
    "group_rank",
    "group_rank_sorted",
]

#: ``np.bitwise_count`` landed in NumPy 2.0; fall back to a 16-bit
#: lookup table on older installs (four table gathers per word).
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")
_POPCOUNT16: np.ndarray | None = None


def _popcount16_table() -> np.ndarray:
    global _POPCOUNT16
    if _POPCOUNT16 is None:
        table = np.arange(1 << 16, dtype=np.uint16)
        counts = np.zeros(1 << 16, dtype=np.uint8)
        while table.any():
            counts += (table & 1).astype(np.uint8)
            table >>= 1
        _POPCOUNT16 = counts
    return _POPCOUNT16


def popcount(values: np.ndarray) -> np.ndarray:
    """Per-element population count of a non-negative integer array.

    Uses the hardware ``popcnt`` path (``np.bitwise_count``) when
    available; otherwise four 16-bit table lookups per 64-bit word —
    either way O(n) instead of the O(n * bits) shift-and-mask loop.
    """
    values = np.asarray(values).astype(np.uint64)
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(values).astype(np.int64)
    table = _popcount16_table()
    mask = np.uint64(0xFFFF)
    counts = table[(values & mask).astype(np.int64)].astype(np.int64)
    for shift in (16, 32, 48):
        counts += table[((values >> np.uint64(shift)) & mask).astype(np.int64)]
    return counts


def shifted_prev(values: np.ndarray, initial=0) -> np.ndarray:
    """The series one step earlier along axis 0: ``prev[t] = values[t-1]``.

    ``prev[0]`` is ``initial`` — a scalar, or an array broadcastable to
    one time slice (e.g. the wire history carried in from an earlier
    stream).  This is the "state of the bus before the beat" pattern
    every level-driven encoder uses.
    """
    values = np.asarray(values)
    prev = np.empty_like(values)
    prev[0] = initial
    prev[1:] = values[:-1]
    return prev


def forward_fill_take(values: np.ndarray, keep: np.ndarray, axis: int = 0) -> np.ndarray:
    """Replace non-kept entries with the last kept entry along ``axis``.

    ``keep`` is a boolean array matching ``values``'s leading shape on
    ``axis`` (and broadcast over trailing dims is handled by the caller
    reshaping).  Entries before the first kept index keep their own
    value — positions where ``keep`` is ``True`` are sources, positions
    where it is ``False`` copy the nearest earlier source (or
    themselves if none exists).  Returns a gathered copy.

    This is the vectorized form of the sequential "carry the previous
    value forward" loop: repeat chains in the block generator, word
    copies inside a block, and held-bus forward fills all reduce to it.
    """
    values = np.asarray(values)
    keep = np.asarray(keep, dtype=bool)
    if keep.shape != values.shape[: keep.ndim]:
        raise ValueError(
            f"keep shape {keep.shape} does not prefix values shape {values.shape}"
        )
    length = values.shape[axis]
    index_shape = [1] * keep.ndim
    index_shape[axis] = length
    index = np.arange(length, dtype=np.int64).reshape(index_shape)
    source = np.where(keep, index, np.int64(-1))
    source = np.maximum.accumulate(source, axis=axis)
    # Positions before the first source keep themselves.
    source = np.where(source < 0, index, source)
    if keep.ndim < values.ndim:
        source = source.reshape(source.shape + (1,) * (values.ndim - keep.ndim))
        source = np.broadcast_to(source, values.shape)
    return np.take_along_axis(values, source, axis=axis)


def level_transitions(levels: np.ndarray, initial=0) -> np.ndarray:
    """Transitions of level-signalled wires along axis 0.

    ``levels`` is a 0/1 array whose axis 0 is time; ``initial`` is the
    level before the first step (wires reset low by default).  Returns
    an int64 array of the same shape with 1 wherever the level changed.
    """
    levels = np.asarray(levels).astype(np.int64)
    return np.abs(levels - shifted_prev(levels, initial))


def strobe_flips(cycles: np.ndarray, busy_before: int) -> tuple[np.ndarray, int]:
    """Synchronization-strobe flips per block, with carried parity.

    The DESC strobe flips once per two busy cycles; the busy-cycle
    parity persists across blocks (and across calls).  Given each
    block's busy ``cycles`` and the total busy cycles before the
    stream, returns the per-block strobe flips and the updated total.
    """
    cycles = np.asarray(cycles, dtype=np.int64)
    cum = busy_before + np.cumsum(cycles)
    prev = np.concatenate(([busy_before], cum[:-1]))
    flips = (cum + 1) // 2 - (prev + 1) // 2
    after = int(cum[-1]) if len(cum) else busy_before
    return flips, after


def group_rank(groups: np.ndarray) -> np.ndarray:
    """Occurrence index of each element within its group, in array order.

    ``groups`` is a 1-D integer array of group labels; the result's
    entry ``i`` is the number of earlier entries with the same label.
    This is the vectorized form of the "per-key running counter" loop
    (e.g. each thread's position within its private stream region).

    Dispatches through :mod:`repro.kernels.pipeline`: a dense counting
    pass in C when the native library is loaded and the label range is
    narrow, the stable-sort formulation below otherwise.
    """
    from repro.kernels import pipeline

    groups = np.asarray(groups)
    if groups.ndim != 1:
        raise ValueError(f"expected a 1-D group array, got shape {groups.shape}")
    return pipeline.group_rank(groups)


def group_rank_sorted(groups: np.ndarray) -> np.ndarray:
    """Stable-sort formulation of :func:`group_rank` (pure NumPy tier)."""
    groups = np.asarray(groups)
    n = len(groups)
    rank = np.empty(n, dtype=np.int64)
    if n == 0:
        return rank
    order = np.argsort(groups, kind="stable")
    sorted_groups = groups[order]
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    boundary[1:] = sorted_groups[1:] != sorted_groups[:-1]
    # Position within the sorted array, rebased at each group boundary.
    position = np.arange(n, dtype=np.int64)
    start = forward_fill_take(position, boundary)
    rank[order] = position - start
    return rank
