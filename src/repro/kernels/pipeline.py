"""One-call-per-epoch pipeline kernels: native entry points + NumPy twins.

The per-epoch hot loop — encoder chunking, toggle/level-transition
detection, trace generation, and the DESC cost tally — historically
crossed the Python↔C boundary once per NumPy *primitive* (a gather
here, a ``maximum.accumulate`` there).  This module packs each epoch
into contiguous buffers and crosses the boundary **once per stage**,
through the kernels of ``pipeline_native.c`` (compiled into the same
shared library as the multicore engine by :mod:`repro.kernels.native`).

Every native entry point ``X_native`` has a NumPy twin ``X_numpy`` with
the *identical* signature (lint R003 pins the pairs) and a dispatcher
``X`` that prefers native and falls back — on ``REPRO_NATIVE=0`` /
``REPRO_PIPELINE=0``, on a missing compiler, or on unsupported geometry
(return value ``None`` from the native variant).  The fallback chain
never changes results: the native kernels are integer-only and
byte-identical to the NumPy formulations; all float math (latency
means, energy) stays in NumPy on both tiers.

Buffer-packing layout (shared with the C side):

* bit matrices ``(n, block_bits)`` flatten row-major and pack little-
  endian — global bit ``g`` lives at bit ``g % 64`` of uint64 word
  ``g // 64`` — so beat ``t`` of the stream occupies bits
  ``[t*W, (t+1)*W)`` and segment ``j`` the ``s`` bits at ``t*W + j*s``;
* chunk streams stay ``(num_blocks * rounds, wires)`` int64, the same
  time-major view :class:`~repro.core.analysis.DescCostModel` uses;
* the counter-RNG trace assembly passes every float-derived constant
  (thresholds, CDF tables) in as integers, computed once in Python, so
  both tiers compare the same uint64 draws.
"""

from __future__ import annotations

import ctypes
import os

import numpy as np

from repro.kernels import native as _native

__all__ = [
    "pipeline_available",
    "pipeline_error",
    "PackedBits",
    "desc_stream_arrays",
    "desc_stream_arrays_native",
    "desc_stream_arrays_numpy",
    "schedule_arrays",
    "binary_flips",
    "binary_flips_native",
    "binary_flips_numpy",
    "dzc_flips",
    "dzc_flips_native",
    "dzc_flips_numpy",
    "bus_invert_flips",
    "bus_invert_flips_native",
    "bus_invert_flips_numpy",
    "block_assemble",
    "block_assemble_native",
    "block_assemble_numpy",
    "trace_assemble",
    "trace_assemble_native",
    "trace_assemble_numpy",
    "group_rank",
    "group_rank_native",
    "group_rank_numpy",
]

_I64P = ctypes.POINTER(ctypes.c_int64)
_U64P = ctypes.POINTER(ctypes.c_uint64)
_U8P = ctypes.POINTER(ctypes.c_uint8)
_F64P = ctypes.POINTER(ctypes.c_double)

_SKIP_POLICY_CODES = {"none": 0, "zero": 1, "last-value": 2}
_BUS_INVERT_MODES = {None: 0, "sparse": 1, "encoded": 2}

#: Dense group_rank allocates a counting array over the label range;
#: beyond this multiple of the input size the sort-based NumPy kernel
#: is the better trade.
_GROUP_RANK_RANGE_SLACK = 4
_GROUP_RANK_RANGE_FLOOR = 1 << 16


def _i64p(arr: np.ndarray):
    return arr.ctypes.data_as(_I64P)


def _u64p(arr: np.ndarray):
    return arr.ctypes.data_as(_U64P)


def _u8p(arr: np.ndarray):
    return arr.ctypes.data_as(_U8P)


def _f64p(arr: np.ndarray):
    return arr.ctypes.data_as(_F64P)


def _prototypes(lib: ctypes.CDLL) -> None:
    c_i64 = ctypes.c_int64
    c_u64 = ctypes.c_uint64
    lib.desc_stream_cost.restype = c_i64
    lib.desc_stream_cost.argtypes = [
        _I64P, c_i64, c_i64, c_i64, c_i64, _I64P,
        _I64P, _I64P, _I64P, _I64P, _I64P,
    ]
    lib.binary_stream_cost.restype = c_i64
    lib.binary_stream_cost.argtypes = [_U64P, c_i64, c_i64, c_i64, _I64P]
    lib.dzc_stream_cost.restype = c_i64
    lib.dzc_stream_cost.argtypes = [
        _U64P, c_i64, c_i64, c_i64, c_i64, _I64P, _I64P,
    ]
    lib.bus_invert_stream_cost.restype = c_i64
    lib.bus_invert_stream_cost.argtypes = [
        _U64P, c_i64, c_i64, c_i64, c_i64, c_i64, _I64P, _I64P,
    ]
    lib.block_assemble.restype = c_i64
    lib.block_assemble.argtypes = [
        _I64P, _F64P, _F64P, _F64P, _F64P, _F64P,
        ctypes.c_double, ctypes.c_double, ctypes.c_double,
        ctypes.c_double, ctypes.c_double,
        c_i64, c_i64, c_i64, c_i64, _I64P, _U8P, _U64P,
    ]
    lib.trace_assemble.restype = c_i64
    lib.trace_assemble.argtypes = [
        c_u64, c_i64, c_i64, c_u64, c_u64, c_u64, c_u64,
        _U64P, c_i64, _U64P, c_i64,
        c_i64, c_i64, c_i64, c_i64, c_i64,
        _I64P, _U8P, _I64P, _I64P,
    ]
    lib.group_rank_dense.restype = c_i64
    lib.group_rank_dense.argtypes = [_I64P, c_i64, c_i64, c_i64, _I64P]


def _lib() -> ctypes.CDLL | None:
    """The configured native library, or ``None`` (fall back to NumPy)."""
    if os.environ.get("REPRO_PIPELINE", "1") in ("0", "numpy"):
        return None
    lib = _native.load_native_kernel()
    if lib is None:
        return None
    if not getattr(lib, "_repro_pipeline_ready", False):
        _prototypes(lib)
        lib._repro_pipeline_ready = True
    return lib


def pipeline_available() -> bool:
    """Whether the native pipeline fast path is active."""
    return _lib() is not None


def pipeline_error() -> str | None:
    """Why the native pipeline is unavailable, or ``None`` if it is."""
    if os.environ.get("REPRO_PIPELINE", "1") in ("0", "numpy"):
        return "disabled via REPRO_PIPELINE"
    _native.load_native_kernel()
    return _native.native_error()


def _pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a ``(n, block_bits)`` 0/1 matrix into the shared word layout.

    Row-major flatten, little-endian bit order, zero-padded to a whole
    number of uint64 words (the C side never reads past the padding).
    """
    flat = np.ascontiguousarray(bits, dtype=np.uint8).reshape(-1)
    packed = np.packbits(flat, bitorder="little")
    remainder = packed.size % 8
    if remainder:
        packed = np.concatenate(
            [packed, np.zeros(8 - remainder, dtype=np.uint8)]
        )
    return packed.view("<u8")


class PackedBits:
    """A validated bit matrix carried in the packed word layout.

    The per-epoch bit stream is packed **once** (by ``block_assemble``
    or :meth:`from_bits`) and every encoder kernel consumes the same
    words, instead of each encoder re-validating and re-packing the
    identical ``(n, block_bits)`` matrix.  The unpacked view stays
    available through :attr:`bits` for the NumPy twins and the ECC
    layouts; it is materialized lazily when the native path produced
    only words.
    """

    def __init__(
        self,
        words: np.ndarray,
        num_blocks: int,
        block_bits: int,
        bits: np.ndarray | None = None,
    ) -> None:
        self.words = words
        self.num_blocks = int(num_blocks)
        self.block_bits = int(block_bits)
        self._bits = bits

    @classmethod
    def from_bits(cls, bits: np.ndarray) -> "PackedBits":
        """Pack an already-validated ``(n, block_bits)`` 0/1 matrix."""
        return cls(_pack_bits(bits), bits.shape[0], bits.shape[1], bits)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.num_blocks, self.block_bits)

    @property
    def bits(self) -> np.ndarray:
        """The unpacked ``(n, block_bits)`` uint8 matrix (lazy)."""
        if self._bits is None:
            total = self.num_blocks * self.block_bits
            flat = np.unpackbits(
                self.words.view(np.uint8), count=total, bitorder="little"
            )
            self._bits = flat.reshape(self.num_blocks, self.block_bits)
        return self._bits


def _payload_words(payload) -> np.ndarray:
    """The packed words of a bit matrix or an already-packed payload."""
    if isinstance(payload, PackedBits):
        return payload.words
    return _pack_bits(payload)


def _payload_bits(payload) -> np.ndarray:
    """The unpacked bit matrix of either payload form."""
    if isinstance(payload, PackedBits):
        return payload.bits
    return payload


# ----------------------------------------------------------------------
# DESC stream cost (integer tallies; float latency stays in the model)
# ----------------------------------------------------------------------


def schedule_arrays(
    skipped: np.ndarray, fire: np.ndarray, num_blocks: int, rounds: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Integer cost tallies of a DESC skip/fire schedule.

    Shared by the NumPy twin below and by
    :meth:`~repro.core.analysis.DescCostModel.stream_cost`'s fallback
    for subclassed fire schedules, so there is exactly one vectorized
    formulation of the tallies.  Returns per-block ``(data_flips,
    overhead_flips, cycles)`` and per-round ``(fire_sum, data_count)``,
    all int64.
    """
    unskipped = ~skipped
    masked_fire = np.where(unskipped, fire, -1)
    last_fire = masked_fire.max(axis=1)
    any_skipped = skipped.any(axis=1)
    duration = np.where(
        last_fire < 0,
        2,
        last_fire + 1 + any_skipped.astype(np.int64),
    )
    per_round_data = unskipped.sum(axis=1)
    fire_sum = np.where(unskipped, fire, 0).sum(axis=1)

    def per_block(per_round: np.ndarray) -> np.ndarray:
        return per_round.reshape(num_blocks, rounds).sum(axis=1).astype(np.int64)

    return (
        per_block(per_round_data),
        per_block(1 + any_skipped.astype(np.int64)),
        per_block(duration),
        fire_sum.astype(np.int64),
        per_round_data.astype(np.int64),
    )


def desc_stream_arrays_native(
    values: np.ndarray,
    num_blocks: int,
    rounds: int,
    wires: int,
    skip_policy: str,
    last: np.ndarray,
):
    """One-call DESC tally over the whole chunk stream; ``None`` = fall back."""
    lib = _lib()
    if lib is None:
        return None
    code = _SKIP_POLICY_CODES.get(skip_policy)
    if code is None:
        return None
    values = np.ascontiguousarray(values, dtype=np.int64)
    last = np.ascontiguousarray(last, dtype=np.int64)
    total_rounds = num_blocks * rounds
    data_flips = np.empty(num_blocks, dtype=np.int64)
    overhead_flips = np.empty(num_blocks, dtype=np.int64)
    cycles = np.empty(num_blocks, dtype=np.int64)
    fire_sum = np.empty(total_rounds, dtype=np.int64)
    data_count = np.empty(total_rounds, dtype=np.int64)
    rc = lib.desc_stream_cost(
        _i64p(values), num_blocks, rounds, wires, code, _i64p(last),
        _i64p(data_flips), _i64p(overhead_flips), _i64p(cycles),
        _i64p(fire_sum), _i64p(data_count),
    )
    if rc != 0:
        return None
    return data_flips, overhead_flips, cycles, fire_sum, data_count


def desc_stream_arrays_numpy(
    values: np.ndarray,
    num_blocks: int,
    rounds: int,
    wires: int,
    skip_policy: str,
    last: np.ndarray,
):
    """Vectorized twin of :func:`desc_stream_arrays_native`."""
    from repro.kernels.batched import shifted_prev

    if skip_policy == "none":
        skipped = np.zeros(values.shape, dtype=bool)
        fire = values
    elif skip_policy == "zero":
        skipped = values == 0
        fire = values
    elif skip_policy == "last-value":
        prev = shifted_prev(values, last)
        skipped = values == prev
        fire = values + (values < prev).astype(np.int64)
    else:
        return None
    return schedule_arrays(skipped, fire, num_blocks, rounds)


def desc_stream_arrays(
    values: np.ndarray,
    num_blocks: int,
    rounds: int,
    wires: int,
    skip_policy: str,
    last: np.ndarray,
):
    """DESC integer tallies: native when available, NumPy otherwise."""
    out = desc_stream_arrays_native(
        values, num_blocks, rounds, wires, skip_policy, last
    )
    if out is not None:
        return out
    return desc_stream_arrays_numpy(
        values, num_blocks, rounds, wires, skip_policy, last
    )


# ----------------------------------------------------------------------
# Baseline encoders over packed bit streams
# ----------------------------------------------------------------------


def binary_flips_native(bits, data_wires: int):
    """Per-block (data, overhead) flips of the plain binary bus."""
    lib = _lib()
    if lib is None:
        return None
    num_blocks, block_bits = bits.shape
    beats = block_bits // data_wires
    words = _payload_words(bits)
    data_flips = np.zeros(num_blocks, dtype=np.int64)
    rc = lib.binary_stream_cost(
        _u64p(words), num_blocks, beats, data_wires, _i64p(data_flips)
    )
    if rc != 0:
        return None
    return data_flips, np.zeros(num_blocks, dtype=np.int64)


def binary_flips_numpy(bits, data_wires: int):
    """Vectorized twin of :func:`binary_flips_native`."""
    from repro.encoding.binary import BinaryEncoder

    bits = _payload_bits(bits)
    encoder = BinaryEncoder(bits.shape[1], data_wires)
    return encoder._flips_arrays(bits)


def binary_flips(bits, data_wires: int):
    """Binary-bus flips: native when available, NumPy otherwise."""
    out = binary_flips_native(bits, data_wires)
    if out is not None:
        return out
    return binary_flips_numpy(bits, data_wires)


def dzc_flips_native(bits, data_wires: int, segment_bits: int):
    """Per-block (data, overhead) flips of dynamic zero compression."""
    lib = _lib()
    if lib is None or segment_bits > 64:
        return None
    num_blocks, block_bits = bits.shape
    beats = block_bits // data_wires
    words = _payload_words(bits)
    data_flips = np.zeros(num_blocks, dtype=np.int64)
    overhead_flips = np.zeros(num_blocks, dtype=np.int64)
    rc = lib.dzc_stream_cost(
        _u64p(words), num_blocks, beats, data_wires, segment_bits,
        _i64p(data_flips), _i64p(overhead_flips),
    )
    if rc != 0:
        return None
    return data_flips, overhead_flips


def dzc_flips_numpy(bits, data_wires: int, segment_bits: int):
    """Vectorized twin of :func:`dzc_flips_native`."""
    from repro.encoding.zero_compression import ZeroCompressionEncoder

    bits = _payload_bits(bits)
    encoder = ZeroCompressionEncoder(bits.shape[1], data_wires, segment_bits)
    return encoder._flips_arrays(bits)


def dzc_flips(bits, data_wires: int, segment_bits: int):
    """DZC flips: native when available, NumPy otherwise."""
    out = dzc_flips_native(bits, data_wires, segment_bits)
    if out is not None:
        return out
    return dzc_flips_numpy(bits, data_wires, segment_bits)


def bus_invert_flips_native(
    bits,
    data_wires: int,
    segment_bits: int,
    zero_skipping: str | None,
):
    """Per-block (data, overhead) flips of segmented bus-invert coding."""
    lib = _lib()
    if lib is None or segment_bits > 64:
        return None
    mode = _BUS_INVERT_MODES.get(zero_skipping)
    if mode is None:
        return None
    num_blocks, block_bits = bits.shape
    beats = block_bits // data_wires
    words = _payload_words(bits)
    data_flips = np.zeros(num_blocks, dtype=np.int64)
    overhead_flips = np.zeros(num_blocks, dtype=np.int64)
    rc = lib.bus_invert_stream_cost(
        _u64p(words), num_blocks, beats, data_wires, segment_bits, mode,
        _i64p(data_flips), _i64p(overhead_flips),
    )
    if rc != 0:
        return None
    return data_flips, overhead_flips


def bus_invert_flips_numpy(
    bits,
    data_wires: int,
    segment_bits: int,
    zero_skipping: str | None,
):
    """Vectorized twin of :func:`bus_invert_flips_native`."""
    from repro.encoding.bus_invert import BusInvertEncoder

    bits = _payload_bits(bits)
    encoder = BusInvertEncoder(
        bits.shape[1], data_wires, segment_bits, zero_skipping=zero_skipping
    )
    return encoder._flips_arrays(bits)


def bus_invert_flips(
    bits,
    data_wires: int,
    segment_bits: int,
    zero_skipping: str | None,
):
    """Bus-invert flips: native when available, NumPy otherwise."""
    out = bus_invert_flips_native(bits, data_wires, segment_bits, zero_skipping)
    if out is not None:
        return out
    return bus_invert_flips_numpy(bits, data_wires, segment_bits, zero_skipping)


# ----------------------------------------------------------------------
# Workload assembly
# ----------------------------------------------------------------------


def block_assemble_native(
    fresh: np.ndarray,
    null_draw: np.ndarray,
    zero_word_draw: np.ndarray,
    zero_chunk_draw: np.ndarray,
    word_copy_draw: np.ndarray,
    repeat_draw: np.ndarray,
    probabilities: tuple[float, float, float, float, float],
    chunk_bits: int,
    with_bits: bool,
    with_packed: bool,
):
    """Whole-sample block assembly in one call; ``None`` = fall back.

    Takes the generator's raw uniform draws plus their probability
    thresholds (the mask compares happen in C — exact float
    comparisons, so byte-identical to NumPy's ``<``) and returns
    ``(chunks, bits, packed)`` where ``bits`` / ``packed`` are ``None``
    unless requested.  The packed words come straight out of the chunk
    values, so the epoch's bit stream is packed exactly once.
    """
    lib = _lib()
    if lib is None:
        return None
    num_blocks, words_per_block = zero_word_draw.shape
    chunks_per_word = fresh.shape[1] // words_per_block
    if (
        fresh.shape != (num_blocks, words_per_block * chunks_per_word)
        or repeat_draw.shape != fresh.shape
        or zero_chunk_draw.shape != fresh.shape
        or word_copy_draw.shape != zero_word_draw.shape
        or null_draw.shape != (num_blocks,)
    ):
        return None
    fresh = np.ascontiguousarray(fresh, dtype=np.int64)
    nd = np.ascontiguousarray(null_draw, dtype=np.float64)
    zw = np.ascontiguousarray(zero_word_draw, dtype=np.float64)
    zc = np.ascontiguousarray(zero_chunk_draw, dtype=np.float64)
    wc = np.ascontiguousarray(word_copy_draw, dtype=np.float64)
    rp = np.ascontiguousarray(repeat_draw, dtype=np.float64)
    p_null, p_zero_word, p_zero_chunk, p_word_repeat, p_repeat_chunk = (
        float(p) for p in probabilities
    )
    chunks = np.empty_like(fresh)
    block_bits = fresh.shape[1] * chunk_bits
    if with_bits:
        bits = np.empty((num_blocks, block_bits), dtype=np.uint8)
        bits_ptr = _u8p(bits)
    else:
        bits = None
        bits_ptr = None
    if with_packed:
        num_words = (num_blocks * block_bits + 63) // 64
        words = np.zeros(num_words, dtype=np.uint64)
        words_ptr = _u64p(words)
    else:
        words = None
        words_ptr = None
    rc = lib.block_assemble(
        _i64p(fresh), _f64p(nd), _f64p(zw), _f64p(zc), _f64p(wc), _f64p(rp),
        p_null, p_zero_word, p_zero_chunk, p_word_repeat, p_repeat_chunk,
        num_blocks, words_per_block, chunks_per_word, chunk_bits,
        _i64p(chunks), bits_ptr, words_ptr,
    )
    if rc != 0:
        return None
    packed = (
        PackedBits(words, num_blocks, block_bits, bits)
        if with_packed
        else None
    )
    return chunks, bits, packed


def block_assemble_numpy(
    fresh: np.ndarray,
    null_draw: np.ndarray,
    zero_word_draw: np.ndarray,
    zero_chunk_draw: np.ndarray,
    word_copy_draw: np.ndarray,
    repeat_draw: np.ndarray,
    probabilities: tuple[float, float, float, float, float],
    chunk_bits: int,
    with_bits: bool,
    with_packed: bool,
):
    """Vectorized twin of :func:`block_assemble_native`."""
    from repro.kernels.batched import forward_fill_take
    from repro.util.bitops import chunk_matrix_to_bits

    num_blocks, words_per_block = zero_word_draw.shape
    chunks_per_word = fresh.shape[1] // words_per_block
    p_null, p_zero_word, p_zero_chunk, p_word_repeat, p_repeat_chunk = (
        float(p) for p in probabilities
    )
    null_block = null_draw < p_null
    zero_word = zero_word_draw < p_zero_word
    zero_chunk = zero_chunk_draw < p_zero_chunk
    zero_word_chunks = np.repeat(zero_word, chunks_per_word, axis=1)
    masked = np.where(
        zero_chunk | zero_word_chunks | null_block[:, None], 0, fresh
    )
    word_copy = word_copy_draw < p_word_repeat
    word_copy[:, 0] = False
    word_copy &= ~null_block[:, None]
    repeat = repeat_draw < p_repeat_chunk
    repeat[0] = False
    repeat[null_block] = False

    word_view = masked.reshape(num_blocks, words_per_block, chunks_per_word)
    chunks = forward_fill_take(word_view, ~word_copy, axis=1).reshape(
        num_blocks, -1
    )
    chunks = forward_fill_take(chunks, ~repeat, axis=0)
    bits = (
        chunk_matrix_to_bits(chunks, chunk_bits)
        if (with_bits or with_packed)
        else None
    )
    packed = PackedBits.from_bits(bits) if with_packed else None
    return chunks, (bits if with_bits else None), packed


def block_assemble(
    fresh: np.ndarray,
    null_draw: np.ndarray,
    zero_word_draw: np.ndarray,
    zero_chunk_draw: np.ndarray,
    word_copy_draw: np.ndarray,
    repeat_draw: np.ndarray,
    probabilities: tuple[float, float, float, float, float],
    chunk_bits: int,
    with_bits: bool,
    with_packed: bool,
):
    """Block assembly: native when available, NumPy otherwise."""
    out = block_assemble_native(
        fresh, null_draw, zero_word_draw, zero_chunk_draw, word_copy_draw,
        repeat_draw, probabilities, chunk_bits, with_bits, with_packed,
    )
    if out is not None:
        return out
    return block_assemble_numpy(
        fresh, null_draw, zero_word_draw, zero_chunk_draw, word_copy_draw,
        repeat_draw, probabilities, chunk_bits, with_bits, with_packed,
    )


# ----------------------------------------------------------------------
# Counter-based memory-trace assembly
# ----------------------------------------------------------------------

_MIX_C1 = 0xFF51AFD7ED558CCD
_MIX_C2 = 0xC4CEB9FE1A85EC53
_STREAM_MULT = 0x9E3779B97F4A7C15
_INDEX_MULT = 0xBF58476D1CE4E5B9


def _mix64(x: np.ndarray) -> np.ndarray:
    """murmur3 fmix64 over a uint64 array (identical to the C side)."""
    x = x ^ (x >> np.uint64(33))
    x = x * np.uint64(_MIX_C1)
    x = x ^ (x >> np.uint64(33))
    x = x * np.uint64(_MIX_C2)
    x = x ^ (x >> np.uint64(33))
    return x


def _stream_draws(base: int, stream: int, n: int) -> np.ndarray:
    """Draws ``0..n-1`` of counter-RNG stream ``stream``."""
    index = np.arange(n, dtype=np.uint64)
    seed = np.uint64(base) ^ np.uint64((stream * _STREAM_MULT) & (2**64 - 1))
    return _mix64(seed ^ (index * np.uint64(_INDEX_MULT)))


def trace_assemble_native(
    base: int,
    n: int,
    threads: int,
    switch_threshold: int,
    stream_threshold: int,
    shared_threshold: int,
    write_threshold: int,
    rank_table: np.ndarray,
    gap_table: np.ndarray,
    private_blocks: int,
    shared_blocks: int,
    stream_blocks: int,
    stream_region: int,
    block_bytes: int,
):
    """One-call trace assembly; ``None`` = fall back to the NumPy twin."""
    lib = _lib()
    if lib is None:
        return None
    rank_table = np.ascontiguousarray(rank_table, dtype=np.uint64)
    gap_table = np.ascontiguousarray(gap_table, dtype=np.uint64)
    addresses = np.empty(n, dtype=np.int64)
    is_write = np.empty(n, dtype=bool)
    thread = np.empty(n, dtype=np.int64)
    gaps = np.empty(n, dtype=np.int64)
    rc = lib.trace_assemble(
        base, n, threads,
        switch_threshold, stream_threshold, shared_threshold, write_threshold,
        _u64p(rank_table), len(rank_table),
        _u64p(gap_table), len(gap_table),
        private_blocks, shared_blocks, stream_blocks, stream_region,
        block_bytes,
        _i64p(addresses), _u8p(is_write.view(np.uint8)), _i64p(thread),
        _i64p(gaps),
    )
    if rc != 0:
        return None
    return addresses, is_write, thread, gaps


def trace_assemble_numpy(
    base: int,
    n: int,
    threads: int,
    switch_threshold: int,
    stream_threshold: int,
    shared_threshold: int,
    write_threshold: int,
    rank_table: np.ndarray,
    gap_table: np.ndarray,
    private_blocks: int,
    shared_blocks: int,
    stream_blocks: int,
    stream_region: int,
    block_bytes: int,
):
    """Vectorized twin of :func:`trace_assemble_native`."""
    switch = _stream_draws(base, 0, n) >= np.uint64(switch_threshold)
    switch[0] = True
    fresh = (_stream_draws(base, 1, n) % np.uint64(threads)).astype(np.int64)
    index = np.arange(n, dtype=np.int64)
    last_switch = np.maximum.accumulate(np.where(switch, index, -1))
    thread = fresh[last_switch]

    kind = _stream_draws(base, 2, n)
    streaming = kind < np.uint64(stream_threshold)
    shared = ~streaming & (kind < np.uint64(shared_threshold))
    rank = np.searchsorted(
        rank_table, _stream_draws(base, 3, n), side="right"
    ).astype(np.int64)
    private_base = (1 + thread) * private_blocks
    block_index = np.where(shared, rank % shared_blocks, private_base + rank)

    stream_refs = np.flatnonzero(streaming)
    if len(stream_refs):
        stream_threads = thread[stream_refs]
        offsets = group_rank(stream_threads) % stream_blocks
        block_index[stream_refs] = (
            stream_region + stream_threads * stream_blocks + offsets
        )

    addresses = block_index * block_bytes
    is_write = _stream_draws(base, 4, n) < np.uint64(write_threshold)
    gaps = np.maximum(
        np.searchsorted(gap_table, _stream_draws(base, 5, n), side="right"), 1
    ).astype(np.int64)
    return addresses, is_write, thread, gaps


def trace_assemble(
    base: int,
    n: int,
    threads: int,
    switch_threshold: int,
    stream_threshold: int,
    shared_threshold: int,
    write_threshold: int,
    rank_table: np.ndarray,
    gap_table: np.ndarray,
    private_blocks: int,
    shared_blocks: int,
    stream_blocks: int,
    stream_region: int,
    block_bytes: int,
):
    """Trace assembly: native when available, NumPy otherwise."""
    out = trace_assemble_native(
        base, n, threads,
        switch_threshold, stream_threshold, shared_threshold, write_threshold,
        rank_table, gap_table, private_blocks, shared_blocks,
        stream_blocks, stream_region, block_bytes,
    )
    if out is not None:
        return out
    return trace_assemble_numpy(
        base, n, threads,
        switch_threshold, stream_threshold, shared_threshold, write_threshold,
        rank_table, gap_table, private_blocks, shared_blocks,
        stream_blocks, stream_region, block_bytes,
    )


# ----------------------------------------------------------------------
# Group rank
# ----------------------------------------------------------------------


def group_rank_native(groups: np.ndarray):
    """Dense-counting group rank; ``None`` when the range is too wide."""
    lib = _lib()
    if lib is None:
        return None
    n = len(groups)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    groups = np.ascontiguousarray(groups, dtype=np.int64)
    gmin = int(groups.min())
    gmax = int(groups.max())
    value_range = gmax - gmin + 1
    if value_range > max(
        _GROUP_RANK_RANGE_SLACK * n, _GROUP_RANK_RANGE_FLOOR
    ):
        return None
    rank = np.empty(n, dtype=np.int64)
    rc = lib.group_rank_dense(_i64p(groups), n, gmin, value_range, _i64p(rank))
    if rc != 0:
        return None
    return rank


def group_rank_numpy(groups: np.ndarray):
    """Sort-based twin of :func:`group_rank_native`."""
    from repro.kernels.batched import group_rank_sorted

    return group_rank_sorted(np.asarray(groups))


def group_rank(groups: np.ndarray):
    """Group rank: dense native when profitable, stable sort otherwise."""
    out = group_rank_native(groups)
    if out is not None:
        return out
    return group_rank_numpy(groups)
