/* Native end-to-end pipeline kernels (compiled next to multicore_native.c).
 *
 * One call per epoch: each entry point walks a whole sample's packed
 * buffers sequentially, so the Python<->C boundary is crossed once per
 * (scheme, application) stage instead of once per NumPy primitive.
 *
 * Exactness contract (mirrors repro.kernels.pipeline):
 *   - every kernel computes in integers; the only floating-point
 *     operations are exact comparisons (uniform draw < threshold in
 *     block_assemble), so results are byte-identical to the vectorized
 *     tier — all float *arithmetic* (latency means, energy) stays in
 *     NumPy;
 *   - bit streams arrive as little-endian packed uint64 words: global
 *     bit g of the flattened (n, block_bits) matrix lives at bit
 *     (g % 64) of word (g / 64);
 *   - return codes: 0 ok, 1 unsupported geometry (caller falls back to
 *     NumPy), 2 allocation failure (ditto).
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

typedef int64_t i64;
typedef uint64_t u64;
typedef uint8_t u8;
typedef double f64;

#if defined(__GNUC__) || defined(__clang__)
#define POPCOUNT64(x) ((i64)__builtin_popcountll(x))
#else
static i64 POPCOUNT64(u64 x) {
    i64 c = 0;
    while (x) {
        x &= x - 1;
        c++;
    }
    return c;
}
#endif

/* nbits in 1..64 little-endian bits starting at bit offset `off`. */
static inline u64 get_bits(const u64 *words, i64 off, i64 nbits) {
    i64 word = off >> 6;
    i64 shift = off & 63;
    u64 lo = words[word] >> shift;
    if (shift && shift + nbits > 64) {
        lo |= words[word + 1] << (64 - shift);
    }
    if (nbits == 64) {
        return lo;
    }
    return lo & ((1ULL << nbits) - 1);
}

/* ------------------------------------------------------------------ */
/* DESC: skip/fire schedule and integer cost tallies                   */
/* ------------------------------------------------------------------ */

/* values: (num_blocks * rounds, wires) int64 chunk stream in time
 * order.  skip_policy: 0 none, 1 zero, 2 last-value.  last0: the wire
 * history before the stream (last-value policy only; length wires).
 * Outputs: per-block data/overhead/cycle tallies plus per-round
 * fire_sum and data_count so NumPy can reproduce the float latency
 * expression exactly. */
i64 desc_stream_cost(const i64 *values, i64 num_blocks, i64 rounds, i64 wires,
                     i64 skip_policy, const i64 *last0,
                     i64 *data_flips, i64 *overhead_flips, i64 *cycles,
                     i64 *fire_sum, i64 *data_count) {
    if (num_blocks <= 0 || rounds <= 0 || wires <= 0) {
        return 1;
    }
    if (skip_policy < 0 || skip_policy > 2) {
        return 1;
    }
    memset(data_flips, 0, (size_t)num_blocks * sizeof(i64));
    memset(overhead_flips, 0, (size_t)num_blocks * sizeof(i64));
    memset(cycles, 0, (size_t)num_blocks * sizeof(i64));
    i64 total_rounds = num_blocks * rounds;
    for (i64 t = 0; t < total_rounds; t++) {
        const i64 *row = values + t * wires;
        const i64 *prev = (t == 0) ? last0 : row - wires;
        i64 last_fire = -1;
        i64 any_skip = 0;
        i64 count = 0;
        i64 fsum = 0;
        /* Per-policy branch-free bodies: skip decisions follow the
         * data, so conditional moves beat branches here. */
        if (skip_policy == 0) {
            for (i64 w = 0; w < wires; w++) {
                i64 v = row[w];
                count++;
                fsum += v;
                last_fire = (v > last_fire) ? v : last_fire;
            }
        } else if (skip_policy == 1) {
            for (i64 w = 0; w < wires; w++) {
                i64 v = row[w];
                i64 keep = (v != 0);
                any_skip |= !keep;
                count += keep;
                fsum += keep ? v : 0;
                i64 f = keep ? v : -1;
                last_fire = (f > last_fire) ? f : last_fire;
            }
        } else {
            for (i64 w = 0; w < wires; w++) {
                i64 v = row[w];
                i64 p = prev[w];
                i64 keep = (v != p);
                i64 fire = v + (v < p);
                any_skip |= !keep;
                count += keep;
                fsum += keep ? fire : 0;
                i64 f = keep ? fire : -1;
                last_fire = (f > last_fire) ? f : last_fire;
            }
        }
        i64 duration = (last_fire < 0) ? 2 : last_fire + 1 + any_skip;
        i64 block = t / rounds;
        data_flips[block] += count;
        overhead_flips[block] += 1 + any_skip;
        cycles[block] += duration;
        fire_sum[t] = fsum;
        data_count[t] = count;
    }
    return 0;
}

/* ------------------------------------------------------------------ */
/* Baseline encoders over packed bit streams                           */
/* ------------------------------------------------------------------ */

/* Plain binary bus: flips = hamming(beat, previous beat), bus starts
 * all-low.  Lanes of <=64 wires make any bus width exact. */
i64 binary_stream_cost(const u64 *words, i64 num_blocks, i64 beats,
                       i64 data_wires, i64 *data_flips) {
    if (num_blocks <= 0 || beats <= 0 || data_wires <= 0) {
        return 1;
    }
    i64 lanes = (data_wires + 63) / 64;
    u64 *prev = (u64 *)calloc((size_t)lanes, sizeof(u64));
    if (prev == NULL) {
        return 2;
    }
    i64 total_beats = num_blocks * beats;
    for (i64 t = 0; t < total_beats; t++) {
        i64 base = t * data_wires;
        i64 flips = 0;
        for (i64 l = 0; l < lanes; l++) {
            i64 off = l * 64;
            i64 nl = data_wires - off;
            if (nl > 64) {
                nl = 64;
            }
            u64 cur = get_bits(words, base + off, nl);
            flips += POPCOUNT64(cur ^ prev[l]);
            prev[l] = cur;
        }
        data_flips[t / beats] += flips;
    }
    free(prev);
    return 0;
}

/* ------------------------------------------------------------------ */
/* SWAR helpers: s-bit segments packed in 64-bit lanes                 */
/* ------------------------------------------------------------------ */

/* `value` (< 2**s) replicated into every s-bit field of a word. */
static inline u64 rep_field(i64 s, u64 value) {
    u64 m = 0;
    for (i64 j = 0; j < 64; j += s) {
        m |= value << j;
    }
    return m;
}

/* Per-field popcount for s in {1, 2, 4, 8}. */
static inline u64 field_pop(u64 x, i64 s) {
    if (s == 1) {
        return x;
    }
    x = x - ((x >> 1) & 0x5555555555555555ULL);
    if (s == 2) {
        return x;
    }
    x = (x & 0x3333333333333333ULL) + ((x >> 2) & 0x3333333333333333ULL);
    if (s == 4) {
        return x;
    }
    return (x + (x >> 4)) & 0x0F0F0F0F0F0F0F0FULL;
}

/* Horizontal sum of per-field counts (total <= 64). */
static inline i64 field_sum(u64 d, i64 s) {
    if (s == 1) {
        return POPCOUNT64(d);
    }
    if (s == 2) {
        d = (d & 0x3333333333333333ULL) + ((d >> 2) & 0x3333333333333333ULL);
        d = (d + (d >> 4)) & 0x0F0F0F0F0F0F0F0FULL;
    } else if (s == 4) {
        d = (d + (d >> 4)) & 0x0F0F0F0F0F0F0F0FULL;
    }
    return (i64)((d * 0x0101010101010101ULL) >> 56);
}

/* MSB-per-field mask of the zero fields of w (power-of-two s). */
static inline u64 field_zero_msb(u64 w, i64 s, u64 lsb_mask) {
    u64 t = w;
    for (i64 sh = 1; sh < s; sh <<= 1) {
        t |= t >> sh;
    }
    return (~t & lsb_mask) << (s - 1);
}

/* Bus-invert over whole 64-bit lanes: all segments of a lane advance
 * in one SWAR step — per-field popcounts, the toggle (hd > s/2) and
 * tie (hd == s/2) decisions as MSB-per-field masks, and packed
 * polarity/skip state.  Covers s in {1, 2, 4, 8} with the bus a whole
 * number of lanes; the scalar loop below remains the general path. */
static i64 bus_invert_swar(const u64 *words, i64 num_blocks, i64 beats,
                           i64 lanes, i64 s, i64 mode, const u64 *pow3,
                           i64 *data_flips, i64 *overhead_flips) {
    i64 lps = 64 / s; /* segments per lane */
    u64 fmax = (((u64)1 << s) - 1);
    u64 msb = rep_field(s, (u64)1 << (s - 1));
    u64 lsb = rep_field(s, 1);
    /* (d + add_toggle) sets the field MSB iff d > s/2; (d + add_half)
     * iff d >= s/2.  Field values stay < 2**s, so no carries cross. */
    u64 add_toggle = rep_field(s, ((u64)1 << (s - 1)) - (u64)(s / 2 + 1));
    u64 add_half = rep_field(s, ((u64)1 << (s - 1)) - (u64)(s / 2));
    u64 *held = (u64 *)calloc((size_t)lanes, sizeof(u64));
    u64 *pol = (u64 *)calloc((size_t)lanes, sizeof(u64));
    u64 *skip = (u64 *)calloc((size_t)lanes, sizeof(u64));
    if (held == NULL || pol == NULL || skip == NULL) {
        free(held);
        free(pol);
        free(skip);
        return 2;
    }
    u64 prev_mode_word = 0;
    i64 total_beats = num_blocks * beats;
    for (i64 t = 0; t < total_beats; t++) {
        i64 data = 0;
        i64 overhead = 0;
        u64 mode_word = 0;
        for (i64 l = 0; l < lanes; l++) {
            u64 w = words[t * lanes + l];
            u64 x = w ^ held[l];
            u64 d = field_pop(x, s);
            u64 toggle = (d + add_toggle) & msb;
            u64 tie = (s == 1) ? 0 : (((d + add_half) & msb) & ~toggle);
            if (mode == 0) {
                u64 tf = (toggle >> (s - 1)) * fmax;
                data += field_sum(d, s) + s * POPCOUNT64(toggle)
                      - 2 * field_sum(d & tf, s);
                overhead += POPCOUNT64(toggle | (tie & pol[l]));
                pol[l] = (pol[l] ^ toggle) & ~tie;
                held[l] = w;
            } else {
                u64 z = field_zero_msb(w, s, lsb);
                u64 zf = (z >> (s - 1)) * fmax;
                toggle &= ~z;
                u64 tf = (toggle >> (s - 1)) * fmax;
                data += field_sum(d & ~zf, s) + s * POPCOUNT64(toggle)
                      - 2 * field_sum(d & tf, s);
                u64 new_pol = (pol[l] ^ toggle) & ~tie;
                if (mode == 1) {
                    overhead += POPCOUNT64(~z & (toggle | (tie & pol[l])))
                              + POPCOUNT64(z ^ skip[l]);
                    skip[l] = z;
                } else {
                    /* Encoded: base-3 digit per segment — 2 skipped,
                     * else the absolute polarity after the beat. */
                    u64 pb = new_pol & ~z;
                    for (i64 j = 0; j < lps; j++) {
                        u64 bit = (u64)1 << (j * s + s - 1);
                        u64 digit = ((z & bit) ? 2 : ((pb & bit) ? 1 : 0));
                        mode_word += digit * pow3[l * lps + j];
                    }
                }
                pol[l] = (z & pol[l]) | (new_pol & ~z);
                held[l] = (held[l] & zf) | (w & ~zf);
            }
        }
        if (mode == 2) {
            overhead += POPCOUNT64(mode_word ^ prev_mode_word);
            prev_mode_word = mode_word;
        }
        data_flips[t / beats] += data;
        overhead_flips[t / beats] += overhead;
    }
    free(held);
    free(pol);
    free(skip);
    return 0;
}

/* Dynamic zero compression: per segment, zero words raise a level
 * indicator and leave the data wires held; non-zero words drive plain
 * binary against the held pattern. */
i64 dzc_stream_cost(const u64 *words, i64 num_blocks, i64 beats,
                    i64 data_wires, i64 segment_bits,
                    i64 *data_flips, i64 *overhead_flips) {
    if (num_blocks <= 0 || beats <= 0 || segment_bits <= 0 ||
        segment_bits > 64 || data_wires % segment_bits) {
        return 1;
    }
    /* SWAR fast path: whole lanes of power-of-two segments — the data
     * flips reduce to one masked popcount per lane. */
    if (data_wires % 64 == 0 && (segment_bits & (segment_bits - 1)) == 0) {
        i64 s = segment_bits;
        i64 lanes = data_wires / 64;
        u64 fmax = (s == 64) ? ~(u64)0 : (((u64)1 << s) - 1);
        u64 lsb = rep_field(s, 1);
        u64 *held = (u64 *)calloc((size_t)lanes, sizeof(u64));
        u64 *level = (u64 *)calloc((size_t)lanes, sizeof(u64));
        if (held == NULL || level == NULL) {
            free(held);
            free(level);
            return 2;
        }
        i64 total_beats = num_blocks * beats;
        for (i64 t = 0; t < total_beats; t++) {
            i64 data = 0;
            i64 overhead = 0;
            for (i64 l = 0; l < lanes; l++) {
                u64 w = words[t * lanes + l];
                u64 z = field_zero_msb(w, s, lsb);
                u64 zf = (z >> (s - 1)) * fmax;
                data += POPCOUNT64((w ^ held[l]) & ~zf);
                held[l] = (held[l] & zf) | (w & ~zf);
                overhead += POPCOUNT64(z ^ level[l]);
                level[l] = z;
            }
            data_flips[t / beats] += data;
            overhead_flips[t / beats] += overhead;
        }
        free(held);
        free(level);
        return 0;
    }
    i64 nseg = data_wires / segment_bits;
    u64 *held = (u64 *)calloc((size_t)nseg, sizeof(u64));
    u8 *zero_level = (u8 *)calloc((size_t)nseg, 1);
    if (held == NULL || zero_level == NULL) {
        free(held);
        free(zero_level);
        return 2;
    }
    i64 total_beats = num_blocks * beats;
    for (i64 t = 0; t < total_beats; t++) {
        i64 base = t * data_wires;
        i64 block = t / beats;
        i64 data = 0;
        i64 overhead = 0;
        for (i64 j = 0; j < nseg; j++) {
            u64 w = get_bits(words, base + j * segment_bits, segment_bits);
            u8 is_zero = (w == 0);
            if (!is_zero) {
                data += POPCOUNT64(w ^ held[j]);
                held[j] = w;
            }
            if (is_zero != zero_level[j]) {
                overhead++;
                zero_level[j] = is_zero;
            }
        }
        data_flips[block] += data;
        overhead_flips[block] += overhead;
    }
    free(held);
    free(zero_level);
    return 0;
}

/* Bus-invert coding (Stan & Burleson) with the paper's zero-skipped
 * variants.  mode: 0 plain, 1 sparse skip lines, 2 encoded mode word.
 * The per-segment recursion matches the vectorized formulation in
 * repro.encoding.bus_invert: toggle when hd > s/2, keep when < s/2,
 * reset polarity to plain on an exact tie. */
i64 bus_invert_stream_cost(const u64 *words, i64 num_blocks, i64 beats,
                           i64 data_wires, i64 segment_bits, i64 mode,
                           i64 *data_flips, i64 *overhead_flips) {
    if (num_blocks <= 0 || beats <= 0 || segment_bits <= 0 ||
        segment_bits > 64 || data_wires % segment_bits ||
        mode < 0 || mode > 2) {
        return 1;
    }
    i64 nseg = data_wires / segment_bits;
    if (mode == 2 && nseg > 39) {
        return 1; /* 3**40 overflows the int64 mode word */
    }
    u64 pow3_table[40];
    pow3_table[0] = 1;
    for (i64 j = 1; j <= nseg && j < 40; j++) {
        pow3_table[j] = pow3_table[j - 1] * 3;
    }
    if (data_wires % 64 == 0 &&
        (segment_bits == 1 || segment_bits == 2 || segment_bits == 4 ||
         segment_bits == 8)) {
        return bus_invert_swar(words, num_blocks, beats, data_wires / 64,
                               segment_bits, mode, pow3_table,
                               data_flips, overhead_flips);
    }
    u64 *held = (u64 *)calloc((size_t)nseg, sizeof(u64));
    u8 *polarity = (u8 *)calloc((size_t)nseg, 1);
    u8 *skip_level = (u8 *)calloc((size_t)nseg, 1);
    if (held == NULL || polarity == NULL || skip_level == NULL) {
        free(held);
        free(polarity);
        free(skip_level);
        return 2;
    }
    u64 prev_mode_word = 0;
    i64 s = segment_bits;
    i64 total_beats = num_blocks * beats;
    for (i64 t = 0; t < total_beats; t++) {
        i64 base = t * data_wires;
        i64 block = t / beats;
        i64 data = 0;
        i64 overhead = 0;
        u64 mode_word = 0;
        /* One branch-free body per mode: the toggle/tie decisions are
         * data-random, so conditional moves beat branches by a wide
         * margin on these loops. */
        if (mode == 0) {
            for (i64 j = 0; j < nseg; j++) {
                u64 w = get_bits(words, base + j * s, s);
                i64 d = POPCOUNT64(w ^ held[j]);
                i64 toggle = (2 * d > s);
                i64 tie = (2 * d == s);
                data += toggle ? s - d : d;
                overhead += toggle | (tie & (i64)polarity[j]);
                polarity[j] = tie ? 0 : (u8)(polarity[j] ^ toggle);
                held[j] = w;
            }
        } else if (mode == 1) {
            for (i64 j = 0; j < nseg; j++) {
                u64 w = get_bits(words, base + j * s, s);
                i64 z = (w == 0);
                i64 d = POPCOUNT64(w ^ held[j]);
                i64 toggle = !z & (2 * d > s);
                i64 tie = (2 * d == s);
                data += z ? 0 : (toggle ? s - d : d);
                /* Line flip on kept segments; the skip line toggles on
                 * every zero<->non-zero level change. */
                overhead += (!z & (toggle | (tie & (i64)polarity[j])))
                          + (z != (i64)skip_level[j]);
                u8 new_pol = tie ? 0 : (u8)(polarity[j] ^ toggle);
                polarity[j] = z ? polarity[j] : new_pol;
                held[j] = z ? held[j] : w;
                skip_level[j] = (u8)z;
            }
        } else {
            for (i64 j = 0; j < nseg; j++) {
                u64 w = get_bits(words, base + j * s, s);
                i64 z = (w == 0);
                i64 d = POPCOUNT64(w ^ held[j]);
                i64 toggle = !z & (2 * d > s);
                i64 tie = (2 * d == s);
                data += z ? 0 : (toggle ? s - d : d);
                u8 new_pol = tie ? 0 : (u8)(polarity[j] ^ toggle);
                polarity[j] = z ? polarity[j] : new_pol;
                held[j] = z ? held[j] : w;
                u64 digit = z ? 2 : (u64)new_pol;
                mode_word += digit * pow3_table[j];
            }
        }
        if (mode == 2) {
            overhead += POPCOUNT64(mode_word ^ prev_mode_word);
            prev_mode_word = mode_word;
        }
        data_flips[block] += data;
        overhead_flips[block] += overhead;
    }
    free(held);
    free(polarity);
    free(skip_level);
    return 0;
}

/* ------------------------------------------------------------------ */
/* Workload assembly: masks, fills, bit expansion, packed emission     */
/* ------------------------------------------------------------------ */

/* Whole-sample block assembly from the generator's raw uniform draws:
 * the mask compares (draw < probability — exact, so byte-identical to
 * the NumPy `<`), null-block / zero-word / zero-chunk masking of the
 * fresh values, the word-copy and repeat-chain fills, and (optionally)
 * both bit views — the unpacked (n, chunks * chunk_bits) 0/1 matrix
 * and the packed little-endian uint64 stream the encoder kernels
 * consume.  The structural clears (word-copy column 0, repeat row 0,
 * null-block rows) happen here, mirroring the NumPy twin exactly. */
i64 block_assemble(const i64 *fresh, const f64 *null_draw,
                   const f64 *zero_word_draw, const f64 *zero_chunk_draw,
                   const f64 *word_copy_draw, const f64 *repeat_draw,
                   f64 p_null_block, f64 p_zero_word, f64 p_zero_chunk,
                   f64 p_word_repeat, f64 p_repeat_chunk,
                   i64 num_blocks, i64 words_per_block, i64 chunks_per_word,
                   i64 chunk_bits,
                   i64 *chunks, u8 *bits_out, u64 *words_out) {
    if (num_blocks <= 0 || words_per_block <= 0 || chunks_per_word <= 0 ||
        chunk_bits <= 0 || chunk_bits > 62) {
        return 1;
    }
    i64 cpb = words_per_block * chunks_per_word;
    i64 *carry = (i64 *)malloc((size_t)cpb * sizeof(i64));
    if (carry == NULL) {
        return 2;
    }
    u64 value_mask = (((u64)1 << chunk_bits) - 1);
    u64 acc = 0;
    i64 acc_bits = 0;
    u64 *wp = words_out;
    for (i64 i = 0; i < num_blocks; i++) {
        const i64 *fr = fresh + i * cpb;
        i64 *row = chunks + i * cpb;
        i64 nb = (null_draw[i] < p_null_block);
        const f64 *zw = zero_word_draw + i * words_per_block;
        const f64 *zc = zero_chunk_draw + i * cpb;
        for (i64 w = 0; w < words_per_block; w++) {
            i64 wz = nb | (zw[w] < p_zero_word);
            i64 *dst = row + w * chunks_per_word;
            const i64 *src = fr + w * chunks_per_word;
            const f64 *zcw = zc + w * chunks_per_word;
            for (i64 c = 0; c < chunks_per_word; c++) {
                dst[c] = (wz | (zcw[c] < p_zero_chunk)) ? 0 : src[c];
            }
        }
        /* Spatial fill: word j copies the (already-propagated) word
         * j-1 — the forward fill of the last kept word.  Word 0 never
         * copies; null blocks are all-zero regardless. */
        const f64 *wc = word_copy_draw + i * words_per_block;
        if (!nb) {
            for (i64 j = 1; j < words_per_block; j++) {
                if (wc[j] < p_word_repeat) {
                    memcpy(row + j * chunks_per_word,
                           row + (j - 1) * chunks_per_word,
                           (size_t)chunks_per_word * sizeof(i64));
                }
            }
        }
        /* Temporal fill: chunk c repeats the last non-repeat value at
         * the same offset (carry[c]).  Row 0 has no history, and null
         * rows ignore their repeat draws but *do* become the history —
         * both reduce to "carry = row". */
        const f64 *rp = repeat_draw + i * cpb;
        if (i == 0 || nb) {
            memcpy(carry, row, (size_t)cpb * sizeof(i64));
        } else {
            for (i64 c = 0; c < cpb; c++) {
                if (rp[c] < p_repeat_chunk) {
                    row[c] = carry[c];
                } else {
                    carry[c] = row[c];
                }
            }
        }
        if (bits_out != NULL) {
            u8 *bits = bits_out + i * cpb * chunk_bits;
            for (i64 c = 0; c < cpb; c++) {
                i64 v = row[c];
                for (i64 b = 0; b < chunk_bits; b++) {
                    bits[c * chunk_bits + b] = (u8)((v >> b) & 1);
                }
            }
        }
        if (words_out != NULL) {
            /* Little-endian bitstream writer: chunk c of block i lands
             * at global bit (i * cpb + c) * chunk_bits, matching
             * _pack_bits on the expanded matrix. */
            for (i64 c = 0; c < cpb; c++) {
                u64 v = ((u64)row[c]) & value_mask;
                acc |= v << acc_bits;
                acc_bits += chunk_bits;
                if (acc_bits >= 64) {
                    *wp++ = acc;
                    acc_bits -= 64;
                    acc = (acc_bits == 0) ? 0 : v >> (chunk_bits - acc_bits);
                }
            }
        }
    }
    if (words_out != NULL && acc_bits > 0) {
        *wp++ = acc;
    }
    free(carry);
    return 0;
}

/* ------------------------------------------------------------------ */
/* Counter-based memory-trace assembly                                 */
/* ------------------------------------------------------------------ */

/* murmur3 fmix64: the shared counter-RNG finalizer (keep identical to
 * repro.kernels.pipeline._mix64). */
static inline u64 mix64(u64 x) {
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDULL;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ULL;
    x ^= x >> 33;
    return x;
}

static inline u64 stream_draw(u64 base, u64 stream, u64 i) {
    return mix64(base ^ (stream * 0x9E3779B97F4A7C15ULL) ^
                 (i * 0xBF58476D1CE4E5B9ULL));
}

/* Bucket guide over the top GUIDE_BITS of the draw space: start[b] =
 * number of table entries whose top bits are < b.  Entries in buckets
 * below a draw's bucket are <= it by construction, so the binary
 * search shrinks to the draw's own bucket — O(1) expected for the
 * skewed CDF tables the trace generator uses. */
#define GUIDE_BITS 14
#define GUIDE_SIZE ((i64)1 << GUIDE_BITS)

typedef int32_t i32;

static void build_guide(const u64 *table, i64 len, i32 *start) {
    for (i64 b = 0; b <= GUIDE_SIZE; b++) {
        start[b] = 0;
    }
    for (i64 i = 0; i < len; i++) {
        start[(table[i] >> (64 - GUIDE_BITS)) + 1]++;
    }
    for (i64 b = 0; b < GUIDE_SIZE; b++) {
        start[b + 1] += start[b];
    }
}

/* Mask for power-of-two moduli (the common geometry), -1 otherwise. */
static inline i64 pow2_mask(i64 m) {
    return (m > 0 && (m & (m - 1)) == 0) ? m - 1 : -1;
}

static inline i64 fast_mod(i64 x, i64 m, i64 mask) {
    return (mask >= 0) ? (x & mask) : (x % m);
}

static inline u64 fast_mod_u64(u64 x, u64 m, i64 mask) {
    return (mask >= 0) ? (x & (u64)mask) : (x % m);
}

static inline i64 guided_upper_bound(const u64 *table, const i32 *start,
                                     u64 x) {
    u64 b = x >> (64 - GUIDE_BITS);
    i64 lo = start[b];
    i64 hi = start[b + 1];
    /* Bucket spans are tiny for the skewed tables (usually 0-2); a
     * branchless counting scan avoids the data-dependent mispredicts
     * a binary search pays on every lookup. */
    while (hi - lo > 8) {
        i64 mid = (lo + hi) >> 1;
        if (table[mid] <= x) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    i64 count = lo;
    for (i64 k = lo; k < hi; k++) {
        count += (table[k] <= x);
    }
    return count;
}

/* Streams: 0 switch, 1 fresh thread, 2 kind, 3 rank, 4 write, 5 gap.
 * All float-derived constants (thresholds, CDF tables) are computed
 * once in Python and passed in, so both tiers compare the same
 * integers. */
i64 trace_assemble(u64 base, i64 n, i64 threads,
                   u64 switch_threshold, u64 stream_threshold,
                   u64 shared_threshold, u64 write_threshold,
                   const u64 *rank_table, i64 rank_len,
                   const u64 *gap_table, i64 gap_len,
                   i64 private_blocks, i64 shared_blocks,
                   i64 stream_blocks, i64 stream_region, i64 block_bytes,
                   i64 *addresses, u8 *is_write, i64 *thread_out,
                   i64 *gaps_out) {
    if (n <= 0 || threads <= 0 || shared_blocks <= 0 || stream_blocks <= 0) {
        return 1;
    }
    i64 *stream_counters = (i64 *)calloc((size_t)threads, sizeof(i64));
    if (stream_counters == NULL) {
        return 2;
    }
    i32 *rank_guide = (i32 *)malloc(2 * (size_t)(GUIDE_SIZE + 1) * sizeof(i32));
    if (rank_guide == NULL) {
        free(stream_counters);
        return 2;
    }
    i32 *gap_guide = rank_guide + GUIDE_SIZE + 1;
    build_guide(rank_table, rank_len, rank_guide);
    build_guide(gap_table, gap_len, gap_guide);
    i64 cur_thread = 0;
    i64 stream_base = stream_region;
    i64 private_base = private_blocks;
    i64 thread_mask = pow2_mask(threads);
    i64 stream_mask = pow2_mask(stream_blocks);
    i64 shared_mask = pow2_mask(shared_blocks);
    /* Draws for the unconditional streams are precomputed per tile in
     * a branch-free loop (a pure function of the reference index, so
     * the compiler can vectorize the fmix64 chains); the scalar pass
     * then only runs the sequential burst/stream-counter logic. */
    enum { TRACE_TILE = 512 };
    u64 buf_kind[TRACE_TILE], buf_rank[TRACE_TILE], buf_gap[TRACE_TILE];
    u8 buf_switch[TRACE_TILE];
    for (i64 start = 0; start < n; start += TRACE_TILE) {
        i64 m = n - start;
        if (m > TRACE_TILE) {
            m = TRACE_TILE;
        }
        /* All four index-pure draws in one branch-free loop; the rank
         * draw is computed for every reference (streaming refs discard
         * theirs) because the vectorized fmix64 chain costs far less
         * than a scalar draw on the ~80% that do use it.  is_write is
         * index-pure too, so it lands in the output directly. */
        for (i64 j = 0; j < m; j++) {
            u64 ui = (u64)(start + j);
            buf_switch[j] = (stream_draw(base, 0, ui) >= switch_threshold);
            buf_kind[j] = stream_draw(base, 2, ui);
            buf_rank[j] = stream_draw(base, 3, ui);
            buf_gap[j] = stream_draw(base, 5, ui);
            is_write[start + j] = (stream_draw(base, 4, ui) < write_threshold);
        }
        /* Gaps are index-pure as well; the table search has a
         * data-dependent loop, so it gets its own pass rather than
         * blocking vectorization of the draw loop above. */
        for (i64 j = 0; j < m; j++) {
            i64 gap = guided_upper_bound(gap_table, gap_guide, buf_gap[j]);
            gaps_out[start + j] = (gap < 1) ? 1 : gap;
        }
        for (i64 j = 0; j < m; j++) {
            i64 i = start + j;
            if (i == 0 || buf_switch[j]) {
                cur_thread = (i64)fast_mod_u64(
                    stream_draw(base, 1, (u64)i), (u64)threads, thread_mask);
                stream_base = stream_region + cur_thread * stream_blocks;
                private_base = (1 + cur_thread) * private_blocks;
            }
            thread_out[i] = cur_thread;

            u64 u_kind = buf_kind[j];
            i64 block_index;
            if (u_kind < stream_threshold) {
                i64 offset = fast_mod(stream_counters[cur_thread],
                                      stream_blocks, stream_mask);
                stream_counters[cur_thread]++;
                block_index = stream_base + offset;
            } else {
                i64 rank = guided_upper_bound(rank_table, rank_guide,
                                              buf_rank[j]);
                if (u_kind < shared_threshold) {
                    block_index = fast_mod(rank, shared_blocks, shared_mask);
                } else {
                    block_index = private_base + rank;
                }
            }
            addresses[i] = block_index * block_bytes;
        }
    }
    free(rank_guide);
    free(stream_counters);
    return 0;
}

/* ------------------------------------------------------------------ */
/* Dense group rank                                                    */
/* ------------------------------------------------------------------ */

/* Occurrence index of each element within its group: one counting
 * array over [gmin, gmin + range).  Callers bound `range` so the
 * allocation stays proportional to the input. */
i64 group_rank_dense(const i64 *groups, i64 n, i64 gmin, i64 range,
                     i64 *rank_out) {
    if (n < 0 || range <= 0) {
        return 1;
    }
    i64 *counts = (i64 *)calloc((size_t)range, sizeof(i64));
    if (counts == NULL) {
        return 2;
    }
    for (i64 i = 0; i < n; i++) {
        i64 g = groups[i] - gmin;
        if (g < 0 || g >= range) {
            free(counts);
            return 1;
        }
        rank_out[i] = counts[g]++;
    }
    free(counts);
    return 0;
}
