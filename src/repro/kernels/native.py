"""Compile-on-demand native tier for the multicore trace engine.

The scalar event loop is the one hot path that resists NumPy batching:
misses serialize through shared bank/channel/coherence state, so the
epoch-batched engine still interprets ~60 bytecodes per miss.  This
module compiles ``multicore_native.c`` — a direct transliteration of
the reference loop onto flat int64 arrays — together with the pipeline
kernels of ``pipeline_native.c`` (see :mod:`repro.kernels.pipeline`)
into one shared library, built with the system C compiler and driven
through :mod:`ctypes` (both already present everywhere we run; nothing
is installed).

Everything degrades gracefully: if no compiler is available, the build
fails, or ``REPRO_NATIVE=0`` is set, :func:`load_native_kernel` returns
``None`` and callers fall back to the pure-Python engines.  The
compiled library lands in a per-user temp directory keyed by source
hash, so rebuilds only happen when the C source changes.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from repro.cpu.multicore import MulticoreConfig, MulticoreStats
    from repro.workloads.generator import MemoryTrace

__all__ = [
    "NativeMulticoreEngine",
    "load_native_kernel",
    "native_available",
    "native_error",
    "native_cache_dir",
    "reset_native_kernel_cache",
]

#: All C sources compiled into the one shared library; the cache key is
#: the hash of their concatenation, so editing either triggers exactly
#: one rebuild.
_SOURCES = (
    Path(__file__).with_name("multicore_native.c"),
    Path(__file__).with_name("pipeline_native.c"),
)

#: Field order of the C kernel's cfg[] block (keep in sync with the enum).
_CFG_FIELDS = 13
#: Field order of the C kernel's stats_out[] block.
_STAT_FIELDS = 11

_kernel: ctypes.CDLL | None = None
_kernel_error: str | None = None

_I64P = ctypes.POINTER(ctypes.c_int64)


def _as_i64p(arr: np.ndarray):
    return arr.ctypes.data_as(_I64P)


def native_cache_dir() -> Path:
    """The shared directory holding compiled kernel libraries.

    Defaults to a per-user temp directory; ``REPRO_NATIVE_CACHE``
    overrides it so e.g. a build farm or a ProcessPool test can point
    every worker at one warm cache.
    """
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return Path(override)
    return Path(tempfile.gettempdir()) / f"repro-native-{os.getuid()}"


@contextmanager
def _build_lock(cache_dir: Path) -> Iterator[None]:
    """Serialize concurrent cold builds of the same cache directory.

    Without it, N pool workers starting cold each spawn a compiler; the
    ``os.replace`` below keeps that *correct*, but N-1 compiles are
    wasted work.  Advisory ``flock`` when available, no-op otherwise
    (Windows falls back to the atomic-replace-only behaviour).
    """
    try:
        import fcntl
    except ImportError:  # pragma: no cover - non-POSIX fallback
        yield
        return
    lock_path = cache_dir / "build.lock"
    with lock_path.open("w") as handle:
        fcntl.flock(handle, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle, fcntl.LOCK_UN)


def _build_library() -> ctypes.CDLL:
    source = "".join(path.read_text() for path in _SOURCES)
    digest = hashlib.sha256(source.encode()).hexdigest()[:16]
    cache_dir = native_cache_dir()
    cache_dir.mkdir(mode=0o700, parents=True, exist_ok=True)
    lib_path = cache_dir / f"kernels-{digest}.so"
    if not lib_path.exists():
        with _build_lock(cache_dir):
            if not lib_path.exists():  # another worker may have built it
                _compile(lib_path)
    lib = ctypes.CDLL(str(lib_path))
    _prototypes(lib)
    return lib


def _compile(lib_path: Path) -> None:
    cc = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    if cc is None:
        raise RuntimeError("no C compiler on PATH")
    tmp_path = lib_path.with_suffix(f".{os.getpid()}.tmp")
    # -march=native lets the counter-RNG trace kernel vectorize (the
    # library is compiled on demand on the machine that runs it); both
    # sources are integer-only, so codegen flags cannot change results.
    # Some toolchains reject the flag — fall back to the portable build.
    base_cmd = [cc, "-O3", "-shared", "-fPIC"]
    tail = [str(path) for path in _SOURCES] + ["-o", str(tmp_path)]
    try:
        subprocess.run(
            base_cmd + ["-march=native"] + tail,
            check=True,
            capture_output=True,
            timeout=120,
        )
    except subprocess.CalledProcessError:
        subprocess.run(
            base_cmd + tail, check=True, capture_output=True, timeout=120
        )
    os.replace(tmp_path, lib_path)  # atomic vs concurrent builders


def _prototypes(lib: ctypes.CDLL) -> None:
    # Declared symbol-by-symbol (lib.<name>.argtypes = ...) so the R008
    # FFI-contract rule can cross-check each binding against the C
    # declaration; keep the grouping aligned with desc_mc_run's
    # parameter blocks in multicore_native.c.
    lib.desc_mc_run.restype = ctypes.c_int64
    lib.desc_mc_run.argtypes = (
        [_I64P, ctypes.c_int64, ctypes.c_int64]
        + [_I64P] * 10
        + [_I64P] * 8
        + [_I64P, _I64P, _I64P]
        + [_I64P, ctypes.c_int64, _I64P]
        + [_I64P, _I64P, _I64P, _I64P]
    )


def load_native_kernel() -> ctypes.CDLL | None:
    """The compiled kernel library, or ``None`` if unavailable.

    The first call attempts the build; the outcome (library or error)
    is cached for the process.  Set ``REPRO_NATIVE=0`` to force the
    pure-Python engines.
    """
    global _kernel, _kernel_error
    if _kernel is not None or _kernel_error is not None:
        return _kernel
    if os.environ.get("REPRO_NATIVE", "1") == "0":
        _kernel_error = "disabled via REPRO_NATIVE=0"
        return None
    try:
        _kernel = _build_library()
    except Exception as exc:  # noqa: BLE001 - any failure means "no native"
        _kernel_error = f"{type(exc).__name__}: {exc}"
        return None
    return _kernel


def native_available() -> bool:
    """Whether the native kernel can be (or has been) loaded."""
    return load_native_kernel() is not None


def native_error() -> str | None:
    """Why the native kernel is unavailable, or ``None`` if it loaded.

    Triggers a load attempt if none happened yet, so callers always get
    the definitive answer (the engine-selection fallback chain logs
    this reason).
    """
    load_native_kernel()
    return _kernel_error


def reset_native_kernel_cache() -> None:
    """Forget the cached load outcome (library or error).

    The next :func:`load_native_kernel` call re-attempts the build.
    Exists for tests that force load failures and for long-lived
    processes whose environment (compiler, ``REPRO_NATIVE``) changed.
    """
    global _kernel, _kernel_error
    _kernel = None
    _kernel_error = None


class NativeMulticoreEngine:
    """Trace executor backed by the compiled scalar kernel.

    State lives in NumPy int64 arrays owned by this object; the C
    kernel mutates them in place, so state persists across ``run``
    calls exactly like the reference simulator's.  Cycle-exact under
    the same condition as the batched engine: block-aligned addresses
    (see :mod:`repro.kernels.multicore`).
    """

    def __init__(self, config: MulticoreConfig) -> None:
        lib = load_native_kernel()
        if lib is None:
            raise RuntimeError(f"native kernel unavailable: {_kernel_error}")
        self._fn = lib.desc_mc_run
        cfg = config
        self.config = cfg
        l1_blocks = cfg.l1_size_bytes // cfg.block_bytes
        self.l1_sets = l1_blocks // cfg.l1_associativity
        self.l1_ways = cfg.l1_associativity
        self.num_banks = 128 if cfg.nuca else cfg.l2_banks
        l2_blocks = cfg.l2_size_bytes // cfg.block_bytes
        self.l2_sets = l2_blocks // cfg.l2_associativity
        self.l2_ways = cfg.l2_associativity

        cores = cfg.num_cores
        n1 = self.l1_sets * self.l1_ways
        n2 = self.l2_sets * self.l2_ways
        self.l1_tags = np.full(cores * n1, -1, dtype=np.int64)
        self.l1_state = np.zeros(cores * n1, dtype=np.int64)
        self.l1_stamp = np.full(cores * n1, -1, dtype=np.int64)
        self.l2_tags = np.full(n2, -1, dtype=np.int64)
        self.l2_dirty = np.zeros(n2, dtype=np.int64)
        self.l2_stamp = np.full(n2, -1, dtype=np.int64)
        self.bank_free = np.zeros(self.num_banks, dtype=np.int64)
        self.chan_free = np.zeros(cfg.dram_channels, dtype=np.int64)
        reorder = max(cfg.dram_reorder_window, 1)
        self.ring = np.zeros(cfg.dram_channels * reorder, dtype=np.int64)
        self.ring_pos = np.zeros(cfg.dram_channels, dtype=np.int64)
        self.ring_len = np.zeros(cfg.dram_channels, dtype=np.int64)
        self.misc = np.zeros(1, dtype=np.int64)  # transfer-window index
        if cfg.transfer_windows is not None:
            self.win_seq = np.asarray(cfg.transfer_windows, dtype=np.int64)
        else:
            self.win_seq = np.zeros(0, dtype=np.int64)
        self.cfg_block = np.array(
            [
                self.l1_sets,
                self.l1_ways,
                self.l2_sets,
                self.l2_ways,
                cores,
                cfg.l1_hit_latency,
                cfg.l2_array_latency,
                cfg.l2_transfer_cycles,
                cfg.dram_latency,
                cfg.dram_service,
                cfg.dram_row_hit,
                cfg.dram_row_miss,
                cfg.dram_reorder_window,
            ],
            dtype=np.int64,
        )
        assert len(self.cfg_block) == _CFG_FIELDS

    @staticmethod
    def supports(trace: MemoryTrace, config: MulticoreConfig) -> bool:
        """Same exactness condition as the batched engine."""
        if len(trace) == 0:
            return True
        addrs = np.asarray(trace.addresses)
        return bool((addrs % config.block_bytes == 0).all())

    def run(self, trace: MemoryTrace, stats: MulticoreStats) -> MulticoreStats:
        """Execute the trace, accumulating into ``stats``."""
        cfg = self.config
        n = len(trace)
        if n == 0:
            return stats

        addr = trace.addresses.astype(np.int64)
        thr = trace.thread.astype(np.int64)
        num_threads = int(thr.max()) + 1
        order = np.argsort(thr, kind="stable")

        block = addr // cfg.block_bytes
        if cfg.nuca:
            banks = block % 128
            nuca_lat = 3 + (banks * 10) // 127
        else:
            nuca_lat = np.zeros(n, dtype=np.int64)
        row = addr // cfg.dram_row_bytes

        def col(values: np.ndarray) -> np.ndarray:
            return np.ascontiguousarray(values[order], dtype=np.int64)

        blk = col(block)
        sb = col((block % self.l1_sets) * self.l1_ways)
        wr = col(trace.is_write.astype(np.int64))
        gap = col(trace.instructions_between.astype(np.int64))
        l2sb = col((block % self.l2_sets) * self.l2_ways)
        bank = col(block % self.num_banks)
        nuca = col(nuca_lat)
        row_c = col(row)
        chan = col(row % cfg.dram_channels)
        bounds = np.concatenate(
            ([0], np.cumsum(np.bincount(thr, minlength=num_threads)))
        ).astype(np.int64)

        heap = np.zeros(num_threads, dtype=np.int64)
        pos = np.zeros(num_threads, dtype=np.int64)
        clocks = np.zeros(num_threads, dtype=np.int64)
        stats_out = np.zeros(_STAT_FIELDS, dtype=np.int64)

        rc = self._fn(
            _as_i64p(self.cfg_block),
            n,
            num_threads,
            _as_i64p(bounds),
            _as_i64p(blk),
            _as_i64p(sb),
            _as_i64p(wr),
            _as_i64p(gap),
            _as_i64p(l2sb),
            _as_i64p(bank),
            _as_i64p(nuca),
            _as_i64p(row_c),
            _as_i64p(chan),
            _as_i64p(self.l1_tags),
            _as_i64p(self.l1_state),
            _as_i64p(self.l1_stamp),
            _as_i64p(self.l2_tags),
            _as_i64p(self.l2_dirty),
            _as_i64p(self.l2_stamp),
            _as_i64p(self.bank_free),
            _as_i64p(self.chan_free),
            _as_i64p(self.ring),
            _as_i64p(self.ring_pos),
            _as_i64p(self.ring_len),
            _as_i64p(self.win_seq),
            len(self.win_seq),
            _as_i64p(self.misc),
            _as_i64p(heap),
            _as_i64p(pos),
            _as_i64p(clocks),
            _as_i64p(stats_out),
        )
        if rc != 0:  # pragma: no cover - kernel has no failure paths today
            raise RuntimeError(f"native kernel returned {rc}")

        # Same per-run semantics as the reference loop: counters
        # accumulate, cycles and bank_conflicts are set.
        out = stats_out.tolist()
        stats.cycles = int(clocks.max())
        stats.references += out[0]
        stats.l1_hits += out[1]
        stats.l1_misses += out[2]
        stats.l2_hits += out[3]
        stats.l2_misses += out[4]
        stats.invalidations += out[5]
        stats.coherence_writebacks += out[6]
        stats.bank_conflicts = out[7]
        stats.l2_transfers += out[8]
        stats.dram_row_hits += out[9]
        stats.dram_row_misses += out[10]
        return stats
