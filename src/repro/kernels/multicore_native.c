/* Native scalar kernel for the multicore trace engine.
 *
 * A direct transliteration of the reference event loop in
 * repro/cpu/multicore.py onto flat int64 arrays: a binary heap of
 * stamp-encoded thread clocks (stamp = clock * num_threads + thread
 * reproduces the (clock, thread) tuple order), tag-scan L1 sets with
 * MESI state, a banked L2 with LRU stamps, and per-channel open-row
 * ring buffers.  Unlike the Python engines it needs no conflict-block
 * precomputation or residency dicts: full coherence scans are cheap at
 * native speed, so every access takes the exact reference path.
 *
 * Compiled on demand by repro.kernels.native with the system C
 * compiler; the Python wrapper owns all memory (NumPy arrays) and this
 * file is freestanding apart from stdint.
 *
 * All stamps use -1 as "never touched"; the LRU victim is the first
 * way with the minimum stamp, which lands on the first untouched way
 * when one exists (the reference's untouched-first rule) and otherwise
 * on the unique least-recently-used way.
 */

#include <stdint.h>

typedef int64_t i64;

/* MESI codes; "has write permission" is state >= E. */
enum { ST_I = 0, ST_S = 1, ST_E = 2, ST_M = 3 };

/* Indices into the cfg[] scalar block. */
enum {
    CFG_L1_SETS = 0,
    CFG_L1_WAYS,
    CFG_L2_SETS,
    CFG_L2_WAYS,
    CFG_NUM_CORES,
    CFG_HIT_LATENCY,
    CFG_ARRAY_LATENCY,
    CFG_BASE_WINDOW,
    CFG_DRAM_LATENCY,
    CFG_DRAM_SERVICE,
    CFG_ROW_HIT,
    CFG_ROW_MISS,
    CFG_REORDER_WINDOW,
    CFG_NUM_FIELDS
};

/* Indices into the stats_out[] block. */
enum {
    S_REFS = 0,
    S_L1_HITS,
    S_L1_MISSES,
    S_L2_HITS,
    S_L2_MISSES,
    S_INVALIDATIONS,
    S_COH_WRITEBACKS,
    S_BANK_CONFLICTS,
    S_L2_TRANSFERS,
    S_DRAM_HITS,
    S_DRAM_MISSES,
    S_NUM_FIELDS
};

static void heap_push(i64 *heap, i64 *size, i64 value) {
    i64 i = (*size)++;
    heap[i] = value;
    while (i > 0) {
        i64 parent = (i - 1) / 2;
        if (heap[parent] <= heap[i])
            break;
        i64 tmp = heap[parent];
        heap[parent] = heap[i];
        heap[i] = tmp;
        i = parent;
    }
}

static i64 heap_pop(i64 *heap, i64 *size) {
    i64 top = heap[0];
    i64 n = --(*size);
    heap[0] = heap[n];
    i64 i = 0;
    for (;;) {
        i64 left = 2 * i + 1;
        if (left >= n)
            break;
        i64 child = left;
        if (left + 1 < n && heap[left + 1] < heap[left])
            child = left + 1;
        if (heap[i] <= heap[child])
            break;
        i64 tmp = heap[i];
        heap[i] = heap[child];
        heap[child] = tmp;
        i = child;
    }
    return top;
}

/* Execute a thread-sorted access trace.  Returns 0 on success.
 *
 * Per-access columns (all length n, sorted by thread; bounds[t] ..
 * bounds[t+1] is thread t's slice): blk, sb (L1 set base), wr, gap,
 * l2sb (L2 set base), bank, nuca (extra NUCA latency, 0 when off),
 * row (DRAM row id), chan (DRAM channel).
 *
 * Mutable engine state (persists across calls): l1_tags/l1_state/
 * l1_stamp are cores * l1_sets * l1_ways; l2_tags/l2_dirty/l2_stamp
 * are l2_sets * l2_ways; bank_free is per bank; chan_free, ring
 * (channels * reorder_window), ring_pos and ring_len are per channel.
 * misc[0] is the transfer-window rotation index (in/out).
 *
 * Outputs: clocks (per-thread final completion time, caller-zeroed)
 * and stats_out (S_NUM_FIELDS counters for this call).
 */
i64 desc_mc_run(
    const i64 *cfg,
    i64 n, i64 num_threads,
    const i64 *bounds,
    const i64 *blk, const i64 *sb, const i64 *wr, const i64 *gap,
    const i64 *l2sb, const i64 *bank, const i64 *nuca,
    const i64 *row, const i64 *chan,
    i64 *l1_tags, i64 *l1_state, i64 *l1_stamp,
    i64 *l2_tags, i64 *l2_dirty, i64 *l2_stamp,
    i64 *bank_free, i64 *chan_free,
    i64 *ring, i64 *ring_pos, i64 *ring_len,
    const i64 *win_seq, i64 win_len, i64 *misc,
    i64 *heap, i64 *pos,
    i64 *clocks, i64 *stats_out)
{
    const i64 l1_sets = cfg[CFG_L1_SETS];
    const i64 l1_ways = cfg[CFG_L1_WAYS];
    const i64 l2_ways = cfg[CFG_L2_WAYS];
    const i64 cores = cfg[CFG_NUM_CORES];
    const i64 hit_latency = cfg[CFG_HIT_LATENCY];
    const i64 array_latency = cfg[CFG_ARRAY_LATENCY];
    const i64 base_window = cfg[CFG_BASE_WINDOW];
    const i64 dram_latency = cfg[CFG_DRAM_LATENCY];
    const i64 dram_service = cfg[CFG_DRAM_SERVICE];
    const i64 row_hit = cfg[CFG_ROW_HIT];
    const i64 row_miss = cfg[CFG_ROW_MISS];
    const i64 reorder = cfg[CFG_REORDER_WINDOW];
    const i64 core_l1 = l1_sets * l1_ways;
    const i64 T = num_threads;

    i64 window_index = misc[0];
    i64 heap_size = 0;
    for (i64 t = 0; t < T; t++) {
        pos[t] = bounds[t];
        if (bounds[t + 1] > bounds[t])
            heap_push(heap, &heap_size, t); /* stamp = 0 * T + t */
    }

    i64 refs = 0, hits = 0, misses = 0, l2_hits = 0, l2_misses = 0;
    i64 invalidations = 0, coh_writebacks = 0, bank_conflicts = 0;
    i64 l2_transfers = 0, dram_hits_n = 0, dram_misses_n = 0;

    while (heap_size > 0) {
        const i64 stamp = heap_pop(heap, &heap_size);
        const i64 t = stamp % T;
        const i64 key = stamp / T;
        const i64 p = pos[t];
        const i64 c = t % cores;
        const i64 b = blk[p];
        const i64 is_wr = wr[p];
        const i64 now = key + gap[p];

        i64 *tags_c = l1_tags + c * core_l1;
        i64 *state_c = l1_state + c * core_l1;
        i64 *stamp_c = l1_stamp + c * core_l1;
        const i64 set = sb[p];

        /* L1 lookup: tag scan over the set's ways. */
        i64 way = -1;
        for (i64 w = set; w < set + l1_ways; w++) {
            if (tags_c[w] == b) {
                way = w;
                break;
            }
        }

        refs++;
        i64 done;
        if (way >= 0 && (!is_wr || state_c[way] >= ST_E)) {
            /* Hit: touch recency, silent E->M on writes. */
            hits++;
            stamp_c[way] = stamp;
            if (is_wr)
                state_c[way] = ST_M;
            done = now + hit_latency;
        } else {
            /* Miss (or S->M upgrade): full coherence + L2 + DRAM. */
            misses++;

            i64 granted;
            if (is_wr) {
                i64 writeback = 0;
                for (i64 oc = 0; oc < cores; oc++) {
                    if (oc == c)
                        continue;
                    i64 *otags = l1_tags + oc * core_l1;
                    for (i64 w = set; w < set + l1_ways; w++) {
                        if (otags[w] == b) {
                            i64 *ost = l1_state + oc * core_l1;
                            if (ost[w] == ST_M)
                                writeback = 1;
                            otags[w] = -1;
                            ost[w] = ST_I;
                            (l1_stamp + oc * core_l1)[w] = -1;
                            invalidations++;
                            break;
                        }
                    }
                }
                coh_writebacks += writeback;
                granted = ST_M;
            } else {
                i64 writeback = 0, shared = 0;
                for (i64 oc = 0; oc < cores; oc++) {
                    if (oc == c)
                        continue;
                    i64 *otags = l1_tags + oc * core_l1;
                    for (i64 w = set; w < set + l1_ways; w++) {
                        if (otags[w] == b) {
                            i64 *ost = l1_state + oc * core_l1;
                            shared = 1;
                            if (ost[w] == ST_M) {
                                writeback = 1;
                                ost[w] = ST_S;
                            } else if (ost[w] == ST_E) {
                                ost[w] = ST_S;
                            }
                            break;
                        }
                    }
                }
                coh_writebacks += writeback;
                granted = shared ? ST_S : ST_E;
            }

            i64 window = base_window;
            if (win_len > 0) {
                window = win_seq[window_index % win_len];
                window_index++;
            }

            const i64 bk = bank[p];
            i64 start = bank_free[bk] > now ? bank_free[bk] : now;
            if (start > now)
                bank_conflicts++;
            bank_free[bk] = start + array_latency + window;
            const i64 ready = start + array_latency;
            l2_transfers++;

            /* L2 lookup: tag scan over the L2 set. */
            const i64 l2set = l2sb[p];
            i64 l2way = -1;
            for (i64 w = l2set; w < l2set + l2_ways; w++) {
                if (l2_tags[w] == b) {
                    l2way = w;
                    break;
                }
            }
            if (l2way >= 0) {
                l2_hits++;
                l2_stamp[l2way] = stamp;
                if (is_wr)
                    l2_dirty[l2way] = 1;
                done = ready + nuca[p] + window;
            } else {
                l2_misses++;
                const i64 ch = chan[p];
                const i64 r = row[p];
                i64 service = row_miss;
                i64 *ring_ch = ring + ch * reorder;
                const i64 len = ring_len[ch];
                for (i64 i = 0; i < len; i++) {
                    if (ring_ch[i] == r) {
                        service = row_hit;
                        break;
                    }
                }
                if (service == row_hit)
                    dram_hits_n++;
                else
                    dram_misses_n++;
                if (reorder > 0) {
                    ring_ch[ring_pos[ch]] = r;
                    ring_pos[ch] = (ring_pos[ch] + 1) % reorder;
                    if (len < reorder)
                        ring_len[ch] = len + 1;
                }
                i64 start2 = chan_free[ch] > ready ? chan_free[ch] : ready;
                chan_free[ch] = start2 + service;
                done = start2 + dram_latency - dram_service + service;

                /* L2 allocation: untouched-first then LRU victim. */
                i64 vic = l2set;
                for (i64 w = l2set + 1; w < l2set + l2_ways; w++) {
                    if (l2_stamp[w] < l2_stamp[vic])
                        vic = w;
                }
                if (l2_tags[vic] != -1 && l2_dirty[vic])
                    l2_transfers++; /* victim writeback */
                l2_tags[vic] = b;
                l2_dirty[vic] = is_wr;
                l2_stamp[vic] = stamp;
            }

            if (way >= 0) {
                /* Write upgrade: the block stays in place. */
                stamp_c[way] = stamp;
                state_c[way] = ST_M;
            } else {
                i64 vic = set;
                for (i64 w = set + 1; w < set + l1_ways; w++) {
                    if (stamp_c[w] < stamp_c[vic])
                        vic = w;
                }
                if (tags_c[vic] != -1 && state_c[vic] == ST_M) {
                    coh_writebacks++;
                    l2_transfers++;
                }
                tags_c[vic] = b;
                state_c[vic] = granted;
                stamp_c[vic] = stamp;
            }
        }

        clocks[t] = done;
        pos[t] = p + 1;
        if (p + 1 < bounds[t + 1])
            heap_push(heap, &heap_size, done * T + t);
    }

    misc[0] = window_index;
    stats_out[S_REFS] = refs;
    stats_out[S_L1_HITS] = hits;
    stats_out[S_L1_MISSES] = misses;
    stats_out[S_L2_HITS] = l2_hits;
    stats_out[S_L2_MISSES] = l2_misses;
    stats_out[S_INVALIDATIONS] = invalidations;
    stats_out[S_COH_WRITEBACKS] = coh_writebacks;
    stats_out[S_BANK_CONFLICTS] = bank_conflicts;
    stats_out[S_L2_TRANSFERS] = l2_transfers;
    stats_out[S_DRAM_HITS] = dram_hits_n;
    stats_out[S_DRAM_MISSES] = dram_misses_n;
    return 0;
}
