"""Epoch-batched trace execution for the multicore substrate.

This is the vectorized counterpart of the reference event loop in
:mod:`repro.cpu.multicore` — cycle-exact by construction, not by
approximation.  The equivalence argument rests on three facts about the
reference simulator:

1. **Global order is a pure function of pop keys.**  The reference heap
   pops ``(clock, thread)`` tuples; ties break on the thread id.  With
   ``T`` threads the scalar *stamp* ``key * T + thread`` reproduces that
   total order exactly, and per-thread keys strictly increase, so stamps
   are unique.

2. **L1 hits commute.**  A hit touches only the owning core's L1 state
   and the thread's clock: LRU recency (here an int64 stamp per way),
   the dirty bit (encoded as MESI ``M``), and the silent ``E → M``
   upgrade.  Within one core all commits are applied in stamp order, so
   plain writes suffice; across cores hits share no state at all.
   Therefore a run of hits may be committed in bulk — and, for blocks
   that no other core ever touches (*non-conflict blocks*, precomputed
   from the whole trace), even ahead of other cores' pending accesses.

3. **Misses serialize.**  A miss touches shared state whose effect
   depends on arrival order: bank occupancy, the DRAM channel queues,
   the transfer-window sequence, and cross-core coherence.  The engine
   therefore processes every miss inline, in exact global stamp order,
   through a flat mirror of the reference structures (residency dicts +
   struct-of-array tag/state/stamp, list-based L2, per-channel row
   deques).

The run loop pops the earliest thread and executes its references
inline while its key stays below the heap top (the reference would pop
the same thread back immediately, so this is the identical schedule
with the heap churn elided).  When a thread is in a long hit streak the
engine switches to the *epoch-batched* path: it classifies a whole
window of upcoming references against the frozen L1 arrays in NumPy,
bounds the window by the first miss, the earliest same-core sibling
stamp, and — for conflict blocks — the earliest other-core stamp, and
commits the surviving hit prefix with array scatters.

The LRU mirror: a way's stamp is ``-1`` while never touched (or after a
coherence invalidation) and the victim is ``row.index(min(row))`` —
``min`` lands on the first ``-1`` when one exists (the reference's
untouched-way-first rule) and otherwise on the unique least-recent
stamp.

Exactness requires block-aligned addresses: the reference keys its
coherence directory by the *raw* address while the L1 arrays use block
tags, and the two only agree when every address is block-aligned (all
generated traces are).  :meth:`VectorizedMulticoreEngine.supports`
reports this; the simulator falls back to the reference loop otherwise.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from repro.cpu.multicore import MulticoreConfig, MulticoreStats
    from repro.workloads.generator import MemoryTrace

__all__ = ["VectorizedMulticoreEngine"]

# MESI codes, ordered so that "has write permission" is ``state >= _E``
# and every in-place transition the hit path performs is monotone.
_I, _S, _E, _M = 0, 1, 2, 3

#: Consecutive hits on one thread before the batched path is attempted.
_BATCH_STREAK = 24
#: Smallest remaining run worth a batched classification.
_BATCH_MIN = 32
#: References classified per batched attempt.
_BATCH_CAP = 512

#: Heap-head sentinel when no other thread is pending.
_INF = float("inf")


class VectorizedMulticoreEngine:
    """Array-state trace executor, cycle-exact vs the reference loop."""

    def __init__(self, config: MulticoreConfig) -> None:
        cfg = config
        self.config = cfg
        l1_blocks = cfg.l1_size_bytes // cfg.block_bytes
        self.l1_sets = l1_blocks // cfg.l1_associativity
        self.l1_ways = cfg.l1_associativity
        self.num_banks = 128 if cfg.nuca else cfg.l2_banks
        l2_blocks = cfg.l2_size_bytes // cfg.block_bytes
        self.l2_sets = l2_blocks // cfg.l2_associativity
        self.l2_ways = cfg.l2_associativity

        cores = cfg.num_cores
        n1 = self.l1_sets * self.l1_ways
        #: block id -> flat way index, one dict per core (fast residency).
        self.resident: list[dict[int, int]] = [{} for _ in range(cores)]
        # Tags, MESI state and LRU stamps as plain lists: the scalar
        # path touches them per access, where list indexing is ~2x
        # cheaper than ndarray scalar indexing.  The batched classifier
        # materializes a tag array on demand (amortized over the run of
        # hits that triggered it).
        self.tags: list[list[int]] = [[-1] * n1 for _ in range(cores)]
        self.state: list[list[int]] = [[_I] * n1 for _ in range(cores)]
        self.stamp: list[list[int]] = [[-1] * n1 for _ in range(cores)]

        n2 = self.l2_sets * self.l2_ways
        self.l2_resident: dict[int, int] = {}
        self.l2_tags: list[int] = [-1] * n2
        self.l2_dirty: list[bool] = [False] * n2
        self.l2_stamp: list[int] = [-1] * n2

        self.bank_free: list[int] = [0] * self.num_banks
        self.bank_conflicts = 0
        self.channel_free: list[int] = [0] * cfg.dram_channels
        # Open-row mirror: a plain deque (manual eviction) plus a row ->
        # count dict so membership is one hash lookup instead of a
        # linear scan of the reorder window.
        self.recent_rows = [deque() for _ in range(cfg.dram_channels)]
        self.recent_counts: list[dict[int, int]] = [
            {} for _ in range(cfg.dram_channels)
        ]
        self.window_index = 0

    # ------------------------------------------------------------------
    @staticmethod
    def supports(trace: MemoryTrace, config: MulticoreConfig) -> bool:
        """Whether this engine reproduces the reference exactly.

        Requires block-aligned addresses (see module docstring).
        """
        if len(trace) == 0:
            return True
        addrs = np.asarray(trace.addresses)
        return bool((addrs % config.block_bytes == 0).all())

    # ------------------------------------------------------------------
    def _nuca_latency(self, block_ids: np.ndarray) -> np.ndarray:
        """Vectorized S-NUCA-1 latency (mirrors ``SNuca1Mapping``)."""
        banks = block_ids % 128
        span = 13 - 3
        return 3 + (banks * span) // (128 - 1)

    def run(self, trace: MemoryTrace, stats: MulticoreStats) -> MulticoreStats:
        """Execute the trace, accumulating into ``stats``."""
        cfg = self.config
        n = len(trace)
        if n == 0:
            return stats

        # ---- vectorized precompute: everything derivable per access ----
        addr = trace.addresses.astype(np.int64)
        thr = trace.thread.astype(np.int64)
        gap = trace.instructions_between.astype(np.int64)
        write = trace.is_write.astype(bool)
        cores_n = cfg.num_cores
        num_threads = int(thr.max()) + 1

        block = addr // cfg.block_bytes
        set_base = (block % self.l1_sets) * self.l1_ways
        l2_base = (block % self.l2_sets) * self.l2_ways
        bank = block % self.num_banks
        if cfg.nuca:
            nuca_lat = self._nuca_latency(block)
        else:
            nuca_lat = np.zeros(n, dtype=np.int64)
        row = addr // cfg.dram_row_bytes
        channel = row % cfg.dram_channels

        # Conflict blocks: touched by threads on >= 2 distinct cores
        # anywhere in the trace *or its history*.  Only these can see
        # cross-core coherence, so only these constrain hit run-ahead.
        # Blocks still resident from a previous run count as touched by
        # their holder, and S-state residues force conflict outright
        # (the non-conflict paths assume resident implies E/M).
        pairs = block * cores_n + (thr % cores_n)
        hist: list[int] = []
        for hc, res in enumerate(self.resident):
            st_h = self.state[hc]
            for hb, hw in res.items():
                hist.append(hb * cores_n + hc)
                if st_h[hw] == _S:
                    hist.append(hb * cores_n + (hc + 1) % cores_n)
        if hist:
            pairs = np.concatenate([pairs, np.array(hist, dtype=np.int64)])
        pair = np.unique(pairs)
        pair_block = pair // cores_n
        multi = pair_block[:-1][pair_block[1:] == pair_block[:-1]]
        conflict = np.isin(block, multi)
        # Sharer map for conflict blocks: block -> {core: flat way}.
        # Replaces the all-cores residency scan on every coherence
        # action with a walk over the actual holders (usually 0-2).
        holders_map: dict[int, dict[int, int]] = {}
        if hist:
            multi_set = set(multi.tolist())
            for hc, res in enumerate(self.resident):
                for hb, hw in res.items():
                    if hb in multi_set:
                        holders_map.setdefault(hb, {})[hc] = hw

        hit_latency = cfg.l1_hit_latency
        # One stacked int64 matrix, stable-sorted by thread, converted
        # to nested lists in a single C pass: the scalar path does one
        # list index + unpack per reference instead of ten array reads.
        cols = np.stack(
            (
                block,
                set_base,
                write.astype(np.int64),
                gap,
                l2_base,
                bank,
                nuca_lat,
                row,
                channel,
                conflict.astype(np.int64),
            ),
            axis=1,
        )
        order = np.argsort(thr, kind="stable")
        cols = cols[order]
        bounds = np.concatenate(
            ([0], np.cumsum(np.bincount(thr, minlength=num_threads)))
        )
        acc_by_thread: list[list[list[int]]] = []
        # Batch-path form: per-thread column views + hit-key prefix
        # bases (cumulative gap + hit latency).
        blk_np: list[np.ndarray] = []
        sb_np: list[np.ndarray] = []
        wr_np: list[np.ndarray] = []
        cf_np: list[np.ndarray] = []
        base_np: list[np.ndarray] = []
        for t in range(num_threads):
            sub = cols[bounds[t] : bounds[t + 1]]
            acc_by_thread.append(sub.tolist())
            blk_np.append(sub[:, 0])
            sb_np.append(sub[:, 1])
            wr_np.append(sub[:, 2] != 0)
            cf_np.append(sub[:, 9] != 0)
            base_np.append(
                np.concatenate(([0], np.cumsum(sub[:, 3] + hit_latency)))
            )

        # ---- local bindings for the hot loop ----
        resident = self.resident
        tags = self.tags
        state = self.state
        stamp = self.stamp
        l2_resident = self.l2_resident
        l2_tags = self.l2_tags
        l2_dirty = self.l2_dirty
        l2_stamp = self.l2_stamp
        bank_free = self.bank_free
        channel_free = self.channel_free
        recent_rows = self.recent_rows
        recent_counts = self.recent_counts
        reorder_window = cfg.dram_reorder_window
        l2_ways = self.l2_ways
        l1_ways = self.l1_ways
        array_latency = cfg.l2_array_latency
        win_seq = cfg.transfer_windows
        win_len = len(win_seq) if win_seq is not None else 0
        base_window = cfg.l2_transfer_cycles
        dram_latency = cfg.dram_latency
        dram_service = cfg.dram_service
        row_hit_cycles = cfg.dram_row_hit
        row_miss_cycles = cfg.dram_row_miss
        heappushpop = heapq.heappushpop
        heappop = heapq.heappop
        way_offsets = np.arange(l1_ways, dtype=np.int64)

        # Stats as plain locals; only events the loop cannot derive are
        # counted inline (hits, l2/dram misses and per-miss transfers
        # fall out of totals at flush time).
        misses = l2_hits = invalidations = coh_writebacks = 0
        extra_transfers = dram_hits = bank_conf = 0
        window_index = self.window_index

        clocks = [0] * num_threads
        pos = [0] * num_threads
        streak = [0] * num_threads
        lengths = [len(a) for a in acc_by_thread]
        ready = [(0, t) for t in range(num_threads) if lengths[t]]
        heapq.heapify(ready)
        T = num_threads

        def batch_hits(t: int, c: int, p: int, key: int) -> tuple[int, int]:
            """Classify a window of thread ``t`` and commit its hit prefix.

            Returns the new (position, key).  Only commits references
            that the reference loop would process before every other
            pending heap entry it could interact with: all commits stay
            below the earliest same-core sibling stamp, and conflict
            blocks additionally below the earliest other-core stamp.
            """
            sib = oth = None
            for entry in ready:
                if entry[1] % cores_n == c:
                    if sib is None or entry < sib:
                        sib = entry
                elif oth is None or entry < oth:
                    oth = entry
            size = min(_BATCH_CAP, lengths[t] - p)
            bases = base_np[t]
            keys = key + (bases[p : p + size] - bases[p])
            stamps = keys * T + t
            blk_w = blk_np[t][p : p + size]
            sb_w = sb_np[t][p : p + size]
            wr_w = wr_np[t][p : p + size]
            cf_w = cf_np[t][p : p + size]
            tag_arr = np.asarray(tags[c], dtype=np.int64)
            tag_rows = tag_arr[sb_w[:, None] + way_offsets]
            match = tag_rows == blk_w[:, None]
            found = match.any(axis=1)
            flat_way = sb_w + match.argmax(axis=1)
            # A resident non-conflict block is always E or M (no other
            # core ever reads it into S), so a tag match alone decides
            # write hits; conflict-block writes stop the batch and go
            # through the exact scalar path instead.
            ok = found & (~wr_w | ~cf_w)
            if sib is not None:
                ok &= stamps < sib[0] * T + sib[1]
            if oth is not None:
                ok &= ~cf_w | (stamps < oth[0] * T + oth[1])
            blocked = ~ok
            take = int(blocked.argmax()) if blocked.any() else size
            if take:
                st_c = state[c]
                stamp_c = stamp[c]
                # In-order scatter: duplicate ways keep the last (= max)
                # stamp, since same-core commits are stamp-ordered.
                for fw, sv in zip(
                    flat_way[:take].tolist(), stamps[:take].tolist(),
                    strict=True,
                ):
                    stamp_c[fw] = sv
                wr_take = wr_w[:take]
                if wr_take.any():
                    for fw in flat_way[:take][wr_take].tolist():
                        st_c[fw] = _M
                # Pop key after the last committed hit: the prefix-sum
                # base carries gap + hit latency per reference.
                key = int(key + (bases[p + take] - bases[p]))
                p += take
            return p, key, take

        key, t = heappop(ready)
        while True:
            c = t % cores_n
            acc = acc_by_thread[t]
            length = lengths[t]
            p = pos[t]
            res_c = resident[c]
            st_c = state[c]
            stamp_c = stamp[c]
            tags_c = tags[c]
            run_streak = streak[t]
            # The heap is static during this thread's run (nothing is
            # pushed until it yields), so the head can be cached and
            # compared as scalars instead of building a tuple per
            # reference.
            if ready:
                head_key, head_t = ready[0]
            else:
                head_key = _INF
                head_t = -1
            swap = False

            while True:
                if head_key < key or (head_key == key and head_t < t):
                    swap = True
                    break
                if run_streak >= _BATCH_STREAK and length - p >= _BATCH_MIN:
                    p, key, took = batch_hits(t, c, p, key)
                    run_streak = took if took == _BATCH_CAP else 0
                    if p >= length:
                        break
                    continue

                (
                    blk,
                    sb,
                    wr,
                    acc_gap,
                    l2_sb,
                    acc_bank,
                    acc_nuca,
                    acc_row,
                    acc_chan,
                    conf,
                ) = acc[p]
                now = key + acc_gap
                way = res_c.get(blk)
                if way is not None and (not wr or st_c[way] >= _E):
                    # ---- L1 hit: touch recency, silent E->M on writes.
                    stamp_c[way] = key * T + t
                    if wr:
                        st_c[way] = _M
                    key = now + hit_latency
                    run_streak += 1
                    p += 1
                    if p >= length:
                        break
                    continue

                # ---- L1 miss (or S->M upgrade): exact global order here.
                misses += 1
                run_streak = 0
                stamp_v = key * T + t
                if conf:
                    entry = holders_map.get(blk)
                    if wr:
                        granted = _M
                        if entry:
                            writeback = False
                            inv = 0
                            for oc, ow in entry.items():
                                if oc == c:
                                    continue
                                del resident[oc][blk]
                                if state[oc][ow] == _M:
                                    writeback = True
                                tags[oc][ow] = -1
                                state[oc][ow] = _I
                                stamp[oc][ow] = -1
                                inv += 1
                            invalidations += inv
                            if writeback:
                                coh_writebacks += 1
                            if way is not None:
                                holders_map[blk] = {c: way}
                            else:
                                del holders_map[blk]
                    else:
                        # A read miss means this core holds nothing, so
                        # every entry is a remote sharer to downgrade.
                        if entry:
                            writeback = False
                            for oc, ow in entry.items():
                                so = state[oc][ow]
                                if so == _M:
                                    writeback = True
                                    state[oc][ow] = _S
                                elif so == _E:
                                    state[oc][ow] = _S
                            if writeback:
                                coh_writebacks += 1
                            granted = _S
                        else:
                            granted = _E
                else:
                    # No other core ever touches this block: coherence
                    # is a no-op and the grant is exclusive.
                    granted = _M if wr else _E

                if win_seq is None:
                    window = base_window
                else:
                    window = win_seq[window_index % win_len]
                    window_index += 1

                free_at = bank_free[acc_bank]
                start = free_at if free_at > now else now
                if start > now:
                    bank_conf += 1
                bank_free[acc_bank] = start + array_latency + window
                ready_time = start + array_latency

                l2_way = l2_resident.get(blk)
                if l2_way is not None:
                    l2_hits += 1
                    l2_stamp[l2_way] = stamp_v
                    if wr:
                        l2_dirty[l2_way] = True
                    done = ready_time + acc_nuca + window
                else:
                    cnt = recent_counts[acc_chan]
                    if acc_row in cnt:
                        dram_hits += 1
                        service = row_hit_cycles
                    else:
                        service = row_miss_cycles
                    recent = recent_rows[acc_chan]
                    recent.append(acc_row)
                    cnt[acc_row] = cnt.get(acc_row, 0) + 1
                    if len(recent) > reorder_window:
                        old = recent.popleft()
                        left = cnt[old] - 1
                        if left:
                            cnt[old] = left
                        else:
                            del cnt[old]
                    free_at = channel_free[acc_chan]
                    start2 = free_at if free_at > ready_time else ready_time
                    channel_free[acc_chan] = start2 + service
                    done = start2 + dram_latency - dram_service + service
                    # L2 allocation: untouched-first then LRU victim.
                    srow = l2_stamp[l2_sb : l2_sb + l2_ways]
                    v_way = l2_sb + srow.index(min(srow))
                    v_tag = l2_tags[v_way]
                    if v_tag != -1:
                        del l2_resident[v_tag]
                        if l2_dirty[v_way]:
                            extra_transfers += 1  # victim writeback
                    l2_tags[v_way] = blk
                    l2_dirty[v_way] = wr
                    l2_stamp[v_way] = stamp_v
                    l2_resident[blk] = v_way

                if way is not None:
                    # Write upgrade: the block stays in place.
                    stamp_c[way] = stamp_v
                    st_c[way] = _M
                else:
                    srow1 = stamp_c[sb : sb + l1_ways]
                    v_way = sb + srow1.index(min(srow1))
                    v_tag = tags_c[v_way]
                    if v_tag != -1:
                        del res_c[v_tag]
                        entry = holders_map.get(v_tag)
                        if entry is not None:
                            del entry[c]
                            if not entry:
                                del holders_map[v_tag]
                        if st_c[v_way] == _M:
                            coh_writebacks += 1
                            extra_transfers += 1
                    tags_c[v_way] = blk
                    st_c[v_way] = granted
                    stamp_c[v_way] = stamp_v
                    res_c[blk] = v_way
                    if conf:
                        entry = holders_map.get(blk)
                        if entry is None:
                            holders_map[blk] = {c: v_way}
                        else:
                            entry[c] = v_way
                key = done
                p += 1
                if p >= length:
                    break

            pos[t] = p
            clocks[t] = key
            streak[t] = run_streak
            if swap:
                key, t = heappushpop(ready, (key, t))
            elif ready:
                key, t = heappop(ready)
            else:
                break

        # ---- flush (same per-run semantics as the reference loop:
        # counters accumulate, cycles and bank_conflicts are set).
        # Totals the loop did not count inline are derived here: every
        # access is processed exactly once, every L1 miss makes exactly
        # one L2 access and one L2 transfer, and every L2 miss makes
        # exactly one DRAM access.
        self.window_index = window_index
        self.bank_conflicts += bank_conf
        l2_misses = misses - l2_hits
        stats.cycles = max(clocks) if clocks else 0
        stats.references += n
        stats.l1_hits += n - misses
        stats.l1_misses += misses
        stats.l2_hits += l2_hits
        stats.l2_misses += l2_misses
        stats.invalidations += invalidations
        stats.coherence_writebacks += coh_writebacks
        stats.bank_conflicts = bank_conf
        stats.l2_transfers += misses + extra_transfers
        stats.dram_row_hits += dram_hits
        stats.dram_row_misses += l2_misses - dram_hits
        return stats

    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise ``AssertionError`` on any state-consistency violation.

        Mirrors ``MesiDirectory.check_invariants`` plus the dict/array
        residency coupling the batched path relies on.
        """
        holders: dict[int, list[tuple[int, int]]] = {}
        for core, res in enumerate(self.resident):
            for blk, way in res.items():
                assert self.tags[core][way] == blk, (
                    f"core {core} way {way}: dict says block {blk}, "
                    f"array says {self.tags[core][way]}"
                )
                assert self.state[core][way] != _I, (
                    f"core {core} block {blk:#x} resident but INVALID"
                )
                assert self.stamp[core][way] >= 0, (
                    f"core {core} block {blk:#x} resident but untouched"
                )
                holders.setdefault(blk, []).append(
                    (core, int(self.state[core][way]))
                )
        for core in range(self.config.num_cores):
            valid = np.asarray(self.tags[core]) != -1
            assert valid.sum() == len(self.resident[core]), (
                f"core {core}: tag array and residency dict disagree"
            )
            for way in np.flatnonzero(~valid):
                assert self.state[core][way] == _I
                assert self.stamp[core][way] == -1
        for blk, entry in holders.items():
            owners = [c for c, s in entry if s >= _E]
            assert len(owners) <= 1, f"block {blk:#x} has owners {owners}"
            if owners:
                assert len(entry) == 1, (
                    f"block {blk:#x} owned by core {owners[0]} "
                    f"but shared by {len(entry)} cores"
                )
