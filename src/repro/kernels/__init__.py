"""Vectorized execution kernels for the hot paths (DESIGN.md §4).

Two layers:

* :mod:`repro.kernels.batched` — shared batched array primitives
  (popcount, history shifts, forward fills, level transitions, strobe
  parity, group ranking) that the encoders, the closed-form DESC model,
  and the workload generator build on.
* :mod:`repro.kernels.multicore` — the epoch-batched trace-execution
  engine behind :class:`repro.cpu.multicore.MulticoreSimulator`,
  cycle-exact against the retained per-access reference loop.

``repro bench`` (see ``docs/performance.md``) tracks the throughput of
everything exported here.
"""

from repro.kernels.batched import (
    forward_fill_take,
    group_rank,
    level_transitions,
    popcount,
    shifted_prev,
    strobe_flips,
)

__all__ = [
    "forward_fill_take",
    "group_rank",
    "level_transitions",
    "popcount",
    "shifted_prev",
    "strobe_flips",
]
