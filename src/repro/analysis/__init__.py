"""Repo-specific static analysis: the invariants no generic linter knows.

The reproduction's credibility rests on properties that are easy to
break silently and that ``ruff``/``mypy`` cannot see:

* **Determinism** — the 24 golden configurations and the
  serial==parallel property tests only hold if every random draw flows
  from an explicit seed and no wall-clock value reaches a result
  (rule ``R001``).
* **Cost accounting** — every wire flip must be charged through
  :class:`~repro.core.protocol.TransferCost` exactly once, at a known
  charge site (rule ``R002``).
* **Engine-tier parity** — the reference event loop, the vectorized
  engine, and the native kernel must stay call-compatible so the
  fallback chain never silently diverges, and every scheme must have a
  registered transfer model (rule ``R003``).
* **Float hygiene** — energy/cost comparisons must not use ``==``
  (rule ``R004``), and ordered outputs must not be fed from unordered
  iteration (rule ``R005``).
* **Service liveness** — request-path awaits must carry deadlines
  (rule ``R006``), and the serving layer's coroutines must be free of
  cross-``await`` state races, event-loop-blocking calls,
  fire-and-forget tasks, and swallowed cancellations (rule ``R007``).
* **FFI contracts** — the native kernels' exported C prototypes and
  their ctypes ``argtypes``/``restype`` bindings must agree on arity,
  pointer-ness, and integer width (rule ``R008``).

The package is a small AST-walking framework (:mod:`.framework`) with a
rule registry (:mod:`.rules`), a committed baseline so pre-existing
debt never blocks CI while *new* violations do (:mod:`.baseline`), an
incremental parallel engine with SARIF output (:mod:`.engine`,
:mod:`.cache`, :mod:`.sarif`), and a CLI front-end wired into
``repro lint`` (:mod:`.cli`).

Suppressions: append ``# lint-ok: R001`` (comma-separate several ids)
to a line, or put ``# lint-ok-file: R001`` anywhere in a file to waive
the rule for the whole file.  Both are deliberate, reviewable markers —
prefer them to baselining.
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline
from repro.analysis.config import AnalysisConfig, find_repo_root, load_config
from repro.analysis.findings import Finding
from repro.analysis.framework import Rule, SourceFile, collect_files, run_analysis
from repro.analysis.rules import default_rules

__all__ = [
    "AnalysisConfig",
    "Baseline",
    "Finding",
    "Rule",
    "SourceFile",
    "collect_files",
    "default_rules",
    "find_repo_root",
    "load_config",
    "run_analysis",
]
